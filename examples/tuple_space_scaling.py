#!/usr/bin/env python3
"""Tuple space search: why the non-blocking ISA matters.

Wildcard classification searches one hash table per distinct rule mask
("tuple").  Software walks the tuples one by one; HALO's ``LOOKUP_NB``
dispatches every tuple's lookup to the distributed accelerators at once and
collects results with a single ``SNAPSHOT_READ`` per batch — Figure 11.

Run:  python examples/tuple_space_scaling.py
"""

from repro.analysis.experiments.fig11_tuple_space import run_point


def main() -> None:
    print("tuple space search, 1024 megaflows per tuple "
          "(normalised throughput vs software)\n")
    print(f"{'tuples':>7} {'software':>10} {'HALO-B':>8} {'HALO-NB':>8} "
          f"{'TCAM':>8}")
    for tuples in (2, 5, 10, 15, 20):
        point = run_point(tuples, packets=30)
        normalized = point.normalized_throughput()
        print(f"{tuples:>7} {normalized['software']:>9.1f}x "
              f"{normalized['halo-b']:>7.1f}x "
              f"{normalized['halo-nb']:>7.1f}x "
              f"{normalized['tcam']:>7.0f}x")
    print("\nblocking mode serialises per-tuple lookups and flatlines;\n"
          "non-blocking mode scales with tuple count (paper: up to 23.4x\n"
          "at 20 tuples); TCAM holds all wildcards in one search but costs\n"
          "~48x more energy per query (see bench_tab04_power_area).")


if __name__ == "__main__":
    main()
