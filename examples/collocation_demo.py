#!/usr/bin/env python3
"""Collocation demo: software and HALO backends live on ONE engine.

Pins four lookup backends to four cores of the same simulated machine and
runs them *concurrently* as DES processes — a software PMD, a HALO blocking
core, a HALO non-blocking core, and an adaptive-hybrid core — all hammering
their own warm flow tables through the shared L1/LLC/DRAM hierarchy.

What to look for in the output:

* the merged event timeline genuinely interleaves cores (thousands of
  cross-core switches, not four back-to-back serial phases);
* every core's wall-clock span overlaps the others' — ``engine.now``
  advances once for the whole machine;
* shared-hierarchy contention is emergent: the LLC slices record accesses
  from all cores, and each core's cycles/op is priced against cache state
  the *other* cores perturb.

Run:  python examples/collocation_demo.py
"""

from repro.core import HaloSystem
from repro.exec import CoreWorkload
from repro.traffic import random_keys

CORES = (
    ("software", 0),
    ("halo-b", 1),
    ("halo-nb", 2),
    ("adaptive", 3),
)
LOOKUPS_PER_CORE = 200


def main() -> None:
    system = HaloSystem()
    workloads = []
    for index, (kind, core_id) in enumerate(CORES):
        table = system.create_table(1 << 14, name=f"{kind}@{core_id}")
        keys = random_keys(8_000, seed=100 + index)
        for value, key in enumerate(keys):
            table.insert(key, value)
        system.warm_table(table)
        system.hierarchy.flush_private(core_id)
        workloads.append(CoreWorkload(
            backend=kind, core_id=core_id, table=table,
            keys=keys[:LOOKUPS_PER_CORE], name=f"{kind}@core{core_id}"))

    run = system.run_cores(workloads)

    print("four backends collocated on one DES engine "
          f"({LOOKUPS_PER_CORE} lookups each):\n")
    print(f"  {'core':>4s}  {'backend':10s} {'start':>10s} {'finish':>10s} "
          f"{'cycles/op':>10s}")
    for result in run.results:
        print(f"  {result.core_id:>4d}  {result.kind.value:10s} "
              f"{result.started:>10.0f} {result.finished:>10.0f} "
              f"{result.cycles_per_op:>10.1f}")

    # Overlap: every core starts before the earliest core finishes.
    earliest_finish = min(r.finished for r in run.results)
    overlapped = all(r.started < earliest_finish for r in run.results)
    timeline = run.timeline()
    print(f"\n  engine span          : {run.started:.0f} -> "
          f"{run.finished:.0f} ({run.elapsed:.0f} cycles)")
    print(f"  timeline entries     : {len(timeline)} marks, "
          f"{run.interleavings()} cross-core switches")
    print(f"  all cores overlapped : {overlapped}")

    head = ", ".join(f"{now:.0f}@c{core}" for now, core in timeline[:8])
    print(f"  first marks          : {head}, ...")

    llc_accesses = sum(c.stats.accesses for c in system.hierarchy.llc)
    llc_misses = sum(c.stats.misses for c in system.hierarchy.llc)
    print(f"\n  shared LLC           : {llc_accesses:,} accesses, "
          f"{llc_misses:,} misses (all four cores, one hierarchy)")

    assert overlapped, "cores should run concurrently, not serially"
    assert run.interleavings() > 50, "timeline should interleave cores"
    print("\nOK: software and HALO backends shared one timeline and one "
          "memory hierarchy.")


if __name__ == "__main__":
    main()
