#!/usr/bin/env python3
"""A tour of the virtual switch: the OVS datapath under realistic traffic.

Builds the paper's "many flows, 20 hot rules" gateway scenario (Figure 3's
heaviest configuration), runs it through the instrumented switch in
software mode and HALO non-blocking mode, and prints the per-stage cycle
breakdown for both — the Figure 3 measurement plus what HALO does to it.

Run:  python examples/virtual_switch_tour.py
"""

from repro.analysis.breakdown import FIG3_STAGES, render_stacked
from repro.core import HaloSystem
from repro.sim.stats import Breakdown
from repro.traffic import FlowSet, PacketStream, profile_by_name
from repro.vswitch import SwitchMode, VirtualSwitch

FLOWS = 40_000      # scaled from the profile's 1M for a quick run
PACKETS = 800


def run_mode(mode: SwitchMode, flow_set, rules, zipf_s: float):
    system = HaloSystem()
    switch = VirtualSwitch(system, mode, megaflow_tuple_capacity=1 << 16)
    switch.install_rules(rules)
    switch.prewarm_megaflows(flow_set.flows)
    switch.warm()
    stream = PacketStream(flow_set, zipf_s=zipf_s, seed=5)
    switch.process_stream(stream.take(300))          # warm-up
    switch.stats.packets = 0
    switch.stats.breakdown = Breakdown()
    switch.stats.layer_hits = {}
    stats = switch.process_stream(stream.take(PACKETS))
    return switch, stats


def main() -> None:
    profile = profile_by_name("many-flows-rules-1M")
    flow_set = FlowSet.generate(FLOWS, seed=profile.seed,
                                groups=profile.num_rules)
    rules = profile.build_rules(flow_set)
    print(f"scenario: {profile.description}  "
          f"({FLOWS:,} flows scaled from {profile.num_flows:,}, "
          f"{len(rules)} rules)\n")

    rows = {}
    for mode in (SwitchMode.SOFTWARE, SwitchMode.HALO_NONBLOCKING):
        switch, stats = run_mode(mode, flow_set, rules, profile.zipf_s)
        rows[mode.value] = stats.breakdown.scaled(1.0 / stats.packets)
        print(f"{mode.value:10s}: {stats.cycles_per_packet:7.1f} cycles/pkt, "
              f"classification {stats.classification_fraction():.1%}, "
              f"layer hits {stats.layer_hits}, "
              f"{switch.megaflow.num_tuples} megaflow tuples")

    print()
    print(render_stacked(rows, FIG3_STAGES,
                         title="per-packet cycle breakdown"))
    software = rows["software"].total
    halo = rows["halo-nb"].total
    print(f"\nHALO speeds whole-packet processing {software / halo:.2f}x "
          f"by attacking the classification stages")


if __name__ == "__main__":
    main()
