#!/usr/bin/env python3
"""An NFV service chain: packet filter -> NAT -> asset monitor.

Each VNF in the chain is hash-table-bound (Table 3's NAT, prads, and
packet-filter workloads).  The example runs the same packet stream through
the chain with software lookups and with HALO acceleration, reproducing
the Figure 13 story end to end — including the per-NF breakdown.

Run:  python examples/nfv_service_chain.py
"""

from repro.core import HaloSystem
from repro.nf import NatFunction, PacketFilterFunction, PradsFunction
from repro.traffic import FlowSet, PacketStream

PACKETS = 300


def build_chain(system: HaloSystem, flow_set, use_halo: bool):
    """The three chained VNFs, each with realistic table sizes."""
    pkt_filter = PacketFilterFunction(system, table_entries=1_000,
                                      use_halo=use_halo)
    pkt_filter.install_rules_from_flows(flow_set.flows[::7], count=500)
    nat = NatFunction(system, table_entries=10_000, use_halo=use_halo)
    nat.populate_from_flows(flow_set.flows[:9_000])
    prads = PradsFunction(system, table_entries=10_000, use_halo=use_halo)
    prads.populate_from_flows(flow_set.flows[:9_000])
    return [pkt_filter, nat, prads]


def run_chain(chain, flows) -> float:
    """Total cycles for the stream through all three VNFs."""
    pkt_filter = chain[0]
    total = 0.0
    for flow in flows:
        dropped_before = pkt_filter.dropped
        total += pkt_filter.process(flow)
        if pkt_filter.dropped > dropped_before:
            continue   # filtered packets skip the rest of the chain
        for nf in chain[1:]:
            total += nf.process(flow)
    return total


def main() -> None:
    flow_set = FlowSet.generate(20_000, seed=17)
    stream = PacketStream(flow_set, zipf_s=0.8, seed=18)
    flows = stream.take(PACKETS)

    print(f"service chain: packet-filter(1K rules) -> NAT(10K bindings) "
          f"-> prads(10K assets); {PACKETS} packets\n")

    results = {}
    for label, use_halo in (("software", False), ("HALO", True)):
        system = HaloSystem()
        chain = build_chain(system, flow_set, use_halo)
        cycles = run_chain(chain, flows)
        results[label] = cycles
        print(f"{label:9s}: {cycles / PACKETS:8.1f} cycles/packet "
              f"through the chain")
        for nf in chain:
            print(f"           {nf.name:10s} {nf.stats.cycles_per_packet:7.1f}"
                  f" cycles/pkt  ({nf.stats.throughput_mpps():6.2f} Mpps "
                  f"standalone)")

    print(f"\nchain speedup with HALO: "
          f"{results['software'] / results['HALO']:.2f}x.")
    print("chained VNFs keep each other's tables L2-warm, so the gain is\n"
          "Amdahl-limited below the paper's isolated-NF 2.3-2.7x "
          "(bench_fig13 reproduces that configuration).")


if __name__ == "__main__":
    main()
