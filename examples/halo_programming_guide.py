#!/usr/bin/env python3
"""Programming HALO at the instruction level.

A guided tour of the paper's §4.5 ISA extension and §4.6 flow register,
written against the simulator's DES interface — the level a systems
programmer would target:

1. ``LOOKUP_B``   — blocking lookup (a long-latency load);
2. ``LOOKUP_NB``  — fire-and-forget lookup (a store), result to memory;
3. ``SNAPSHOT_READ`` — poll a whole result line without stealing it
   from the LLC (the AVX batch-completion idiom);
4. the flow register and what the hybrid controller sees.

Run:  python examples/halo_programming_guide.py
"""

from repro.core import HaloSystem, RESULTS_PER_LINE
from repro.traffic import random_keys


def main() -> None:
    system = HaloSystem()
    engine = system.engine
    isa = system.isa

    table = system.create_table(4096, name="guide")
    keys = random_keys(3_000, seed=11)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)

    # -- 1. LOOKUP_B: issue, stall, result in a register --------------------
    def blocking_demo():
        start = engine.now
        result = yield from isa.lookup_b(core_id=0, table=table,
                                         key=keys[7])
        print(f"1. LOOKUP_B  -> value={result.value}, served by "
              f"accelerator {result.accelerator_slice}, "
              f"{engine.now - start:.0f} cycles core-visible latency")
        return result

    engine.run_process(blocking_demo())

    # -- 2+3. LOOKUP_NB batch + SNAPSHOT_READ polling -------------------------
    def nonblocking_demo():
        start = engine.now
        pending = []
        line = isa.result_line()
        for offset, key in enumerate(keys[:RESULTS_PER_LINE]):
            process = yield from isa.lookup_nb(
                core_id=0, table=table, key=key,
                result_addr=line + offset * 8)
            pending.append(process)
        issued = engine.now - start
        results = yield from isa.snapshot_read_poll(0, pending)
        print(f"2. LOOKUP_NB x{len(pending)} issued in {issued:.0f} "
              f"cycles (core keeps executing)")
        print(f"3. SNAPSHOT_READ found all {len(results)} results after "
              f"{engine.now - start:.0f} cycles total "
              f"({isa.stats.snapshot_reads} polls so far); values="
              f"{[r.value for r in results]}")
        return results

    engine.run_process(nonblocking_demo())

    # -- 4. the flow register ----------------------------------------------------
    serving = [acc for acc in system.accelerators if acc.stats.queries]
    for accelerator in serving:
        register = accelerator.flow_register
        print(f"4. accelerator {accelerator.slice_id}: flow register "
              f"{register.bits}-bit, {register.stats.observations} "
              f"observations, estimates ~{register.estimate():.0f} "
              f"active flows")
    mode = system.hybrid.end_window()
    print(f"   hybrid controller closes the window: estimated "
          f"{system.hybrid.last_estimate:.0f} flows -> {mode.value} mode")

    print()
    print(system.summary())


if __name__ == "__main__":
    main()
