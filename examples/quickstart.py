#!/usr/bin/env python3
"""Quickstart: a HALO-equipped machine in ~40 lines.

Builds the paper's Table 2 machine, creates a cuckoo flow table, and runs
the same lookups three ways — DPDK-style software, HALO blocking
(``LOOKUP_B``), and HALO non-blocking (``LOOKUP_NB`` + ``SNAPSHOT_READ``) —
then lets the hybrid controller pick the mode by flow count.

Run:  python examples/quickstart.py
"""

from repro.core import HaloSystem
from repro.traffic import random_keys


def main() -> None:
    system = HaloSystem()                       # 16 cores, 16 LLC slices+CHAs
    table = system.create_table(capacity=1 << 16, name="flows")

    keys = random_keys(40_000, seed=42)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)                    # steady state: LLC-resident
    system.hierarchy.flush_private(0)

    sample = keys[:500]
    software = system.run_software_lookups(table, sample)
    blocking = system.run_blocking_lookups(table, sample)
    nonblocking = system.run_nonblocking_lookups(table, sample)

    print("single-table lookups, LLC-resident "
          f"({len(table):,} entries, {table.load_factor:.0%} occupancy):")
    for name, episode in (("software (cuckoo + optimistic lock)", software),
                          ("HALO LOOKUP_B", blocking),
                          ("HALO LOOKUP_NB batches", nonblocking)):
        speedup = software.cycles_per_op / episode.cycles_per_op
        print(f"  {name:36s} {episode.cycles_per_op:7.1f} cycles/lookup  "
              f"({episode.throughput_mops():6.1f} Mops  {speedup:4.2f}x)")

    # Correctness: all three agree.
    values = [result.value for result in blocking.results]
    assert values == software.results[:len(values)]

    # Hybrid mode: a hot 8-flow table drops back to software (paper §4.6).
    hot = system.create_table(64, name="hot")
    hot_keys = random_keys(8, seed=7)
    for index, key in enumerate(hot_keys):
        hot.insert(key, index)
    system.run_adaptive_lookups(hot, [hot_keys[i % 8] for i in range(600)],
                                window=200)
    print(f"\nhybrid controller after a hot 8-flow phase: "
          f"{system.hybrid.mode.value} mode "
          f"(estimated {system.hybrid.last_estimate:.0f} active flows)")


if __name__ == "__main__":
    main()
