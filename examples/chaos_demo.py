#!/usr/bin/env python3
"""Chaos demo: one LLC slice's accelerator dies mid-run; nobody notices.

Four cores run the adaptive backend against a shared table, so every
query hashes to the same LLC slice.  Mid-run, a
:class:`~repro.faults.FaultPlan` takes that slice's accelerator out for a
fixed window.  Each core's resilience policy times the stalled polls
out, falls back to the software lookup path, keeps probing, and returns
to the accelerator once the outage lifts — the full workload completes
with zero lost lookups, and the fallback/recovery timeline below comes
straight from the new ``exec.resilience`` health events and ``faults.*``
counters.

Run:  python examples/chaos_demo.py
"""

from repro.core import HaloSystem
from repro.exec import CoreWorkload, ResiliencePolicy
from repro.faults import FaultInjector, FaultPlan
from repro.traffic.generator import random_keys

CORES = 4
LOOKUPS_PER_CORE = 150
OUTAGE = (4_000.0, 12_000.0)


def main() -> None:
    system = HaloSystem()
    table = system.create_table(4096, name="chaos")
    inserted = []
    for index, key in enumerate(random_keys(4096, seed=404)):
        if table.insert(key, index):
            inserted.append((key, index))
    system.warm_table(table)
    target_slice = system.hierarchy.interconnect.slice_of_table(
        table.table_addr)

    plan = FaultPlan.slice_outage(target_slice, start=OUTAGE[0],
                                  end=OUTAGE[1])
    FaultInjector(system, plan).install()
    print(plan.describe())

    policy = ResiliencePolicy(poll_budget=8, max_retries=1,
                              backoff_base=16.0, probe_interval=8,
                              recovery_successes=2)
    # Construct the backends explicitly (rather than by kind string) so
    # their per-slice health events stay readable after the run.
    backends = [system.backend("adaptive", core_id=core, policy=policy)
                for core in range(CORES)]
    keys = [key for key, _ in inserted]
    workloads = [
        CoreWorkload(backend=backends[core], core_id=core, table=table,
                     keys=keys[core * LOOKUPS_PER_CORE:
                               (core + 1) * LOOKUPS_PER_CORE],
                     name=f"pmd{core}")
        for core in range(CORES)
    ]
    run = system.run_cores(workloads)

    expected = [value for _, value in inserted]
    print(f"\n{CORES} cores x {LOOKUPS_PER_CORE} adaptive lookups, "
          f"slice {target_slice} dark over "
          f"[{OUTAGE[0]:.0f}, {OUTAGE[1]:.0f}) cycles:\n")
    print(f"{'core':>5} {'lookups':>8} {'degraded':>9} {'cycles/op':>10}")
    lost = 0
    for result in run.results:
        outcomes = result.result
        base = result.core_id * LOOKUPS_PER_CORE
        lost += sum(1 for offset, outcome in enumerate(outcomes)
                    if outcome.value != expected[base + offset])
        degraded = sum(1 for outcome in outcomes if outcome.degraded)
        print(f"{result.core_id:>5} {len(outcomes):>8} {degraded:>9} "
              f"{result.cycles_per_op:>10.1f}")
    print(f"\nlost lookups: {lost} (workload completed, results correct)")

    timeline = sorted(
        (when, what, slice_id, core)
        for core, backend in enumerate(backends)
        for when, what, slice_id in backend.resilience_events)
    print("\nfallback/recovery timeline (cycle, event, slice, core):")
    for when, what, slice_id, core in timeline:
        print(f"  {when:>10.1f}  {what:<10} slice {slice_id}  core {core}")

    snapshot = system.obs.metrics.snapshot()
    print("\ncounters:")
    for name in sorted(snapshot):
        if name.startswith(("faults.", "exec.resilience.")):
            print(f"  {name:<35} {snapshot[name]}")


if __name__ == "__main__":
    main()
