#!/usr/bin/env python3
"""Deadlock demo: the watchdog catches a classic lock-order inversion.

Two processes each hold one of two single-slot
:class:`~repro.sim.engine.Resource` units and then request the other —
the textbook ABBA deadlock.  Without a guard the simulation would simply
*end*: the event calendar drains (nothing is scheduled, everyone is
waiting) and ``engine.run()`` returns as if the run completed.  With the
:mod:`repro.guard` watchdog attached, the drain is recognised for what
it is and a :class:`~repro.guard.DeadlockError` fires, naming every
blocked process and the exact waitable it is stuck on — the dump below
is what CI greps for.

Run:  python examples/deadlock_demo.py
Exits zero *iff* the watchdog caught the deadlock.
"""

import sys

from repro.guard import DeadlockError, default_guard
from repro.sim.engine import Engine, Resource


def worker(engine: Engine, first: Resource, second: Resource):
    """Grab ``first``, dally one cycle, then request ``second``."""
    yield first.acquire()
    yield engine.timeout(1)
    yield second.acquire()  # never granted: the peer holds it
    second.release()
    first.release()


def main() -> int:
    engine = Engine()
    lock_a = Resource(engine, capacity=1)
    lock_b = Resource(engine, capacity=1)

    # Opposite acquisition orders — the inversion CI wants diagnosed.
    engine.process(worker(engine, lock_a, lock_b), name="forward-worker")
    engine.process(worker(engine, lock_b, lock_a), name="reverse-worker")
    engine.attach_guard(default_guard())

    try:
        engine.run()
    except DeadlockError as exc:
        print("watchdog caught the deadlock:")
        print()
        print(exc)
        blocked = {entry.name for entry in exc.blocked}
        assert blocked == {"forward-worker", "reverse-worker"}, blocked
        return 0

    print("ERROR: simulation drained without the watchdog firing",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
