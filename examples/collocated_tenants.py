#!/usr/bin/env python3
"""Collocated tenants: the cache-pollution story of Figure 12.

An intrusion-detection NF shares an SMT core with the virtual switch.
With software classification, every packet's EMC/MegaFlow walk drags the
switch's tables through the shared L1/L2 and evicts the NF's hot state.
With HALO, lookups run at the CHAs and the NF keeps its caches.

Run:  python examples/collocated_tenants.py
"""

from repro.nf import AclFunction, IdsFunction, TcpStackFunction
from repro.nf.collocation import run_collocation
from repro.vswitch import SwitchMode

NFS = {
    "acl": lambda system: AclFunction(system.hierarchy),
    "snort": lambda system: IdsFunction(system.hierarchy),
    "mtcp": lambda system: TcpStackFunction(system.hierarchy),
}


def main() -> None:
    print("NF collocated with the virtual switch on one SMT core "
          "(20K flows)\n")
    print(f"{'NF':>6} {'switch':>10} {'NF slowdown':>12} "
          f"{'L1D miss (solo -> coloc)':>26}")
    for name, factory in NFS.items():
        for mode in (SwitchMode.SOFTWARE, SwitchMode.HALO_NONBLOCKING):
            result = run_collocation(factory, num_flows=20_000,
                                     switch_mode=mode, packets=300,
                                     warmup=300)
            print(f"{name:>6} {mode.value:>10} "
                  f"{result.throughput_drop:>11.1%} "
                  f"{result.solo_l1_miss_ratio:>11.1%} -> "
                  f"{result.colocated_l1_miss_ratio:.1%}")
    print("\npaper: software switch costs the NFs 17-26%; "
          "HALO costs < 3.2%.")


if __name__ == "__main__":
    main()
