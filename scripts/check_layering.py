#!/usr/bin/env python3
"""Enforce the one-directional import layering of the ``repro`` package.

The repo's layers, bottom to top (rank 0 upward)::

    obs < guard < sim < hashtable < classifier < traffic < core < tcam
        < exec < faults < vswitch < nf < workloads < analysis < runner
        < cluster

A module in layer L may import (at module level) only from layers with a
rank <= L.  Upward imports — e.g. ``repro.obs`` importing from
``repro.analysis``, or ``repro.sim`` importing from ``repro.core`` — are
flagged.  Only *module-level* (top-level AST) imports count: a
function-local import is the sanctioned escape hatch for facades such as
``HaloSystem.backend()``, which constructs objects from the layer above
without creating a static upward edge.

``repro.cluster`` is the top layer: it composes whole systems (core),
workloads (exec/traffic), and the supervised pool (runner) into sharded
cluster runs, so everything sits below it.  The single sanctioned upward
edge is ``analysis -> cluster`` (:data:`ALLOWED_UPWARD`): experiments
sweep cluster configurations, but no model layer — sim, core, exec,
vswitch, nf — may ever know the cluster exists.

Some layers additionally restrict who above them may import them at all:
``repro.faults`` is a leaf capability — it may import sim/core/exec, but
of the layers above it only ``analysis`` and ``runner`` may depend on it
(workload layers such as ``vswitch``/``nf`` must stay fault-agnostic;
fault plans are installed from experiments and examples, not from inside
the modelled dataplane).  ``repro.guard`` is the same kind of leaf: the
safety net attaches from the harness (``sim`` owns the attachment seam,
``runner``/``analysis`` opt campaigns in), never from inside the
modelled hardware or workloads — a cache or NF that imported its own
invariant checker would entangle the model with its auditor.
``repro.workloads`` (churn/attack traffic scenarios) is restricted the
same way: only ``analysis`` and ``runner`` may import it — the modelled
dataplane must never know which scenario is driving it, exactly as a
real switch never imports its traffic generator.

Root modules (``repro/__init__.py``, ``repro/__main__.py``) are exempt:
they are the user-facing aggregation points and may import from any layer.

Usage:  python scripts/check_layering.py [--src SRC_DIR]
Exits non-zero listing every violation, or zero (silent) when clean.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

#: Bottom-to-top layer order; the index is the rank.
LAYERS = (
    "obs",
    "guard",
    "sim",
    "hashtable",
    "classifier",
    "traffic",
    "core",
    "tcam",
    "exec",
    "faults",
    "vswitch",
    "nf",
    "workloads",
    "analysis",
    "runner",
    "cluster",
)
RANK = {name: index for index, name in enumerate(LAYERS)}

#: Sanctioned upward edges: ``(importing layer, imported layer)`` pairs
#: exempt from the rank rule.  Kept deliberately tiny — every entry is a
#: hole in the one-directional story and needs a written justification
#: (see the module docstring).
ALLOWED_UPWARD = {
    ("analysis", "cluster"),
}

#: Layers only *some* higher layers may import: ``{layer: allowed}``.
#: A module above ``layer`` whose own layer is not in ``allowed`` must not
#: import it, even though the rank rule alone would permit the edge.
RESTRICTED_IMPORTERS = {
    "faults": ("analysis", "runner", "cluster"),
    "guard": ("sim", "runner", "analysis"),
    "workloads": ("analysis", "runner"),
}


def module_name(path: Path, src: Path) -> str:
    """Dotted module name of ``path`` relative to ``src``."""
    relative = path.relative_to(src).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def layer_of(module: str) -> Optional[str]:
    """The layer a ``repro.*`` module belongs to (None for root/foreign)."""
    parts = module.split(".")
    if len(parts) < 2 or parts[0] != "repro":
        return None
    return parts[1] if parts[1] in RANK else None


def resolve_import(node: ast.stmt,
                   package_parts: List[str]) -> Iterator[str]:
    """Absolute dotted targets of one module-level import statement.

    ``package_parts`` is the importing module's *package* (for a plain
    module ``a.b.c`` that is ``[a, b]``; for a package's ``__init__`` it
    is the package itself).
    """
    if isinstance(node, ast.Import):
        for alias in node.names:
            yield alias.name
    elif isinstance(node, ast.ImportFrom):
        if node.level == 0:
            if node.module:
                yield node.module
            return
        # Relative import: level 1 anchors at the package, each extra
        # level climbs one parent.
        anchor = package_parts[:len(package_parts) - (node.level - 1)]
        if node.module:
            yield ".".join(anchor + node.module.split("."))
        else:
            # ``from . import x, y`` — each name is a submodule of anchor.
            for alias in node.names:
                yield ".".join(anchor + [alias.name])


def is_package_init(path: Path) -> bool:
    return path.name == "__init__.py"


def check_file(path: Path, src: Path) -> List[Tuple[str, int, str, str]]:
    """Violations in one file: (module, lineno, imported, reason)."""
    module = module_name(path, src)
    parts = module.split(".")
    # A package's __init__ resolves relative imports against the package
    # itself; a plain module resolves against its parent package.
    package_parts = parts if is_package_init(path) else parts[:-1]
    layer = layer_of(module)
    if layer is None:
        return []  # root modules (repro/__init__.py, __main__.py) exempt
    rank = RANK[layer]
    violations = []
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    for node in tree.body:  # module level only — nested imports sanctioned
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        for target in resolve_import(node, package_parts):
            target_layer = layer_of(target)
            if target_layer is None:
                continue
            if RANK[target_layer] > rank:
                if (layer, target_layer) in ALLOWED_UPWARD:
                    continue
                violations.append((
                    module, node.lineno, target,
                    f"layer '{layer}' (rank {rank}) must not import "
                    f"'{target_layer}' (rank {RANK[target_layer]})"))
                continue
            allowed = RESTRICTED_IMPORTERS.get(target_layer)
            if (allowed is not None and layer != target_layer
                    and RANK[target_layer] < rank and layer not in allowed):
                violations.append((
                    module, node.lineno, target,
                    f"layer '{target_layer}' may only be imported by "
                    f"{', '.join(allowed)} (not '{layer}')"))
    return violations


def check_tree(src: Path) -> List[Tuple[str, int, str, str]]:
    package = src / "repro"
    violations = []
    for path in sorted(package.rglob("*.py")):
        violations.extend(check_file(path, src))
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--src", default=None,
                        help="source root containing the repro package "
                             "(default: <repo>/src)")
    args = parser.parse_args(argv)
    src = Path(args.src) if args.src else (
        Path(__file__).resolve().parent.parent / "src")
    violations = check_tree(src)
    if violations:
        print(f"layering check FAILED: {len(violations)} upward import(s)")
        for module, lineno, target, reason in violations:
            print(f"  {module}:{lineno}: imports {target} — {reason}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
