#!/usr/bin/env python3
"""CI perf gate: compare a fresh ``BENCH_*.json`` against the committed
baseline and fail on a >25% regression.

Usage::

    python scripts/check_perf_regression.py CANDIDATE.json \
        [--baseline benchmarks/perf/BENCH_baseline.json] \
        [--threshold 0.25] [--override]

Per bench the gate prefers ``speedup_vs_legacy`` — the workload timed on
the live engine vs the frozen pre-campaign engine *in the same process on
the same host* — which cancels out machine speed entirely.  Benches with
no legacy counterpart fall back to host-normalised events/sec
(``events_per_cal_op``), which is noisier; the 25% threshold absorbs
that.

``--override`` (CI passes it when the PR carries the ``perf-override``
label) downgrades failures to warnings for intentional speed/accuracy
tradeoffs.  The regression is still printed so the tradeoff is on the
record.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runner.perf import compare_snapshots, validate_snapshot  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "perf" / "BENCH_baseline.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("candidate", help="fresh BENCH_*.json to check")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="committed baseline snapshot")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional drop (default 0.25)")
    parser.add_argument("--override", action="store_true",
                        help="report regressions but exit 0 "
                             "(perf-override label)")
    args = parser.parse_args(argv)

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(args.candidate, encoding="utf-8") as handle:
        candidate = json.load(handle)

    problems = validate_snapshot(candidate)
    if problems:
        for problem in problems:
            print(f"INVALID candidate snapshot: {problem}")
        return 1

    failures = compare_snapshots(baseline, candidate,
                                 threshold=args.threshold)
    for name, record in sorted(candidate.get("benches", {}).items()):
        speedup = record.get("speedup_vs_legacy")
        extra = f"  {speedup:.2f}x vs legacy" if speedup else ""
        print(f"  {name:20s} {record.get('events_per_sec', 0):14,.0f} "
              f"events/s{extra}")
    if not failures:
        print(f"perf gate PASSED (threshold {args.threshold:.0%})")
        return 0
    for failure in failures:
        print(f"REGRESSION: {failure}")
    if args.override:
        print("perf-override active: regressions recorded but not fatal")
        return 0
    print("perf gate FAILED — speed up the change, or apply the "
          "'perf-override' label for an intentional tradeoff")
    return 1


if __name__ == "__main__":
    sys.exit(main())
