#!/usr/bin/env python3
"""Enforce public-contract module docstrings on the perf-critical modules.

The engine-speed campaign's surface area — the perf suite, the
supervised pool, the campaign journal, the trace-replay fast path, the
cluster layer, the churn workload engine, the cache-policy seam, and
the trace persistence formats — is API other sessions and external
harnesses build against.  Each of
those modules must open with a module docstring that (a) exists, (b) is
substantial (not a one-line stub), and (c) explicitly states its public
contract: a line containing the phrase ``Public contract`` separating
the stable API from internals.

This is deliberately a *lint*, not a style checker: it pins only the
modules named in ``CONTRACT_MODULES`` and nothing else, so adding a
module here is an explicit decision to promise a stable surface.

Usage:  python scripts/check_docstrings.py [--src SRC_DIR]
Exits non-zero listing every violation, or zero (silent) when clean.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import List

#: Modules (relative to the source root) that must declare their public
#: contract in the module docstring.
CONTRACT_MODULES = (
    "repro/runner/perf.py",
    "repro/runner/pool.py",
    "repro/runner/journal.py",
    "repro/sim/replay.py",
    "repro/cluster/__init__.py",
    "repro/cluster/balancer.py",
    "repro/cluster/cluster.py",
    "repro/cluster/shards.py",
    "repro/faults/shard_plan.py",
    "repro/workloads/__init__.py",
    "repro/workloads/churn.py",
    "repro/classifier/cache_policy.py",
    "repro/traffic/persistence.py",
)

#: The marker phrase the docstring must contain (case-sensitive).
CONTRACT_MARKER = "Public contract"

#: Below this many characters a docstring is a stub, not a contract.
MIN_DOCSTRING_CHARS = 200


def check_module(path: Path) -> List[str]:
    """Lint one module file; returns human-readable violations."""
    problems: List[str] = []
    if not path.exists():
        return [f"{path}: contract module is missing"]
    try:
        tree = ast.parse(path.read_text())
    except SyntaxError as error:
        return [f"{path}: cannot parse ({error})"]
    docstring = ast.get_docstring(tree)
    if not docstring:
        return [f"{path}: no module docstring"]
    if len(docstring) < MIN_DOCSTRING_CHARS:
        problems.append(
            f"{path}: module docstring is a stub "
            f"({len(docstring)} chars < {MIN_DOCSTRING_CHARS})")
    if CONTRACT_MARKER not in docstring:
        problems.append(
            f"{path}: docstring does not state its public contract "
            f"(missing the phrase {CONTRACT_MARKER!r})")
    return problems


def check_tree(src: Path) -> List[str]:
    """Lint every pinned contract module under ``src``."""
    problems: List[str] = []
    for relative in CONTRACT_MODULES:
        problems.extend(check_module(src / relative))
    return problems


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--src", default=None,
                        help="source root (default: <repo>/src)")
    args = parser.parse_args(argv)
    src = (Path(args.src) if args.src
           else Path(__file__).resolve().parent.parent / "src")
    problems = check_tree(src)
    for problem in problems:
        print(problem)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
