"""The public-contract docstring lint: the pinned modules carry their
contracts, and the checker catches missing files, stubs, and contracts
that were silently dropped."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_docstrings.py"

spec = importlib.util.spec_from_file_location("check_docstrings", SCRIPT)
check_docstrings = importlib.util.module_from_spec(spec)
sys.modules.setdefault("check_docstrings", check_docstrings)
spec.loader.exec_module(check_docstrings)


def test_repo_is_clean():
    violations = check_docstrings.check_tree(REPO_ROOT / "src")
    assert violations == [], violations


def test_missing_module_is_flagged(tmp_path):
    problems = check_docstrings.check_module(tmp_path / "absent.py")
    assert problems and "missing" in problems[0]


def test_missing_docstring_is_flagged(tmp_path):
    module = tmp_path / "bare.py"
    module.write_text("x = 1\n")
    problems = check_docstrings.check_module(module)
    assert problems == [f"{module}: no module docstring"]


def test_stub_docstring_is_flagged(tmp_path):
    module = tmp_path / "stub.py"
    module.write_text('"""Public contract: everything."""\n')
    problems = check_docstrings.check_module(module)
    assert len(problems) == 1 and "stub" in problems[0]


def test_contract_phrase_required(tmp_path):
    module = tmp_path / "wordy.py"
    module.write_text('"""%s"""\n' % ("A long docstring without the magic "
                                      "words, padded well past the stub "
                                      "threshold so only the marker check "
                                      "fires. " * 4))
    problems = check_docstrings.check_module(module)
    assert len(problems) == 1
    assert "public contract" in problems[0]


def test_unparseable_module_is_flagged(tmp_path):
    module = tmp_path / "broken.py"
    module.write_text("def (:\n")
    problems = check_docstrings.check_module(module)
    assert problems and "cannot parse" in problems[0]


def test_cli_exit_codes(tmp_path, capsys):
    assert check_docstrings.main(["--src", str(REPO_ROOT / "src")]) == 0
    assert check_docstrings.main(["--src", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "missing" in out
