"""The import-layering lint: the repo stays one-directional, and the
checker itself catches upward edges, resolves relative imports, and
exempts both root modules and function-local (lazy) imports."""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_layering.py"

spec = importlib.util.spec_from_file_location("check_layering", SCRIPT)
check_layering = importlib.util.module_from_spec(spec)
sys.modules.setdefault("check_layering", check_layering)
spec.loader.exec_module(check_layering)


def write(root: Path, relative: str, content: str = "") -> None:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(content)


@pytest.fixture
def tree(tmp_path):
    src = tmp_path / "src"
    for package in ("", "obs", "guard", "sim", "core", "exec", "faults",
                    "vswitch", "nf", "workloads", "analysis", "runner"):
        write(src, f"repro/{package}/__init__.py" if package
              else "repro/__init__.py")
    return src


def test_repo_is_clean():
    violations = check_layering.check_tree(REPO_ROOT / "src")
    assert violations == [], violations


def test_flags_absolute_upward_import(tree):
    write(tree, "repro/obs/report.py",
          "from repro.analysis.reporting import format_table\n")
    violations = check_layering.check_tree(tree)
    assert len(violations) == 1
    module, lineno, target, reason = violations[0]
    assert module == "repro.obs.report"
    assert target == "repro.analysis.reporting"
    assert "'obs'" in reason and "'analysis'" in reason


def test_flags_relative_upward_import(tree):
    write(tree, "repro/sim/engine.py",
          "from ..core.isa import HaloIsa\n")
    violations = check_layering.check_tree(tree)
    assert [v[2] for v in violations] == ["repro.core.isa"]


def test_resolves_from_dot_import_names(tree):
    # ``from .. import analysis`` inside repro/sim names the upper package.
    write(tree, "repro/sim/engine.py", "from .. import analysis\n")
    violations = check_layering.check_tree(tree)
    assert [v[2] for v in violations] == ["repro.analysis"]


def test_downward_and_same_layer_imports_allowed(tree):
    write(tree, "repro/exec/backend.py",
          "from ..sim.trace import capture\n"
          "from ..core.isa import HaloIsa\n"
          "from .cores import run_cores\n")
    write(tree, "repro/exec/cores.py")
    assert check_layering.check_tree(tree) == []


def test_function_local_import_is_sanctioned(tree):
    write(tree, "repro/core/halo_system.py",
          "def backend(kind):\n"
          "    from ..exec.backend import make_backend\n"
          "    return make_backend\n")
    assert check_layering.check_tree(tree) == []


def test_root_modules_exempt(tree):
    write(tree, "repro/__main__.py",
          "from .analysis import experiments\n"
          "from .obs import Observability\n")
    assert check_layering.check_tree(tree) == []


def test_package_init_resolves_against_itself(tree):
    # repro/exec/__init__.py doing ``from .backend import X`` targets
    # repro.exec.backend (same layer) — not repro.backend.
    write(tree, "repro/exec/__init__.py",
          "from .backend import make_backend\n")
    write(tree, "repro/exec/backend.py")
    assert check_layering.check_tree(tree) == []


def test_restricted_layer_rejects_disallowed_importer(tree):
    # vswitch sits above faults in rank, but the dataplane must stay
    # fault-agnostic: only analysis/runner may depend on repro.faults.
    write(tree, "repro/vswitch/switch.py",
          "from ..faults.plan import FaultPlan\n")
    violations = check_layering.check_tree(tree)
    assert len(violations) == 1
    module, _lineno, target, reason = violations[0]
    assert module == "repro.vswitch.switch"
    assert target == "repro.faults.plan"
    assert "may only be imported by" in reason


def test_restricted_layer_allows_sanctioned_importers(tree):
    write(tree, "repro/analysis/experiments.py",
          "from ..faults.plan import FaultPlan\n")
    write(tree, "repro/runner/scheduler.py",
          "from ..faults import FaultInjector\n")
    write(tree, "repro/faults/injector.py",
          "from .plan import FaultPlan\n"        # same layer
          "from ..sim.engine import Engine\n"    # downward
          "from ..exec.backend import make_backend\n")
    write(tree, "repro/faults/plan.py")
    assert check_layering.check_tree(tree) == []


def test_guard_layer_restricted_to_harness_importers(tree):
    # Modelled hardware (core, exec, ...) must never import the safety
    # net: guards are attached from sim/runner/analysis only.
    write(tree, "repro/core/halo_system.py",
          "from ..guard.presets import attach_standard_guard\n")
    violations = check_layering.check_tree(tree)
    assert len(violations) == 1
    module, _lineno, target, reason = violations[0]
    assert module == "repro.core.halo_system"
    assert target == "repro.guard.presets"
    assert "may only be imported by" in reason


def test_guard_layer_allows_harness_importers(tree):
    write(tree, "repro/sim/engine.py",
          "from ..guard.watchdog import Watchdog\n")
    write(tree, "repro/runner/scheduler.py",
          "from ..guard import default_guard\n")
    write(tree, "repro/analysis/experiments.py",
          "from ..guard.presets import maybe_attach_guard\n")
    write(tree, "repro/guard/watchdog.py",
          "from .errors import DeadlockError\n"   # same layer
          "from ..obs.metrics import Counter\n")  # downward
    write(tree, "repro/guard/errors.py")
    write(tree, "repro/guard/presets.py")
    assert check_layering.check_tree(tree) == []


def test_workloads_layer_restricted_to_harness_importers(tree):
    # The dataplane must never know which traffic scenario drives it:
    # vswitch/nf sit below workloads, sim even lower — none may import it.
    write(tree, "repro/vswitch/switch.py",
          "from ..workloads.churn import ChurnEngine\n")
    write(tree, "repro/nf/firewall.py",
          "from ..workloads import ChurnSpec\n")
    write(tree, "repro/sim/engine.py",
          "from ..workloads.phases import PhaseWindow\n")
    violations = check_layering.check_tree(tree)
    assert len(violations) == 3
    assert {v[0] for v in violations} == {"repro.vswitch.switch",
                                          "repro.nf.firewall",
                                          "repro.sim.engine"}
    # vswitch/nf are below workloads in rank: upward violations; and the
    # restriction never grants an exemption to anyone below.
    assert all("must not import" in v[3] for v in violations)


def test_workloads_layer_allows_sanctioned_importers(tree):
    write(tree, "repro/analysis/experiments.py",
          "from ..workloads import ChurnEngine, ChurnSpec\n")
    write(tree, "repro/runner/perf.py",
          "from ..workloads.churn import ChurnEngine\n")
    write(tree, "repro/workloads/churn.py",
          "from .lifecycle import PoissonArrivals\n"      # same layer
          "from ..classifier.flow import make_flow\n")    # downward
    write(tree, "repro/workloads/lifecycle.py")
    write(tree, "repro/classifier/__init__.py")
    write(tree, "repro/classifier/flow.py")
    assert check_layering.check_tree(tree) == []


def test_restricted_layer_still_flags_upward_imports(tree):
    # The restriction must not shadow the plain rank rule: a module below
    # faults importing it is an upward violation, reported as such.
    write(tree, "repro/sim/engine.py",
          "from ..faults.plan import FaultPlan\n")
    violations = check_layering.check_tree(tree)
    assert len(violations) == 1
    assert "must not import" in violations[0][3]


def test_cluster_is_top_layer_and_analysis_may_reach_it(tree):
    # The sanctioned upward edge: experiments sweep cluster configs.
    write(tree, "repro/cluster/__init__.py",
          "from .balancer import RssBalancer\n")
    write(tree, "repro/cluster/balancer.py",
          "from ..sim.interconnect import _mix64\n"   # downward
          "from ..obs.metrics import Histogram\n")    # downward
    write(tree, "repro/analysis/experiments.py",
          "from ..cluster import run_cluster\n")      # allowed upward
    assert check_layering.check_tree(tree) == []


def test_model_layers_must_not_import_cluster(tree):
    # Only analysis holds the upward exemption; sim/core/exec/runner
    # importing the cluster is still an upward violation.
    write(tree, "repro/cluster/__init__.py")
    write(tree, "repro/runner/scheduler.py",
          "from ..cluster import run_cluster\n")
    write(tree, "repro/exec/cores.py",
          "from ..cluster.balancer import RssBalancer\n")
    violations = check_layering.check_tree(tree)
    assert len(violations) == 2
    assert all("must not import" in v[3] for v in violations)
    assert {v[0] for v in violations} == {"repro.runner.scheduler",
                                          "repro.exec.cores"}


def test_cli_exit_codes(tree, capsys):
    assert check_layering.main(["--src", str(tree)]) == 0
    write(tree, "repro/obs/report.py", "import repro.analysis\n")
    assert check_layering.main(["--src", str(tree)]) == 1
    out = capsys.readouterr().out
    assert "layering check FAILED" in out
