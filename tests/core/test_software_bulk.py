"""Software bulk-prefetch lookups (DPDK rte_hash_lookup_bulk model)."""

import pytest

from repro.core import HaloSystem
from repro.sim import MeshInterconnect, SKYLAKE_SP_16C
from repro.traffic import random_keys


@pytest.fixture(scope="module")
def loaded():
    system = HaloSystem()
    table = system.create_table(1 << 14, name="bulk_test")
    keys = random_keys(10_000, seed=61)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    return system, table, keys


def test_bulk_returns_correct_values(loaded):
    system, table, keys = loaded
    engine = system.software_engine()
    values, cycles = engine.lookup_bulk(table, keys[:100])
    assert values == list(range(100))
    assert cycles > 0


def test_bulk_handles_misses(loaded):
    system, table, keys = loaded
    engine = system.software_engine()
    bogus = random_keys(3, seed=999)
    values, _cycles = engine.lookup_bulk(table,
                                         [keys[0], bogus[0], keys[1]])
    assert values == [0, None, 1]


def test_bulk_faster_than_serial(loaded):
    """Prefetch batching overlaps same-stage misses across the batch."""
    system, table, keys = loaded
    sample = keys[:200]
    serial = system.run_software_lookups(table, sample)
    engine = system.software_engine()
    _values, bulk_cycles = engine.lookup_bulk(table, sample, batch=8)
    assert bulk_cycles / len(sample) < serial.cycles_per_op * 0.7


def test_bulk_batch_of_one_equals_serial_cost(loaded):
    system, table, keys = loaded
    engine_a = system.software_engine()
    engine_b = system.software_engine()
    system.hierarchy.flush_private(0)
    _v, bulk = engine_a.lookup_bulk(table, keys[:40], batch=1)
    system.hierarchy.flush_private(0)
    serial = 0.0
    for key in keys[:40]:
        _value, result = engine_b.lookup(table, key)
        serial += result.cycles
    # Identical cost model; only residual cache-state drift differs.
    assert bulk == pytest.approx(serial, rel=0.25)


def test_bulk_respects_lock_overhead(loaded):
    system, table, keys = loaded
    with_lock = system.software_engine(with_locking=True)
    without_lock = system.software_engine(with_locking=False)
    _v, locked = with_lock.lookup_bulk(table, keys[:64])
    _v, unlocked = without_lock.lookup_bulk(table, keys[:64])
    assert locked > unlocked


def test_bulk_records_per_lookup_cycles_into_stats():
    """Regression: lookup_bulk used to leave ``stats.cycles`` empty, so
    ``mean_cycles_per_lookup`` read 0 after bulk-only workloads."""
    system = HaloSystem()
    table = system.create_table(1 << 12, name="bulk_stats")
    keys = random_keys(500, seed=7)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    engine = system.software_engine()
    _values, cycles = engine.lookup_bulk(table, keys[:120], batch=8)
    assert engine.stats.lookups == 120
    assert engine.stats.cycles.count == 120
    assert engine.stats.cycles.mean * 120 == pytest.approx(cycles, rel=1e-9)
    assert engine.mean_cycles_per_lookup > 0


def test_empty_batch(loaded):
    system, table, _keys = loaded
    engine = system.software_engine()
    values, cycles = engine.lookup_bulk(table, [])
    assert values == [] and cycles == 0.0


def test_mesh_machine_system_works_end_to_end():
    """HALO on the mesh-interconnect machine variant."""
    system = HaloSystem(SKYLAKE_SP_16C.scaled(interconnect="mesh"))
    assert isinstance(system.hierarchy.interconnect, MeshInterconnect)
    table = system.create_table(1024, name="mesh")
    keys = random_keys(500, seed=3)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    episode = system.run_blocking_lookups(table, keys[:30])
    assert [r.value for r in episode.results] == list(range(30))
