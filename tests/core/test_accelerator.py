"""The per-CHA HALO accelerator."""

import pytest

from repro.core import HaloSystem
from repro.core.query import LookupQuery, ResultDestination

from ..conftest import make_keys


@pytest.fixture
def loaded_system():
    system = HaloSystem()
    table = system.create_table(512, name="acc_test")
    keys = make_keys(300, seed=61)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    return system, table, keys


def serve_one(system, accelerator, query):
    process = system.engine.process(accelerator.serve(query))
    system.engine.run()
    return process.result


def test_serve_returns_correct_value(loaded_system):
    system, table, keys = loaded_system
    accelerator = system.accelerators[0]
    query = LookupQuery(table=table, key=keys[5],
                        key_addr=table._key_scratch)
    result = serve_one(system, accelerator, query)
    assert result.found
    assert result.value == 5
    assert result.accelerator_slice == 0


def test_serve_miss(loaded_system):
    system, table, keys = loaded_system
    accelerator = system.accelerators[1]
    query = LookupQuery(table=table, key=make_keys(1, seed=999)[0],
                        key_addr=table._key_scratch)
    result = serve_one(system, accelerator, query)
    assert not result.found
    assert result.value is None


def test_metadata_cache_warms_after_first_query(loaded_system):
    system, table, keys = loaded_system
    accelerator = system.accelerators[2]
    for key in keys[:3]:
        serve_one(system, accelerator,
                  LookupQuery(table=table, key=key,
                              key_addr=table._key_scratch))
    assert accelerator.stats.metadata_misses == 1
    assert accelerator.stats.metadata_hits == 2


def test_flow_register_observes_queries(loaded_system):
    system, table, keys = loaded_system
    accelerator = system.accelerators[3]
    for key in keys[:10]:
        serve_one(system, accelerator,
                  LookupQuery(table=table, key=key,
                              key_addr=table._key_scratch))
    assert accelerator.flow_register.stats.observations == 10
    assert accelerator.flow_register.estimate() > 0


def test_service_time_recorded(loaded_system):
    system, table, keys = loaded_system
    accelerator = system.accelerators[4]
    result = serve_one(system, accelerator,
                       LookupQuery(table=table, key=keys[0],
                                   key_addr=table._key_scratch))
    assert result.service_cycles > 0
    assert accelerator.stats.service.count == 1
    assert accelerator.stats.queries == 1


def test_memory_result_destination_requires_address():
    system = HaloSystem()
    table = system.create_table(32)
    with pytest.raises(ValueError):
        LookupQuery(table=table, key=b"x" * 16, key_addr=0,
                    destination=ResultDestination.MEMORY)


def test_same_table_queries_serialise(loaded_system):
    """Two concurrent queries to one table finish back to back."""
    system, table, keys = loaded_system
    accelerator = system.accelerators[5]
    completions = []

    def submit(key):
        result = yield system.engine.process(accelerator.serve(
            LookupQuery(table=table, key=key,
                        key_addr=table._key_scratch)))
        completions.append(system.engine.now)

    system.engine.process(submit(keys[0]))
    system.engine.process(submit(keys[1]))
    system.engine.run()
    assert len(completions) == 2
    gap = abs(completions[1] - completions[0])
    assert gap >= 15   # roughly one service time apart, not simultaneous


def test_different_table_queries_overlap(loaded_system):
    system, table, keys = loaded_system
    other = system.create_table(512, name="acc_test2")
    other_keys = make_keys(50, seed=62)
    for index, key in enumerate(other_keys):
        other.insert(key, index)
    system.warm_table(other)
    accelerator = system.accelerators[6]
    completions = []

    def submit(use_table, key):
        yield system.engine.process(accelerator.serve(
            LookupQuery(table=use_table, key=key,
                        key_addr=use_table._key_scratch)))
        completions.append(system.engine.now)

    system.engine.process(submit(table, keys[0]))
    system.engine.process(submit(other, other_keys[0]))
    system.engine.run()
    gap = abs(completions[1] - completions[0])
    assert gap <= 10   # overlapped execution across tables


def test_hash_unit_counts(loaded_system):
    system, table, keys = loaded_system
    accelerator = system.accelerators[7]
    for key in keys[:4]:
        serve_one(system, accelerator,
                  LookupQuery(table=table, key=key,
                              key_addr=table._key_scratch))
    assert accelerator.stats.hash_operations == 4
