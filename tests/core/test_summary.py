"""System summary observability."""

from repro.core import HaloSystem
from repro.traffic import random_keys


def test_summary_idle_machine():
    text = HaloSystem().summary()
    assert "16 cores" in text
    assert "accelerators: idle" in text
    assert "mode halo" in text


def test_summary_after_traffic():
    system = HaloSystem()
    table = system.create_table(512)
    keys = random_keys(200, seed=5)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.run_blocking_lookups(table, keys[:25])
    system.run_nonblocking_lookups(table, keys[25:50])
    text = system.summary()
    assert "50 queries" in text
    assert "25 LOOKUP_B" in text
    assert "25 LOOKUP_NB" in text
    assert "SNAPSHOT_READ" in text
    assert "metadata hit" in text
    assert "locks" in text


def test_summary_counts_software_cache_traffic():
    system = HaloSystem()
    table = system.create_table(512)
    keys = random_keys(100, seed=6)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.run_software_lookups(table, keys[:30])
    text = system.summary()
    assert "L1D" in text and "n/a" not in text.splitlines()[1]
