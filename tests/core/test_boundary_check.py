"""§4.7 boundary checks: the accelerator rejects out-of-table accesses."""

import pytest

from repro.core import BoundaryViolation, HaloSystem
from repro.core.query import LookupQuery
from repro.hashtable.cuckoo import LookupPlan

from ..conftest import make_keys


class CorruptedTable:
    """A table whose probe plan points outside its own regions —
    modelling a corrupted bucket pointer / hostile metadata."""

    def __init__(self, real_table, bad_bucket=False, bad_kv=False):
        self._real = real_table
        self._bad_bucket = bad_bucket
        self._bad_kv = bad_kv

    def __getattr__(self, name):
        return getattr(self._real, name)

    def probe(self, key):
        plan = self._real.probe(key)
        evil = LookupPlan(
            key=plan.key,
            primary_hash=plan.primary_hash,
            signature=plan.signature,
            primary_index=plan.primary_index,
            secondary_index=plan.secondary_index,
            primary_addr=(0xDEAD000 if self._bad_bucket
                          else plan.primary_addr),
            secondary_addr=plan.secondary_addr,
            kv_probes_primary=([0xBEEF000] if self._bad_kv
                               else plan.kv_probes_primary),
            kv_probes_secondary=plan.kv_probes_secondary,
            found=plan.found,
            found_in_secondary=plan.found_in_secondary,
            value=plan.value,
            slot=plan.slot,
        )
        return evil


@pytest.fixture
def loaded():
    system = HaloSystem()
    table = system.create_table(256, name="bounds")
    keys = make_keys(100, seed=55)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    return system, table, keys


def _serve(system, table, key):
    accelerator = system.accelerators[0]
    query = LookupQuery(table=table, key=key,
                        key_addr=table._key_scratch)
    process = system.engine.process(accelerator.serve(query))
    system.engine.run()
    if not process.done:
        raise RuntimeError("query did not finish")
    return process.result


def test_legitimate_queries_pass_boundary_check(loaded):
    system, table, keys = loaded
    result = _serve(system, table, keys[0])
    assert result.found
    assert system.accelerators[0].stats.boundary_violations == 0


def test_corrupted_bucket_pointer_rejected(loaded):
    system, table, keys = loaded
    evil = CorruptedTable(table, bad_bucket=True)
    with pytest.raises(BoundaryViolation):
        _serve(system, evil, keys[0])
    assert system.accelerators[0].stats.boundary_violations == 1


def test_corrupted_kv_pointer_rejected(loaded):
    system, table, keys = loaded
    evil = CorruptedTable(table, bad_kv=True)
    with pytest.raises(BoundaryViolation):
        _serve(system, evil, keys[0])


def test_violation_releases_scoreboard_and_locks(loaded):
    """A faulting query must not wedge the accelerator or leak lock bits."""
    system, table, keys = loaded
    evil = CorruptedTable(table, bad_bucket=True)
    with pytest.raises(BoundaryViolation):
        _serve(system, evil, keys[0])
    accelerator = system.accelerators[0]
    assert accelerator.scoreboard.occupancy == 0
    layout = table.layout
    for bucket in range(layout.num_buckets):
        assert not system.hierarchy.line_locked(layout.bucket_addr(bucket))
    # The accelerator keeps serving normal traffic afterwards.
    result = _serve(system, table, keys[1])
    assert result.found and result.value == 1
