"""Linear-counting flow register (paper §4.6)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FlowRegister, estimate_flows


def test_empty_register_estimates_zero():
    register = FlowRegister(32)
    assert register.estimate() == pytest.approx(0.0)


def test_duplicate_observations_do_not_inflate():
    register = FlowRegister(32)
    for _ in range(1000):
        register.observe(0xDEADBEEF)
    assert register.estimate() == pytest.approx(32 * math.log(32 / 31))


def test_estimate_formula():
    register = FlowRegister(8)
    register._array = 0b00001111   # 4 set, 4 unset
    assert register.estimate() == pytest.approx(8 * math.log(2))


def test_accuracy_up_to_twice_the_bits():
    """The paper's headline: ~2x more flows than bits, accurately."""
    rng = np.random.default_rng(42)
    errors = []
    for _ in range(30):
        true_count = 64
        estimate = estimate_flows(
            (int(h) for h in rng.integers(0, 1 << 62, size=true_count)), 32)
        errors.append(abs(estimate - true_count) / true_count)
    assert float(np.mean(errors)) < 0.25


def test_saturation_reports_lower_bound():
    register = FlowRegister(8)
    for value in range(200):
        register.observe(value * 0x9E3779B9)
    assert register.is_saturated()
    estimate = register.estimate()
    assert estimate >= 8 * math.log(8) * 0.99
    assert register.stats.saturations >= 1


def test_scan_and_reset_clears_state():
    register = FlowRegister(32)
    for value in range(10):
        register.observe(value * 977)
    first = register.scan_and_reset()
    assert first > 0
    assert register.estimate() == pytest.approx(0.0)
    assert register.last_estimate == pytest.approx(first)
    assert register.stats.scans == 1


def test_minimum_size_enforced():
    with pytest.raises(ValueError):
        FlowRegister(1)


def test_observation_counting():
    register = FlowRegister(16)
    for value in range(5):
        register.observe(value)
    assert register.stats.observations == 5


@settings(max_examples=100, deadline=None)
@given(st.sets(st.integers(0, 1 << 60), min_size=0, max_size=40),
       st.sampled_from([16, 32, 64, 128]))
def test_estimate_bounded_and_monotone_in_bits_set(hashes, bits):
    register = FlowRegister(bits)
    previous = 0.0
    for value in hashes:
        register.observe(value)
        estimate = register.estimate()
        assert estimate >= 0.0
        assert estimate >= previous - 1e-9   # set bits only accumulate
        previous = estimate


@settings(max_examples=100, deadline=None)
@given(st.sets(st.integers(0, 1 << 60), min_size=1, max_size=24))
def test_estimate_never_exceeds_saturation_bound(hashes):
    register = FlowRegister(32)
    for value in hashes:
        register.observe(value)
    assert register.estimate() <= 32 * math.log(32) + 1e-9


def test_saturated_scan_then_reset_recovers():
    """After a saturated window the next window estimates fresh (§4.6)."""
    from repro.core.flow_register import SaturatedEstimate

    register = FlowRegister(8)
    for value in range(100):
        register.observe(value * 0x9E3779B9)
    assert register.is_saturated()
    value = register.scan_and_reset()
    assert isinstance(value, SaturatedEstimate)
    assert not register.is_saturated()
    assert register.estimate() == pytest.approx(0.0)
    register.observe(1)
    assert register.estimate() == pytest.approx(8 * math.log(8 / 7))


def test_saturation_counter_counts_each_saturated_estimate():
    register = FlowRegister(8)
    for value in range(100):
        register.observe(value * 0x9E3779B9)
    before = register.stats.saturations
    register.estimate()
    register.estimate()
    assert register.stats.saturations == before + 2


def test_stats_as_dict_flat_view():
    register = FlowRegister(16)
    for value in range(6):
        register.observe(value * 977)
    register.scan_and_reset()
    assert register.stats.as_dict() == {
        "observations": 6, "scans": 1, "saturations": 0}
