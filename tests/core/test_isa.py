"""The LOOKUP_B / LOOKUP_NB / SNAPSHOT_READ instruction models."""

import pytest

from repro.core import HaloSystem, RESULTS_PER_LINE

from ..conftest import make_keys


@pytest.fixture
def loaded():
    system = HaloSystem()
    table = system.create_table(512, name="isa_test")
    keys = make_keys(200, seed=81)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    return system, table, keys


def test_lookup_b_returns_result(loaded):
    system, table, keys = loaded

    def program():
        result = yield from system.isa.lookup_b(0, table, keys[7])
        return result

    result = system.engine.run_process(program())
    assert result.found and result.value == 7
    assert system.isa.stats.lookup_b == 1


def test_lookup_b_blocks_for_full_latency(loaded):
    system, table, keys = loaded

    def program():
        yield from system.isa.lookup_b(0, table, keys[0])
        return system.engine.now

    finish = system.engine.run_process(program())
    assert finish >= 30   # dispatch + service + return, not instantaneous


def test_lookup_nb_returns_quickly(loaded):
    system, table, keys = loaded
    issue_times = []

    def program():
        start = system.engine.now
        process = yield from system.isa.lookup_nb(0, table, keys[0])
        issue_times.append(system.engine.now - start)
        result = yield process
        return result

    result = system.engine.run_process(program())
    assert result.found
    assert issue_times[0] <= 2   # store-like issue cost only


def test_snapshot_poll_collects_batch(loaded):
    system, table, keys = loaded

    def program():
        pending = []
        for key in keys[:5]:
            process = yield from system.isa.lookup_nb(0, table, key)
            pending.append(process)
        results = yield from system.isa.snapshot_read_poll(0, pending)
        return results

    results = system.engine.run_process(program())
    assert [r.value for r in results] == [0, 1, 2, 3, 4]
    assert system.isa.stats.snapshot_reads >= 1


def test_lookup_batch_preserves_order(loaded):
    system, table, keys = loaded
    sample = keys[:RESULTS_PER_LINE * 2 + 3]

    def program():
        results = yield from system.isa.lookup_batch(0, table, sample)
        return results

    results = system.engine.run_process(program())
    assert len(results) == len(sample)
    assert [r.value for r in results] == list(range(len(sample)))


def test_lookup_batch_handles_misses(loaded):
    system, table, keys = loaded
    bogus = make_keys(3, seed=999)

    def program():
        results = yield from system.isa.lookup_batch(
            0, table, [keys[0], bogus[0], keys[1]])
        return results

    results = system.engine.run_process(program())
    assert results[0].found and results[2].found
    assert not results[1].found


def test_result_slots_line_aligned(loaded):
    system, _table, _keys = loaded
    line = system.isa.result_line()
    assert line % 64 == 0


def test_nb_stats_counted(loaded):
    system, table, keys = loaded

    def program():
        yield from system.isa.lookup_batch(0, table, keys[:4])

    system.engine.run_process(program())
    assert system.isa.stats.lookup_nb == 4
