"""Accelerator scoreboard and busy bit."""

from repro.core import Scoreboard
from repro.sim import Engine


def test_admits_up_to_capacity():
    engine = Engine()
    scoreboard = Scoreboard(engine, entries=3)
    granted = []
    for index in range(3):
        event = scoreboard.admit()
        assert event.triggered
        granted.append(event)
    assert scoreboard.busy
    assert scoreboard.occupancy == 3


def test_busy_bit_clears_on_completion():
    engine = Engine()
    scoreboard = Scoreboard(engine, entries=1)
    scoreboard.admit()
    assert scoreboard.busy
    scoreboard.complete()
    assert not scoreboard.busy


def test_waiters_granted_in_order():
    engine = Engine()
    scoreboard = Scoreboard(engine, entries=1)
    order = []

    def worker(tag, hold):
        yield scoreboard.admit()
        order.append(tag)
        yield engine.timeout(hold)
        scoreboard.complete()

    for tag in range(3):
        engine.process(worker(tag, 5))
    engine.run()
    assert order == [0, 1, 2]
    assert scoreboard.stats.completed == 3


def test_busy_rejections_counted():
    engine = Engine()
    scoreboard = Scoreboard(engine, entries=1)

    def worker():
        yield scoreboard.admit()
        yield engine.timeout(2)
        scoreboard.complete()

    for _ in range(4):
        engine.process(worker())
    engine.run()
    assert scoreboard.stats.busy_rejections >= 2
    assert scoreboard.stats.admitted == 4


def test_paper_depth_of_ten():
    engine = Engine()
    scoreboard = Scoreboard(engine, entries=10)
    for _ in range(10):
        scoreboard.admit()
    assert scoreboard.busy
