"""Top-level HaloSystem episodes."""

import pytest

from repro.core import ComputeMode, HaloSystem

from ..conftest import make_keys


@pytest.fixture
def loaded():
    system = HaloSystem()
    table = system.create_table(4096, name="sys_test")
    keys = make_keys(2500, seed=91)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    return system, table, keys


def test_blocking_episode_correct_and_timed(loaded):
    system, table, keys = loaded
    episode = system.run_blocking_lookups(table, keys[:50])
    assert episode.operations == 50
    assert all(result.found for result in episode.results)
    assert [result.value for result in episode.results] == list(range(50))
    assert episode.cycles_per_op > 0
    assert episode.throughput_mops() > 0


def test_nonblocking_episode_correct(loaded):
    system, table, keys = loaded
    episode = system.run_nonblocking_lookups(table, keys[:40])
    assert [result.value for result in episode.results] == list(range(40))


def test_software_episode_correct(loaded):
    system, table, keys = loaded
    episode = system.run_software_lookups(table, keys[:40])
    assert episode.results == list(range(40))


def test_halo_beats_software_on_llc_table(loaded):
    """The Figure 9 headline at an LLC-resident size."""
    system, table, keys = loaded
    sample = keys[:120]
    software = system.run_software_lookups(table, sample)
    blocking = system.run_blocking_lookups(table, sample)
    speedup = software.cycles_per_op / blocking.cycles_per_op
    assert speedup > 1.5


def test_all_three_modes_agree_on_values(loaded):
    system, table, keys = loaded
    sample = keys[40:80]
    software = system.run_software_lookups(table, sample)
    blocking = system.run_blocking_lookups(table, sample)
    nonblocking = system.run_nonblocking_lookups(table, sample)
    assert (software.results
            == [r.value for r in blocking.results]
            == [r.value for r in nonblocking.results])


def test_run_programs_concurrent_cores(loaded):
    system, table, keys = loaded

    def worker(core_id, sample):
        results = []
        for key in sample:
            result = yield from system.isa.lookup_b(core_id, table, key)
            results.append(result.value)
        return results

    episode = system.run_programs([worker(core, keys[core * 10:(core + 1) * 10])
                                   for core in range(4)])
    assert episode.operations == 40
    assert sorted(episode.results) == list(range(40))


def test_adaptive_mode_switches_to_software_for_few_flows():
    system = HaloSystem()
    table = system.create_table(64, name="adaptive")
    keys = make_keys(8, seed=92)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    stream = [keys[i % len(keys)] for i in range(1024)]
    assert system.hybrid.mode is ComputeMode.HALO
    system.run_adaptive_lookups(table, stream, window=256)
    assert system.hybrid.mode is ComputeMode.SOFTWARE


def test_adaptive_mode_stays_halo_for_many_flows(loaded):
    system, table, keys = loaded
    system.run_adaptive_lookups(table, keys[:1024], window=256)
    assert system.hybrid.mode is ComputeMode.HALO


def test_flush_table_forces_dram(loaded):
    system, table, keys = loaded
    warm = system.run_blocking_lookups(table, keys[:30])
    system.flush_table(table)
    cold = system.run_blocking_lookups(table, keys[30:60])
    assert cold.cycles_per_op > warm.cycles_per_op * 1.5


def test_create_table_uses_system_allocator(loaded):
    system, table, _keys = loaded
    region = system.hierarchy.allocator.region_of(table.layout.buckets.base)
    assert region is not None
