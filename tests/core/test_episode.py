"""Episode bookkeeping and run_program semantics."""

import pytest

from repro.core import HaloSystem
from repro.core.halo_system import Episode


def test_episode_metrics():
    episode = Episode(operations=100, cycles=21_000.0)
    assert episode.cycles_per_op == pytest.approx(210.0)
    # 100 ops in 21000 cycles at 2.1 GHz = 10 Mops.
    assert episode.throughput_mops(2.1) == pytest.approx(10.0)


def test_empty_episode():
    episode = Episode(operations=0, cycles=0.0)
    assert episode.cycles_per_op == 0.0
    assert episode.throughput_mops() == 0.0


def test_run_program_scalar_result(system):
    def program():
        yield system.engine.timeout(10)
        return "value"

    episode = system.run_program(program())
    assert episode.operations == 1
    assert episode.results == ["value"]
    assert episode.cycles == 10


def test_run_program_list_result(system):
    def program():
        yield system.engine.timeout(5)
        return [1, 2, 3]

    episode = system.run_program(program())
    assert episode.operations == 3
    assert episode.results == [1, 2, 3]


def test_run_programs_measures_overlap(system):
    def worker(delay):
        yield system.engine.timeout(delay)
        return [delay]

    episode = system.run_programs([worker(50), worker(80), worker(30)])
    assert episode.operations == 3
    assert episode.cycles == 80            # parallel: max, not sum
    assert sorted(episode.results) == [30, 50, 80]


def test_engine_time_is_monotonic_across_episodes(system):
    def program():
        yield system.engine.timeout(7)
        return "x"

    system.run_program(program())
    first_end = system.engine.now
    system.run_program(program())
    assert system.engine.now == first_end + 7
