"""Per-accelerator metadata cache (paper §4.3)."""

import pytest

from repro.core import MetadataCache
from repro.sim.coherence import SnoopFilter


def make_cache(capacity=10, snoop=None):
    return MetadataCache(slice_id=2, capacity_tables=capacity,
                         snoop_filter=snoop)


def test_miss_then_hit():
    cache = make_cache()
    assert not cache.lookup(100)
    cache.fill(100)
    assert cache.lookup(100)
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_lru_eviction_at_capacity():
    cache = make_cache(capacity=3)
    for line in (1, 2, 3):
        cache.fill(line)
    cache.lookup(1)              # refresh
    victim = cache.fill(4)
    assert victim == 2           # LRU among {2, 3}
    assert 1 in cache and 4 in cache
    assert len(cache) == 3


def test_paper_capacity_ten_tables():
    cache = make_cache(capacity=10)
    for line in range(12):
        cache.fill(line)
    assert len(cache) == 10


def test_snoop_invalidation():
    cache = make_cache()
    cache.fill(50)
    assert cache.snoop_invalidate(50)
    assert 50 not in cache
    assert not cache.snoop_invalidate(50)
    assert cache.stats.coherence_invalidations == 1


def test_cv_bit_tracking():
    snoop = SnoopFilter(cores=4, slices=4)
    cache = make_cache(capacity=2, snoop=snoop)
    cache.fill(7)
    assert snoop.metadata_holder(7) == 2
    cache.fill(8)
    cache.fill(9)   # evicts 7
    assert snoop.metadata_holder(7) == -1
    assert snoop.metadata_holder(9) == 2


def test_writer_rfo_invalidates_metadata_copy():
    """A core's read-for-ownership snoops into the metadata cache."""
    snoop = SnoopFilter(cores=4, slices=4)
    cache = make_cache(snoop=snoop)
    cache.fill(30)
    outcome = snoop.invalidate_for_store(30, writer_core=0)
    assert outcome["metadata_snoop"]
    # The CHA-side cache must drop its copy on the snoop.
    cache.snoop_invalidate(30)
    assert 30 not in cache


def test_capacity_validation():
    with pytest.raises(ValueError):
        make_cache(capacity=0)
