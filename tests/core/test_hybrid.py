"""Hybrid software/hardware mode controller (paper §4.6)."""

import pytest

from repro.core import ComputeMode, FlowRegister, HybridController


def controller(threshold=64, mode=ComputeMode.HALO, registers=1,
               hysteresis=0.25):
    return HybridController([FlowRegister(32) for _ in range(registers)],
                            threshold=threshold, hysteresis=hysteresis,
                            initial_mode=mode)


def feed(register, count, base=0):
    from repro.hashtable import mix64
    for value in range(count):
        register.observe(mix64(base + value))


def test_switches_to_software_below_threshold():
    ctl = controller()
    feed(ctl.registers[0], 10)
    assert ctl.end_window() is ComputeMode.SOFTWARE
    assert ctl.stats.switches_to_software == 1


def test_stays_halo_above_threshold():
    ctl = controller(registers=4)
    for index, register in enumerate(ctl.registers):
        feed(register, 40, base=index * 1000)
    assert ctl.end_window() is ComputeMode.HALO


def test_switches_back_to_halo():
    ctl = controller(mode=ComputeMode.SOFTWARE)
    from repro.hashtable import mix64
    for value in range(300):
        ctl.observe_software_lookup(mix64(value))
    assert ctl.end_window() is ComputeMode.HALO
    assert ctl.stats.switches_to_halo == 1


def test_hysteresis_prevents_flapping():
    """An estimate inside the hysteresis band keeps the current mode."""
    ctl = controller(threshold=20, hysteresis=0.5)
    feed(ctl.registers[0], 14)   # below 20 but above 20*0.5=10
    assert ctl.end_window() is ComputeMode.HALO

    ctl2 = controller(threshold=20, hysteresis=0.5,
                      mode=ComputeMode.SOFTWARE)
    from repro.hashtable import mix64
    for value in range(24):      # above 20 but below 20*1.5=30
        ctl2.observe_software_lookup(mix64(value))
    assert ctl2.end_window() is ComputeMode.SOFTWARE


def test_windows_reset_registers():
    ctl = controller()
    feed(ctl.registers[0], 100)
    ctl.end_window()
    # Fresh window with no traffic: estimate ~0, stays/goes software.
    assert ctl.end_window() is ComputeMode.SOFTWARE
    assert ctl.stats.windows == 2


def test_requires_registers():
    with pytest.raises(ValueError):
        HybridController([])


def test_last_estimate_recorded():
    ctl = controller()
    feed(ctl.registers[0], 20)
    ctl.end_window()
    assert ctl.last_estimate > 0
