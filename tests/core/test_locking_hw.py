"""Hardware-assisted lock bits (paper §4.4)."""

from repro.core import HardwareLockManager
from repro.sim import MemoryHierarchy


def test_lease_locks_and_releases(hierarchy):
    manager = HardwareLockManager(hierarchy)
    addr = 0x40000
    hierarchy.warm_llc(addr, 128)
    lease = manager.lock_lines([addr, addr + 64])
    assert hierarchy.line_locked(addr)
    assert hierarchy.line_locked(addr + 64)
    lease.release_all()
    assert not hierarchy.line_locked(addr)
    assert not hierarchy.line_locked(addr + 64)


def test_lease_context_manager(hierarchy):
    manager = HardwareLockManager(hierarchy)
    addr = 0x41000
    hierarchy.warm_llc(addr, 64)
    with manager.lock_lines([addr]):
        assert hierarchy.line_locked(addr)
    assert not hierarchy.line_locked(addr)


def test_disabled_manager_locks_nothing(hierarchy):
    manager = HardwareLockManager(hierarchy, enabled=False)
    addr = 0x42000
    hierarchy.warm_llc(addr, 64)
    lease = manager.lock_lines([addr])
    assert not hierarchy.line_locked(addr)
    lease.release_all()


def test_absent_line_not_locked(hierarchy):
    manager = HardwareLockManager(hierarchy)
    lease = manager.lock_lines([0x43000])   # never brought into LLC
    assert not hierarchy.line_locked(0x43000)
    assert lease.lines == []
    lease.release_all()


def test_locked_line_rejects_store_invalidation(hierarchy):
    """The §4.4 scenario: a concurrent writer gets a snoop miss + retry."""
    manager = HardwareLockManager(hierarchy)
    addr = 0x44000
    hierarchy.warm_llc(addr, 64)
    with manager.lock_lines([addr]):
        result = hierarchy.core_access(0, addr, write=True)
        assert result.lock_retries >= 1
    unlocked = hierarchy.core_access(0, addr, write=True)
    assert unlocked.lock_retries == 0


def test_stats_count_operations(hierarchy):
    manager = HardwareLockManager(hierarchy)
    addr = 0x45000
    hierarchy.warm_llc(addr, 64)
    lease = manager.lock_lines([addr])
    lease.release_all()
    assert manager.stats.lock_operations == 1
    assert manager.stats.unlock_operations == 1


def test_release_order_matches_lock_order(hierarchy):
    """A lease releases its lines in acquisition order (FIFO, not LIFO)."""
    released = []
    original = hierarchy.unlock_line

    def tracking_unlock(addr):
        released.append(addr)
        return original(addr)

    manager = HardwareLockManager(hierarchy)
    addrs = [0x46000, 0x46040, 0x46080]
    hierarchy.warm_llc(addrs[0], 192)
    lease = manager.lock_lines(addrs)
    assert lease.lines == addrs
    hierarchy.unlock_line = tracking_unlock
    try:
        lease.release_all()
    finally:
        hierarchy.unlock_line = original
    assert released == addrs
    assert lease.lines == []


def test_release_all_is_idempotent(hierarchy):
    manager = HardwareLockManager(hierarchy)
    addr = 0x47000
    hierarchy.warm_llc(addr, 64)
    lease = manager.lock_lines([addr])
    lease.release_all()
    lease.release_all()
    assert manager.stats.unlock_operations == 1
    assert manager.stats.as_dict()["held"] == 0


def test_relock_after_release(hierarchy):
    """Contention sequencing: a released line is immediately lockable."""
    manager = HardwareLockManager(hierarchy)
    addr = 0x48000
    hierarchy.warm_llc(addr, 64)
    first = manager.lock_lines([addr])
    first.release_all()
    second = manager.lock_lines([addr])
    assert hierarchy.line_locked(addr)
    second.release_all()
    assert not hierarchy.line_locked(addr)
    assert manager.stats.lock_operations == 2
    assert manager.stats.unlock_operations == 2


def test_contending_store_pays_retry_cycles():
    """While locked, a store is strictly slower: the §4.4 retry penalty."""
    from repro.sim import MemoryHierarchy, SKYLAKE_SP_16C

    def store_latency(locked):
        hierarchy = MemoryHierarchy(SKYLAKE_SP_16C)
        manager = HardwareLockManager(hierarchy)
        addr = 0x49000
        hierarchy.warm_llc(addr, 64)
        lease = (manager.lock_lines([addr]) if locked
                 else manager.lease())
        result = hierarchy.core_access(0, addr, write=True)
        lease.release_all()
        return result

    contended = store_latency(locked=True)
    clean = store_latency(locked=False)
    assert contended.lock_retries >= 1
    assert clean.lock_retries == 0
    assert contended.latency > clean.latency


def test_rejected_invalidation_counter():
    from repro.sim import MemoryHierarchy, SKYLAKE_SP_16C

    hierarchy = MemoryHierarchy(SKYLAKE_SP_16C)
    manager = HardwareLockManager(hierarchy)
    manager.note_rejected_invalidation()
    manager.note_rejected_invalidation()
    assert manager.stats.rejected_invalidations == 2
    assert manager.stats.as_dict()["rejected_invalidations"] == 2


def test_stats_exported_through_registry(hierarchy):
    manager = HardwareLockManager(hierarchy)
    addr = 0x4A000
    hierarchy.warm_llc(addr, 64)
    lease = manager.lock_lines([addr])
    snapshot = hierarchy.obs.metrics.snapshot()
    assert snapshot["halo.locks.lock_operations"] == 1
    assert snapshot["halo.locks.held"] == 1
    lease.release_all()
    snapshot = hierarchy.obs.metrics.snapshot()
    assert snapshot["halo.locks.held"] == 0


def test_query_cannot_leak_locks(system):
    """After any HALO episode, no lock bits remain set (no stuck lines)."""
    from ..conftest import make_keys
    table = system.create_table(256)
    keys = make_keys(100, seed=51)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.run_blocking_lookups(table, keys[:20])
    system.run_nonblocking_lookups(table, keys[20:40])
    layout = table.layout
    for bucket in range(layout.num_buckets):
        assert not system.hierarchy.line_locked(layout.bucket_addr(bucket))
