"""Hardware-assisted lock bits (paper §4.4)."""

from repro.core import HardwareLockManager
from repro.sim import MemoryHierarchy


def test_lease_locks_and_releases(hierarchy):
    manager = HardwareLockManager(hierarchy)
    addr = 0x40000
    hierarchy.warm_llc(addr, 128)
    lease = manager.lock_lines([addr, addr + 64])
    assert hierarchy.line_locked(addr)
    assert hierarchy.line_locked(addr + 64)
    lease.release_all()
    assert not hierarchy.line_locked(addr)
    assert not hierarchy.line_locked(addr + 64)


def test_lease_context_manager(hierarchy):
    manager = HardwareLockManager(hierarchy)
    addr = 0x41000
    hierarchy.warm_llc(addr, 64)
    with manager.lock_lines([addr]):
        assert hierarchy.line_locked(addr)
    assert not hierarchy.line_locked(addr)


def test_disabled_manager_locks_nothing(hierarchy):
    manager = HardwareLockManager(hierarchy, enabled=False)
    addr = 0x42000
    hierarchy.warm_llc(addr, 64)
    lease = manager.lock_lines([addr])
    assert not hierarchy.line_locked(addr)
    lease.release_all()


def test_absent_line_not_locked(hierarchy):
    manager = HardwareLockManager(hierarchy)
    lease = manager.lock_lines([0x43000])   # never brought into LLC
    assert not hierarchy.line_locked(0x43000)
    assert lease.lines == []
    lease.release_all()


def test_locked_line_rejects_store_invalidation(hierarchy):
    """The §4.4 scenario: a concurrent writer gets a snoop miss + retry."""
    manager = HardwareLockManager(hierarchy)
    addr = 0x44000
    hierarchy.warm_llc(addr, 64)
    with manager.lock_lines([addr]):
        result = hierarchy.core_access(0, addr, write=True)
        assert result.lock_retries >= 1
    unlocked = hierarchy.core_access(0, addr, write=True)
    assert unlocked.lock_retries == 0


def test_stats_count_operations(hierarchy):
    manager = HardwareLockManager(hierarchy)
    addr = 0x45000
    hierarchy.warm_llc(addr, 64)
    lease = manager.lock_lines([addr])
    lease.release_all()
    assert manager.stats.lock_operations == 1
    assert manager.stats.unlock_operations == 1


def test_query_cannot_leak_locks(system):
    """After any HALO episode, no lock bits remain set (no stuck lines)."""
    from ..conftest import make_keys
    table = system.create_table(256)
    keys = make_keys(100, seed=51)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.run_blocking_lookups(table, keys[:20])
    system.run_nonblocking_lookups(table, keys[20:40])
    layout = table.layout
    for bucket in range(layout.num_buckets):
        assert not system.hierarchy.line_locked(layout.bucket_addr(bucket))
