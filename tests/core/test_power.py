"""HALO and TCAM power/area models (Table 4)."""

import pytest

from repro.core import (
    HALO_AREA_TILES,
    HALO_DYNAMIC_NANOJOULE_PER_QUERY,
    HALO_STATIC_MILLIWATTS,
    energy_efficiency_ratio,
    halo_envelope,
)
from repro.tcam import (
    TCAM_TABLE4,
    capacity_for_rules,
    halo_vs_tcam_efficiency,
    sram_tcam_envelope,
    tcam_envelope,
)

KB = 1024


def test_halo_envelope_paper_numbers():
    env = halo_envelope(1)
    assert env.static_milliwatts == HALO_STATIC_MILLIWATTS == 97.2
    assert env.dynamic_nanojoule_per_query == 1.76
    assert env.area_tiles == HALO_AREA_TILES == 0.012


def test_halo_scales_linearly_with_accelerators():
    env = halo_envelope(16)
    assert env.static_milliwatts == pytest.approx(16 * 97.2)
    assert env.area_tiles == pytest.approx(16 * 0.012)
    assert env.dynamic_nanojoule_per_query == 1.76   # per query, not per unit


def test_tcam_table4_anchor_points_exact():
    for capacity, (area, static, dynamic) in TCAM_TABLE4.items():
        env = tcam_envelope(capacity)
        assert env.area_tiles == area
        assert env.static_milliwatts == static
        assert env.dynamic_nanojoule_per_query == dynamic


def test_tcam_interpolation_monotone():
    values = [tcam_envelope(c).static_milliwatts
              for c in (1 * KB, 4 * KB, 10 * KB, 40 * KB, 100 * KB,
                        400 * KB, 1024 * KB)]
    assert values == sorted(values)


def test_tcam_extrapolation_beyond_1mb():
    env = tcam_envelope(2048 * KB)
    assert env.static_milliwatts > tcam_envelope(1024 * KB).static_milliwatts


def test_sram_tcam_savings():
    tcam = tcam_envelope(100 * KB)
    sram = sram_tcam_envelope(100 * KB)
    assert sram.static_milliwatts == pytest.approx(tcam.static_milliwatts
                                                   * 0.55)
    assert sram.area_tiles == pytest.approx(tcam.area_tiles * 0.43)


def test_headline_48x_efficiency():
    assert halo_vs_tcam_efficiency(1024 * KB) == pytest.approx(48.2, abs=0.1)


def test_efficiency_grows_at_lower_query_rates():
    """TCAM's static power makes it even worse at finite rates."""
    saturated = halo_vs_tcam_efficiency(1024 * KB)
    moderate = halo_vs_tcam_efficiency(1024 * KB, queries_per_second=10e6)
    assert moderate > saturated


def test_energy_accounting():
    env = halo_envelope(1)
    energy = env.energy_nanojoules(queries=1000, seconds=1e-3)
    static_nj = 97.2e-3 * 1e-3 * 1e9
    assert energy == pytest.approx(static_nj + 1760.0)
    assert env.energy_per_query_nj(0) == float("inf")


def test_capacity_for_rules_matches_paper_density():
    # "1MB TCAM ... about 100K 5-tuple rules" (§6.4).
    assert capacity_for_rules(100_000) == pytest.approx(1024 * KB, rel=0.01)


def test_efficiency_ratio_helper():
    halo = halo_envelope(1)
    tcam = tcam_envelope(1024 * KB)
    ratio = energy_efficiency_ratio(halo, tcam, float("inf"))
    assert ratio == pytest.approx(48.2, abs=0.1)
