"""Query distributor (paper §4.3)."""

from repro.core import HaloSystem
from repro.core.query import LookupQuery

from ..conftest import make_keys


def build(num_tables=8, entries=128):
    system = HaloSystem()
    tables = []
    for index in range(num_tables):
        table = system.create_table(entries, name=f"dist{index}")
        keys = make_keys(64, seed=70 + index)
        for position, key in enumerate(keys):
            table.insert(key, position)
        system.warm_table(table)
        tables.append((table, keys))
    return system, tables


def test_target_slice_is_stable_per_table():
    system, tables = build(num_tables=1)
    table, keys = tables[0]
    query_a = LookupQuery(table=table, key=keys[0],
                          key_addr=table._key_scratch)
    query_b = LookupQuery(table=table, key=keys[1],
                          key_addr=table._key_scratch)
    assert (system.distributor.target_slice(query_a)
            == system.distributor.target_slice(query_b))


def test_tables_spread_across_accelerators():
    system, tables = build(num_tables=16)
    slices = {system.distributor.target_slice(
        LookupQuery(table=table, key=keys[0],
                    key_addr=table._key_scratch))
        for table, keys in tables}
    assert len(slices) >= 6


def test_dispatch_returns_completed_result():
    system, tables = build(num_tables=1)
    table, keys = tables[0]
    query = LookupQuery(table=table, key=keys[3],
                        key_addr=table._key_scratch)
    process = system.distributor.dispatch(query)
    system.engine.run()
    assert process.done
    assert process.result.found
    assert process.result.value == 3


def test_dispatch_stamps_issue_time():
    system, tables = build(num_tables=1)
    table, keys = tables[0]
    system.engine.run_process(_advance(system, 100))
    query = LookupQuery(table=table, key=keys[0],
                        key_addr=table._key_scratch)
    system.distributor.dispatch(query)
    assert query.issued_at == 100
    system.engine.run()


def _advance(system, cycles):
    yield system.engine.timeout(cycles)


def test_per_slice_dispatch_accounting():
    system, tables = build(num_tables=4)
    for table, keys in tables:
        for key in keys[:3]:
            system.distributor.dispatch(
                LookupQuery(table=table, key=key,
                            key_addr=table._key_scratch))
    system.engine.run()
    stats = system.distributor.stats
    assert stats.dispatched == 12
    assert sum(stats.per_slice.values()) == 12


def test_busy_bit_raised_under_load():
    system, tables = build(num_tables=1)
    table, keys = tables[0]
    depth = system.machine.halo.scoreboard_entries
    for key in (keys * 3)[: depth + 5]:
        system.distributor.dispatch(
            LookupQuery(table=table, key=key,
                        key_addr=table._key_scratch))
    system.engine.run()
    slice_id = system.distributor.target_slice(
        LookupQuery(table=table, key=keys[0],
                    key_addr=table._key_scratch))
    scoreboard = system.accelerators[slice_id].scoreboard
    assert scoreboard.stats.busy_rejections >= 1     # busy bit was raised
    assert scoreboard.stats.peak_occupancy <= depth  # never oversubscribed
    assert scoreboard.stats.completed == depth + 5
