"""Phase scripting: duty-cycle windows gate activity, diurnal curves
stay within their [low, high] band."""

import math

import pytest

from repro.workloads import DiurnalCurve, PhaseWindow


class TestPhaseWindow:
    def test_always_active_by_default(self):
        window = PhaseWindow()
        assert window.active(0.0)
        assert window.active(1e9)

    def test_bounded_window(self):
        window = PhaseWindow(start=10.0, end=20.0)
        assert not window.active(9.9)
        assert window.active(10.0)
        assert window.active(19.9)
        assert not window.active(20.0)

    def test_duty_cycle_bursts(self):
        # Active for the first quarter of each 100-tick period.
        window = PhaseWindow(start=0.0, period=100.0, duty=0.25)
        assert window.active(0.0)
        assert window.active(24.9)
        assert not window.active(25.0)
        assert not window.active(99.0)
        assert window.active(100.0)     # next period's burst
        assert window.active(124.0)
        assert not window.active(125.0)

    def test_duty_cycle_anchored_at_start(self):
        window = PhaseWindow(start=200.0, period=400.0, duty=0.25)
        assert not window.active(199.0)     # before the window opens
        assert window.active(200.0)
        assert window.active(299.0)
        assert not window.active(300.0)     # past 25% of the period
        assert window.active(600.0)         # next wave

    def test_full_duty_ignores_period(self):
        window = PhaseWindow(period=100.0, duty=1.0)
        assert all(window.active(t) for t in range(0, 300, 7))

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseWindow(start=10.0, end=5.0)
        with pytest.raises(ValueError):
            PhaseWindow(period=-1.0)
        with pytest.raises(ValueError):
            PhaseWindow(duty=1.5)
        with pytest.raises(ValueError):
            PhaseWindow(duty=-0.1)


class TestDiurnalCurve:
    def test_starts_at_trough(self):
        curve = DiurnalCurve(period=1000.0, low=0.5, high=1.5)
        assert curve.multiplier(0.0) == pytest.approx(0.5)

    def test_peak_at_half_period(self):
        curve = DiurnalCurve(period=1000.0, low=0.5, high=1.5)
        assert curve.multiplier(500.0) == pytest.approx(1.5)

    def test_bounded_everywhere(self):
        curve = DiurnalCurve(period=777.0, low=0.25, high=2.0)
        values = [curve.multiplier(t * 13.7) for t in range(500)]
        assert min(values) >= 0.25 - 1e-12
        assert max(values) <= 2.0 + 1e-12

    def test_periodic(self):
        curve = DiurnalCurve(period=500.0)
        for t in (0.0, 123.0, 250.0, 499.0):
            assert curve.multiplier(t) == pytest.approx(
                curve.multiplier(t + 500.0))

    def test_phase_shift_moves_trough(self):
        shifted = DiurnalCurve(period=1000.0, low=0.5, high=1.5, phase=0.5)
        assert shifted.multiplier(0.0) == pytest.approx(1.5)
        assert shifted.multiplier(500.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalCurve(period=0.0)
        with pytest.raises(ValueError):
            DiurnalCurve(period=100.0, low=-0.1)
        with pytest.raises(ValueError):
            DiurnalCurve(period=100.0, low=1.0, high=0.5)

    def test_flat_curve_allowed(self):
        flat = DiurnalCurve(period=100.0, low=1.0, high=1.0)
        assert flat.multiplier(37.0) == pytest.approx(1.0)
        assert not math.isnan(flat.multiplier(0.0))
