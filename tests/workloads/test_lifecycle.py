"""Lifecycle samplers: determinism, distribution shape, and the cached
Zipf CDF staying correct as the population drifts."""

import random

import pytest

from repro.workloads import (MmppArrivals, ParetoSizes, PoissonArrivals,
                             ZipfSelector, fork_rng, harmonic_weights)


class TestForkRng:
    def test_deterministic(self):
        assert (fork_rng(7, "sizes").random()
                == fork_rng(7, "sizes").random())

    def test_tags_give_independent_streams(self):
        assert (fork_rng(7, "sizes").random()
                != fork_rng(7, "arrivals").random())

    def test_seeds_give_independent_streams(self):
        assert fork_rng(7, "x").random() != fork_rng(8, "x").random()


class TestPoissonArrivals:
    def test_mean_tracks_rate(self):
        arrivals = PoissonArrivals(2.0, random.Random(1))
        counts = [arrivals.count() for _ in range(5000)]
        assert sum(counts) / len(counts) == pytest.approx(2.0, rel=0.1)

    def test_multiplier_scales_mean(self):
        arrivals = PoissonArrivals(2.0, random.Random(1))
        scaled = [arrivals.count(2.0) for _ in range(5000)]
        assert sum(scaled) / len(scaled) == pytest.approx(4.0, rel=0.1)

    def test_zero_rate_never_arrives(self):
        arrivals = PoissonArrivals(0.0, random.Random(1))
        assert all(arrivals.count() == 0 for _ in range(100))

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(-1.0, random.Random(1))


class TestMmppArrivals:
    def test_states_alternate_and_rates_differ(self):
        mmpp = MmppArrivals(0.5, 8.0, 50.0, 50.0, random.Random(3))
        by_state = {0: [], 1: []}
        for _ in range(20_000):
            count = mmpp.count()
            by_state[mmpp.state].append(count)
        assert by_state[0] and by_state[1]     # both states visited
        quiet = sum(by_state[0]) / len(by_state[0])
        burst = sum(by_state[1]) / len(by_state[1])
        assert burst > quiet * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            MmppArrivals(-1.0, 1.0, 10.0, 10.0, random.Random(1))
        with pytest.raises(ValueError):
            MmppArrivals(1.0, 2.0, 0.0, 10.0, random.Random(1))


class TestParetoSizes:
    def test_bounds_respected(self):
        sizes = ParetoSizes(1.2, 4, 1000, random.Random(5))
        samples = [sizes.sample() for _ in range(10_000)]
        assert min(samples) >= 4
        assert max(samples) <= 1000

    def test_heavy_tail(self):
        # Most flows are mice, but the tail reaches far beyond the median.
        sizes = ParetoSizes(1.1, 1, 100_000, random.Random(5))
        samples = sorted(sizes.sample() for _ in range(10_000))
        median = samples[len(samples) // 2]
        assert median <= 4
        assert samples[-1] > 100 * median

    def test_validation(self):
        with pytest.raises(ValueError):
            ParetoSizes(0.0, 1, 10, random.Random(1))
        with pytest.raises(ValueError):
            ParetoSizes(1.0, 10, 5, random.Random(1))


class TestZipfSelector:
    def test_ranks_in_range(self):
        select = ZipfSelector(1.2, random.Random(9))
        assert all(0 <= select.pick(50) < 50 for _ in range(2000))

    def test_low_ranks_dominate(self):
        select = ZipfSelector(1.2, random.Random(9))
        picks = [select.pick(100) for _ in range(10_000)]
        head = sum(1 for rank in picks if rank < 10)
        assert head / len(picks) > 0.5

    def test_zero_skew_is_uniform(self):
        select = ZipfSelector(0.0, random.Random(9))
        picks = [select.pick(10) for _ in range(20_000)]
        for rank in range(10):
            share = picks.count(rank) / len(picks)
            assert share == pytest.approx(0.1, abs=0.02)

    def test_population_drift_stays_in_range(self):
        # Shrinking the population below the cached CDF size must clamp,
        # growing it must still cover every rank.
        select = ZipfSelector(1.0, random.Random(9))
        for n in (100, 90, 110, 10, 200, 1):
            for _ in range(200):
                assert 0 <= select.pick(n) < max(n, 1)

    def test_single_element_population(self):
        select = ZipfSelector(1.5, random.Random(9))
        assert select.pick(1) == 0
        assert select.pick(0) == 0

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError):
            ZipfSelector(-0.5, random.Random(1))


def test_harmonic_weights_normalised_and_decreasing():
    weights = harmonic_weights(20, 1.2)
    assert sum(weights) == pytest.approx(1.0)
    assert all(a > b for a, b in zip(weights, weights[1:]))
