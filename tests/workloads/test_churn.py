"""The churn engine: seed-determinism, laziness, the live-flow bound,
SYN windows, and stats coherence."""

import pytest

from repro.classifier.flow import FiveTuple
from repro.workloads import ChurnEngine, ChurnSpec, PhaseWindow


def drain(spec, count):
    return list(ChurnEngine(spec).packets(count))


class TestDeterminism:
    @pytest.mark.parametrize("builder", [ChurnSpec.steady,
                                         ChurnSpec.high_churn,
                                         ChurnSpec.syn_flood])
    def test_same_seed_bit_identical(self, builder):
        assert drain(builder(seed=11), 3000) == drain(builder(seed=11), 3000)

    def test_different_seeds_diverge(self):
        assert (drain(ChurnSpec.high_churn(seed=1), 1000)
                != drain(ChurnSpec.high_churn(seed=2), 1000))

    def test_chunked_draw_equals_one_draw(self):
        # Consuming the stream in pieces must not change it.
        whole = drain(ChurnSpec.high_churn(seed=5), 2000)
        engine = ChurnEngine(ChurnSpec.high_churn(seed=5))
        pieces = (list(engine.packets(700)) + list(engine.packets(700))
                  + list(engine.packets(600)))
        assert pieces == whole


class TestLaziness:
    def test_packets_is_a_generator(self):
        stream = ChurnEngine(ChurnSpec.high_churn(seed=1)).packets(10**9)
        first = next(stream)
        assert isinstance(first, FiveTuple)
        stream.close()

    def test_memory_bounded_by_live_flows(self):
        # A stream whose total flow population far exceeds max_live must
        # never track more than max_live flows at once.
        spec = ChurnSpec(seed=3, arrival_rate=8.0, pareto_alpha=2.0,
                         min_packets=1, max_packets=4, max_live=64)
        engine = ChurnEngine(spec)
        for _ in engine.packets(20_000):
            assert engine.live_flows <= 64
        assert engine.stats.arrivals > 64          # population >> live bound
        assert engine.stats.peak_live <= 64
        assert engine.stats.truncated_arrivals > 0

    def test_keys_match_packets(self):
        packed = [flow.pack() for flow
                  in drain(ChurnSpec.steady(seed=7), 500)]
        keys = list(ChurnEngine(ChurnSpec.steady(seed=7)).keys(500))
        assert keys == packed


class TestSynFlood:
    def test_syn_only_during_windows(self):
        spec = ChurnSpec(seed=9, arrival_rate=1.0, min_packets=2,
                         max_packets=50, max_live=1000,
                         syn_flood=(PhaseWindow(start=100.0, period=200.0,
                                                duty=0.5),),
                         syn_rate=4.0)
        # SYN emissions are gated on engine time: every tick on which the
        # syn counter grows must fall inside an active flood window.
        engine = ChurnEngine(spec)
        syn_ticks = []
        before = engine.stats.syn_packets
        for flow in engine.packets(5000):
            now = engine.now
            grew = engine.stats.syn_packets > before
            before = engine.stats.syn_packets
            if grew:
                syn_ticks.append(now)
        window = spec.syn_flood[0]
        assert syn_ticks, "flood windows never fired"
        assert all(window.active(t) for t in syn_ticks)

    def test_no_windows_means_no_syn(self):
        engine = ChurnEngine(ChurnSpec.high_churn(seed=4))
        list(engine.packets(3000))
        assert engine.stats.syn_packets == 0
        assert engine.stats.syn_fraction == 0.0

    def test_syn_flows_never_repeat(self):
        spec = ChurnSpec.syn_flood(seed=13)
        engine = ChurnEngine(spec)
        legit = set()
        syn = []
        before = 0
        for flow in engine.packets(8000):
            if engine.stats.syn_packets > before:
                before = engine.stats.syn_packets
                syn.append(flow)
            else:
                legit.add(flow)
        assert len(syn) == len(set(syn))           # unique one-packet flows
        assert not legit.intersection(syn)         # disjoint from real flows

    def test_syn_fraction_matches_counters(self):
        engine = ChurnEngine(ChurnSpec.syn_flood(seed=2))
        list(engine.packets(10_000))
        stats = engine.stats
        assert stats.packets == 10_000
        assert stats.syn_fraction == pytest.approx(
            stats.syn_packets / stats.packets)
        assert 0.0 < stats.syn_fraction < 1.0


class TestStatsCoherence:
    @pytest.mark.parametrize("builder", [ChurnSpec.steady,
                                         ChurnSpec.high_churn,
                                         ChurnSpec.syn_flood])
    def test_arrivals_minus_departures_is_live(self, builder):
        engine = ChurnEngine(builder(seed=21))
        list(engine.packets(6000))
        stats = engine.stats
        assert stats.arrivals - stats.departures == engine.live_flows
        assert stats.peak_live >= engine.live_flows
        assert stats.packets == 6000

    def test_group_assignment_in_range(self):
        spec = ChurnSpec(seed=5, arrival_rate=4.0, min_packets=1,
                         max_packets=8, max_live=500, groups=3)
        flows = drain(spec, 4000)
        # make_flow encodes the group in destination octet 2.
        assert {(flow.dst_ip >> 16) & 0xFF for flow in flows} <= {0, 1, 2}


class TestSpecValidation:
    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            ChurnSpec(arrival_rate=0.0)
        with pytest.raises(ValueError):
            ChurnSpec(max_live=0)
        with pytest.raises(ValueError):
            ChurnSpec(groups=0)
        with pytest.raises(ValueError):
            ChurnSpec(syn_rate=-1.0)

    def test_presets_construct(self):
        for builder in (ChurnSpec.steady, ChurnSpec.high_churn,
                        ChurnSpec.syn_flood):
            spec = builder(seed=1)
            assert isinstance(spec, ChurnSpec)
            flows = drain(spec, 64)
            assert len(flows) == 64
