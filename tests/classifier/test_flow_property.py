"""Property-based tests on flows, masks, and classification layers."""

from hypothesis import given, settings, strategies as st

from repro.classifier import Action, FiveTuple, FlowMask, rule_for_flow
from repro.classifier.rules import megaflow_entry

flows = st.builds(
    FiveTuple,
    src_ip=st.integers(0, 0xFFFFFFFF),
    dst_ip=st.integers(0, 0xFFFFFFFF),
    src_port=st.integers(0, 0xFFFF),
    dst_port=st.integers(0, 0xFFFF),
    proto=st.integers(0, 0xFF),
)

masks = st.builds(
    FlowMask.prefixes,
    src_prefix=st.integers(0, 32),
    dst_prefix=st.integers(0, 32),
    src_port=st.booleans(),
    dst_port=st.booleans(),
    proto=st.booleans(),
)


@settings(max_examples=200, deadline=None)
@given(flows)
def test_pack_unpack_roundtrip(flow):
    assert FiveTuple.unpack(flow.pack()) == flow


@settings(max_examples=200, deadline=None)
@given(flows, masks)
def test_mask_apply_idempotent(flow, mask):
    once = mask.apply(flow)
    assert mask.apply(once) == once


@settings(max_examples=200, deadline=None)
@given(flows, masks)
def test_int_mask_consistency(flow, mask):
    assert (flow.as_int() & mask.as_int_mask()
            == mask.apply(flow).as_int())


@settings(max_examples=200, deadline=None)
@given(flows, masks)
def test_rule_built_from_flow_matches_it(flow, mask):
    rule = rule_for_flow(flow, Action.drop(), mask)
    assert rule.matches(flow)


@settings(max_examples=200, deadline=None)
@given(flows, flows, masks)
def test_rule_match_iff_masked_equal(anchor, candidate, mask):
    rule = rule_for_flow(anchor, Action.drop(), mask)
    assert rule.matches(candidate) == (mask.apply(candidate)
                                       == mask.apply(anchor))


@settings(max_examples=150, deadline=None)
@given(flows, masks)
def test_megaflow_entry_always_matches_source_flow(flow, mask):
    rule = rule_for_flow(mask.apply(flow), Action.drop(), mask)
    entry = megaflow_entry(rule, flow)
    assert entry.matches(flow)


@settings(max_examples=150, deadline=None)
@given(flows, flows, masks)
def test_megaflow_refinement_soundness(anchor, other, mask):
    """A megaflow entry only matches flows the originating rule matches."""
    rule = rule_for_flow(mask.apply(anchor), Action.drop(), mask)
    entry = megaflow_entry(rule, anchor)
    if entry.matches(other):
        assert rule.matches(other)
