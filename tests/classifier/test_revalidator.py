"""Megaflow revalidation and idle expiry."""

import pytest

from repro.classifier import (
    Action,
    FlowMask,
    HitLayer,
    OvsDatapath,
    Revalidator,
    make_flow,
    rule_for_flow,
)

GROUP_MASK = FlowMask.prefixes(dst_prefix=16, src_prefix=0,
                               src_port=False, dst_port=False)


@pytest.fixture
def setup():
    datapath = OvsDatapath(emc_enabled=False)
    rules = [rule_for_flow(make_flow(0, group=group),
                           Action.output(group), GROUP_MASK,
                           priority=5 - group)
             for group in range(3)]
    for rule in rules:
        datapath.install_rule(rule)
    revalidator = Revalidator(datapath, idle_timeout=100)
    return datapath, revalidator, rules


def _drive(datapath, revalidator, flow, now):
    classification = datapath.classify(flow)
    revalidator.observe(classification, now)
    return classification


def test_megaflows_tracked_on_install(setup):
    datapath, revalidator, _rules = setup
    _drive(datapath, revalidator, make_flow(1, group=0), now=0)
    assert revalidator.tracked_entries == 1


def test_hit_refreshes_idle_clock(setup):
    datapath, revalidator, _rules = setup
    flow = make_flow(1, group=0)
    _drive(datapath, revalidator, flow, now=0)
    _drive(datapath, revalidator, flow, now=90)   # refresh before timeout
    assert revalidator.sweep(now=150) == 0        # 150-90 < 100: survives
    assert revalidator.tracked_entries == 1


def test_idle_megaflow_expires(setup):
    datapath, revalidator, _rules = setup
    flow = make_flow(1, group=0)
    _drive(datapath, revalidator, flow, now=0)
    assert revalidator.sweep(now=500) == 1
    assert revalidator.tracked_entries == 0
    # The next identical packet misses MegaFlow and rebuilds the entry.
    classification = datapath.classify(flow)
    assert classification.layer is HitLayer.OPENFLOW


def test_sweep_keeps_active_expires_idle(setup):
    datapath, revalidator, _rules = setup
    hot = make_flow(1, group=0)
    cold = make_flow(1, group=1)
    _drive(datapath, revalidator, hot, now=0)
    _drive(datapath, revalidator, cold, now=0)
    _drive(datapath, revalidator, hot, now=400)   # keep hot alive
    assert revalidator.sweep(now=450) == 1
    assert revalidator.tracked_entries == 1
    assert datapath.classify(hot).layer is HitLayer.MEGAFLOW


def test_revalidation_removes_stale_megaflows(setup):
    datapath, revalidator, rules = setup
    flow = make_flow(1, group=0)
    _drive(datapath, revalidator, flow, now=0)
    assert datapath.classify(flow).layer is HitLayer.MEGAFLOW
    # The operator removes the rule the megaflow was derived from.
    datapath.openflow.remove(rules[0])
    assert revalidator.revalidate() == 1
    result = datapath.classify(flow)
    assert result.layer is HitLayer.MISS     # cache no longer lies


def test_revalidation_keeps_valid_megaflows(setup):
    datapath, revalidator, _rules = setup
    flow = make_flow(1, group=2)
    _drive(datapath, revalidator, flow, now=0)
    assert revalidator.revalidate() == 0
    assert datapath.classify(flow).layer is HitLayer.MEGAFLOW


def test_revalidation_after_priority_change(setup):
    """A higher-priority overlapping rule invalidates existing megaflows."""
    datapath, revalidator, rules = setup
    flow = make_flow(1, group=0)
    _drive(datapath, revalidator, flow, now=0)
    override = rule_for_flow(make_flow(0, group=0), Action.drop(),
                             GROUP_MASK, priority=99)
    datapath.install_rule(override)
    assert revalidator.revalidate() == 1
    fresh = datapath.classify(flow)
    assert fresh.rule.action == Action.drop()


def test_stats(setup):
    datapath, revalidator, rules = setup
    _drive(datapath, revalidator, make_flow(1, group=0), now=0)
    revalidator.sweep(now=1000)
    stats = revalidator.stats
    assert stats.observed == 1
    assert stats.sweeps == 1
    assert stats.idle_expired == 1
