"""OpenFlow layer: all-tuple search with priorities."""

from repro.classifier import (
    Action,
    FlowMask,
    OpenFlowLayer,
    make_flow,
    rule_for_flow,
)

MASK_A = FlowMask.prefixes(dst_prefix=16, src_prefix=0,
                           src_port=False, dst_port=False)
MASK_B = FlowMask.prefixes(dst_prefix=24, src_prefix=0,
                           src_port=False, dst_port=True)


def test_highest_priority_wins_across_tuples():
    layer = OpenFlowLayer()
    low = rule_for_flow(make_flow(0, group=1), Action.output(1), MASK_A,
                        priority=1)
    high = rule_for_flow(make_flow(0, group=1), Action.output(2), MASK_B,
                         priority=9)
    layer.install(low)
    layer.install(high)
    assert layer.classify(make_flow(5, group=1)) is high


def test_priority_tie_breaks_on_install_order():
    layer = OpenFlowLayer()
    first = rule_for_flow(make_flow(0, group=2), Action.output(1), MASK_A,
                          priority=5)
    second = rule_for_flow(make_flow(0, group=2), Action.output(2), MASK_B,
                           priority=5)
    layer.install(first)
    layer.install(second)
    assert layer.classify(make_flow(3, group=2)) is first


def test_miss_punts_to_controller():
    layer = OpenFlowLayer()
    layer.install(rule_for_flow(make_flow(0, group=1), Action.output(1),
                                MASK_A))
    assert layer.classify(make_flow(0, group=9)) is None
    assert layer.stats.controller_punts == 1


def test_tuples_searched_is_all():
    layer = OpenFlowLayer()
    layer.install(rule_for_flow(make_flow(0, group=1), Action.output(1),
                                MASK_A))
    layer.install(rule_for_flow(make_flow(0, group=2), Action.output(2),
                                MASK_B))
    assert layer.tuples_searched_per_classification() == 2


def test_remove():
    layer = OpenFlowLayer()
    rule = rule_for_flow(make_flow(0, group=1), Action.output(1), MASK_A)
    layer.install(rule)
    assert layer.remove(rule)
    assert layer.classify(make_flow(1, group=1)) is None


def test_stats_counters():
    layer = OpenFlowLayer()
    rule = rule_for_flow(make_flow(0, group=1), Action.output(1), MASK_A)
    layer.install(rule)
    layer.classify(make_flow(1, group=1))
    layer.classify(make_flow(1, group=7))
    assert layer.stats.classifications == 2
    assert layer.stats.hits == 1
    assert len(layer) == 1
