"""Decision-tree classifier (§4.8 extension)."""

import pytest

from repro.classifier import (
    Action,
    DecisionTreeClassifier,
    FlowMask,
    make_flow,
    rule_for_flow,
)
from repro.core import HaloSystem
from repro.sim import Tracer
from repro.traffic import TrafficProfile

GROUP_MASK = FlowMask.prefixes(dst_prefix=16, src_prefix=0,
                               src_port=False, dst_port=False)


def build_rules(groups=40):
    return [rule_for_flow(make_flow(0, group=group),
                          Action.output(group), GROUP_MASK,
                          priority=groups - group)
            for group in range(groups)]


def linear_best(rules, flow):
    matches = [rule for rule in rules if rule.matches(flow)]
    if not matches:
        return None
    return max(matches, key=lambda r: (r.priority, -r.rule_id))


def test_tree_matches_linear_scan():
    rules = build_rules(40)
    tree = DecisionTreeClassifier(rules)
    for index in range(300):
        flow = make_flow(index, group=index % 40)
        expected = linear_best(rules, flow)
        got = tree.classify_functional(flow)
        assert (got is None) == (expected is None)
        if expected is not None:
            assert got.rule_id == expected.rule_id


def test_tree_miss():
    rules = build_rules(4)
    tree = DecisionTreeClassifier(rules)
    assert tree.classify_functional(make_flow(0, group=200)) is None


def test_tree_actually_cuts():
    rules = build_rules(64)
    tree = DecisionTreeClassifier(rules, leaf_rules=4)
    assert not tree.root.is_leaf
    assert tree.num_nodes > 8
    assert tree.depth() >= 2


def test_leaf_rule_lists_bounded_when_separable():
    rules = build_rules(64)
    tree = DecisionTreeClassifier(rules, leaf_rules=4)

    def leaves(node):
        if node.is_leaf:
            yield node
        for child in node.children:
            yield from leaves(child)

    # Most leaves respect the binth (identical-range rules may exceed it).
    small = sum(1 for leaf in leaves(tree.root)
                if len(leaf.rules) <= 8)
    total = sum(1 for _ in leaves(tree.root))
    assert small >= total * 0.8


def test_node_addresses_are_lines():
    tree = DecisionTreeClassifier(build_rules(16))
    path = tree.walk_path(make_flow(3, group=3))
    for node in path:
        assert node.addr % 64 == 0


def test_traced_classification_records_dependent_walk():
    tracer = Tracer()
    rules = build_rules(64)
    tree = DecisionTreeClassifier(rules, tracer=tracer)
    tracer.begin()
    tree.classify(make_flow(5, group=5))
    trace = tracer.take()
    chains = trace.dependency_chains()
    assert len(chains) == len(tree.walk_path(make_flow(5, group=5)))
    assert trace.mix.total > 0


def test_stats_accumulate():
    tree = DecisionTreeClassifier(build_rules(16))
    tree.classify(make_flow(1, group=1))
    tree.classify(make_flow(1, group=200))
    assert tree.stats.classifications == 2
    assert tree.stats.hits == 1
    assert tree.stats.nodes_visited >= 2


def test_halo_walk_faster_than_software():
    """The §4.8 claim: tree walks benefit like bucket walks do."""
    system = HaloSystem()
    rules = build_rules(64)
    tree = DecisionTreeClassifier(rules,
                                  allocator=system.hierarchy.allocator,
                                  tracer=system.tracer)
    system.hierarchy.warm_llc(tree._region.base, tree.num_nodes * 64)
    system.hierarchy.flush_private(0)
    flow = make_flow(9, group=9)
    engine = system.software_engine()
    system.tracer.begin()
    expected = tree.classify(flow)
    software = engine.core.execute(system.tracer.take())
    episode = tree.halo_walk(system, flow)
    assert episode.results[0].rule_id == expected.rule_id
    assert episode.cycles < software.cycles


def test_invalid_cuts_rejected():
    with pytest.raises(ValueError):
        DecisionTreeClassifier(build_rules(4), cuts=3)


def test_profile_rules_build_correct_tree():
    profile = TrafficProfile(name="t", description="", num_flows=1000,
                             num_rules=12)
    flow_set, rules = profile.build()
    tree = DecisionTreeClassifier(rules)
    for flow in flow_set.flows[:150]:
        expected = linear_best(rules, flow)
        got = tree.classify_functional(flow)
        assert got is not None and expected is not None
        assert got.priority == expected.priority
