"""5-tuples and wildcard masks."""

import pytest

from repro.classifier import FiveTuple, FlowMask, KEY_BYTES, make_flow


def test_pack_roundtrip():
    flow = FiveTuple(0x0A000001, 0xC0A80001, 1234, 80, 6)
    assert len(flow.pack()) == KEY_BYTES
    assert FiveTuple.unpack(flow.pack()) == flow


def test_pack_distinct_flows_distinct_keys():
    keys = {make_flow(index).pack() for index in range(2000)}
    assert len(keys) == 2000


def test_field_validation():
    with pytest.raises(ValueError):
        FiveTuple(1 << 32, 0, 0, 0, 0)
    with pytest.raises(ValueError):
        FiveTuple(0, 0, 70000, 0, 0)
    with pytest.raises(ValueError):
        FiveTuple(0, 0, 0, 0, 300)


def test_as_int_104_bits():
    flow = FiveTuple(0xFFFFFFFF, 0xFFFFFFFF, 0xFFFF, 0xFFFF, 0xFF)
    assert flow.as_int() == (1 << 104) - 1


def test_exact_mask_is_identity():
    mask = FlowMask.exact()
    flow = make_flow(42)
    assert mask.apply(flow) == flow
    assert mask.is_exact


def test_prefix_mask_zeroes_low_bits():
    mask = FlowMask.prefixes(src_prefix=8, dst_prefix=16,
                             src_port=False, dst_port=False)
    flow = FiveTuple(0x0A0B0C0D, 0xC0A80102, 555, 80, 17)
    masked = mask.apply(flow)
    assert masked.src_ip == 0x0A000000
    assert masked.dst_ip == 0xC0A80000
    assert masked.src_port == 0
    assert masked.dst_port == 0
    assert masked.proto == 17


def test_zero_prefix_wildcards_everything():
    mask = FlowMask.prefixes(src_prefix=0, dst_prefix=0,
                             src_port=False, dst_port=False, proto=False)
    masked = mask.apply(make_flow(7))
    assert (masked.src_ip, masked.dst_ip, masked.src_port,
            masked.dst_port, masked.proto) == (0, 0, 0, 0, 0)


def test_invalid_prefix_rejected():
    with pytest.raises(ValueError):
        FlowMask.prefixes(src_prefix=33)


def test_mask_apply_idempotent():
    mask = FlowMask.prefixes(src_prefix=12, dst_prefix=20, src_port=False)
    flow = make_flow(99)
    assert mask.apply(mask.apply(flow)) == mask.apply(flow)


def test_key_of_matches_apply_pack():
    mask = FlowMask.prefixes(dst_prefix=24)
    flow = make_flow(3)
    assert mask.key_of(flow) == mask.apply(flow).pack()


def test_as_int_mask_consistent_with_apply():
    mask = FlowMask.prefixes(src_prefix=16, dst_prefix=8, dst_port=False)
    flow = make_flow(55)
    assert (flow.as_int() & mask.as_int_mask()
            == mask.apply(flow).as_int())


def test_make_flow_grouped_destination():
    grouped = [make_flow(index, group=5) for index in range(50)]
    assert len({flow.dst_ip >> 8 for flow in grouped}) == 1   # same /24
    assert len({flow.pack() for flow in grouped}) == 50       # distinct flows


def test_make_flow_groups_differ():
    a = make_flow(1, group=1)
    b = make_flow(1, group=2)
    assert (a.dst_ip >> 16) != (b.dst_ip >> 16)


def test_str_rendering():
    text = str(FiveTuple(0x0A000001, 0xC0A80001, 1234, 80, 6))
    assert "10.0.0.1" in text and "192.168.0.1" in text
