"""The cache-policy seam: eviction invariants, seed determinism, parity
of the default policy with the pre-policy EMC, and the TSS seam."""

import random

import pytest

from repro.classifier.cache_policy import (CorrelatorPolicy, LruPolicy,
                                           POLICY_NAMES,
                                           RandomEvictionPolicy,
                                           SecondChancePolicy,
                                           candidate_keys, make_policy)
from repro.classifier.emc import ExactMatchCache
from repro.classifier.flow import FlowMask, make_flow
from repro.classifier.rules import Action, Rule
from repro.classifier.tuple_space import TupleSpaceSearch
from repro.hashtable.cuckoo import CuckooHashTable
from repro.obs.metrics import MetricsRegistry
from repro.workloads import ChurnEngine, ChurnSpec

RULE = Rule(mask=FlowMask.exact(), match=make_flow(0),
            action=Action.output(0))


def exercise(policy_name, packets=4000, capacity=64, seed=31):
    """Stream a churn scenario through a small EMC under one policy."""
    emc = ExactMatchCache(capacity, policy=policy_name)
    engine = ChurnEngine(ChurnSpec.high_churn(seed=seed))
    for flow in engine.packets(packets):
        if emc.lookup(flow) is None:
            emc.install(flow, RULE)
    return emc


class TestRegistry:
    def test_policy_names_construct(self):
        for name in POLICY_NAMES:
            policy = make_policy(name)
            assert policy.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            make_policy("mru")

    def test_expected_registry(self):
        assert POLICY_NAMES == ("random", "lru", "second-chance",
                                "correlator")


class TestEvictionInvariants:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_occupancy_never_exceeds_capacity(self, name):
        emc = ExactMatchCache(64, policy=name)
        engine = ChurnEngine(ChurnSpec.high_churn(seed=31))
        for flow in engine.packets(4000):
            if emc.lookup(flow) is None:
                emc.install(flow, RULE)
            assert len(emc) <= 64
        assert emc.stats.installs > 64   # table turned over, in place

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_same_seed_bit_identical(self, name):
        first = exercise(name)
        second = exercise(name)
        assert (sorted(k for k, _ in first.table.items())
                == sorted(k for k, _ in second.table.items()))
        assert first.stats == second.stats

    @pytest.mark.parametrize("name", ["second-chance", "correlator"])
    def test_admission_rejects_counted(self, name):
        emc = exercise(name)
        assert emc.stats.admission_rejects > 0

    @pytest.mark.parametrize("name", ["random", "lru"])
    def test_unconditional_admission(self, name):
        emc = exercise(name)
        assert emc.stats.admission_rejects == 0


class TestDefaultPolicyParity:
    def test_matches_pre_policy_emc(self):
        """The refactored install path with the default policy replays
        the seed EMC's RNG stream exactly — the property behind the
        rel=1e-12 fig09/fig11 parity pins."""
        reference = CuckooHashTable(64, key_bytes=16, name="ref")
        rng = random.Random(0xE3C)   # the seed EMC's stream, replayed
        ref_evictions = 0
        engine = ChurnEngine(ChurnSpec.high_churn(seed=17))
        for key in engine.keys(6000):
            if reference.lookup(key) is not None:
                continue                         # mirrors lookup-then-install
            plan = reference.probe(key)
            if not plan.found:
                candidates = (plan.primary_index, plan.secondary_index)
                if all(len(reference.bucket_keys(i)) >= reference.assoc
                       for i in candidates):
                    bucket = rng.choice(candidates)
                    victims = reference.bucket_keys(bucket)
                    if victims:
                        reference.delete(rng.choice(victims))
                        ref_evictions += 1
            reference.insert(key, RULE)
        emc = ExactMatchCache(64)    # default RandomEvictionPolicy
        engine2 = ChurnEngine(ChurnSpec.high_churn(seed=17))
        for flow in engine2.packets(6000):
            if emc.lookup(flow) is None:
                emc.install(flow, RULE)
        assert (sorted(k for k, _ in emc.table.items())
                == sorted(k for k, _ in reference.items()))
        assert emc.stats.evictions == ref_evictions

    def test_default_seed_matches_explicit_random_policy(self):
        default = ExactMatchCache(32)
        explicit = ExactMatchCache(32, policy=RandomEvictionPolicy(0xE3C))
        engine_a = ChurnEngine(ChurnSpec.high_churn(seed=3))
        engine_b = ChurnEngine(ChurnSpec.high_churn(seed=3))
        for flow_a, flow_b in zip(engine_a.packets(3000),
                                  engine_b.packets(3000)):
            if default.lookup(flow_a) is None:
                default.install(flow_a, RULE)
            if explicit.lookup(flow_b) is None:
                explicit.install(flow_b, RULE)
        assert (sorted(k for k, _ in default.table.items())
                == sorted(k for k, _ in explicit.table.items()))
        assert default.stats == explicit.stats


class TestPolicyBehavior:
    def table_with(self, keys):
        """A table holding ``keys`` plus the all-buckets candidate list."""
        table = CuckooHashTable(64, key_bytes=16, name="t")
        for key in keys:
            assert table.insert(key, RULE)
        return table, tuple(range(table.num_buckets))

    def test_lru_evicts_least_recently_used(self):
        policy = LruPolicy()
        keys = [make_flow(i).pack() for i in range(6)]
        table, buckets = self.table_with(keys)
        for key in keys:
            policy.on_install(key)
        for key in keys:
            if key != keys[2]:
                policy.on_hit(key)       # keys[2] stays oldest
        assert policy.victim(table, buckets) == keys[2]

    def test_lru_untracked_key_counts_as_oldest(self):
        policy = LruPolicy()
        keys = [make_flow(i).pack() for i in range(4)]
        table, buckets = self.table_with(keys)
        for key in keys[:3]:
            policy.on_install(key)       # keys[3] never tracked
        assert policy.victim(table, buckets) == keys[3]

    def test_second_chance_protects_referenced_keys(self):
        policy = SecondChancePolicy(lottery=1)
        keys = [make_flow(i).pack() for i in range(3)]
        table, buckets = self.table_with(keys)
        for key in keys:
            policy.on_install(key)
        policy.on_hit(keys[0])
        policy.on_hit(keys[1])
        # keys[2] is the only unreferenced candidate: it must be chosen
        # no matter where the scan starts.
        assert policy.victim(table, buckets) == keys[2]
        policy.on_evict(keys[2])
        table.delete(keys[2])
        # The first pass spent the survivors' reference bits, so a second
        # eviction now finds an unreferenced victim among them.
        assert policy.victim(table, buckets) in keys[:2]

    def test_second_chance_lottery_rejects(self):
        policy = SecondChancePolicy(seed=1, lottery=4)
        decisions = [policy.admit(i.to_bytes(16, "big"))
                     for i in range(400)]
        share = sum(decisions) / len(decisions)
        assert 0.15 < share < 0.35    # ~1/4 admitted

    def test_correlator_admits_only_proven_keys(self):
        policy = CorrelatorPolicy(admit_after=2)
        key = b"k" * 16
        assert not policy.admit(key)      # first attempt: one-hit wonder
        assert policy.admit(key)          # second attempt: proven reuse
        assert not policy.admit(b"x" * 16)

    def test_correlator_history_bounded(self):
        policy = CorrelatorPolicy(admit_after=2, history=16)
        for i in range(100):
            policy.admit(i.to_bytes(16, "big"))
        assert len(policy._attempts) <= 16
        # The earliest keys fell out of the sketch: a second attempt on
        # one of them is treated as a first attempt again.
        assert not policy.admit((0).to_bytes(16, "big"))

    def test_correlator_evicts_fewest_hits(self):
        policy = CorrelatorPolicy(admit_after=1)
        keys = [make_flow(i).pack() for i in range(5)]
        table, buckets = self.table_with(keys)
        for key in keys:
            policy.on_install(key)
        for key in keys:
            if key != keys[3]:
                policy.on_hit(key)       # keys[3] stays the mouse
        assert policy.victim(table, buckets) == keys[3]

    def test_reset_restores_initial_decisions(self):
        for name in POLICY_NAMES:
            policy = make_policy(name, seed=7)
            before = [policy.admit(bytes([i] * 16)) for i in range(32)]
            policy.reset()
            after = [policy.admit(bytes([i] * 16)) for i in range(32)]
            assert before == after

    def test_candidate_keys_deduplicates(self):
        table = CuckooHashTable(16, key_bytes=16, name="t")
        table.insert(b"a" * 16, RULE)
        table.insert(b"b" * 16, RULE)
        plan = table.probe(b"a" * 16)
        keys = candidate_keys(table, (plan.primary_index,
                                      plan.primary_index))
        assert len(keys) == len(set(keys))


class TestMetricsWiring:
    def test_counters_and_histogram_published(self):
        metrics = MetricsRegistry()
        emc = ExactMatchCache(16, policy="second-chance", metrics=metrics,
                              miss_window=32)
        engine = ChurnEngine(ChurnSpec.high_churn(seed=5))
        for flow in engine.packets(2000):
            if emc.lookup(flow) is None:
                emc.install(flow, RULE)
        snap = metrics.snapshot()
        assert snap["emc.evictions"] == emc.stats.evictions
        assert snap["emc.admission_rejects"] == emc.stats.admission_rejects
        assert emc.stats.admission_rejects > 0
        window = snap["emc.second-chance.window_miss_rate"]
        assert window["count"] >= 2000 // 32 - 1

    def test_disabled_metrics_cost_nothing(self):
        metrics = MetricsRegistry(enabled=False)
        emc = ExactMatchCache(16, policy="lru", metrics=metrics)
        for flow in (make_flow(i) for i in range(64)):
            emc.install(flow, RULE)
        assert metrics.snapshot() == {}


class TestTupleSpaceSeam:
    def _rule(self, index):
        mask = FlowMask.exact()
        return Rule(mask=mask, match=make_flow(index),
                    action=Action.output(0), rule_id=index)

    def test_no_policy_keeps_best_effort_installs(self):
        tss = TupleSpaceSearch(tuple_capacity=16)
        results = [tss.install(self._rule(i)) for i in range(200)]
        assert tss.stats.evictions == 0
        assert not all(results)            # some installs fail when full
        assert len(tss) <= 16

    def test_policy_evicts_in_place(self):
        tss = TupleSpaceSearch(tuple_capacity=16, policy=LruPolicy())
        results = [tss.install(self._rule(i)) for i in range(200)]
        assert all(results)                # eviction makes room every time
        assert tss.stats.evictions > 0
        assert len(tss) <= 16

    def test_policy_admission_gates_installs(self):
        tss = TupleSpaceSearch(tuple_capacity=64,
                               policy=CorrelatorPolicy(admit_after=2))
        first = [tss.install(self._rule(i)) for i in range(32)]
        assert not any(first)              # unproven keys all rejected
        assert tss.stats.admission_rejects == 32
        second = [tss.install(self._rule(i)) for i in range(32)]
        assert all(second)                 # second attempt proves reuse

    def test_classify_feeds_policy_hits(self):
        policy = LruPolicy()
        tss = TupleSpaceSearch(tuple_capacity=16, policy=policy)
        rule = self._rule(1)
        assert tss.install(rule)
        found, _searched = tss.classify(make_flow(1))
        assert found is rule
        assert policy._last_use            # hit recorded

    def test_remove_notifies_policy(self):
        policy = LruPolicy()
        tss = TupleSpaceSearch(tuple_capacity=16, policy=policy)
        rule = self._rule(2)
        tss.install(rule)
        tss.classify(make_flow(2))
        assert policy._last_use
        assert tss.remove(rule)
        assert not policy._last_use
