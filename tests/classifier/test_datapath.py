"""Three-layer OVS datapath."""

import pytest

from repro.classifier import (
    Action,
    FlowMask,
    HitLayer,
    OvsDatapath,
    make_flow,
    rule_for_flow,
)

GROUP_MASK = FlowMask.prefixes(dst_prefix=16, src_prefix=0,
                               src_port=False, dst_port=False)


@pytest.fixture
def datapath():
    path = OvsDatapath()
    for group in range(4):
        path.install_rule(rule_for_flow(make_flow(0, group=group),
                                        Action.output(group), GROUP_MASK,
                                        priority=10 - group))
    return path


def test_first_packet_goes_through_openflow(datapath):
    result = datapath.classify(make_flow(5, group=1))
    assert result.layer is HitLayer.OPENFLOW
    assert result.rule.action.argument == 1


def test_second_identical_packet_hits_emc(datapath):
    flow = make_flow(5, group=1)
    datapath.classify(flow)
    result = datapath.classify(flow)
    assert result.layer is HitLayer.EMC


def test_same_megaflow_different_flow_hits_megaflow(datapath):
    from repro.classifier import FiveTuple
    first = make_flow(5, group=1)
    datapath.classify(first)
    # Same megaflow (same src /16, same destination), different exact header.
    sibling = FiveTuple(first.src_ip, first.dst_ip, first.src_port + 1,
                        first.dst_port, first.proto)
    result = datapath.classify(sibling)
    assert result.layer is HitLayer.MEGAFLOW


def test_unmatched_packet_misses(datapath):
    result = datapath.classify(make_flow(0, group=250))
    assert result.layer is HitLayer.MISS
    assert not result.hit


def test_stats_accumulate(datapath):
    flow = make_flow(5, group=2)
    datapath.classify(flow)
    datapath.classify(flow)
    datapath.classify(make_flow(0, group=251))
    stats = datapath.stats
    assert stats.packets == 3
    assert stats.openflow_hits == 1
    assert stats.emc_hits == 1
    assert stats.misses == 1
    fractions = stats.layer_fractions()
    assert fractions["emc"] == pytest.approx(1 / 3)


def test_emc_disabled_path():
    path = OvsDatapath(emc_enabled=False)
    path.install_rule(rule_for_flow(make_flow(0, group=1), Action.output(0),
                                    GROUP_MASK))
    flow = make_flow(5, group=1)
    path.classify(flow)
    result = path.classify(flow)
    assert result.layer is HitLayer.MEGAFLOW   # never EMC
    assert path.stats.emc_hits == 0


def test_classification_consistent_with_rule_semantics(datapath):
    """Whatever layer answers, the returned rule must match the flow."""
    for index in range(80):
        flow = make_flow(index, group=index % 4)
        result = datapath.classify(flow)
        assert result.hit
        assert result.rule.matches(flow)


def test_install_megaflow_prepopulates():
    path = OvsDatapath()
    rule = rule_for_flow(make_flow(0, group=3), Action.output(1), GROUP_MASK)
    path.install_rule(rule)
    from repro.classifier.rules import megaflow_entry
    flow = make_flow(9, group=3)
    path.install_megaflow(megaflow_entry(rule, flow))
    result = path.classify(flow)
    assert result.layer is HitLayer.MEGAFLOW
