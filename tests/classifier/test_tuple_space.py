"""Tuple space search (MegaFlow layer)."""

import pytest

from repro.classifier import (
    Action,
    FlowMask,
    TupleSpaceSearch,
    make_flow,
    rule_for_flow,
)

MASK_A = FlowMask.prefixes(dst_prefix=16, src_prefix=0,
                           src_port=False, dst_port=False)
MASK_B = FlowMask.prefixes(dst_prefix=24, src_prefix=0,
                           src_port=False, dst_port=True)


def test_one_tuple_per_mask():
    tss = TupleSpaceSearch()
    tss.install(rule_for_flow(make_flow(0, group=1), Action.output(1), MASK_A))
    tss.install(rule_for_flow(make_flow(0, group=2), Action.output(2), MASK_A))
    tss.install(rule_for_flow(make_flow(0, group=3), Action.output(3), MASK_B))
    assert tss.num_tuples == 2
    assert len(tss) == 3


def test_classify_finds_matching_rule():
    tss = TupleSpaceSearch()
    rule = rule_for_flow(make_flow(0, group=4), Action.output(7), MASK_A)
    tss.install(rule)
    found, searched = tss.classify(make_flow(12, group=4))
    assert found is rule
    assert searched >= 1
    assert tss.stats.hits == 1


def test_classify_miss_searches_all_tuples():
    tss = TupleSpaceSearch()
    tss.install(rule_for_flow(make_flow(0, group=1), Action.output(1), MASK_A))
    tss.install(rule_for_flow(make_flow(0, group=2), Action.output(2), MASK_B))
    found, searched = tss.classify(make_flow(0, group=9))
    assert found is None
    assert searched == 2


def test_first_match_semantics():
    """MegaFlow returns on the first tuple that matches (search order)."""
    tss = TupleSpaceSearch()
    first = rule_for_flow(make_flow(0, group=5), Action.output(1), MASK_A)
    second = rule_for_flow(make_flow(0, group=5), Action.output(2), MASK_B)
    tss.install(first)
    tss.install(second)
    found, searched = tss.classify(make_flow(3, group=5))
    assert found is first
    assert searched == 1


def test_classify_all_returns_every_match():
    tss = TupleSpaceSearch()
    first = rule_for_flow(make_flow(0, group=5), Action.output(1), MASK_A)
    second = rule_for_flow(make_flow(0, group=5), Action.output(2), MASK_B)
    tss.install(first)
    tss.install(second)
    matches = tss.classify_all(make_flow(3, group=5))
    assert {rule.rule_id for rule in matches} == {first.rule_id,
                                                  second.rule_id}


def test_remove_rule():
    tss = TupleSpaceSearch()
    rule = rule_for_flow(make_flow(0, group=6), Action.output(1), MASK_A)
    tss.install(rule)
    assert tss.remove(rule)
    found, _ = tss.classify(make_flow(1, group=6))
    assert found is None
    assert not tss.remove(rule)


def test_halo_queries_cover_all_tuples():
    tss = TupleSpaceSearch()
    tss.install(rule_for_flow(make_flow(0, group=1), Action.output(1), MASK_A))
    tss.install(rule_for_flow(make_flow(0, group=2), Action.output(2), MASK_B))
    flow = make_flow(5, group=1)
    queries = tss.halo_queries(flow)
    assert len(queries) == 2
    for table, key in queries:
        assert len(key) == 16
    # The masked keys differ across tuples (different masks).
    assert queries[0][1] != queries[1][1]


def test_lookups_per_classification_stat():
    tss = TupleSpaceSearch()
    tss.install(rule_for_flow(make_flow(0, group=1), Action.output(1), MASK_A))
    tss.install(rule_for_flow(make_flow(0, group=2), Action.output(2), MASK_B))
    tss.classify(make_flow(1, group=1))
    tss.classify(make_flow(1, group=999))
    assert tss.stats.lookups_per_classification >= 1.0


def test_many_rules_same_tuple():
    tss = TupleSpaceSearch(tuple_capacity=512)
    rules = [rule_for_flow(make_flow(0, group=g), Action.output(g), MASK_A)
             for g in range(100)]
    for rule in rules:
        assert tss.install(rule)
    assert tss.num_tuples == 1
    for group in range(100):
        found, _ = tss.classify(make_flow(7, group=group))
        assert found is not None
        assert found.action.argument == group
