"""Rules and megaflow refinement."""

import pytest

from repro.classifier import Action, ActionKind, FlowMask, Rule, make_flow, rule_for_flow
from repro.classifier.rules import megaflow_entry, megaflow_mask_for


def test_rule_matches_its_anchor():
    flow = make_flow(10, group=2)
    mask = FlowMask.prefixes(dst_prefix=16, src_prefix=0,
                             src_port=False, dst_port=False)
    rule = rule_for_flow(flow, Action.output(1), mask)
    assert rule.matches(flow)


def test_rule_matches_whole_group():
    mask = FlowMask.prefixes(dst_prefix=16, src_prefix=0,
                             src_port=False, dst_port=False)
    anchor = make_flow(0, group=3)
    rule = rule_for_flow(anchor, Action.output(1), mask)
    for index in range(1, 40):
        assert rule.matches(make_flow(index, group=3))
    assert not rule.matches(make_flow(0, group=4))


def test_rule_requires_premasked_match():
    flow = make_flow(1)
    mask = FlowMask.prefixes(dst_prefix=8, src_port=False)
    with pytest.raises(ValueError):
        Rule(mask=mask, match=flow, action=Action.drop())


def test_rule_ids_unique():
    flow = make_flow(1)
    first = rule_for_flow(flow, Action.drop())
    second = rule_for_flow(flow, Action.drop())
    assert first.rule_id != second.rule_id


def test_action_constructors():
    assert Action.output(3).kind is ActionKind.OUTPUT
    assert Action.output(3).argument == 3
    assert Action.drop().kind is ActionKind.DROP


def test_megaflow_mask_refines_destination():
    rule_mask = FlowMask.prefixes(dst_prefix=16, src_prefix=0,
                                  src_port=False, dst_port=False)
    refined = megaflow_mask_for(rule_mask)
    assert refined.dst_ip_mask == 0xFFFFFFFF
    assert refined.dst_port_mask == rule_mask.dst_port_mask
    assert refined.src_port_mask == rule_mask.src_port_mask


def test_megaflow_mask_source_refinement_depends_on_rule():
    wild = FlowMask.prefixes(src_prefix=0, dst_prefix=16,
                             src_port=False, dst_port=False)
    prefixed = FlowMask.prefixes(src_prefix=8, dst_prefix=16,
                                 src_port=False, dst_port=False)
    assert (megaflow_mask_for(wild).src_ip_mask
            != megaflow_mask_for(prefixed).src_ip_mask)


def test_megaflow_entry_matches_the_flow():
    mask = FlowMask.prefixes(dst_prefix=16, src_prefix=0,
                             src_port=False, dst_port=False)
    anchor = make_flow(0, group=1)
    rule = rule_for_flow(anchor, Action.output(2), mask, priority=5)
    flow = make_flow(17, group=1)
    entry = megaflow_entry(rule, flow)
    assert entry.matches(flow)
    assert entry.action == rule.action
    assert entry.priority == rule.priority


def test_megaflow_entry_is_finer_than_rule():
    """Flows matching the rule but differing in dst do not match the entry."""
    mask = FlowMask.prefixes(dst_prefix=16, src_prefix=0,
                             src_port=False, dst_port=False)
    anchor = make_flow(0, group=1)
    rule = rule_for_flow(anchor, Action.output(2), mask)
    flow_a = make_flow(17, group=1)
    entry = megaflow_entry(rule, flow_a)
    # Another flow in the same group with a different full destination.
    flow_b = next(make_flow(i, group=1) for i in range(1, 300)
                  if make_flow(i, group=1).dst_ip != flow_a.dst_ip)
    assert rule.matches(flow_b)
    assert not entry.matches(flow_b)
