"""Exact Match Cache layer."""

from repro.classifier import Action, ExactMatchCache, make_flow, rule_for_flow


def make_rule(flow):
    return rule_for_flow(flow, Action.output(1))


def test_miss_then_hit_after_install():
    emc = ExactMatchCache(capacity=64)
    flow = make_flow(1)
    assert emc.lookup(flow) is None
    emc.install(flow, make_rule(flow))
    rule = emc.lookup(flow)
    assert rule is not None and rule.matches(flow)
    assert emc.stats.hits == 1
    assert emc.stats.lookups == 2


def test_install_refreshes_existing_entry():
    emc = ExactMatchCache(capacity=64)
    flow = make_flow(2)
    first = make_rule(flow)
    second = make_rule(flow)
    emc.install(flow, first)
    emc.install(flow, second)
    assert emc.lookup(flow) is second
    assert len(emc) == 1


def test_capacity_respected_with_eviction():
    emc = ExactMatchCache(capacity=32)
    for index in range(500):
        flow = make_flow(index)
        emc.install(flow, make_rule(flow))
    assert len(emc) <= 32 + 8   # capacity plus at most one bucket of slack
    assert emc.stats.evictions > 0


def test_eviction_keeps_cache_functional():
    emc = ExactMatchCache(capacity=32)
    flows = [make_flow(index) for index in range(200)]
    for flow in flows:
        emc.install(flow, make_rule(flow))
    hits = sum(1 for flow in flows if emc.lookup(flow) is not None)
    assert hits > 0                    # recent entries survive
    assert hits < len(flows)           # old entries were evicted


def test_hit_rate_metric():
    emc = ExactMatchCache(capacity=64)
    flow = make_flow(9)
    emc.install(flow, make_rule(flow))
    for _ in range(9):
        emc.lookup(flow)
    emc.lookup(make_flow(10))
    assert 0.8 <= emc.stats.hit_rate <= 0.95


def test_no_bfs_on_full_cache():
    """Installs stay O(1): no cuckoo displacement at full load."""
    emc = ExactMatchCache(capacity=64)
    for index in range(2000):
        flow = make_flow(index)
        emc.install(flow, make_rule(flow))
    assert emc.table.stats.kicks == 0
