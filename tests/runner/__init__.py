"""Tests for the ``repro.runner`` experiment orchestration subsystem."""
