"""`repro bench --perf` smoke: schema-valid, deterministic-in-structure
snapshots plus the regression-gate comparison logic CI trusts."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.runner import perf
from repro.runner.perf import (
    BENCH_NAMES,
    PERF_SCHEMA_VERSION,
    compare_snapshots,
    next_snapshot_path,
    run_perf_suite,
    validate_snapshot,
    write_snapshot,
)

#: Tiny workload for tests — structure-identical to the real shapes.
MICRO_SHAPE = perf._Shape(churn_workers=2, churn_hops=20, churn_parked=50,
                          replay_lookups=40, fig09_lookups=20,
                          multicore_cores=2, multicore_lookups=5, repeats=1,
                          batched_lookups=5, pricing_lookups=40,
                          shard_count=2, shard_flows=16, shard_lookups=40,
                          emc_churn_packets=200, emc_churn_entries=32)


@pytest.fixture()
def micro_suite(monkeypatch):
    monkeypatch.setattr(perf, "QUICK_SHAPE", MICRO_SHAPE)
    return lambda: run_perf_suite(quick=True)


def test_quick_suite_is_schema_valid(micro_suite):
    snapshot = micro_suite()
    assert validate_snapshot(snapshot) == []
    assert snapshot["schema_version"] == PERF_SCHEMA_VERSION
    assert snapshot["quick"] is True
    assert isinstance(snapshot["fingerprint"], str)
    assert snapshot["host"]["calibration_ops_per_sec"] > 0
    assert tuple(sorted(snapshot["benches"])) == tuple(sorted(BENCH_NAMES))
    for name, record in snapshot["benches"].items():
        assert record["events"] > 0, name
        assert record["wall_s"] > 0, name
        assert record["events_per_sec"] > 0, name
        assert record["events_per_cal_op"] > 0, name
    # Benches with a reference side must carry the comparison: two run
    # the frozen engine, the rest time their own slow/monolithic mode.
    for name in ("engine_churn", "cache_replay", "multicore_batched",
                 "vector_pricing", "shard_scaling"):
        assert snapshot["benches"][name]["speedup_vs_legacy"] is not None
    # Lookup benches report a lookup rate; pure-DES churn does not.
    assert snapshot["benches"]["engine_churn"]["lookups_per_sec"] is None
    assert snapshot["benches"]["cache_replay"]["lookups_per_sec"] > 0
    # emc_churn runs no engine: pure host-rate bench, packets as events.
    assert snapshot["benches"]["emc_churn"]["lookups_per_sec"] > 0
    assert snapshot["benches"]["emc_churn"]["speedup_vs_legacy"] is None


def test_structure_is_deterministic_across_runs(micro_suite):
    """Same shape, same host -> identical simulated work; only wall
    time may differ between runs."""
    first, second = micro_suite(), micro_suite()
    assert first["benches"].keys() == second["benches"].keys()
    for name in BENCH_NAMES:
        a, b = first["benches"][name], second["benches"][name]
        assert a.keys() == b.keys()
        assert a["events"] == b["events"], name
        assert a["cycles"] == b["cycles"], name
        assert a["lookups"] == b["lookups"], name


def test_cli_writes_numbered_snapshots(tmp_path, monkeypatch):
    monkeypatch.setattr(perf, "QUICK_SHAPE", MICRO_SHAPE)
    assert main(["bench", "--perf", "--quick",
                 "--perf-out", str(tmp_path)]) == 0
    first = tmp_path / "BENCH_0.json"
    assert first.exists()
    snapshot = json.loads(first.read_text())
    assert validate_snapshot(snapshot) == []
    # A second run must not clobber the first: BENCH_<n> numbering.
    assert next_snapshot_path(tmp_path).name == "BENCH_1.json"
    assert main(["bench", "--perf", "--quick",
                 "--perf-out", str(tmp_path)]) == 0
    assert (tmp_path / "BENCH_1.json").exists()


def test_write_snapshot_roundtrip(tmp_path):
    snapshot = {"schema_version": PERF_SCHEMA_VERSION, "benches": {}}
    path = write_snapshot(snapshot, tmp_path)
    assert json.loads(path.read_text()) == snapshot


def _synthetic(churn_speedup, fig09_rate):
    benches = {}
    for name in BENCH_NAMES:
        benches[name] = {
            "events": 100, "lookups": 10, "cycles": 1.0, "wall_s": 0.1,
            "repeats": 1, "events_per_sec": 1000.0,
            "lookups_per_sec": 100.0,
            "speedup_vs_legacy": (churn_speedup
                                  if name in ("engine_churn",
                                              "cache_replay") else None),
            "events_per_cal_op": fig09_rate,
        }
    return {"schema_version": PERF_SCHEMA_VERSION, "fingerprint": "x",
            "quick": True, "host": {"calibration_ops_per_sec": 1.0},
            "benches": benches}


def test_gate_passes_within_threshold():
    baseline = _synthetic(churn_speedup=2.2, fig09_rate=1.0)
    candidate = _synthetic(churn_speedup=1.8, fig09_rate=0.85)
    assert compare_snapshots(baseline, candidate, threshold=0.25) == []


def test_gate_fails_on_regression():
    baseline = _synthetic(churn_speedup=2.2, fig09_rate=1.0)
    candidate = _synthetic(churn_speedup=1.0, fig09_rate=1.0)
    failures = compare_snapshots(baseline, candidate, threshold=0.25)
    assert failures and all("speedup_vs_legacy" in f for f in failures)
    # Engine-relative metric is preferred, so only the two legacy-paired
    # benches fail; the others ride on the (unchanged) normalised rate.
    assert len(failures) == 2


def test_gate_falls_back_to_normalised_rate():
    baseline = _synthetic(churn_speedup=2.2, fig09_rate=1.0)
    candidate = _synthetic(churn_speedup=2.2, fig09_rate=0.5)
    failures = compare_snapshots(baseline, candidate, threshold=0.25)
    assert failures
    assert all("events_per_cal_op" in f for f in failures)


def test_gate_flags_missing_bench():
    baseline = _synthetic(2.2, 1.0)
    candidate = _synthetic(2.2, 1.0)
    del candidate["benches"]["cache_replay"]
    failures = compare_snapshots(baseline, candidate)
    assert any("cache_replay" in f and "missing" in f for f in failures)


def test_validate_flags_broken_snapshots():
    assert validate_snapshot({}) != []
    broken = _synthetic(2.2, 1.0)
    broken["benches"]["engine_churn"]["events"] = 0
    assert any("no events" in p for p in validate_snapshot(broken))


def test_committed_snapshots_are_valid_and_fast():
    """The checked-in snapshots must parse and validate: the quick
    baseline CI gates against, and the full trajectory snapshots that
    record the campaign's wins.  Old trajectory entries validate against
    the schema they were written with."""
    import pathlib

    perf_dir = (pathlib.Path(__file__).resolve().parents[2]
                / "benchmarks" / "perf")
    baseline = json.loads((perf_dir / "BENCH_baseline.json").read_text())
    assert validate_snapshot(baseline) == []
    assert baseline["quick"] is True
    assert baseline["schema_version"] == PERF_SCHEMA_VERSION

    trajectory = json.loads((perf_dir / "BENCH_0.json").read_text())
    assert validate_snapshot(trajectory) == []
    assert trajectory["quick"] is False
    for name in ("engine_churn", "cache_replay"):
        assert trajectory["benches"][name]["speedup_vs_legacy"] >= 2.0, name

    vector_round = json.loads((perf_dir / "BENCH_1.json").read_text())
    assert validate_snapshot(vector_round) == []
    assert vector_round["quick"] is False
    assert vector_round["schema_version"] == 2
    # The vectorised+windowed round: cache_replay events/sec moved >=1.5x
    # over the previous trajectory point (same container), and the
    # batched multicore composition beats its per-key reference.
    previous_rate = trajectory["benches"]["cache_replay"]["events_per_sec"]
    vector_rate = vector_round["benches"]["cache_replay"]["events_per_sec"]
    assert vector_rate >= 1.5 * previous_rate
    assert (vector_round["benches"]["multicore_batched"]
            ["speedup_vs_legacy"] > 1.0)
    assert (vector_round["benches"]["vector_pricing"]
            ["speedup_vs_legacy"] > 1.0)

    cluster_round = json.loads((perf_dir / "BENCH_2.json").read_text())
    assert validate_snapshot(cluster_round) == []
    assert cluster_round["quick"] is False
    assert cluster_round["schema_version"] == 3
    # The scale-out round adds the sharded-cluster bench to the suite.
    assert (cluster_round["benches"]["shard_scaling"]["speedup_vs_legacy"]
            is not None)
    assert cluster_round["benches"]["shard_scaling"]["events"] > 0

    latest = json.loads((perf_dir / "BENCH_3.json").read_text())
    assert validate_snapshot(latest) == []
    assert latest["quick"] is False
    assert latest["schema_version"] == PERF_SCHEMA_VERSION
    # The workloads round adds the cache-policy churn bench to the suite.
    assert latest["benches"]["emc_churn"]["events"] > 0
    assert latest["benches"]["emc_churn"]["lookups_per_sec"] > 0
