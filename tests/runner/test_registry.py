"""Experiment discovery: BENCH declarations become runnable specs."""

import pytest

from repro.analysis import experiments
from repro.runner import (
    UnknownExperimentError,
    discover,
    get_experiment,
    resolve_names,
)
from repro.runner.schema import validate_bench


def test_discover_finds_every_bench_module():
    specs = discover()
    # One spec per experiment module (every module declares BENCH).
    assert len(specs) == len(experiments.__all__)
    modules = {spec.module.rsplit(".", 1)[1] for spec in specs.values()}
    assert modules == set(experiments.__all__)


def test_specs_are_complete_and_quick_grids_shrink():
    for spec in discover().values():
        assert spec.artifact, spec.name
        assert spec.slug, spec.name
        assert spec.points(quick=False), spec.name
        # Quick mode only ever drops or shrinks points, never adds.
        quick_labels = {label for label, _ in spec.points(quick=True)}
        full_labels = {label for label, _ in spec.points(quick=False)}
        assert quick_labels <= full_labels, spec.name


def test_registry_order_is_stable_and_names_unique():
    first = list(discover())
    second = list(discover())
    assert first == second
    slugs = [spec.slug for spec in discover().values()]
    assert len(slugs) == len(set(slugs))


def test_get_experiment_unknown_name():
    with pytest.raises(UnknownExperimentError) as excinfo:
        get_experiment("fig99")
    assert "unknown experiment 'fig99'" in str(excinfo.value)
    assert "fig09" in str(excinfo.value)  # lists known names


def test_resolve_names_keeps_registry_order():
    specs = resolve_names(["fig09", "fig03"])
    assert [spec.name for spec in specs] == ["fig03", "fig09"]
    assert resolve_names([]) == list(discover().values())


def test_resolve_names_rejects_first_bad_name():
    with pytest.raises(UnknownExperimentError):
        resolve_names(["fig03", "nope"])


def test_validate_bench_rejects_malformed_declarations():
    good = {"name": "x", "artifact": "a", "slug": "s", "title": "t",
            "grid": [("default", {}, None)]}
    validate_bench("mod", good)
    with pytest.raises(ValueError, match="missing 'grid'"):
        validate_bench("mod", {k: v for k, v in good.items()
                               if k != "grid"})
    with pytest.raises(ValueError, match="not unique"):
        validate_bench("mod", dict(good, grid=[("a", {}, None),
                                               ("a", {}, None)]))
    with pytest.raises(ValueError, match="grid is empty"):
        validate_bench("mod", dict(good, grid=[]))
    with pytest.raises(TypeError):
        validate_bench("mod", "not-a-dict")
