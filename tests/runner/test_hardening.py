"""Campaign hardening at the ``execute()`` level: timeouts, resume, SIGINT.

These tests drive the scheduler's public entry points with a fake
experiment injected into the registry (children are forked and inherit
it), proving the end-to-end contracts the CI interrupt/resume job relies
on: hung workers become failure records while siblings survive,
journaled runs never re-execute under ``--resume``, and SIGINT drains
instead of aborting.
"""

import os
import signal

from repro.runner import (
    BenchSummary,
    ResultCache,
    RunFailure,
    execute,
    registry,
    run_benchmarks,
)
from repro.runner.journal import RunJournal
from repro.runner.pool import RunTimeoutError
from repro.runner.schema import ExperimentSpec, GridPoint

FAKE_NAME = "hardeningtest"


def _fake_run(label, params, seed):
    if "kill_rate" in params:
        return _cluster_chaos_run(label, params, seed)
    if "log" in params:
        with open(params["log"], "a", encoding="utf-8") as handle:
            handle.write(f"{label}\n")
    if params.get("hang"):
        import time
        time.sleep(30.0)
    if params.get("interrupt"):
        # Deterministic stand-in for the operator's Ctrl-C: deliver a
        # real SIGINT to ourselves mid-run; the scheduler's handler must
        # drain (finish this run, start no more), not abort.
        os.kill(os.getpid(), signal.SIGINT)
    return f"payload:{label}"


def _fake_report(payloads):
    return "\n".join(f"{label}: {value}" for label, value in payloads.items())


def _install_fake(monkeypatch, labels_params):
    registry.discover()
    spec = ExperimentSpec(
        name=FAKE_NAME, artifact="test", slug=FAKE_NAME,
        title="hardening test", module=__name__,
        grid=tuple(GridPoint(label, params, params)
                   for label, params in labels_params),
        run=_fake_run, report=_fake_report)
    monkeypatch.setitem(registry._cache, FAKE_NAME, spec)
    return spec


def _log_lines(path):
    return path.read_text().splitlines() if path.exists() else []


def test_supervised_timeout_is_a_failure_not_an_abort(monkeypatch):
    spec = _install_fake(monkeypatch, [("hang", {"hang": True}),
                                       ("quick", {})])
    summary = execute([spec], jobs=2, cache=None, use_cache=False,
                      timeout_s=1.0)
    assert not summary.ok
    assert len(summary.failures) == 1
    failure = summary.failures[0]
    assert failure.run_id == f"{FAKE_NAME}/hang"
    assert failure.error_type == RunTimeoutError.__name__
    assert failure.worker == "supervised-2"
    # The sibling run on the same pool completed normally.
    survivors = {result.run_id for result in summary.results}
    assert f"{FAKE_NAME}/quick" in survivors
    assert summary.metrics["runner.runs.failed"] == 1


def test_resume_serves_journaled_runs_without_reexecution(monkeypatch,
                                                          tmp_path):
    log = tmp_path / "executions.log"
    spec = _install_fake(monkeypatch, [("p1", {"log": str(log)}),
                                       ("p2", {"log": str(log)})])
    cache = ResultCache(tmp_path / "cache")
    journal_path = tmp_path / "campaign.jsonl"

    with RunJournal(journal_path).open_for(cache.fingerprint) as journal:
        first = execute([spec], jobs=1, cache=cache, journal=journal)
    assert first.ok
    assert sorted(_log_lines(log)) == ["p1", "p2"]

    # Resume with the cache *bypassed* (use_cache=False would normally
    # force recomputation): the journal alone authorises the skip, and
    # the payload replays from the cache — zero re-executions.
    with RunJournal(journal_path).open_for(cache.fingerprint) as journal:
        resumed = execute([spec], jobs=1, cache=cache, use_cache=False,
                          journal=journal, resume=True)
    assert resumed.ok
    assert sorted(_log_lines(log)) == ["p1", "p2"]  # unchanged
    assert all(result.worker == "resume" for result in resumed.results)
    assert resumed.cache_hits == 2
    assert resumed.cache_misses == 0


def test_stale_journal_does_not_authorise_skips(monkeypatch, tmp_path):
    """A journal written under different code (fingerprint mismatch)
    restarts empty, so resume re-runs everything."""
    log = tmp_path / "executions.log"
    spec = _install_fake(monkeypatch, [("p1", {"log": str(log)})])
    cache = ResultCache(tmp_path / "cache")
    journal_path = tmp_path / "campaign.jsonl"

    with RunJournal(journal_path).open_for("stale-fingerprint") as journal:
        journal.record_ok(f"{FAKE_NAME}/p1", "bogus-key", 1.0, "w")

    with RunJournal(journal_path).open_for(cache.fingerprint) as journal:
        assert journal.stale
        summary = execute([spec], jobs=1, cache=cache, use_cache=False,
                          journal=journal, resume=True)
    assert _log_lines(log) == ["p1"]
    assert all(not result.cache_hit for result in summary.results)


def test_sigint_drains_then_resume_finishes_the_rest(monkeypatch, tmp_path):
    log = tmp_path / "executions.log"
    grid = [("p1", {"log": str(log), "interrupt": True}),
            ("p2", {"log": str(log)}),
            ("p3", {"log": str(log)})]
    spec = _install_fake(monkeypatch, grid)
    cache = ResultCache(tmp_path / "cache")
    journal_path = tmp_path / "campaign.jsonl"

    with RunJournal(journal_path).open_for(cache.fingerprint) as journal:
        interrupted = execute([spec], jobs=1, cache=cache, journal=journal)
    assert interrupted.interrupted
    assert not interrupted.ok
    # The interrupting run itself completed (drain, not abort) and was
    # journaled; the rest never started.
    assert _log_lines(log) == ["p1"]
    assert [result.run_id for result in interrupted.results] \
        == [f"{FAKE_NAME}/p1"]
    assert "INTERRUPTED" in interrupted.render_footer()
    assert "re-run with --resume" in interrupted.reports[0].text

    with RunJournal(journal_path).open_for(cache.fingerprint) as journal:
        resumed = execute([spec], jobs=1, cache=cache, journal=journal,
                          resume=True)
    assert resumed.ok and not resumed.interrupted
    # p1 replayed from journal+cache; only p2/p3 actually executed.
    assert _log_lines(log) == ["p1", "p2", "p3"]
    assert len(resumed.results) == 3


def _cluster_chaos_run(label, params, seed):
    """A real chaos cluster run (kills + failover) as one campaign work
    unit; optionally interrupts the campaign after finishing, like an
    operator's Ctrl-C landing mid-sweep."""
    from repro.cluster import ClusterConfig, run_cluster
    from repro.faults import ShardFaultPlan

    plan = ShardFaultPlan.kills(params["kill_rate"], seed=11)
    result = run_cluster(ClusterConfig(
        shards=3, flows=32, lookups=96, seed=seed, retries=1,
        failover=True, detection_cycles=2048.0,
        shard_faults=plan.to_params() if plan else None))
    if "log" in params:
        with open(params["log"], "a", encoding="utf-8") as handle:
            handle.write(f"{label}:{len(result.failed_shards)}:"
                         f"{result.lost_flows}\n")
    if params.get("interrupt"):
        os.kill(os.getpid(), signal.SIGINT)
    return {"failed": result.failed_shards, "lost": result.lost_flows}


def test_sigint_during_cluster_chaos_drains_and_resumes(monkeypatch,
                                                        tmp_path):
    """Satellite contract: Ctrl-C landing while a chaos cluster run is in
    flight finishes that run (failover and all), journals it, and a
    ``--resume`` completes the rest with zero re-execution of the
    finished point."""
    log = tmp_path / "executions.log"
    grid = [("c1", {"log": str(log), "kill_rate": 0.4, "interrupt": True}),
            ("c2", {"log": str(log), "kill_rate": 0.0})]
    spec = _install_fake(monkeypatch, grid)
    cache = ResultCache(tmp_path / "cache")
    journal_path = tmp_path / "campaign.jsonl"

    with RunJournal(journal_path).open_for(cache.fingerprint) as journal:
        interrupted = execute([spec], jobs=1, cache=cache, journal=journal)
    assert interrupted.interrupted
    # The in-flight chaos run drained to completion: shards died, flows
    # were recovered, the payload was journaled.
    assert _log_lines(log) == ["c1:2:0"]
    assert interrupted.results[0].payload == {"failed": [1, 2], "lost": 0}

    with RunJournal(journal_path).open_for(cache.fingerprint) as journal:
        resumed = execute([spec], jobs=1, cache=cache, journal=journal,
                          resume=True)
    assert resumed.ok and not resumed.interrupted
    assert _log_lines(log) == ["c1:2:0", "c2:0:0"]  # c1 never re-ran
    by_label = {r.run_id: r for r in resumed.results}
    # c1 replayed without executing (journal/cache, not a worker).
    assert by_label[f"{FAKE_NAME}/c1"].worker in ("resume", "cache")
    assert by_label[f"{FAKE_NAME}/c1"].payload == {"failed": [1, 2],
                                                  "lost": 0}


def test_run_benchmarks_resume_keeps_a_journal_under_cache_root(tmp_path):
    first = run_benchmarks(["tab04"], jobs=1, quick=True,
                           cache_dir=tmp_path, resume=True)
    assert first.ok
    journals = list((tmp_path / "journals").glob("*.jsonl"))
    assert len(journals) == 1
    assert '"kind": "run"' in journals[0].read_text()

    second = run_benchmarks(["tab04"], jobs=1, quick=True,
                            cache_dir=tmp_path, resume=True)
    assert second.cache_hits == len(second.results)
    assert list((tmp_path / "journals").glob("*.jsonl")) == journals


def test_cli_bench_exits_130_when_interrupted(monkeypatch, capsys):
    import repro.__main__ as cli

    summary = BenchSummary(
        reports=[], results=[], jobs=1, quick=True, wall_s=0.0,
        cache_hits=1, cache_misses=0, cache_dir=None, fingerprint=None,
        interrupted=True)
    monkeypatch.setattr(cli, "run_benchmarks",
                        lambda *args, **kwargs: summary)
    assert cli.main(["bench", "--jobs", "1"]) == 130
    captured = capsys.readouterr()
    assert "--resume" in captured.err
    assert "INTERRUPTED" in captured.out
