"""Supervised pool semantics: deadlines, retries, crash detection, drain.

The hooks live at module level and the fake experiment is injected into
the registry cache before workers launch; children are forked, so they
inherit the injection and ``_execute_payload`` resolves it by name.
"""

import os
import pathlib
import time

import pytest

from repro.runner import registry
from repro.runner.pool import (
    PoolOutcome,
    RunTimeoutError,
    WorkerCrashedError,
    run_supervised,
)
from repro.runner.schema import ExperimentSpec, GridPoint, RunSpec

FAKE_NAME = "pooltest"


def _fake_run(label, params, seed):
    """One dispatchable behaviour per label, steered by ``params``."""
    if label.startswith("hang"):
        time.sleep(float(params.get("sleep_s", 30.0)))
        return "woke up"
    if label == "crash":
        os._exit(3)
    if label == "raise":
        raise ValueError("boom from the child")
    if label == "flaky":
        marker = pathlib.Path(params["marker"])
        if not marker.exists():
            marker.write_text("attempt 1 failed here")
            raise RuntimeError("transient failure, succeeds on retry")
        return "recovered"
    if "log" in params:
        with open(params["log"], "a", encoding="utf-8") as handle:
            handle.write(f"{label}\n")
    return f"payload:{label}"


def _fake_report(payloads):
    return "\n".join(f"{label}: {value}" for label, value in payloads.items())


def _install_fake(monkeypatch, labels_params):
    """Register a fake experiment under ``FAKE_NAME`` for this test."""
    registry.discover()  # fill the cache so injection survives get_experiment
    spec = ExperimentSpec(
        name=FAKE_NAME, artifact="test", slug=FAKE_NAME, title="pool test",
        module=__name__,
        grid=tuple(GridPoint(label, params, params)
                   for label, params in labels_params),
        run=_fake_run, report=_fake_report)
    monkeypatch.setitem(registry._cache, FAKE_NAME, spec)
    return spec


def _runs(labels_params):
    return [RunSpec(experiment=FAKE_NAME, label=label, params=params, seed=0)
            for label, params in labels_params]


def test_timeout_kills_hung_worker_sibling_survives(monkeypatch):
    grid = [("hang", {"sleep_s": 30.0}), ("quick", {})]
    _install_fake(monkeypatch, grid)
    outcomes, skipped = run_supervised(_runs(grid), jobs=2, timeout_s=1.0)
    assert skipped == []
    by_label = {outcome.spec.label: outcome for outcome in outcomes}
    hung = by_label["hang"]
    assert not hung.ok
    assert hung.error_type == RunTimeoutError.__name__
    assert "wall-clock budget" in hung.message
    assert by_label["quick"].ok
    assert by_label["quick"].payload == "payload:quick"


def test_retry_recovers_transient_failure(monkeypatch, tmp_path):
    grid = [("flaky", {"marker": str(tmp_path / "flaky.marker")})]
    _install_fake(monkeypatch, grid)
    outcomes, _ = run_supervised(_runs(grid), jobs=1, retries=1,
                                 backoff_s=0.01)
    assert len(outcomes) == 1
    outcome = outcomes[0]
    assert outcome.ok
    assert outcome.attempts == 2
    assert outcome.payload == "recovered"


def test_retries_exhausted_reports_final_failure(monkeypatch):
    grid = [("raise", {})]
    _install_fake(monkeypatch, grid)
    outcomes, _ = run_supervised(_runs(grid), jobs=1, retries=2,
                                 backoff_s=0.01)
    outcome = outcomes[0]
    assert not outcome.ok
    assert outcome.attempts == 3
    assert outcome.error_type == "ValueError"
    assert outcome.message == "boom from the child"
    assert "ValueError" in outcome.traceback


def test_worker_crash_is_distinguished_from_exception(monkeypatch):
    grid = [("crash", {})]
    _install_fake(monkeypatch, grid)
    outcomes, _ = run_supervised(_runs(grid), jobs=1)
    outcome = outcomes[0]
    assert not outcome.ok
    assert outcome.error_type == WorkerCrashedError.__name__
    assert "exited with code 3" in outcome.message


def test_should_stop_drains_in_flight_and_returns_queue(monkeypatch,
                                                        tmp_path):
    """SIGINT drain contract: once the stop flag flips, in-flight runs
    finish but nothing new dispatches; the untouched tail comes back."""
    log = tmp_path / "ran.log"
    grid = [("first", {"log": str(log)}),
            ("second", {"log": str(log)}),
            ("third", {"log": str(log)})]
    _install_fake(monkeypatch, grid)
    outcomes, skipped = run_supervised(
        _runs(grid), jobs=1, should_stop=log.exists)
    assert [outcome.spec.label for outcome in outcomes] == ["first"]
    assert outcomes[0].ok
    assert [spec.label for spec in skipped] == ["second", "third"]
    assert log.read_text().splitlines() == ["first"]


def test_outcomes_carry_wall_time(monkeypatch):
    grid = [("quick", {})]
    _install_fake(monkeypatch, grid)
    outcomes, _ = run_supervised(_runs(grid), jobs=1)
    assert isinstance(outcomes[0], PoolOutcome)
    assert outcomes[0].wall_s >= 0.0


def test_timeout_then_retry_gets_a_fresh_budget(monkeypatch, tmp_path):
    """A run killed at its deadline retries from scratch; a retry that
    behaves (sleeps under budget) completes."""
    marker = tmp_path / "slow.marker"
    grid = [("flaky", {"marker": str(marker)})]
    _install_fake(monkeypatch, grid)
    outcomes, _ = run_supervised(_runs(grid), jobs=1, timeout_s=5.0,
                                 retries=1, backoff_s=0.01)
    assert outcomes[0].ok
    assert outcomes[0].attempts == 2


# ---------------------------------------------------------------------------
# entrypoint redirection (the repro.cluster seam)


def _entry_ok(label, params, seed):
    return {"label": label, "doubled": params["x"] * 2, "seed": seed}


def _entry_raise(label, params, seed):
    raise RuntimeError(f"entry boom for {label}")


def test_entrypoint_redirects_children_away_from_registry():
    specs = [RunSpec(experiment="not-registered", label="a",
                     params={"x": 21}, seed=7)]
    outcomes, skipped = run_supervised(
        specs, jobs=1, entrypoint=f"{__name__}:_entry_ok")
    assert not skipped
    assert outcomes[0].ok
    assert outcomes[0].payload == {"label": "a", "doubled": 42, "seed": 7}
    assert outcomes[0].wall_s >= 0


def test_entrypoint_child_exception_carries_identity():
    specs = [RunSpec(experiment="x", label="b", params={}, seed=0)]
    outcomes, _ = run_supervised(
        specs, jobs=1, entrypoint=f"{__name__}:_entry_raise")
    assert not outcomes[0].ok
    assert outcomes[0].error_type == "RuntimeError"
    assert "entry boom for b" in outcomes[0].message


def test_malformed_entrypoint_fails_loudly():
    specs = [RunSpec(experiment="x", label="c", params={}, seed=0)]
    outcomes, _ = run_supervised(specs, jobs=1, entrypoint="no-colon-here")
    assert not outcomes[0].ok
    assert outcomes[0].error_type == "ValueError"
    assert "module:function" in outcomes[0].message


# ---------------------------------------------------------------------------
# failure classification (the cluster failover detection seam)


def _entry_stall(label, params, seed):
    from repro.guard import StallError
    raise StallError(blocked=(), now=512.0, stalled_events=4096)


def _entry_attempt(label, params, seed):
    from repro.runner.pool import current_attempt
    attempt = current_attempt()
    if attempt is not None and attempt < int(params.get("succeed_on", 1)):
        raise RuntimeError(f"failing attempt {attempt}")
    return attempt


@pytest.mark.parametrize("error_type,kind", [
    ("RunTimeoutError", "timeout"),
    ("WorkerCrashedError", "crash"),
    ("StallError", "livelock"),
    ("ValueError", "error"),
    ("RuntimeError", "error"),
])
def test_classify_failure_mapping(error_type, kind):
    from repro.runner.pool import classify_failure
    assert classify_failure(error_type) == kind


def test_livelock_is_not_conflated_with_timeout(monkeypatch):
    """A guard-detected stall (events firing, no progress) and a
    supervisor deadline kill are different diseases; the outcome says
    which one struck."""
    specs = [RunSpec(experiment="x", label="stall", params={}, seed=0)]
    outcomes, _ = run_supervised(specs, jobs=1, timeout_s=30.0,
                                 entrypoint=f"{__name__}:_entry_stall")
    outcome = outcomes[0]
    assert not outcome.ok
    assert outcome.error_type == "StallError"
    assert outcome.failure_kind == "livelock"


def test_timeout_and_crash_failure_kinds(monkeypatch):
    grid = [("hang", {"sleep_s": 30.0}), ("crash", {})]
    _install_fake(monkeypatch, grid)
    outcomes, _ = run_supervised(_runs(grid), jobs=2, timeout_s=1.0)
    kinds = {o.spec.label: o.failure_kind for o in outcomes}
    assert kinds == {"hang": "timeout", "crash": "crash"}


def test_successful_outcome_has_empty_failure_kind(monkeypatch):
    grid = [("quick", {})]
    _install_fake(monkeypatch, grid)
    outcomes, _ = run_supervised(_runs(grid), jobs=1)
    assert outcomes[0].ok
    assert outcomes[0].failure_kind == ""
    assert outcomes[0].attempt_failures == []


def test_attempt_failures_survive_a_recovered_retry(monkeypatch, tmp_path):
    """A run that flapped once and then succeeded still reports its
    failed first attempt — per-run health, not just the final verdict."""
    grid = [("flaky", {"marker": str(tmp_path / "flap.marker")})]
    _install_fake(monkeypatch, grid)
    outcomes, _ = run_supervised(_runs(grid), jobs=1, retries=1,
                                 backoff_s=0.01)
    outcome = outcomes[0]
    assert outcome.ok and outcome.failure_kind == ""
    assert [(f.attempt, f.kind) for f in outcome.attempt_failures] == \
        [(1, "error")]
    assert outcome.attempt_failures[0].error_type == "RuntimeError"
    assert outcome.attempt_failures[0].wall_s >= 0.0


def test_exhausted_retries_list_every_attempt(monkeypatch):
    grid = [("raise", {})]
    _install_fake(monkeypatch, grid)
    outcomes, _ = run_supervised(_runs(grid), jobs=1, retries=2,
                                 backoff_s=0.01)
    outcome = outcomes[0]
    assert not outcome.ok
    assert outcome.failure_kind == "error"
    assert [f.attempt for f in outcome.attempt_failures] == [1, 2, 3]


def test_current_attempt_is_none_in_the_parent():
    from repro.runner.pool import current_attempt
    assert current_attempt() is None


def test_current_attempt_counts_up_inside_children():
    specs = [RunSpec(experiment="x", label="n", params={"succeed_on": 2},
                     seed=0)]
    outcomes, _ = run_supervised(specs, jobs=1, retries=2, backoff_s=0.01,
                                 entrypoint=f"{__name__}:_entry_attempt")
    outcome = outcomes[0]
    assert outcome.ok
    assert outcome.payload == 2  # the attempt number the child saw
