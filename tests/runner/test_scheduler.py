"""Scheduler determinism and caching semantics, on real experiments.

Uses the two cheapest registry entries (``tab04`` and ``fig08`` quick
grids) so these tests exercise the real worker path end to end without
taking benchmark-scale time.
"""

from repro.obs import MetricsRegistry
from repro.runner import (
    ResultCache,
    derive_seed,
    execute,
    get_experiment,
    plan_runs,
    run_benchmarks,
)

CHEAP = ("tab04", "fig08")


def _specs():
    return [get_experiment(name) for name in CHEAP]


def test_derive_seed_is_stable_and_distinct():
    assert derive_seed("fig09", "dram_point") == derive_seed("fig09",
                                                             "dram_point")
    assert derive_seed("fig09", "dram_point") != derive_seed("fig09",
                                                             "size_2e03")
    assert derive_seed("a", "b") != derive_seed("b", "a")


def test_plan_runs_expands_active_grid_points():
    spec = get_experiment("fig09")
    full = plan_runs([spec], quick=False)
    quick = plan_runs([spec], quick=True)
    assert len(full) == len(spec.points(quick=False))
    assert len(quick) < len(full)
    assert all(run.seed == derive_seed(run.experiment, run.label)
               for run in full)


def test_parallel_matches_serial_exactly(tmp_path):
    serial = execute(_specs(), jobs=1, quick=True, cache=None,
                     use_cache=False)
    parallel = execute(_specs(), jobs=4, quick=True, cache=None,
                       use_cache=False)
    assert [r.text for r in serial.reports] \
        == [r.text for r in parallel.reports]
    assert [r.run_id for r in serial.results] \
        == [r.run_id for r in parallel.results]


def test_cache_second_run_hits_everything(tmp_path):
    cache = ResultCache(tmp_path)
    cold = execute(_specs(), jobs=1, quick=True, cache=cache)
    assert cold.cache_hits == 0
    assert cold.cache_misses == len(cold.results)

    warm = execute(_specs(), jobs=1, quick=True, cache=cache)
    assert warm.cache_hits == len(warm.results)
    assert warm.cache_misses == 0
    assert [r.text for r in warm.reports] \
        == [r.text for r in cold.reports]


def test_no_cache_recomputes_but_still_stores(tmp_path):
    cache = ResultCache(tmp_path)
    first = execute(_specs(), jobs=1, quick=True, cache=cache,
                    use_cache=False)
    assert first.cache_hits == 0
    # use_cache=False stored fresh results, so a cached run now hits.
    second = execute(_specs(), jobs=1, quick=True, cache=cache)
    assert second.cache_hits == len(second.results)


def test_runner_metrics_are_published(tmp_path):
    metrics = MetricsRegistry()
    summary = execute(_specs(), jobs=1, quick=True,
                      cache=ResultCache(tmp_path), metrics=metrics)
    snapshot = summary.metrics
    assert snapshot["runner.runs.total"] == len(summary.results)
    assert snapshot["runner.cache.misses"] == len(summary.results)
    assert snapshot["runner.jobs"] == 1
    assert snapshot["runner.run.wall_seconds"]["count"] \
        == len(summary.results)


def test_run_benchmarks_only_filter(tmp_path):
    summary = run_benchmarks(["tab04"], jobs=1, quick=True,
                             cache_dir=tmp_path)
    assert [report.name for report in summary.reports] == ["tab04"]
    footer = summary.render_footer()
    assert footer.startswith("bench summary: 1 runs")


def test_summary_json_is_self_describing(tmp_path):
    summary = run_benchmarks(["tab04"], jobs=1, quick=True,
                             cache_dir=tmp_path)
    payload = summary.to_json_dict()
    assert payload["cache"]["dir"] == str(tmp_path)
    assert payload["reports"]["tab04"]["sha256"]
    assert payload["runs"][0]["cache_hit"] is False
