"""Scheduler determinism and caching semantics, on real experiments.

Uses the two cheapest registry entries (``tab04`` and ``fig08`` quick
grids) so these tests exercise the real worker path end to end without
taking benchmark-scale time.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.runner import (
    BenchFailedError,
    BenchSummary,
    ResultCache,
    RunFailure,
    derive_seed,
    execute,
    get_experiment,
    plan_runs,
    run_benchmarks,
)
from repro.runner.schema import ExperimentSpec, GridPoint

CHEAP = ("tab04", "fig08")


def _specs():
    return [get_experiment(name) for name in CHEAP]


def _broken_fig08():
    """A fig08 spec whose first grid point carries empty params.

    Workers re-resolve the run hook from the registry by name, so the
    real ``bench_run`` executes — and crashes on ``params["trials"]`` —
    exercising the genuine failure path on both inline and pool workers.
    """
    real = get_experiment("fig08")
    good_label, good_params = real.points(quick=True)[0]
    return ExperimentSpec(
        name=real.name, artifact=real.artifact, slug=real.slug,
        title=real.title, module=real.module,
        grid=(GridPoint("broken", {}, {}),
              GridPoint(good_label, good_params, good_params)),
        run=real.run, report=real.report)


def test_derive_seed_is_stable_and_distinct():
    assert derive_seed("fig09", "dram_point") == derive_seed("fig09",
                                                             "dram_point")
    assert derive_seed("fig09", "dram_point") != derive_seed("fig09",
                                                             "size_2e03")
    assert derive_seed("a", "b") != derive_seed("b", "a")


def test_plan_runs_expands_active_grid_points():
    spec = get_experiment("fig09")
    full = plan_runs([spec], quick=False)
    quick = plan_runs([spec], quick=True)
    assert len(full) == len(spec.points(quick=False))
    assert len(quick) < len(full)
    assert all(run.seed == derive_seed(run.experiment, run.label)
               for run in full)


def test_parallel_matches_serial_exactly(tmp_path):
    serial = execute(_specs(), jobs=1, quick=True, cache=None,
                     use_cache=False)
    parallel = execute(_specs(), jobs=4, quick=True, cache=None,
                       use_cache=False)
    assert [r.text for r in serial.reports] \
        == [r.text for r in parallel.reports]
    assert [r.run_id for r in serial.results] \
        == [r.run_id for r in parallel.results]


def test_cache_second_run_hits_everything(tmp_path):
    cache = ResultCache(tmp_path)
    cold = execute(_specs(), jobs=1, quick=True, cache=cache)
    assert cold.cache_hits == 0
    assert cold.cache_misses == len(cold.results)

    warm = execute(_specs(), jobs=1, quick=True, cache=cache)
    assert warm.cache_hits == len(warm.results)
    assert warm.cache_misses == 0
    assert [r.text for r in warm.reports] \
        == [r.text for r in cold.reports]


def test_no_cache_recomputes_but_still_stores(tmp_path):
    cache = ResultCache(tmp_path)
    first = execute(_specs(), jobs=1, quick=True, cache=cache,
                    use_cache=False)
    assert first.cache_hits == 0
    # use_cache=False stored fresh results, so a cached run now hits.
    second = execute(_specs(), jobs=1, quick=True, cache=cache)
    assert second.cache_hits == len(second.results)


def test_runner_metrics_are_published(tmp_path):
    metrics = MetricsRegistry()
    summary = execute(_specs(), jobs=1, quick=True,
                      cache=ResultCache(tmp_path), metrics=metrics)
    snapshot = summary.metrics
    assert snapshot["runner.runs.total"] == len(summary.results)
    assert snapshot["runner.cache.misses"] == len(summary.results)
    assert snapshot["runner.jobs"] == 1
    assert snapshot["runner.run.wall_seconds"]["count"] \
        == len(summary.results)


def test_run_benchmarks_only_filter(tmp_path):
    summary = run_benchmarks(["tab04"], jobs=1, quick=True,
                             cache_dir=tmp_path)
    assert [report.name for report in summary.reports] == ["tab04"]
    footer = summary.render_footer()
    assert footer.startswith("bench summary: 1 runs")


def test_summary_json_is_self_describing(tmp_path):
    summary = run_benchmarks(["tab04"], jobs=1, quick=True,
                             cache_dir=tmp_path)
    payload = summary.to_json_dict()
    assert payload["cache"]["dir"] == str(tmp_path)
    assert payload["reports"]["tab04"]["sha256"]
    assert payload["runs"][0]["cache_hit"] is False
    assert payload["failures"] == []
    assert summary.ok


# -- crash containment -----------------------------------------------------
def test_inline_crash_becomes_failure_record_not_abort():
    summary = execute([_broken_fig08(), get_experiment("tab04")],
                      jobs=1, quick=True, cache=None, use_cache=False)
    assert not summary.ok
    assert len(summary.failures) == 1
    failure = summary.failures[0]
    assert failure.run_id == "fig08/broken"
    assert failure.error_type == "KeyError"
    assert failure.worker == "inline"
    assert "bench_run" in failure.traceback
    # The surviving grid point and the other experiment both completed.
    assert {r.run_id for r in summary.results} >= {"tab04/default"}
    assert summary.metrics["runner.runs.failed"] == 1


def test_pool_crash_keeps_remaining_runs_alive():
    summary = execute([_broken_fig08(), get_experiment("tab04")],
                      jobs=2, quick=True, cache=None, use_cache=False)
    assert len(summary.failures) == 1
    failure = summary.failures[0]
    assert failure.run_id == "fig08/broken"
    assert failure.worker.startswith("pool-")
    assert "KeyError" in failure.render()
    assert any(r.experiment == "tab04" for r in summary.results)


def test_failed_spec_report_shows_failure_not_partial_payloads():
    summary = execute([_broken_fig08()], jobs=1, quick=True,
                      cache=None, use_cache=False)
    fig08_report = summary.reports[0]
    assert "1 run(s) failed" in fig08_report.text
    assert "FAILED fig08/broken" in fig08_report.text
    assert "FAILED" in summary.render_footer()
    payload = summary.to_json_dict()
    assert payload["failures"][0]["error_type"] == "KeyError"
    assert payload["failures"][0]["traceback"]


def test_bench_failed_error_carries_records():
    failures = [RunFailure(experiment="x", label="p0",
                           error_type="ValueError", message="boom",
                           traceback="tb")]
    with pytest.raises(BenchFailedError) as excinfo:
        raise BenchFailedError(failures)
    assert excinfo.value.failures == failures
    assert "FAILED x/p0" in str(excinfo.value)


def test_cli_bench_exits_nonzero_on_failures(monkeypatch, capsys):
    import repro.__main__ as cli

    summary = BenchSummary(
        reports=[], results=[], jobs=1, quick=True, wall_s=0.0,
        cache_hits=0, cache_misses=0, cache_dir=None, fingerprint=None,
        failures=[RunFailure(experiment="x", label="p0",
                             error_type="ValueError", message="boom",
                             traceback="tb")])
    monkeypatch.setattr(cli, "run_benchmarks",
                        lambda *args, **kwargs: summary)
    assert cli.main(["bench", "--jobs", "1"]) == 1
    captured = capsys.readouterr()
    assert "FAILED x/p0" in captured.err
    assert "1 FAILED" in captured.out
