"""Content-addressed result cache: hits, misses, and invalidation."""

import pickle

from repro.runner.cache import (
    CACHE_FORMAT_VERSION,
    ResultCache,
    canonical_params,
)
from repro.runner.schema import RunSpec


def _spec(cache, experiment="exp", label="default", params=None, seed=1):
    params = {} if params is None else params
    key = cache.key(experiment, label, params, seed)
    return RunSpec(experiment=experiment, label=label, params=params,
                   seed=seed, cache_key=key)


def test_miss_then_hit_roundtrip(tmp_path):
    cache = ResultCache(tmp_path, fingerprint="f" * 16)
    spec = _spec(cache, params={"lookups": 10})
    assert cache.load(spec) is None
    cache.store(spec, payload={"rows": [1, 2, 3]}, wall_s=0.5)
    entry = cache.load(spec)
    assert entry["payload"] == {"rows": [1, 2, 3]}
    assert entry["wall_s"] == 0.5


def test_key_depends_on_every_identity_component(tmp_path):
    cache = ResultCache(tmp_path, fingerprint="f" * 16)
    base = cache.key("exp", "default", {"n": 1}, 1)
    assert cache.key("other", "default", {"n": 1}, 1) != base
    assert cache.key("exp", "other", {"n": 1}, 1) != base
    assert cache.key("exp", "default", {"n": 2}, 1) != base
    assert cache.key("exp", "default", {"n": 1}, 2) != base


def test_key_ignores_param_dict_ordering():
    cache = ResultCache(fingerprint="f" * 16)
    assert (cache.key("e", "l", {"a": 1, "b": 2}, 0)
            == cache.key("e", "l", {"b": 2, "a": 1}, 0))
    assert canonical_params({"b": 2, "a": 1}) == '{"a":1,"b":2}'


def test_code_change_invalidates_entries(tmp_path):
    """A new code fingerprint must never replay old results."""
    old = ResultCache(tmp_path, fingerprint="old-code")
    spec = _spec(old, params={"n": 1})
    old.store(spec, payload="stale", wall_s=0.1)
    assert old.load(spec)["payload"] == "stale"

    new = ResultCache(tmp_path, fingerprint="new-code")
    fresh_spec = _spec(new, params={"n": 1})
    assert new.load(fresh_spec) is None


def test_corrupt_entry_reads_as_miss(tmp_path):
    cache = ResultCache(tmp_path, fingerprint="f" * 16)
    spec = _spec(cache)
    cache.store(spec, payload=42, wall_s=0.0)
    path = cache.path_for(spec)
    path.write_bytes(b"not a pickle")
    assert cache.load(spec) is None
    # Wrong schema or key also misses.
    path.write_bytes(pickle.dumps({"schema": -1}))
    assert cache.load(spec) is None
    path.write_bytes(pickle.dumps({"schema": 1, "key": "wrong"}))
    assert cache.load(spec) is None


def test_format_version_bump_invalidates_entries(tmp_path):
    """Entries written under an older cache format must read as misses:
    a payload-layout change silently replayed would corrupt reports."""
    cache = ResultCache(tmp_path, fingerprint="f" * 16)
    spec = _spec(cache, params={"n": 7})
    cache.store(spec, payload="current", wall_s=0.1)
    path = cache.path_for(spec)

    entry = pickle.loads(path.read_bytes())
    assert entry["format"] == CACHE_FORMAT_VERSION

    # Rewrite in place as if an older repo version had produced the file.
    entry["format"] = CACHE_FORMAT_VERSION - 1
    path.write_bytes(pickle.dumps(entry))
    assert cache.load(spec) is None

    # Pre-versioning entries (no format field at all) miss too.
    del entry["format"]
    path.write_bytes(pickle.dumps(entry))
    assert cache.load(spec) is None


def test_format_version_is_part_of_the_key(monkeypatch):
    """The format version feeds the content address, so a bump redirects
    new stores to fresh paths instead of overwriting old entries."""
    import repro.runner.cache as cache_module

    cache = ResultCache(fingerprint="f" * 16)
    before = cache.key("exp", "default", {}, 1)
    monkeypatch.setattr(cache_module, "CACHE_FORMAT_VERSION",
                        CACHE_FORMAT_VERSION + 1)
    assert cache.key("exp", "default", {}, 1) != before


def test_store_is_atomic_no_temp_files_left(tmp_path):
    cache = ResultCache(tmp_path, fingerprint="f" * 16)
    spec = _spec(cache)
    cache.store(spec, payload=1, wall_s=0.0)
    leftovers = [p for p in (tmp_path / "exp").iterdir()
                 if p.name.startswith(".")]
    assert leftovers == []
