"""Campaign journal semantics: incremental append, crash-safe reload.

The journal's one job is that a campaign killed at run N costs nothing
from runs 1..N-1 on the next invocation — provided the code (source
fingerprint) has not changed underneath it.
"""

import json

from repro.runner.journal import (
    JOURNAL_VERSION,
    RunJournal,
    campaign_id,
    default_journal_path,
)

FP = "fingerprint-aaaa"


def test_records_survive_reopen(tmp_path):
    path = tmp_path / "campaign.jsonl"
    with RunJournal(path).open_for(FP) as journal:
        journal.record_ok("fig09/p0", "key-0", wall_s=1.5, worker="pool-1")
        journal.record_ok("fig09/p1", "key-1", wall_s=2.0, worker="pool-2")

    reloaded = RunJournal(path).open_for(FP)
    assert not reloaded.stale
    assert reloaded.completed_ok("fig09/p0", "key-0")
    assert reloaded.completed_ok("fig09/p1", "key-1")
    assert not reloaded.completed_ok("fig09/p2", "key-2")
    reloaded.close()


def test_completed_ok_requires_matching_cache_key(tmp_path):
    """A journaled run whose params/seed changed (different cache key)
    must not be skipped — the old result answers a different question."""
    path = tmp_path / "campaign.jsonl"
    with RunJournal(path).open_for(FP) as journal:
        journal.record_ok("fig09/p0", "key-old", wall_s=1.0, worker="w")

    reloaded = RunJournal(path).open_for(FP)
    assert reloaded.completed_ok("fig09/p0", "key-old")
    assert not reloaded.completed_ok("fig09/p0", "key-new")
    reloaded.close()


def test_failures_are_recorded_but_not_skippable(tmp_path):
    path = tmp_path / "campaign.jsonl"
    with RunJournal(path).open_for(FP) as journal:
        journal.record_failure("fig09/p0", "key-0", "RunTimeoutError")

    reloaded = RunJournal(path).open_for(FP)
    assert "fig09/p0" in reloaded.completed
    assert reloaded.completed["fig09/p0"]["error_type"] == "RunTimeoutError"
    assert not reloaded.completed_ok("fig09/p0", "key-0")
    reloaded.close()


def test_failure_kind_is_journaled(tmp_path):
    """Audit trail: a livelocked run and a timed-out run look identical
    by error count but must stay distinguishable in the journal."""
    path = tmp_path / "campaign.jsonl"
    with RunJournal(path).open_for(FP) as journal:
        journal.record_failure("fig09/p0", "key-0", "StallError",
                               failure_kind="livelock")
        journal.record_failure("fig09/p1", "key-1", "RunTimeoutError",
                               failure_kind="timeout")

    reloaded = RunJournal(path).open_for(FP)
    assert reloaded.completed["fig09/p0"]["failure_kind"] == "livelock"
    assert reloaded.completed["fig09/p1"]["failure_kind"] == "timeout"
    reloaded.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()[1:]]
    assert [line["failure_kind"] for line in lines] == \
        ["livelock", "timeout"]


def test_torn_tail_line_is_ignored(tmp_path):
    """A kill mid-append leaves a partial last line; reload keeps every
    complete record and drops only the torn one."""
    path = tmp_path / "campaign.jsonl"
    with RunJournal(path).open_for(FP) as journal:
        journal.record_ok("fig09/p0", "key-0", wall_s=1.0, worker="w")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "run", "run_id": "fig09/p1", "sta')

    reloaded = RunJournal(path).open_for(FP)
    assert not reloaded.stale
    assert reloaded.completed_ok("fig09/p0", "key-0")
    assert "fig09/p1" not in reloaded.completed
    reloaded.close()


def test_fingerprint_mismatch_restarts_journal(tmp_path):
    """Resume after a source change must re-run everything: results may
    legitimately differ, so old progress cannot be trusted."""
    path = tmp_path / "campaign.jsonl"
    with RunJournal(path).open_for(FP) as journal:
        journal.record_ok("fig09/p0", "key-0", wall_s=1.0, worker="w")

    restarted = RunJournal(path).open_for("fingerprint-bbbb")
    assert restarted.stale
    assert restarted.completed == {}
    restarted.close()
    header = json.loads(path.read_text().splitlines()[0])
    assert header == {
        "kind": "header", "version": JOURNAL_VERSION,
        "fingerprint": "fingerprint-bbbb", "created": header["created"],
    }


def test_garbage_file_restarts_journal(tmp_path):
    path = tmp_path / "campaign.jsonl"
    path.write_text("not json at all\n")
    journal = RunJournal(path).open_for(FP)
    assert journal.stale
    assert journal.completed == {}
    journal.close()


def test_later_record_wins_for_same_run(tmp_path):
    """A failed run retried to success in the same campaign resumes as
    done, not as failed."""
    path = tmp_path / "campaign.jsonl"
    with RunJournal(path).open_for(FP) as journal:
        journal.record_failure("fig09/p0", "key-0", "RunTimeoutError")
        journal.record_ok("fig09/p0", "key-0", wall_s=3.0, worker="w")

    reloaded = RunJournal(path).open_for(FP)
    assert reloaded.completed_ok("fig09/p0", "key-0")
    reloaded.close()


def test_write_requires_open():
    journal = RunJournal("/nonexistent/never-created.jsonl")
    try:
        journal.record_ok("r", "k", wall_s=0.0, worker="w")
    except RuntimeError as exc:
        assert "not open" in str(exc)
    else:
        raise AssertionError("expected RuntimeError")


def test_campaign_id_is_order_insensitive_and_shape_sensitive():
    base = campaign_id(["fig09", "tab04"], False, FP)
    assert campaign_id(["tab04", "fig09"], False, FP) == base
    assert campaign_id(["fig09"], False, FP) != base
    assert campaign_id(["fig09", "tab04"], True, FP) != base
    assert campaign_id(["fig09", "tab04"], False, "other") != base


def test_default_journal_path_lives_under_cache_root(tmp_path):
    path = default_journal_path(tmp_path, ["fig09"], True, FP)
    assert path.parent == tmp_path / "journals"
    assert path.name == f"{campaign_id(['fig09'], True, FP)}.jsonl"
