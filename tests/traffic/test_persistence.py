"""Workload save/load round trips, materialized and streaming."""

import itertools

import pytest

from repro.traffic import (
    FlowSet,
    PacketStream,
    iter_flow_set,
    load_flow_set,
    replay,
    save_flow_set,
    stream_flows,
    write_flow_stream,
)


def test_flow_set_roundtrip(tmp_path):
    original = FlowSet.generate(200, seed=5, groups=4)
    path = tmp_path / "flows.jsonl"
    written = save_flow_set(original, path)
    assert written == 200
    loaded, trace = load_flow_set(path)
    assert list(loaded.flows) == list(original.flows)
    assert trace == []


def test_packet_trace_roundtrip(tmp_path):
    flow_set = FlowSet.generate(50, seed=6)
    stream = PacketStream(flow_set, zipf_s=0.8, seed=7)
    packets = stream.take(120)
    indices = [flow_set.flows.index(flow) for flow in packets]
    path = tmp_path / "trace.jsonl"
    save_flow_set(flow_set, path, packet_indices=indices)
    loaded, trace = load_flow_set(path)
    assert [flow for flow in replay(loaded, trace)] == packets


def test_reject_foreign_file(tmp_path):
    path = tmp_path / "bogus.jsonl"
    path.write_text('{"format": "something-else"}\n')
    with pytest.raises(ValueError):
        load_flow_set(path)


def test_reject_out_of_range_trace(tmp_path):
    flow_set = FlowSet.generate(3, seed=8)
    path = tmp_path / "bad.jsonl"
    save_flow_set(flow_set, path, packet_indices=[0, 1, 2])
    text = path.read_text().replace('"trace": [0, 1, 2]',
                                    '"trace": [0, 1, 9]')
    path.write_text(text)
    with pytest.raises(ValueError):
        load_flow_set(path)


def test_iter_flow_set_streams_v1_files(tmp_path):
    flow_set = FlowSet.generate(100, seed=4, groups=2)
    path = tmp_path / "flows.jsonl"
    save_flow_set(flow_set, path, packet_indices=[0, 1, 0])
    flows = iter_flow_set(path)
    assert iter(flows) is flows                     # a lazy generator
    assert list(flows) == list(flow_set.flows)      # trace line skipped


def test_iter_flow_set_rejects_foreign_file(tmp_path):
    path = tmp_path / "bogus.jsonl"
    path.write_text('{"format": "something-else"}\n')
    with pytest.raises(ValueError):
        list(iter_flow_set(path))


def test_stream_roundtrip(tmp_path):
    flow_set = FlowSet.generate(500, seed=11)
    path = tmp_path / "trace.stream"
    written = write_flow_stream(path, flow_set.flows)
    assert written == 500
    assert list(stream_flows(path)) == list(flow_set.flows)


def test_stream_reader_is_lazy_and_validating(tmp_path):
    path = tmp_path / "trace.stream"
    write_flow_stream(path, FlowSet.generate(10, seed=1).flows)
    reader = stream_flows(path)
    assert iter(reader) is reader                   # generator protocol
    with open(path, "a", encoding="ascii") as handle:
        handle.write("1,2,3\n")                     # truncated record
    with pytest.raises(ValueError):
        list(stream_flows(path))
    bogus = tmp_path / "bogus.stream"
    bogus.write_text('{"format": "repro-flows-v1"}\n')
    with pytest.raises(ValueError):
        list(stream_flows(bogus))


def test_stream_records_carry_crc32(tmp_path):
    path = tmp_path / "trace.stream"
    write_flow_stream(path, FlowSet.generate(5, seed=2).flows)
    header, *records = path.read_text().splitlines()
    assert "repro-stream-v2" in header
    import zlib
    for record in records:
        payload, _, stated = record.rpartition(";")
        assert stated == f"{zlib.crc32(payload.encode('ascii')):08x}"


def test_stream_reader_detects_bit_flip(tmp_path):
    """A single flipped digit in a record's payload fails the CRC and
    names the corrupted line instead of replaying a different flow."""
    path = tmp_path / "trace.stream"
    write_flow_stream(path, FlowSet.generate(10, seed=3).flows)
    lines = path.read_text().splitlines()
    payload, _, crc = lines[4].rpartition(";")
    digits = list(payload)
    flip = next(i for i, c in enumerate(digits) if c.isdigit())
    digits[flip] = "3" if digits[flip] != "3" else "7"
    lines[4] = "".join(digits) + ";" + crc
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError, match=r":5: checksum mismatch"):
        list(stream_flows(path))


def test_stream_reader_detects_torn_record(tmp_path):
    path = tmp_path / "trace.stream"
    write_flow_stream(path, FlowSet.generate(4, seed=5).flows)
    text = path.read_text()
    path.write_text(text[:-9] + "\n")  # tail record lost its checksum
    with pytest.raises(ValueError, match="missing checksum"):
        list(stream_flows(path))


def test_stream_reader_accepts_legacy_v1_files(tmp_path):
    """Traces written before checksumming replay unchanged."""
    flows = list(FlowSet.generate(20, seed=9).flows)
    path = tmp_path / "legacy.stream"
    with path.open("w", encoding="ascii") as handle:
        handle.write('{"format": "repro-stream-v1"}\n')
        for flow in flows:
            handle.write(f"{flow.src_ip},{flow.dst_ip},{flow.src_port},"
                         f"{flow.dst_port},{flow.proto}\n")
    assert list(stream_flows(path)) == flows


def test_million_flow_stream_roundtrip(tmp_path):
    """Satellite regression: a million-flow trace round-trips through
    the stream format without ever being materialized in memory."""
    from repro.classifier.flow import make_flow

    count = 1_000_000
    path = tmp_path / "million.stream"
    written = write_flow_stream(
        path, (make_flow(i, group=i % 16)
               for i in range(count)))             # generator in, no list
    assert written == count

    replayed = stream_flows(path)
    regenerated = (make_flow(i, group=i % 16) for i in range(count))
    mismatches = sum(1 for a, b in itertools.zip_longest(replayed,
                                                         regenerated)
                     if a != b)
    assert mismatches == 0


def test_churn_trace_stream_roundtrip(tmp_path):
    """A churn-engine trace replays bit-identically from disk."""
    from repro.workloads import ChurnEngine, ChurnSpec

    spec = ChurnSpec.high_churn(seed=23)
    path = tmp_path / "churn.stream"
    written = write_flow_stream(path, ChurnEngine(spec).packets(20_000))
    assert written == 20_000
    assert (list(stream_flows(path))
            == list(ChurnEngine(spec).packets(20_000)))


def test_replayed_workload_classifies_identically(tmp_path):
    """End to end: a saved workload reproduces a run exactly."""
    from repro.classifier import OvsDatapath
    from repro.traffic import TrafficProfile
    profile = TrafficProfile(name="t", description="", num_flows=500,
                             num_rules=4)
    flow_set, rules = profile.build()
    stream = PacketStream(flow_set, zipf_s=0.5, seed=9)
    packets = stream.take(60)
    indices = [flow_set.flows.index(flow) for flow in packets]
    path = tmp_path / "workload.jsonl"
    save_flow_set(flow_set, path, packet_indices=indices)

    def run(flows):
        datapath = OvsDatapath(emc_enabled=False)
        for rule in rules:
            datapath.install_rule(rule)
        return [datapath.classify(flow).layer for flow in flows]

    loaded, trace = load_flow_set(path)
    assert run(packets) == run(list(replay(loaded, trace)))
