"""Workload save/load round trips."""

import pytest

from repro.traffic import (
    FlowSet,
    PacketStream,
    load_flow_set,
    replay,
    save_flow_set,
)


def test_flow_set_roundtrip(tmp_path):
    original = FlowSet.generate(200, seed=5, groups=4)
    path = tmp_path / "flows.jsonl"
    written = save_flow_set(original, path)
    assert written == 200
    loaded, trace = load_flow_set(path)
    assert list(loaded.flows) == list(original.flows)
    assert trace == []


def test_packet_trace_roundtrip(tmp_path):
    flow_set = FlowSet.generate(50, seed=6)
    stream = PacketStream(flow_set, zipf_s=0.8, seed=7)
    packets = stream.take(120)
    indices = [flow_set.flows.index(flow) for flow in packets]
    path = tmp_path / "trace.jsonl"
    save_flow_set(flow_set, path, packet_indices=indices)
    loaded, trace = load_flow_set(path)
    assert [flow for flow in replay(loaded, trace)] == packets


def test_reject_foreign_file(tmp_path):
    path = tmp_path / "bogus.jsonl"
    path.write_text('{"format": "something-else"}\n')
    with pytest.raises(ValueError):
        load_flow_set(path)


def test_reject_out_of_range_trace(tmp_path):
    flow_set = FlowSet.generate(3, seed=8)
    path = tmp_path / "bad.jsonl"
    save_flow_set(flow_set, path, packet_indices=[0, 1, 2])
    text = path.read_text().replace('"trace": [0, 1, 2]',
                                    '"trace": [0, 1, 9]')
    path.write_text(text)
    with pytest.raises(ValueError):
        load_flow_set(path)


def test_replayed_workload_classifies_identically(tmp_path):
    """End to end: a saved workload reproduces a run exactly."""
    from repro.classifier import OvsDatapath
    from repro.traffic import TrafficProfile
    profile = TrafficProfile(name="t", description="", num_flows=500,
                             num_rules=4)
    flow_set, rules = profile.build()
    stream = PacketStream(flow_set, zipf_s=0.5, seed=9)
    packets = stream.take(60)
    indices = [flow_set.flows.index(flow) for flow in packets]
    path = tmp_path / "workload.jsonl"
    save_flow_set(flow_set, path, packet_indices=indices)

    def run(flows):
        datapath = OvsDatapath(emc_enabled=False)
        for rule in rules:
            datapath.install_rule(rule)
        return [datapath.classify(flow).layer for flow in flows]

    loaded, trace = load_flow_set(path)
    assert run(packets) == run(list(replay(loaded, trace)))
