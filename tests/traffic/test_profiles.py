"""The paper's named traffic profiles."""

import pytest

from repro.traffic import FIGURE3_PROFILES, GROUP_MASKS, TrafficProfile, profile_by_name


def test_five_profiles_defined():
    assert len(FIGURE3_PROFILES) == 5
    names = [profile.name for profile in FIGURE3_PROFILES]
    assert len(set(names)) == 5


def test_profiles_scale_up():
    """Flows and rules grow across the five configurations (Fig. 3 x-axis)."""
    flows = [profile.num_flows for profile in FIGURE3_PROFILES]
    assert flows == sorted(flows)
    assert FIGURE3_PROFILES[0].num_flows == 10_000
    assert FIGURE3_PROFILES[-1].num_flows == 1_000_000
    assert FIGURE3_PROFILES[-1].num_rules == 20


def test_profile_by_name():
    profile = profile_by_name("small-10K")
    assert profile.num_flows == 10_000
    with pytest.raises(KeyError):
        profile_by_name("nope")


def test_rules_cover_every_flow():
    profile = TrafficProfile(name="t", description="", num_flows=2000,
                             num_rules=10)
    flow_set, rules = profile.build()
    for flow in flow_set.flows[:500]:
        assert any(rule.matches(flow) for rule in rules)


def test_rules_partition_traffic():
    """Each non-catch-all rule matches a meaningful share of flows."""
    profile = TrafficProfile(name="t", description="", num_flows=1000,
                             num_rules=5)
    flow_set, rules = profile.build()
    specific = rules[:-1]   # last is the catch-all
    for rule in specific:
        matched = sum(1 for flow in flow_set.flows if rule.matches(flow))
        assert matched >= 1000 / 5 * 0.9


def test_rule_masks_are_diverse():
    profile = TrafficProfile(name="t", description="", num_flows=100,
                             num_rules=12)
    flow_set, rules = profile.build()
    masks = {rule.mask for rule in rules[:-1]}
    assert len(masks) >= 6


def test_group_masks_distinct():
    assert len(set(GROUP_MASKS)) == len(GROUP_MASKS)


def test_priorities_descend():
    profile = TrafficProfile(name="t", description="", num_flows=100,
                             num_rules=4)
    _flow_set, rules = profile.build()
    priorities = [rule.priority for rule in rules]
    assert priorities == sorted(priorities, reverse=True)
    assert rules[-1].priority == 0   # catch-all lowest
