"""Traffic generation."""

import collections

import pytest

from repro.traffic import FlowSet, PacketStream, key_stream, random_keys


def test_flow_set_deterministic():
    first = FlowSet.generate(100, seed=5)
    second = FlowSet.generate(100, seed=5)
    assert list(first.flows) == list(second.flows)


def test_flow_set_distinct_flows():
    flows = FlowSet.generate(5000, seed=6)
    assert len({flow.pack() for flow in flows.flows}) == 5000


def test_flow_set_seed_changes_population():
    assert (list(FlowSet.generate(50, seed=1).flows)
            != list(FlowSet.generate(50, seed=2).flows))


def test_grouped_flow_set_round_robin():
    flows = FlowSet.generate(100, seed=7, groups=4)
    group_octets = collections.Counter(flow.dst_ip >> 16 & 0xFF
                                       for flow in flows.flows)
    assert len(group_octets) == 4
    assert all(count == 25 for count in group_octets.values())


def test_uniform_stream_covers_flows():
    flows = FlowSet.generate(50, seed=8)
    stream = PacketStream(flows, zipf_s=0.0, seed=9)
    seen = {flow.pack() for flow in stream.take(2000)}
    assert len(seen) >= 45


def test_zipf_stream_concentrates_traffic():
    flows = FlowSet.generate(1000, seed=10)
    skewed = PacketStream(flows, zipf_s=1.2, seed=11)
    counts = collections.Counter(flow.pack() for flow in skewed.take(5000))
    top_share = sum(count for _key, count in counts.most_common(10)) / 5000
    assert top_share > 0.25

    uniform = PacketStream(flows, zipf_s=0.0, seed=11)
    counts_uniform = collections.Counter(
        flow.pack() for flow in uniform.take(5000))
    top_share_uniform = sum(
        count for _key, count in counts_uniform.most_common(10)) / 5000
    assert top_share > top_share_uniform * 2


def test_stream_deterministic():
    flows = FlowSet.generate(100, seed=12)
    a = PacketStream(flows, zipf_s=0.5, seed=13).take(100)
    b = PacketStream(flows, zipf_s=0.5, seed=13).take(100)
    assert a == b


def test_stream_rejects_empty_flow_set():
    with pytest.raises(ValueError):
        PacketStream(FlowSet(()))


def test_key_stream_packs_flows():
    flows = FlowSet.generate(20, seed=14)
    keys = key_stream(flows, 50, seed=15)
    assert len(keys) == 50
    assert all(len(key) == 16 for key in keys)
    valid = {flow.pack() for flow in flows.flows}
    assert all(key in valid for key in keys)


def test_random_keys_distinct():
    keys = random_keys(3000, seed=16)
    assert len(set(keys)) == 3000
    assert all(len(key) == 16 for key in keys)


def test_random_keys_deterministic():
    assert random_keys(100, seed=17) == random_keys(100, seed=17)
