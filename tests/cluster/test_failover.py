"""Cluster self-healing: deterministic RSS failover re-steering,
minimal-move restore, and ``run_cluster(failover=True)`` recovering every
flow of every killed shard — identically in pool and inline dispatch."""

import pytest

from repro.cluster import ClusterConfig, RssBalancer, run_cluster
from repro.faults import ShardFaultPlan
from repro.obs import MetricsRegistry, TraceRecorder

QUICK = dict(flows=48, lookups=240)

#: Seed whose per-shard kill draws make rates 0.2/0.4/0.7 kill exactly
#: shards {1}, {1,2}, {1,2,3} of 4 (see cluster_chaos.FAULT_SEED).
FAULT_SEED = 11


def chaos_config(kill_rate, seed=1234, **overrides):
    plan = ShardFaultPlan.kills(kill_rate, seed=FAULT_SEED)
    defaults = dict(shards=4, seed=seed, retries=1, failover=True,
                    shard_faults=plan.to_params() if plan else None,
                    parallel=False, detection_cycles=4096.0, **QUICK)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


class TestFailShard:
    def test_resteers_every_entry_off_the_dead_shard(self):
        balancer = RssBalancer(4, table_size=32, seed=1)
        change = balancer.fail_shard(2)
        assert change.kind == "fail" and change.shard == 2
        assert len(change.moves) == 8  # round-robin init: 32/4 entries
        assert 2 not in balancer.table
        assert balancer.failed_shards == [2]
        assert balancer.healthy_shards == [0, 1, 3]

    def test_deterministic_across_instances(self):
        first = RssBalancer(5, table_size=64, seed=9)
        second = RssBalancer(5, table_size=64, seed=9)
        first.fail_shard(3)
        second.fail_shard(3)
        assert first.table == second.table
        assert first.steering_log == second.steering_log

    def test_survivors_stay_balanced(self):
        balancer = RssBalancer(4, table_size=128, seed=2)
        balancer.fail_shard(1)
        counts = [balancer.table.count(s) for s in (0, 2, 3)]
        assert max(counts) - min(counts) <= 1

    def test_each_change_bumps_the_epoch(self):
        balancer = RssBalancer(3, table_size=12)
        assert balancer.epoch == 0
        balancer.fail_shard(1)
        assert balancer.epoch == 1
        balancer.restore_shard(1)
        assert balancer.epoch == 2
        assert [c.epoch for c in balancer.steering_log] == [1, 2]

    def test_cascaded_failures_leave_last_survivor_serving(self):
        balancer = RssBalancer(3, table_size=12)
        balancer.fail_shard(1)
        balancer.fail_shard(2)
        assert set(balancer.table) == {0}
        with pytest.raises(ValueError, match="last healthy shard"):
            balancer.fail_shard(0)

    def test_double_fail_rejected(self):
        balancer = RssBalancer(3, table_size=12)
        balancer.fail_shard(1)
        with pytest.raises(ValueError, match="already marked failed"):
            balancer.fail_shard(1)


class TestRestoreShard:
    def test_restore_is_minimal_move_inverse(self):
        balancer = RssBalancer(4, table_size=64, seed=7)
        before = list(balancer.table)
        balancer.fail_shard(2)
        change = balancer.restore_shard(2)
        assert change.kind == "restore"
        assert balancer.table == before
        # Exactly the entries the shard owned moved back, nothing else.
        assert sorted(entry for entry, _f, _t in change.moves) == \
            [e for e, s in enumerate(before) if s == 2]

    def test_restore_after_rebalance_returns_new_home(self):
        """``home`` tracks deliberate assignment: entries rebalanced onto
        a shard before it died come back to it on restore."""
        from repro.traffic.generator import FlowSet, key_stream
        flow_set = FlowSet.generate(64, seed=5)
        keys = key_stream(flow_set, 2000, zipf_s=1.2, seed=6)
        balancer = RssBalancer(4, table_size=32, seed=5)
        balancer.rebalance(keys)
        homes = list(balancer.table)
        balancer.fail_shard(1)
        balancer.restore_shard(1)
        assert balancer.table == homes

    def test_restore_of_healthy_shard_rejected(self):
        balancer = RssBalancer(2, table_size=8)
        with pytest.raises(ValueError, match="not marked failed"):
            balancer.restore_shard(1)


class TestFailoverObservability:
    def test_counters_and_spans(self):
        metrics = MetricsRegistry()
        trace = TraceRecorder()
        balancer = RssBalancer(4, table_size=32, seed=1,
                               metrics=metrics, trace=trace)
        balancer.fail_shard(3)
        balancer.restore_shard(3)
        snapshot = metrics.snapshot()
        assert snapshot["cluster.failover.fail_events"] == 1
        assert snapshot["cluster.failover.restore_events"] == 1
        assert snapshot["cluster.failover.resteered_entries"] == 16
        assert snapshot["cluster.failover.unhealthy_shards"] == 0
        spans = [root for root in trace.roots
                 if root.name == "failover.resteer"]
        assert [span.attrs["kind"] for span in spans] == ["fail", "restore"]
        assert all(span.attrs["shard"] == 3 for span in spans)

    def test_unobserved_balancer_steers_identically(self):
        plain = RssBalancer(4, table_size=32, seed=1)
        wired = RssBalancer(4, table_size=32, seed=1,
                            metrics=MetricsRegistry(),
                            trace=TraceRecorder())
        plain.fail_shard(2)
        wired.fail_shard(2)
        assert plain.table == wired.table


class TestInstallHardening:
    def test_rejects_bool_entries(self):
        balancer = RssBalancer(2, table_size=4)
        with pytest.raises(ValueError, match="must be shard ids"):
            balancer.install([0, True, 0, 1])

    def test_rejects_routing_to_failed_shard(self):
        balancer = RssBalancer(2, table_size=4)
        balancer.fail_shard(1)
        with pytest.raises(ValueError, match="marked failed"):
            balancer.install([0, 1, 0, 1])

    def test_bad_install_leaves_table_untouched(self):
        balancer = RssBalancer(2, table_size=4)
        before = list(balancer.table)
        with pytest.raises(ValueError):
            balancer.install([0, 1, 9, 1])
        assert balancer.table == before and balancer.epoch == 0

    def test_rebalance_rejects_negative_max_moves(self):
        balancer = RssBalancer(2, table_size=4)
        with pytest.raises(ValueError, match="max_moves"):
            balancer.rebalance([], max_moves=-1)

    def test_fail_shard_rejects_non_int(self):
        balancer = RssBalancer(2, table_size=4)
        with pytest.raises(ValueError, match="must be an int"):
            balancer.fail_shard(True)


class TestRunClusterFailover:
    def test_zero_lost_flows_across_kill_rates(self):
        for rate, expected_dead in ((0.2, [1]), (0.4, [1, 2]),
                                    (0.7, [1, 2, 3])):
            result = run_cluster(chaos_config(rate))
            assert result.failed_shards == expected_dead
            assert result.lost_flows == 0
            assert result.total_lookups == QUICK["lookups"]
            assert result.recovery_lookups > 0
            assert result.resteered_entries > 0

    def test_degraded_epochs_one_per_victim_in_shard_order(self):
        result = run_cluster(chaos_config(0.7))
        assert result.degraded_epochs == {1: 1, 2: 2, 3: 3}

    def test_recovery_results_marked_degraded(self):
        result = run_cluster(chaos_config(0.4))
        degraded = [r for r in result.shard_results if r.degraded]
        healthy = [r for r in result.shard_results if not r.degraded]
        assert degraded and healthy
        assert sum(r.lookups for r in degraded) == result.recovery_lookups
        # Recovery runs execute on survivors only.
        assert all(r.shard not in result.failed_shards for r in degraded)

    def test_attempt_failures_recorded_per_victim(self):
        result = run_cluster(chaos_config(0.4))
        assert set(result.shard_attempt_failures) == {1, 2}
        for history in result.shard_attempt_failures.values():
            assert [h["attempt"] for h in history] == [1, 2]
            assert all(h["kind"] == "crash" for h in history)

    def test_no_fault_parity_is_exact(self):
        plain = run_cluster(ClusterConfig(shards=4, parallel=False,
                                          seed=1234, **QUICK))
        armed = run_cluster(chaos_config(0.0, shard_faults=None))
        assert armed.failed_shards == []
        assert (armed.p50_cycles, armed.p99_cycles, armed.makespan_cycles) \
            == (plain.p50_cycles, plain.p99_cycles, plain.makespan_cycles)
        assert armed.total_lookups == plain.total_lookups

    def test_flap_recovered_by_retry_without_failover(self):
        plan = ShardFaultPlan.flaky(1.0, attempts=1)
        result = run_cluster(chaos_config(
            0.0, shard_faults=plan.to_params()))
        assert result.failed_shards == []
        assert result.lost_flows == 0
        # Every shard flapped once, then recovered on attempt 2.
        assert all([h["attempt"] for h in history] == [1]
                   for history in result.shard_attempt_failures.values())

    def test_kill_without_failover_raises(self):
        config = chaos_config(0.4, failover=False)
        with pytest.raises(RuntimeError, match="failover is disabled"):
            run_cluster(config)

    def test_detection_cycles_shift_recovered_latencies(self):
        near = run_cluster(chaos_config(0.2, detection_cycles=1024.0))
        far = run_cluster(chaos_config(0.2, detection_cycles=65536.0))
        assert far.p99_cycles > near.p99_cycles
        assert near.total_lookups == far.total_lookups

    def test_failover_counters_through_run_cluster(self):
        metrics = MetricsRegistry()
        result = run_cluster(chaos_config(0.4), metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot["cluster.failover.fail_events"] == 2
        assert snapshot["cluster.failover.resteered_entries"] == \
            result.resteered_entries
        assert snapshot["cluster.failover.recovery_rounds"] == 1
        assert snapshot["cluster.failover.recovered_flows"] == \
            result.recovery_lookups
        assert snapshot["cluster.failover.unhealthy_shards"] == 2

    def test_cache_refill_measured_on_recovery_rounds(self):
        result = run_cluster(chaos_config(0.4, cache_policy="lru",
                                          cache_entries=16, zipf_s=1.1))
        cold = [r.cache for r in result.shard_results
                if r.degraded and r.cache]
        assert cold
        for info in cold:
            assert info["policy"] == "lru"
            assert info["misses"] >= 1  # a cold cache always misses first
            assert 0.0 < info["miss_rate"] <= 1.0


class TestPoolParity:
    def test_pool_and_inline_failover_agree_exactly(self):
        inline = run_cluster(chaos_config(0.4))
        pooled = run_cluster(chaos_config(0.4, parallel=None))
        assert pooled.mode == "pool"
        assert pooled.failed_shards == inline.failed_shards
        assert pooled.degraded_epochs == inline.degraded_epochs
        assert pooled.shard_attempt_failures == \
            inline.shard_attempt_failures
        assert pooled.resteered_entries == inline.resteered_entries
        assert pooled.total_lookups == inline.total_lookups
        assert (pooled.p50_cycles, pooled.p99_cycles,
                pooled.makespan_cycles) == \
            (inline.p50_cycles, inline.p99_cycles, inline.makespan_cycles)
