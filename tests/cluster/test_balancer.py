"""RSS balancer: deterministic hashing, statistical evenness on uniform
traffic (chi-square), and greedy rebalancing that provably shrinks the
hottest shard under Zipf skew."""

import pytest

from repro.cluster import RssBalancer
from repro.traffic.generator import FlowSet, key_stream, random_keys


def uniform_keys(count, seed=7):
    return random_keys(count, seed=seed)


def zipf_keys(count=4000, flows=256, s=1.2, seed=5):
    flow_set = FlowSet.generate(flows, seed=seed)
    return key_stream(flow_set, count, zipf_s=s, seed=seed + 1)


class TestValidation:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match=">= 1 shard"):
            RssBalancer(0)

    def test_rejects_table_smaller_than_shards(self):
        with pytest.raises(ValueError, match="table_size >= shards"):
            RssBalancer(8, table_size=4)

    def test_install_rejects_wrong_length(self):
        balancer = RssBalancer(2, table_size=8)
        with pytest.raises(ValueError, match="length 4 != configured"):
            balancer.install([0, 1, 0, 1])

    def test_install_rejects_out_of_range_shard(self):
        balancer = RssBalancer(2, table_size=4)
        with pytest.raises(ValueError, match="outside 0..1"):
            balancer.install([0, 1, 2, 0])


class TestDeterminism:
    def test_same_seed_same_routing_across_instances(self):
        keys = uniform_keys(500)
        first = RssBalancer(4, seed=9)
        second = RssBalancer(4, seed=9)
        assert [first.shard_of(k) for k in keys] == \
            [second.shard_of(k) for k in keys]

    def test_different_seed_different_routing(self):
        keys = uniform_keys(500)
        a = RssBalancer(4, seed=1)
        b = RssBalancer(4, seed=2)
        assert [a.shard_of(k) for k in keys] != \
            [b.shard_of(k) for k in keys]

    def test_pinned_hash_values(self):
        """The hash is a forever contract (shard workers re-derive their
        subsets from it across process and version boundaries): pin a
        few values so any accidental change to the mixer fails loudly."""
        balancer = RssBalancer(4, table_size=128, seed=0)
        assert balancer.entry_of(b"\x00" * 16) == 99
        assert balancer.entry_of(b"\xff" * 16) == 46
        assert balancer.entry_of(bytes(range(16))) == 63

    def test_rebalance_is_deterministic(self):
        keys = zipf_keys()
        first = RssBalancer(4, seed=3)
        second = RssBalancer(4, seed=3)
        moves_a = first.rebalance(keys).moves
        moves_b = second.rebalance(keys).moves
        assert moves_a == moves_b
        assert first.table == second.table


class TestUniformSpread:
    def test_chi_square_even_on_uniform_tuples(self):
        """Uniform 5-tuples spread evenly: chi-square over shard loads
        stays below the 0.001-significance critical value."""
        shards = 4
        keys = uniform_keys(8000)
        balancer = RssBalancer(shards, seed=0)
        loads = balancer.shard_loads(keys)
        assert sum(loads) == len(keys)
        expected = len(keys) / shards
        chi_square = sum((load - expected) ** 2 / expected
                         for load in loads)
        # df = 3, critical value at p=0.001 is 16.27.
        assert chi_square < 16.27, loads

    def test_imbalance_near_zero_on_uniform(self):
        balancer = RssBalancer(4, seed=0)
        assert balancer.imbalance(uniform_keys(8000)) < 0.10

    def test_distinct_key_memoisation_matches_per_key_hashing(self):
        balancer = RssBalancer(4, seed=0)
        keys = uniform_keys(64) * 10   # heavy repetition
        loads = balancer.entry_loads(keys)
        naive = [0] * balancer.table_size
        for key in keys:
            naive[balancer.entry_of(key)] += 1
        assert loads == naive


class TestRebalance:
    def test_zipf_skew_strictly_reduced(self):
        keys = zipf_keys()
        balancer = RssBalancer(4, seed=3)
        before = max(balancer.shard_loads(keys))
        result = balancer.rebalance(keys)
        after = max(balancer.shard_loads(keys))
        assert result.moves
        assert result.max_load_before == before
        assert result.max_load_after == after
        assert after < before          # strictly reduces the hot shard
        assert result.improved

    def test_max_never_increases_even_when_balanced(self):
        keys = uniform_keys(4000)
        balancer = RssBalancer(4, seed=0)
        before = max(balancer.shard_loads(keys))
        result = balancer.rebalance(keys)
        assert result.max_load_after <= before

    def test_loads_conserved_across_rebalance(self):
        keys = zipf_keys()
        balancer = RssBalancer(4, seed=3)
        total_before = sum(balancer.shard_loads(keys))
        balancer.rebalance(keys)
        assert sum(balancer.shard_loads(keys)) == total_before

    def test_flows_move_in_entry_groups(self):
        """Rebalancing rewrites indirection entries, never the hash: a
        key's entry is invariant, only the entry's shard changes."""
        keys = zipf_keys()
        balancer = RssBalancer(4, seed=3)
        entries_before = [balancer.entry_of(k) for k in keys[:100]]
        balancer.rebalance(keys)
        assert [balancer.entry_of(k) for k in keys[:100]] == entries_before
