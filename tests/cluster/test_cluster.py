"""The cluster orchestrator: inline and supervised-pool dispatch agree
exactly, shards partition the stream, rebalancing triggers on skew, and
the daemonic-process fallback keeps clusters usable *inside* pool
workers."""

import multiprocessing

import pytest

from repro.cluster import ClusterConfig, run_cluster
from repro.cluster.cluster import SHARD_ENTRYPOINT
from repro.cluster.shards import run_shard

QUICK = dict(flows=48, lookups=240)


class TestConfigValidation:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            ClusterConfig(shards=0)

    def test_rejects_zero_sockets(self):
        with pytest.raises(ValueError, match="sockets must be >= 1"):
            ClusterConfig(sockets=0)

    def test_rejects_zero_lookups(self):
        with pytest.raises(ValueError, match="lookups must be >= 1"):
            ClusterConfig(lookups=0)


class TestInlineDispatch:
    def test_stream_partitions_exactly(self):
        result = run_cluster(ClusterConfig(shards=3, parallel=False,
                                           **QUICK))
        assert result.mode == "inline"
        assert result.total_lookups == QUICK["lookups"]
        assert sum(r.lookups for r in result.shard_results) == \
            QUICK["lookups"]
        assert result.total_found == QUICK["lookups"]  # all keys inserted
        assert sorted(r.shard for r in result.shard_results) == [0, 1, 2]

    def test_latency_merge_matches_shard_counts(self):
        result = run_cluster(ClusterConfig(shards=3, parallel=False,
                                           **QUICK))
        merged = result.merged_latency()
        assert merged.count == result.total_lookups
        assert result.p99_cycles >= result.p50_cycles > 0
        assert result.throughput_per_kcycle > 0

    def test_single_shard_cluster(self):
        result = run_cluster(ClusterConfig(shards=1, parallel=False,
                                           **QUICK))
        assert result.mode == "inline"   # one shard never needs the pool
        assert result.max_shard_fraction == 1.0

    def test_deterministic_across_calls(self):
        config = ClusterConfig(shards=2, parallel=False, **QUICK)
        first = run_cluster(config)
        second = run_cluster(config)
        assert [r.elapsed_cycles for r in first.shard_results] == \
            [r.elapsed_cycles for r in second.shard_results]
        assert first.p99_cycles == second.p99_cycles


class TestPoolDispatch:
    def test_pool_and_inline_agree_exactly(self):
        inline = run_cluster(ClusterConfig(shards=2, parallel=False,
                                           **QUICK))
        pooled = run_cluster(ClusterConfig(shards=2, parallel=True,
                                           **QUICK))
        assert pooled.mode == "pool"
        assert [r.elapsed_cycles for r in pooled.shard_results] == \
            [r.elapsed_cycles for r in inline.shard_results]
        assert pooled.p99_cycles == inline.p99_cycles
        assert pooled.throughput_per_kcycle == \
            inline.throughput_per_kcycle
        assert [r.mem for r in pooled.shard_results] == \
            [r.mem for r in inline.shard_results]

    def test_entrypoint_dispatch_through_supervised_pool(self):
        """run_shard is reachable by dotted path — the contract the
        orchestrator (and any external harness) depends on."""
        from repro.runner.pool import run_supervised
        from repro.runner.schema import RunSpec

        config = ClusterConfig(shards=2, parallel=False, **QUICK)
        inline = run_shard("shard00", _shard_params(config, 0), 0)
        specs = [RunSpec(experiment="cluster", label="shard00",
                         params=_shard_params(config, 0), seed=0)]
        outcomes, skipped = run_supervised(specs, jobs=1,
                                           entrypoint=SHARD_ENTRYPOINT)
        assert not skipped
        assert outcomes[0].ok, outcomes[0].message
        assert outcomes[0].payload.elapsed_cycles == inline.elapsed_cycles

    def test_daemonic_process_falls_back_inline(self, monkeypatch):
        class _FakeDaemon:
            daemon = True

        monkeypatch.setattr(multiprocessing, "current_process",
                            lambda: _FakeDaemon())
        result = run_cluster(ClusterConfig(shards=2, **QUICK))
        assert result.mode == "inline"

    def test_daemonic_process_rejects_forced_parallel(self, monkeypatch):
        class _FakeDaemon:
            daemon = True

        monkeypatch.setattr(multiprocessing, "current_process",
                            lambda: _FakeDaemon())
        with pytest.raises(RuntimeError, match="daemonic"):
            run_cluster(ClusterConfig(shards=2, parallel=True, **QUICK))


class TestRebalanceTrigger:
    def test_below_threshold_does_not_trigger(self):
        result = run_cluster(ClusterConfig(shards=2, rebalance=True,
                                           rebalance_threshold=0.5,
                                           parallel=False, flows=256,
                                           lookups=2000))
        assert result.imbalance_before < 0.5
        assert not result.rebalanced
        assert result.rebalance_moves == 0

    def test_skew_triggers_and_improves(self):
        skewed = ClusterConfig(shards=4, zipf_s=1.2, parallel=False,
                               flows=128, lookups=1200)
        without = run_cluster(skewed)
        with_rebalance = run_cluster(
            ClusterConfig(shards=4, zipf_s=1.2, rebalance=True,
                          parallel=False, flows=128, lookups=1200))
        assert with_rebalance.rebalanced
        assert with_rebalance.rebalance_moves > 0
        assert (with_rebalance.max_shard_fraction
                < without.max_shard_fraction)
        assert (with_rebalance.imbalance_after
                < with_rebalance.imbalance_before)

    def test_threshold_gates_the_rewrite(self):
        permissive = run_cluster(
            ClusterConfig(shards=4, zipf_s=1.2, rebalance=True,
                          rebalance_threshold=10.0, parallel=False,
                          flows=128, lookups=1200))
        assert not permissive.rebalanced


class TestShardEdgeCases:
    def test_empty_shard_returns_zero_result(self):
        config = ClusterConfig(shards=2, parallel=False, **QUICK)
        params = _shard_params(config, 0)
        params["assignments"] = [1] * config.table_size  # starve shard 0
        result = run_shard("shard00", params, 0)
        assert result.lookups == 0
        assert result.elapsed_cycles == 0.0
        assert result.latency_histogram().count == 0

    def test_multi_socket_shard_reports_link_traffic(self):
        result = run_cluster(ClusterConfig(shards=1, sockets=2,
                                           parallel=False, **QUICK))
        assert result.link_crossings > 0
        single = run_cluster(ClusterConfig(shards=1, sockets=1,
                                           parallel=False, **QUICK))
        assert single.link_crossings == 0


def _shard_params(config, shard):
    from repro.cluster.balancer import RssBalancer
    from repro.cluster.cluster import _shard_params as build

    balancer = RssBalancer(config.shards, table_size=config.table_size,
                           seed=config.seed)
    return build(config, shard, list(balancer.table))
