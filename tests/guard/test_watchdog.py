"""Watchdog semantics: deadlock dumps, livelock, budgets, attachment.

The acceptance fixture for the whole safety net lives here: a synthetic
two-``Resource`` deadlock (each process holds one and requests the
other) must raise :class:`DeadlockError` naming *both* blocked processes
and the waitables they are stuck on.
"""

import pytest

from repro.guard import (
    BudgetExceededError,
    DeadlockError,
    EngineGuard,
    StallError,
    Watchdog,
    WatchdogConfig,
    default_guard,
)
from repro.sim.engine import Engine, Resource, SimulationError


def two_resource_deadlock(engine):
    """The classic ABBA inversion: returns the two process handles."""
    lock_a = Resource(engine, capacity=1)
    lock_b = Resource(engine, capacity=1)

    def worker(first, second):
        yield first.acquire()
        yield engine.timeout(1)
        yield second.acquire()

    forward = engine.process(worker(lock_a, lock_b), name="forward")
    reverse = engine.process(worker(lock_b, lock_a), name="reverse")
    return forward, reverse


def test_two_resource_deadlock_names_both_processes():
    engine = Engine()
    two_resource_deadlock(engine)
    engine.attach_guard(default_guard())
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    error = excinfo.value
    assert {entry.name for entry in error.blocked} == {"forward", "reverse"}
    message = str(error)
    assert "forward" in message and "reverse" in message
    # The dump says *what* each process waits on, not just that it waits.
    assert all("Resource(capacity=1, in_use=1)" in entry.waiting_on
               for entry in error.blocked)
    assert all("queue position 1/1" in entry.waiting_on
               for entry in error.blocked)


def test_deadlock_error_carries_structured_context():
    engine = Engine()
    two_resource_deadlock(engine)
    engine.attach_guard(default_guard())
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    assert excinfo.value.now == engine.now
    assert excinfo.value.events_processed == engine.events_processed


def test_unguarded_engine_drains_silently_on_deadlock():
    """The contrast case the watchdog exists for: without a guard the
    calendar just empties and run() returns as if nothing was wrong."""
    engine = Engine()
    forward, reverse = two_resource_deadlock(engine)
    engine.run()
    assert not forward.done and not reverse.done
    assert len(engine.blocked_processes()) == 2


def test_until_bound_never_false_positives():
    """Deadlock detection keys off a *true* drain; returning at the
    ``until`` bound with blocked processes is not a deadlock."""
    engine = Engine()
    two_resource_deadlock(engine)

    def ticker():
        while True:
            yield engine.timeout(10)

    engine.process(ticker(), name="ticker")
    engine.attach_guard(default_guard())
    engine.run(until=200)  # must not raise
    assert engine.now == 200


def test_clean_completion_raises_nothing():
    engine = Engine()

    def worker():
        yield engine.timeout(5)
        return "done"

    engine.attach_guard(default_guard())
    assert engine.run_process(worker()) == "done"


def test_stall_detection_catches_zero_time_livelock():
    engine = Engine()

    def spinner():
        while True:
            yield None  # reschedules at the same cycle forever

    engine.process(spinner(), name="spinner")
    engine.attach_guard(default_guard(
        WatchdogConfig(stall_events=200)))
    with pytest.raises(StallError) as excinfo:
        engine.run()
    assert excinfo.value.stalled_events >= 200
    assert engine.now == excinfo.value.now


def test_cycle_budget():
    engine = Engine()

    def ticker():
        while True:
            yield engine.timeout(1)

    engine.process(ticker())
    engine.attach_guard(default_guard(WatchdogConfig(max_cycles=100)))
    with pytest.raises(BudgetExceededError) as excinfo:
        engine.run()
    assert excinfo.value.budget == "cycle"
    assert excinfo.value.limit == 100


def test_event_budget():
    engine = Engine()

    def ticker():
        while True:
            yield engine.timeout(1)

    engine.process(ticker())
    engine.attach_guard(default_guard(WatchdogConfig(max_events=50,
                                                     stall_events=None)))
    with pytest.raises(BudgetExceededError) as excinfo:
        engine.run()
    assert excinfo.value.budget == "event"


def test_wall_clock_budget():
    engine = Engine()

    def ticker():
        while True:
            yield engine.timeout(1)

    engine.process(ticker())
    # A zero-second budget sampled every event trips on the first check.
    engine.attach_guard(default_guard(
        WatchdogConfig(max_wall_seconds=0.0, wall_check_every=1)))
    with pytest.raises(BudgetExceededError) as excinfo:
        engine.run()
    assert excinfo.value.budget == "wall-clock"


def test_budgets_measure_from_attachment_not_construction():
    engine = Engine()

    def ticker(cycles):
        for _ in range(cycles):
            yield engine.timeout(1)

    engine.run_process(ticker(500))
    assert engine.now == 500
    # 500 warm-up cycles must not count against a 100-cycle budget.
    engine.attach_guard(default_guard(WatchdogConfig(max_cycles=100)))
    engine.run_process(ticker(50))
    assert engine.now == 550


def test_one_guard_per_engine():
    engine = Engine()
    engine.attach_guard(default_guard())
    with pytest.raises(SimulationError, match="already attached"):
        engine.attach_guard(default_guard())


def test_detach_restores_unguarded_drain():
    engine = Engine()
    two_resource_deadlock(engine)
    engine.attach_guard(default_guard())
    engine.detach_guard()
    assert engine.guard is None
    engine.run()  # silent drain again: the guard really is gone


def test_guard_observes_every_event():
    engine = Engine()

    def worker():
        for _ in range(10):
            yield engine.timeout(1)

    guard = EngineGuard(watchdog=Watchdog())
    engine.attach_guard(guard)
    engine.run_process(worker())
    assert guard.events_observed == engine.events_processed
