"""Invariant checker semantics and the built-in seam catalog.

Each built-in invariant is tested both ways: quiet on a healthy model
object, loud when the seam is corrupted the way a real bug would corrupt
it (over-filled cache set, lost resource wakeup, unpaired lock bits,
impossible NoC hop totals).
"""

import pytest

from repro.core import HaloSystem
from repro.guard import (
    EngineGuard,
    Invariant,
    InvariantChecker,
    InvariantViolation,
    attach_standard_guard,
    cache_occupancy,
    interconnect_conservation,
    lock_bit_accounting,
    resource_conservation,
    standard_invariants,
    store_consistency,
)
from repro.sim.cache import Cache, LineState
from repro.sim.engine import Engine, Resource, Store
from repro.sim.params import CacheParams

from ..conftest import make_keys


def tiny_cache():
    return Cache("test", CacheParams(size_bytes=4096, associativity=4,
                                     line_bytes=64))


# -- checker mechanics -------------------------------------------------------

def test_cadence_sampling():
    engine = Engine()

    def ticker():
        for _ in range(100):
            yield engine.timeout(1)

    probe = Invariant("probe", lambda: None)
    guard = EngineGuard(invariants=[probe], cadence=10)
    engine.attach_guard(guard)
    engine.run_process(ticker())
    # ~1 check per 10 events plus the drain sweep; exact count depends on
    # event count, but it must be sampled, not per-event.
    assert 0 < guard.checker.checks < engine.events_processed


def test_strict_mode_raises_at_first_violation():
    engine = Engine()

    def ticker():
        for _ in range(50):
            yield engine.timeout(1)

    bad = Invariant("always.bad", lambda: "seam corrupted")
    engine.attach_guard(EngineGuard(invariants=[bad], cadence=1))
    with pytest.raises(InvariantViolation) as excinfo:
        engine.run_process(ticker())
    assert excinfo.value.name == "always.bad"
    assert "seam corrupted" in str(excinfo.value)


def test_non_strict_mode_records_and_continues():
    engine = Engine()

    def ticker():
        for _ in range(50):
            yield engine.timeout(1)

    bad = Invariant("always.bad", lambda: "seam corrupted")
    guard = EngineGuard(invariants=[bad], cadence=5, strict=False)
    engine.attach_guard(guard)
    engine.run_process(ticker())  # must not raise
    assert engine.now == 50
    assert len(guard.checker.violations) > 1
    name, detail, _cycle = guard.checker.violations[0]
    assert (name, detail) == ("always.bad", "seam corrupted")
    assert guard.as_dict()["invariant_violations"] \
        == len(guard.checker.violations)


def test_drain_runs_final_sweep():
    """A violation introduced after the last cadence sample still
    surfaces: check_now runs once more when the calendar empties."""
    engine = Engine()
    state = {"bad": False}

    def worker():
        yield engine.timeout(1)
        state["bad"] = True  # corrupt *after* the last sampled check

    probe = Invariant("late", lambda: "late break" if state["bad"] else None)
    engine.attach_guard(EngineGuard(invariants=[probe], cadence=10_000))
    with pytest.raises(InvariantViolation, match="late break"):
        engine.run_process(worker())


def test_cadence_must_be_positive():
    with pytest.raises(ValueError):
        InvariantChecker([], cadence=0)


# -- built-in seam invariants ------------------------------------------------

def test_cache_occupancy_quiet_then_loud():
    cache = tiny_cache()
    for line in range(64):
        cache.fill(line)
    invariant = cache_occupancy(cache)
    assert invariant.predicate() is None
    # Corrupt a set past its associativity, as a broken fill path would.
    victim_set = cache._sets[0]
    for extra in range(1000, 1000 + cache.assoc + 1):
        victim_set[extra * cache.num_sets] = LineState()
    detail = invariant.predicate()
    assert detail is not None and "ways" in detail


def test_resource_conservation_quiet_then_loud():
    engine = Engine()
    resource = Resource(engine, capacity=2)
    invariant = resource_conservation(resource, "mshr")
    resource.acquire()
    assert invariant.predicate() is None
    # A lost wakeup: a live waiter queued while a slot sits free.
    resource.acquire()
    resource.acquire()          # queued (capacity exhausted)
    resource.in_use = 1         # corrupt: slot freed without a handoff
    detail = invariant.predicate()
    assert detail is not None and "starvation" in detail


def test_resource_conservation_catches_impossible_in_use():
    engine = Engine()
    resource = Resource(engine, capacity=2)
    invariant = resource_conservation(resource, "mshr")
    resource.in_use = 3
    assert "outside" in invariant.predicate()


def test_store_consistency_quiet_then_loud():
    engine = Engine()
    store = Store(engine)
    invariant = store_consistency(store, "results")
    store.put("item")
    assert invariant.predicate() is None
    drained = Store(engine)
    drained.get()                   # a live getter queues on empty store
    drained._items.append("lost")   # corrupt: item buffered past a getter
    detail = store_consistency(drained, "cmd").predicate()
    assert detail is not None and "getter" in detail


def test_lock_bit_accounting_on_live_system():
    system = HaloSystem(observability=False)
    invariant = lock_bit_accounting(system.lock_manager)
    assert invariant.predicate() is None
    # Corrupt: an unlock that never had a matching lock.
    system.lock_manager.stats.unlock_operations += 1
    assert "unlock without matching lock" in invariant.predicate()


def test_interconnect_conservation_on_live_system():
    system = HaloSystem(observability=False)
    interconnect = system.hierarchy.interconnect
    invariant = interconnect_conservation(interconnect)
    assert invariant.predicate() is None
    interconnect.stats.messages = 1
    interconnect.stats.total_hops = interconnect.stops + 1
    assert "worst case" in invariant.predicate()


# -- the standard catalog over a real system ---------------------------------

def test_standard_invariants_cover_every_seam():
    system = HaloSystem(observability=False)
    names = {invariant.name for invariant in standard_invariants(system)}
    hierarchy = system.hierarchy
    expected_caches = len(hierarchy.l1) + len(hierarchy.l2) \
        + len(hierarchy.llc)
    assert sum(1 for n in names if n.startswith("cache.")) \
        == expected_caches
    assert sum(1 for n in names if n.startswith("resource.scoreboard.")) \
        == len(system.accelerators)
    assert "locks.pairing" in names
    assert "interconnect.conservation" in names


def test_standard_guard_clean_on_real_workload():
    system = HaloSystem()
    guard = attach_standard_guard(system)
    table = system.create_table(1024, name="guarded")
    inserted = []
    for index, key in enumerate(make_keys(300, seed=17)):
        if table.insert(key, index):
            inserted.append(key)
    system.warm_table(table)
    backend = system.backend("halo-b")
    system.engine.run_process(backend.lookup_stream(table, inserted[:60]))
    stats = guard.as_dict()
    assert stats["invariant_violations"] == 0
    assert stats["invariant_checks"] > 0
    assert stats["events_observed"] == system.engine.events_processed
    # The guard publishes through the system's metrics registry.
    snapshot = system.obs.metrics.snapshot()
    assert snapshot["guard.invariant_violations"] == 0


def test_nonstrict_violations_become_trace_spans():
    system = HaloSystem()
    bad = Invariant("planted.bad", lambda: "planted detail")
    guard = EngineGuard(invariants=[bad], cadence=50, strict=False,
                        trace=system.obs.trace)
    system.engine.attach_guard(guard)
    table = system.create_table(512, name="traced")
    keys = make_keys(50, seed=3)
    for index, key in enumerate(keys):
        table.insert(key, index)
    backend = system.backend("halo-b")
    system.engine.run_process(backend.lookup_stream(table, keys[:20]))
    assert guard.checker.violations
    spans = [span for span in system.obs.trace.roots
             if span.name == "guard.violation"]
    assert spans
    assert spans[0].attrs["invariant"] == "planted.bad"
