"""The guard's zero-perturbation guarantee.

An attached guard *observes* the simulation; it must never steer it.
The acceptance bar from the safety-net design: with every watchdog and
invariant enabled, cycle counts match the unguarded run to 1e-12, and
the event timeline is bit-identical.
"""

import pytest

from repro.core import HaloSystem
from repro.guard import WatchdogConfig, attach_standard_guard

from ..conftest import make_keys

N_KEYS = 48


def run_workload(guarded, backend_kind="halo-b", seed=29):
    """One full episode; returns (system, outcomes)."""
    system = HaloSystem()
    if guarded:
        attach_standard_guard(
            system,
            config=WatchdogConfig(max_cycles=10_000_000,
                                  max_events=10_000_000,
                                  max_wall_seconds=600.0),
            cadence=64,
        )
    table = system.create_table(2048, name="parity")
    inserted = []
    for index, key in enumerate(make_keys(400, seed=seed)):
        if table.insert(key, index):
            inserted.append(key)
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    backend = system.backend(backend_kind)
    outcomes = system.engine.run_process(
        backend.lookup_stream(table, inserted[:N_KEYS]))
    return system, outcomes


@pytest.mark.parametrize("backend_kind", ["halo-b", "halo-nb", "software"])
def test_guard_is_cycle_invisible(backend_kind):
    bare_system, bare = run_workload(False, backend_kind)
    guarded_system, guarded = run_workload(True, backend_kind)
    assert guarded_system.engine.now \
        == pytest.approx(bare_system.engine.now, rel=1e-12)
    assert guarded_system.engine.events_processed \
        == bare_system.engine.events_processed
    for bare_outcome, guarded_outcome in zip(bare, guarded):
        assert guarded_outcome.cycles \
            == pytest.approx(bare_outcome.cycles, rel=1e-12)
        assert guarded_outcome.value == bare_outcome.value
        assert guarded_outcome.found == bare_outcome.found


def test_guarded_run_is_itself_deterministic():
    first_system, first = run_workload(True)
    second_system, second = run_workload(True)
    assert first_system.engine.now == second_system.engine.now
    assert [o.cycles for o in first] == [o.cycles for o in second]
    first_stats = first_system.engine.guard.as_dict()
    second_stats = second_system.engine.guard.as_dict()
    assert first_stats == second_stats


def test_guard_actually_ran_during_parity_check():
    """Guard-vs-bare parity proves nothing if the guard never checked
    anything — pin down that the sampled checks really happened."""
    system, _ = run_workload(True)
    stats = system.engine.guard.as_dict()
    assert stats["invariant_checks"] > 0
    assert stats["events_observed"] == system.engine.events_processed
    assert stats["invariant_violations"] == 0
