"""SRAM-based TCAM emulation."""

import pytest

from repro.classifier import make_flow
from repro.tcam import (
    SRAM_TCAM_SEARCH_CYCLES,
    SramTcam,
    TCAM_SEARCH_CYCLES,
    TernaryRule,
    exact_rule,
)


def test_partitioned_structure():
    sram = SramTcam(256, partition_rules=64)
    assert sram.num_partitions == 4


def test_match_across_partitions():
    sram = SramTcam(128, partition_rules=8)
    flows = [make_flow(index) for index in range(60)]
    for index, flow in enumerate(flows):
        sram.install(exact_rule(flow.as_int(), sram.key_bits,
                                priority=index, action=index))
    for index, flow in enumerate(flows):
        match = sram.search(flow.as_int())
        assert match is not None and match.rule.action == index


def test_priority_arbitration_across_partitions():
    sram = SramTcam(32, partition_rules=2)
    flow = make_flow(3)
    # Same matching value at different priorities lands in different
    # partitions (least-loaded placement).
    for priority in (1, 5, 3):
        sram.install(exact_rule(flow.as_int(), sram.key_bits,
                                priority=priority, action=priority))
    assert sram.search(flow.as_int()).rule.action == 5


def test_search_latency_slower_than_tcam():
    sram = SramTcam(64)
    assert sram.search_latency() == SRAM_TCAM_SEARCH_CYCLES
    assert SRAM_TCAM_SEARCH_CYCLES > TCAM_SEARCH_CYCLES


def test_capacity_enforced():
    sram = SramTcam(4, partition_rules=2)
    for index in range(4):
        sram.install(exact_rule(index, sram.key_bits))
    with pytest.raises(OverflowError):
        sram.install(exact_rule(99, sram.key_bits))


def test_miss():
    sram = SramTcam(16)
    assert sram.search(12345) is None


def test_wildcard_rule():
    sram = SramTcam(16)
    sram.install(TernaryRule(value=0x50, mask=0xF0, priority=1,
                             action="nibble5"))
    assert sram.search(0x5A).rule.action == "nibble5"
    assert sram.search(0x6A) is None
