"""TCAM functional model."""

import pytest

from repro.classifier import FlowMask, make_flow
from repro.tcam import TCAM_SEARCH_CYCLES, Tcam, TernaryRule, exact_rule


def test_exact_match():
    tcam = Tcam(16)
    flow = make_flow(1)
    tcam.install(exact_rule(flow.as_int(), tcam.key_bits, priority=1,
                            action="hit"))
    match = tcam.search(flow.as_int())
    assert match is not None
    assert match.rule.action == "hit"
    assert match.latency == TCAM_SEARCH_CYCLES


def test_miss_returns_none():
    tcam = Tcam(16)
    assert tcam.search(make_flow(5).as_int()) is None


def test_wildcard_match():
    tcam = Tcam(16)
    mask = FlowMask.prefixes(dst_prefix=16, src_prefix=0,
                             src_port=False, dst_port=False)
    anchor = make_flow(0, group=3)
    tcam.install(TernaryRule(value=mask.apply(anchor).as_int(),
                             mask=mask.as_int_mask(), priority=1,
                             action="grp3"))
    for index in range(1, 20):
        flow = make_flow(index, group=3)
        match = tcam.search(flow.as_int())
        assert match is not None and match.rule.action == "grp3"
    assert tcam.search(make_flow(0, group=4).as_int()) is None


def test_priority_ordering():
    tcam = Tcam(16)
    flow = make_flow(2)
    tcam.install(exact_rule(flow.as_int(), tcam.key_bits, priority=1,
                            action="low"))
    tcam.install(TernaryRule(value=0, mask=0, priority=0,
                             action="catchall"))
    tcam.install(exact_rule(flow.as_int(), tcam.key_bits, priority=9,
                            action="high"))
    assert tcam.search(flow.as_int()).rule.action == "high"
    assert tcam.search(make_flow(3).as_int()).rule.action == "catchall"


def test_update_cost_grows_with_displacement():
    """Priority-ordered inserts shuffle entries — the expensive updates."""
    tcam = Tcam(64)
    costs = []
    for priority in range(20):
        costs.append(tcam.install(TernaryRule(value=priority, mask=0xFF,
                                              priority=priority)))
    # Each new highest-priority rule displaces all existing ones.
    assert costs[-1] > costs[0]
    assert tcam.stats.update_moves > 0


def test_capacity_enforced():
    tcam = Tcam(2)
    tcam.install(exact_rule(1, tcam.key_bits))
    tcam.install(exact_rule(2, tcam.key_bits))
    assert tcam.full
    with pytest.raises(OverflowError):
        tcam.install(exact_rule(3, tcam.key_bits))


def test_remove():
    tcam = Tcam(4)
    rule = exact_rule(7, tcam.key_bits)
    tcam.install(rule)
    assert tcam.remove(rule)
    assert len(tcam) == 0
    assert not tcam.remove(rule)


def test_search_latency_constant():
    small = Tcam(4)
    large = Tcam(4096)
    assert small.search_latency() == large.search_latency()


def test_stats():
    tcam = Tcam(8)
    flow = make_flow(9)
    tcam.install(exact_rule(flow.as_int(), tcam.key_bits))
    tcam.search(flow.as_int())
    tcam.search(0)
    assert tcam.stats.searches == 2
    assert tcam.stats.hits == 1
