"""Property-based tests: the cuckoo table behaves like a dict."""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule

from repro.hashtable import CuckooHashTable

keys_strategy = st.binary(min_size=16, max_size=16)


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(keys_strategy, st.integers(), max_size=120))
def test_matches_dict_after_bulk_insert(entries):
    table = CuckooHashTable(512)
    for key, value in entries.items():
        assert table.insert(key, value)
    assert len(table) == len(entries)
    for key, value in entries.items():
        assert table.lookup(key) == value


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(keys_strategy, st.integers()),
                min_size=1, max_size=80))
def test_last_write_wins(pairs):
    table = CuckooHashTable(512)
    model = {}
    for key, value in pairs:
        table.insert(key, value)
        model[key] = value
    for key, value in model.items():
        assert table.lookup(key) == value
    assert len(table) == len(model)


@settings(max_examples=30, deadline=None)
@given(st.sets(keys_strategy, min_size=1, max_size=60), st.data())
def test_delete_removes_exactly_the_key(keys, data):
    keys = sorted(keys)
    table = CuckooHashTable(256)
    for index, key in enumerate(keys):
        table.insert(key, index)
    victim = data.draw(st.sampled_from(keys))
    assert table.delete(victim)
    for index, key in enumerate(keys):
        expected = None if key == victim else index
        assert table.lookup(key) == expected


class CuckooMachine(RuleBasedStateMachine):
    """Stateful model-based testing against a plain dict."""

    def __init__(self):
        super().__init__()
        self.table = CuckooHashTable(256)
        self.model = {}

    inserted = Bundle("inserted")

    @rule(target=inserted, key=keys_strategy, value=st.integers())
    def insert(self, key, value):
        ok = self.table.insert(key, value)
        if ok:
            self.model[key] = value
        return key

    @rule(key=inserted)
    def lookup_present(self, key):
        assert self.table.lookup(key) == self.model.get(key)

    @rule(key=keys_strategy)
    def lookup_any(self, key):
        assert self.table.lookup(key) == self.model.get(key)

    @rule(key=inserted)
    def delete(self, key):
        expected = key in self.model
        assert self.table.delete(key) == expected
        self.model.pop(key, None)

    @invariant()
    def size_matches(self):
        assert len(self.table) == len(self.model)

    @invariant()
    def load_factor_bounded(self):
        assert 0.0 <= self.table.load_factor <= 1.0


TestCuckooStateMachine = CuckooMachine.TestCase
TestCuckooStateMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)
