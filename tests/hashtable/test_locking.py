"""Software optimistic locking (paper §3.4)."""

import pytest

from repro.hashtable import OptimisticLock, READ_SIDE_CYCLES, WRITE_SIDE_CYCLES


def test_read_validates_when_no_writes():
    lock = OptimisticLock()
    token = lock.read_begin()
    assert lock.read_validate(token)
    assert lock.stats.read_retries == 0


def test_concurrent_write_invalidates_reader():
    lock = OptimisticLock()
    token = lock.read_begin()
    lock.write_begin()
    lock.write_end()
    assert not lock.read_validate(token)
    assert lock.stats.read_retries == 1
    # A retry after the write completes succeeds.
    token = lock.read_begin()
    assert lock.read_validate(token)


def test_in_progress_write_invalidates_reader():
    lock = OptimisticLock()
    token = lock.read_begin()
    lock.write_begin()
    assert not lock.read_validate(token)
    lock.write_end()


def test_nested_write_rejected():
    lock = OptimisticLock()
    lock.write_begin()
    with pytest.raises(RuntimeError):
        lock.write_begin()


def test_unmatched_write_end_rejected():
    lock = OptimisticLock()
    with pytest.raises(RuntimeError):
        lock.write_end()


def test_cost_model_scales_with_retries():
    lock = OptimisticLock()
    base = lock.read_overhead_cycles()
    retried = lock.read_overhead_cycles(retries=1, probe_cycles=100)
    assert base == READ_SIDE_CYCLES
    assert retried == pytest.approx(2 * READ_SIDE_CYCLES + 100)
    assert lock.write_overhead_cycles() == WRITE_SIDE_CYCLES


def test_locking_share_near_paper_figure(system, keys16):
    """READ_SIDE_CYCLES lands near 13.1% of an LLC-resident lookup."""
    table = system.create_table(1 << 14)
    from ..conftest import make_keys
    keys = make_keys(8000, seed=31)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    episode = system.run_software_lookups(table, keys[:100])
    share = READ_SIDE_CYCLES / episode.cycles_per_op
    assert 0.09 <= share <= 0.18
