"""Cuckoo hash table: functional behaviour and memory traces."""

import pytest

from repro.hashtable import CuckooHashTable, TableFull
from repro.sim import Tracer

from ..conftest import make_keys


def make_table(capacity=256, **kwargs):
    return CuckooHashTable(capacity, **kwargs)


def test_insert_and_lookup(keys16):
    table = make_table()
    for index, key in enumerate(keys16):
        assert table.insert(key, index)
    for index, key in enumerate(keys16):
        assert table.lookup(key) == index
    assert len(table) == len(keys16)


def test_lookup_missing_returns_none(keys16):
    table = make_table()
    table.insert(keys16[0], "present")
    assert table.lookup(keys16[1]) is None


def test_insert_updates_in_place(keys16):
    table = make_table()
    table.insert(keys16[0], "old")
    table.insert(keys16[0], "new")
    assert table.lookup(keys16[0]) == "new"
    assert len(table) == 1


def test_delete(keys16):
    table = make_table()
    for index, key in enumerate(keys16):
        table.insert(key, index)
    assert table.delete(keys16[3])
    assert table.lookup(keys16[3]) is None
    assert not table.delete(keys16[3])
    assert len(table) == len(keys16) - 1
    # Freed slot is reusable.
    assert table.insert(keys16[3], "back")
    assert table.lookup(keys16[3]) == "back"


def test_key_length_enforced():
    table = make_table(key_bytes=16)
    with pytest.raises(ValueError):
        table.insert(b"short", 1)
    with pytest.raises(ValueError):
        table.lookup(b"short")


def test_high_occupancy_via_displacement():
    """Cuckoo displacement reaches ~90%+ occupancy (paper: ~95%)."""
    table = make_table(capacity=1024)
    keys = make_keys(950, seed=11)
    inserted = sum(1 for i, k in enumerate(keys) if table.insert(k, i))
    assert inserted >= 900
    assert table.load_factor >= 0.85
    assert table.stats.kicks > 0   # displacement actually happened


def test_displacement_preserves_reachability():
    table = make_table(capacity=512)
    keys = make_keys(460, seed=12)
    for index, key in enumerate(keys):
        table.insert(key, index)
    for index, key in enumerate(keys):
        assert table.lookup(key) == index


def test_full_table_insert_fails_gracefully():
    table = make_table(capacity=16)
    keys = make_keys(64, seed=13)
    results = [table.insert(key, i) for i, key in enumerate(keys)]
    assert not all(results)
    assert table.stats.insert_failures >= 1
    # Everything that reported success is still readable.
    for index, (key, ok) in enumerate(zip(keys, results)):
        if ok:
            assert table.lookup(key) == index


def test_items_iterates_all(keys16):
    table = make_table()
    for index, key in enumerate(keys16):
        table.insert(key, index)
    seen = dict(table.items())
    assert seen == {key: index for index, key in enumerate(keys16)}


def test_occupancy_histogram_counts_buckets():
    table = make_table(capacity=128)
    histogram = table.bucket_occupancy_histogram()
    assert sum(histogram.values()) == table.num_buckets
    keys = make_keys(30, seed=14)
    for index, key in enumerate(keys):
        table.insert(key, index)
    histogram = table.bucket_occupancy_histogram()
    occupied = sum(count * entries
                   for entries, count in histogram.items())
    assert occupied == 30


def test_bucket_keys(keys16):
    table = make_table()
    table.insert(keys16[0], 1)
    plan = table.probe(keys16[0])
    bucket = (plan.secondary_index if plan.found_in_secondary
              else plan.primary_index)
    assert keys16[0] in table.bucket_keys(bucket)


def test_probe_plan_fields(keys16):
    table = make_table()
    table.insert(keys16[0], "v")
    plan = table.probe(keys16[0])
    assert plan.found
    assert plan.value == "v"
    assert plan.primary_addr % 64 == 0
    assert plan.secondary_addr % 64 == 0
    assert plan.sig_compares >= 1
    miss = table.probe(keys16[1])
    assert not miss.found
    assert miss.buckets_scanned >= 1


def test_lookup_trace_structure(keys16):
    tracer = Tracer()
    table = make_table(tracer=tracer)
    table.insert(keys16[0], 0)
    tracer.begin()
    table.lookup(keys16[0])
    trace = tracer.take()
    chains = trace.dependency_chains()
    # key read -> bucket reads -> kv read
    assert len(chains) == 3
    assert trace.mix.total >= 210   # paper Table 1


def test_lookup_trace_mix_matches_table1(keys16):
    tracer = Tracer()
    table = make_table(tracer=tracer)
    table.insert(keys16[0], 0)
    tracer.begin()
    table.lookup(keys16[0])
    fractions = tracer.take().mix.fractions()
    assert abs(fractions["memory"] - 0.481) < 0.03
    assert abs(fractions["arithmetic"] - 0.21) < 0.03


def test_insert_trace_contains_stores(keys16):
    tracer = Tracer()
    table = make_table(tracer=tracer)
    tracer.begin()
    table.insert(keys16[0], 0)
    trace = tracer.take()
    stores = [op for op in trace.ops if op.is_store]
    assert len(stores) >= 2   # kv write + bucket write


def test_miss_lookup_trace_has_no_kv_read(keys16):
    tracer = Tracer()
    table = make_table(tracer=tracer)
    table.insert(keys16[0], 0)
    tracer.begin()
    table.lookup(keys16[1])
    trace = tracer.take()
    kv_base = table.layout.key_values.base
    kv_reads = [op for op in trace.ops
                if kv_base <= op.addr < table.layout.key_values.end]
    # A signature collision may rarely cause one, but normally none.
    assert len(kv_reads) <= 1


def test_layout_addresses_disjoint():
    table = make_table(capacity=128)
    layout = table.layout
    assert layout.metadata.end <= layout.buckets.base
    assert layout.buckets.end <= layout.key_values.base
    assert layout.table_addr == layout.metadata.base


def test_kv_array_exhaustion_guard():
    """The internal invariant: free slots exist whenever buckets have room."""
    table = make_table(capacity=8, assoc=8)
    keys = make_keys(8, seed=15)
    for index, key in enumerate(keys):
        table.insert(key, index)
    assert len(table) <= table.capacity


def test_stats_counters(keys16):
    table = make_table()
    table.insert(keys16[0], 0)
    table.lookup(keys16[0])
    table.lookup(keys16[1])
    table.delete(keys16[0])
    assert table.stats.inserts == 1
    assert table.stats.lookups == 2
    assert table.stats.hits == 1
    assert table.stats.deletes == 1
