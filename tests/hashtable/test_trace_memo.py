"""Lookup-trace memoisation: cached emission is indistinguishable from
fresh recording.

A lookup's memory trace is a pure function of the key and the table's
contents, so :class:`~repro.hashtable.cuckoo.CuckooHashTable` caches the
emitted op tuple per key and replays it through
:meth:`~repro.sim.trace.Tracer.emit_trace`.  These tests pin the three
properties that make the cache safe: emitted traces match a fresh
recording op for op (including the instruction mix), any mutation
invalidates, and mid-trace emission rebases dependency groups exactly as
live recording would.
"""

from __future__ import annotations

from repro.hashtable import CuckooHashTable
from repro.sim import Tracer

from ..conftest import make_keys


def _warm_table(tracer, keys):
    table = CuckooHashTable(256, tracer=tracer)
    for index, key in enumerate(keys):
        table.insert(key, index)
    return table


def _capture(tracer, table, key, key_addr=None):
    tracer.begin()
    value = table.lookup(key, key_addr=key_addr)
    return value, tracer.take()


def _view(trace):
    return (tuple(trace.ops), trace.mix)


def test_memoised_trace_matches_fresh_recording():
    tracer = Tracer()
    keys = make_keys(32, seed=5)
    table = _warm_table(tracer, keys)
    for key in keys:
        _value, fresh = _capture(tracer, table, key)     # records + caches
        _value, cached = _capture(tracer, table, key)    # memo hit
        assert _view(cached) == _view(fresh)
    # Missing keys memoise their (shorter) probe traces too.
    miss = make_keys(40, seed=6)[-1]
    _value, fresh = _capture(tracer, table, miss)
    _value, cached = _capture(tracer, table, miss)
    assert _view(cached) == _view(fresh)


def test_mutation_invalidates_the_memo():
    tracer = Tracer()
    keys = make_keys(48, seed=7)
    table = _warm_table(tracer, keys[:32])
    target = keys[0]
    _capture(tracer, table, target)               # populate the memo
    stamp = table._mutations
    table.insert(keys[40], "new")                 # any insert invalidates
    assert table._mutations > stamp
    _value, after = _capture(tracer, table, target)
    # The re-recorded trace must equal what an identical fresh table emits.
    reference_tracer = Tracer()
    reference = _warm_table(reference_tracer, keys[:32])
    reference.insert(keys[40], "new")
    _value, expected = _capture(reference_tracer, reference, target)
    assert _view(after) == _view(expected)
    table.delete(keys[40])
    assert table._mutations > stamp + 1


def test_caller_key_addr_bypasses_the_memo():
    tracer = Tracer()
    keys = make_keys(8, seed=8)
    table = _warm_table(tracer, keys)
    _value, scratch = _capture(tracer, table, keys[0])
    _value, custom = _capture(tracer, table, keys[0], key_addr=0xdead000)
    assert custom.ops[0].addr == 0xdead000
    assert scratch.ops[0].addr != 0xdead000
    # The custom-address form was not cached over the scratch form.
    _value, again = _capture(tracer, table, keys[0])
    assert _view(again) == _view(scratch)


def test_mid_trace_emission_rebases_dependencies():
    """Two lookups composed in one trace: the memoised second lookup's
    dependency groups continue from the live trace's barrier counter,
    exactly as live recording would."""
    tracer = Tracer()
    keys = make_keys(8, seed=9)
    table = _warm_table(tracer, keys)
    # Fresh composed recording on an identical reference table.
    reference_tracer = Tracer()
    reference = _warm_table(reference_tracer, keys)
    reference_tracer.begin()
    reference.lookup(keys[0])
    reference.lookup(keys[1])
    expected = reference_tracer.take()

    for key in (keys[0], keys[1]):
        _capture(tracer, table, key)              # populate both memos
    tracer.begin()
    table.lookup(keys[0])
    table.lookup(keys[1])
    composed = tracer.take()
    assert _view(composed) == _view(expected)
    deps = [op.dep for op in composed.ops]
    assert deps == sorted(deps)
    # The second lookup's groups sit strictly after the first's.
    first_len = len(expected.ops) - len(
        [op for op in expected.ops if op.dep >= 2])
    assert max(op.dep for op in composed.ops[:first_len]) < min(
        op.dep for op in composed.ops[first_len:])
