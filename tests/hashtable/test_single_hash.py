"""Single-function hash table (SFH baseline)."""

import pytest

from repro.hashtable import SingleHashTable
from repro.sim import Tracer

from ..conftest import make_keys


def test_insert_lookup_delete():
    table = SingleHashTable(expected_keys=64)
    keys = make_keys(40, seed=21)
    for index, key in enumerate(keys):
        assert table.insert(key, index)
    for index, key in enumerate(keys):
        assert table.lookup(key) == index
    assert table.delete(keys[0])
    assert table.lookup(keys[0]) is None
    assert len(table) == 39


def test_update_in_place():
    table = SingleHashTable(expected_keys=16)
    key = make_keys(1, seed=22)[0]
    table.insert(key, "a")
    table.insert(key, "b")
    assert table.lookup(key) == "b"
    assert len(table) == 1


def test_low_utilisation_vs_cuckoo():
    """SFH sized for the same keys runs at ~20% or less slot utilisation."""
    keys = make_keys(2000, seed=23)
    table = SingleHashTable(expected_keys=2000)
    for index, key in enumerate(keys):
        table.insert(key, index)
    assert table.load_factor < 0.35


def test_overflow_chaining_never_loses_keys():
    """Even a deliberately undersized table keeps every key reachable."""
    keys = make_keys(300, seed=24)
    table = SingleHashTable(expected_keys=8)   # tiny: forces chaining
    for index, key in enumerate(keys):
        assert table.insert(key, index)
    assert table.stats.overflows > 0
    for index, key in enumerate(keys):
        assert table.lookup(key) == index


def test_chain_hops_cost_extra_dependent_reads():
    tracer = Tracer()
    table = SingleHashTable(expected_keys=2, assoc=2, tracer=tracer)
    keys = make_keys(40, seed=25)
    for index, key in enumerate(keys):
        table.insert(key, index)
    # Find a key deep in a chain.
    deep_key = None
    for key in keys:
        index, _sig = table._index(key)
        bucket = table._buckets[index]
        position = next(i for i, (s, k, v) in enumerate(bucket) if k == key)
        if position >= table.assoc:
            deep_key = key
            break
    assert deep_key is not None
    tracer.begin()
    table.lookup(deep_key)
    trace = tracer.take()
    assert trace.dependency_chains()  # chained reads recorded
    assert len(trace) >= 3


def test_bigger_footprint_than_cuckoo():
    from repro.hashtable import CuckooHashTable
    keys = make_keys(1000, seed=26)
    sfh = SingleHashTable(expected_keys=1000)
    cuckoo = CuckooHashTable(int(1000 / 0.9))
    assert (sfh.layout.buckets.size + sfh.layout.key_values.size
            > cuckoo.layout.buckets.size + cuckoo.layout.key_values.size)


def test_key_length_enforced():
    table = SingleHashTable(expected_keys=8)
    with pytest.raises(ValueError):
        table.lookup(b"bad")


def test_histogram():
    table = SingleHashTable(expected_keys=32)
    keys = make_keys(20, seed=27)
    for index, key in enumerate(keys):
        table.insert(key, index)
    histogram = table.bucket_occupancy_histogram()
    assert sum(entries * count for entries, count in histogram.items()) == 20
