"""Hash functions."""

import collections

import pytest

from repro.hashtable import hash32, hash_bytes, mix64, secondary_index, signature_of


def test_hash_deterministic():
    assert hash_bytes(b"hello world") == hash_bytes(b"hello world")


def test_hash_seed_sensitivity():
    assert hash_bytes(b"key", seed=1) != hash_bytes(b"key", seed=2)


def test_hash_data_sensitivity():
    assert hash_bytes(b"key1") != hash_bytes(b"key2")
    # single-bit flip
    assert hash_bytes(bytes(16)) != hash_bytes(bytes(15) + b"\x01")


def test_hash_is_64bit():
    for data in (b"", b"a", b"x" * 100):
        assert 0 <= hash_bytes(data) < (1 << 64)


def test_hash32_range():
    assert 0 <= hash32(b"data") < (1 << 32)


def test_hash_distribution_over_buckets():
    mask = 255
    counts = collections.Counter(
        hash_bytes(index.to_bytes(8, "little")) & mask
        for index in range(25_600))
    expected = 25_600 / 256
    for bucket in range(256):
        assert expected * 0.6 < counts[bucket] < expected * 1.4


def test_mix64_bijective_sample():
    values = {mix64(i) for i in range(10_000)}
    assert len(values) == 10_000


def test_signature_is_16bit():
    for data in (b"alpha", b"beta", b"x" * 40):
        assert 0 <= signature_of(hash_bytes(data)) < (1 << 16)


def test_secondary_index_is_involution():
    """alt(alt(i)) == i — required for cuckoo displacement."""
    mask = 1023
    for index in (0, 5, 700, 1023):
        for signature in (0, 1, 0xBEEF & 0xFFFF, 0xFFFF):
            alt = secondary_index(index, signature, mask)
            assert 0 <= alt <= mask
            assert secondary_index(alt, signature, mask) == index


def test_secondary_index_usually_differs():
    mask = 1023
    same = sum(1 for sig in range(500)
               if secondary_index(7, sig, mask) == 7)
    assert same <= 2
