"""Table memory layout."""

import pytest

from repro.hashtable import StandaloneAllocator, allocate_table, next_power_of_two
from repro.sim import CACHE_LINE_BYTES


def make_layout(num_buckets=64, assoc=8, key_bytes=16):
    allocator = StandaloneAllocator()
    return allocate_table(allocator, "t", num_buckets, assoc, key_bytes)


def test_bucket_addresses_line_aligned():
    layout = make_layout()
    for bucket in range(layout.num_buckets):
        assert layout.bucket_addr(bucket) % CACHE_LINE_BYTES == 0


def test_bucket_addresses_contiguous():
    layout = make_layout()
    assert (layout.bucket_addr(1) - layout.bucket_addr(0)
            == CACHE_LINE_BYTES)


def test_bucket_index_bounds():
    layout = make_layout(num_buckets=8)
    with pytest.raises(IndexError):
        layout.bucket_addr(8)
    with pytest.raises(IndexError):
        layout.bucket_addr(-1)


def test_kv_slots_do_not_overlap():
    layout = make_layout()
    assert layout.kv_addr(1) - layout.kv_addr(0) == layout.kv_slot_bytes
    assert layout.kv_slot_bytes >= layout.key_bytes + layout.value_bytes


def test_kv_index_bounds():
    layout = make_layout(num_buckets=4, assoc=8)
    layout.kv_addr(31)
    with pytest.raises(IndexError):
        layout.kv_addr(32)


def test_regions_disjoint():
    layout = make_layout()
    assert layout.metadata.end <= layout.buckets.base
    assert layout.buckets.end <= layout.key_values.base


def test_non_power_of_two_buckets_rejected():
    allocator = StandaloneAllocator()
    with pytest.raises(ValueError):
        allocate_table(allocator, "t", 100, 8, 16)


def test_oversized_associativity_rejected():
    allocator = StandaloneAllocator()
    with pytest.raises(ValueError):
        allocate_table(allocator, "t", 64, 9, 16)


def test_total_bytes():
    layout = make_layout(num_buckets=64, assoc=8, key_bytes=16)
    expected = (CACHE_LINE_BYTES                 # metadata
                + 64 * CACHE_LINE_BYTES          # buckets
                + 64 * 8 * layout.kv_slot_bytes) # kv
    assert layout.total_bytes == expected


def test_next_power_of_two():
    assert next_power_of_two(1) == 1
    assert next_power_of_two(2) == 2
    assert next_power_of_two(3) == 4
    assert next_power_of_two(1000) == 1024
