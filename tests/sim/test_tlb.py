"""D-TLB model and hugepage behaviour."""

import pytest

from repro.core import HaloSystem
from repro.sim import MemoryHierarchy, SKYLAKE_SP_16C, Tlb, TlbParams
from repro.traffic import random_keys


def test_hit_after_fill():
    tlb = Tlb(TlbParams(entries=4, page_bytes=4096))
    assert tlb.access(0x1000) == 35     # cold miss: page walk
    assert tlb.access(0x1FF8) == 0      # same page: hit
    assert tlb.stats.hits == 1 and tlb.stats.misses == 1


def test_lru_eviction():
    tlb = Tlb(TlbParams(entries=2, page_bytes=4096))
    tlb.access(0 * 4096)
    tlb.access(1 * 4096)
    tlb.access(0 * 4096)                # refresh page 0
    tlb.access(2 * 4096)                # evicts page 1
    assert tlb.access(0 * 4096) == 0
    assert tlb.access(1 * 4096) == 35


def test_reach():
    assert TlbParams.small_pages().reach_bytes == 64 * 4096
    assert TlbParams.hugepages().reach_bytes == 32 * 2 * 1024 * 1024


def test_validation():
    with pytest.raises(ValueError):
        Tlb(TlbParams(entries=0))
    with pytest.raises(ValueError):
        Tlb(TlbParams(page_bytes=3000))


def test_flush():
    tlb = Tlb(TlbParams(entries=4))
    tlb.access(0x1000)
    tlb.flush()
    assert tlb.resident_pages == 0
    assert tlb.access(0x1000) == 35


def test_default_machine_has_perfect_translation():
    hierarchy = MemoryHierarchy(SKYLAKE_SP_16C)
    assert hierarchy.tlbs is None


def test_small_pages_slow_big_table_software_lookups():
    """The DPDK-hugepage rationale, measured."""
    def cycles(tlb):
        system = HaloSystem(SKYLAKE_SP_16C.scaled(tlb=tlb))
        table = system.create_table(1 << 14, name="tlb_test")
        keys = random_keys(10_000, seed=3)
        for index, key in enumerate(keys):
            table.insert(key, index)
        system.warm_table(table)
        system.hierarchy.flush_private(0)
        software = system.run_software_lookups(table, keys[:150])
        halo = system.run_blocking_lookups(table, keys[150:300])
        return software.cycles_per_op, halo.cycles_per_op

    perfect_sw, perfect_halo = cycles(None)
    huge_sw, _huge_halo = cycles(TlbParams.hugepages())
    small_sw, small_halo = cycles(TlbParams.small_pages())
    assert huge_sw == pytest.approx(perfect_sw, rel=0.05)   # hugepages ~free
    assert small_sw > huge_sw + 3.0                         # 4K pages hurt
    assert small_halo == pytest.approx(perfect_halo, rel=0.05)  # HALO immune
