"""Address allocator and DRAM model."""

import pytest

from repro.sim import AddressAllocator, Dram, OutOfSimulatedMemory


def test_allocations_are_disjoint_and_aligned():
    allocator = AddressAllocator(1 << 20)
    regions = [allocator.alloc(1000, f"r{i}") for i in range(5)]
    for region in regions:
        assert region.base % 64 == 0
    for first, second in zip(regions, regions[1:]):
        assert first.end <= second.base


def test_custom_alignment():
    allocator = AddressAllocator(1 << 20)
    region = allocator.alloc(100, align=4096)
    assert region.base % 4096 == 0


def test_alignment_must_be_power_of_two():
    allocator = AddressAllocator(1 << 20)
    with pytest.raises(ValueError):
        allocator.alloc(100, align=100)


def test_exhaustion_raises():
    allocator = AddressAllocator(1024)
    allocator.alloc(512)
    with pytest.raises(OutOfSimulatedMemory):
        allocator.alloc(4096)


def test_zero_size_rejected():
    allocator = AddressAllocator(1024)
    with pytest.raises(ValueError):
        allocator.alloc(0)


def test_region_contains_and_offset():
    allocator = AddressAllocator(1 << 20)
    region = allocator.alloc(256, "data")
    assert region.contains(region.base)
    assert region.contains(region.end - 1)
    assert not region.contains(region.end)
    assert region.offset(region.base + 10) == 10
    with pytest.raises(ValueError):
        region.offset(region.end)


def test_region_of_lookup():
    allocator = AddressAllocator(1 << 20)
    first = allocator.alloc(128, "a")
    second = allocator.alloc(128, "b")
    assert allocator.region_of(first.base + 5) is first
    assert allocator.region_of(second.base) is second
    assert allocator.region_of(second.end + 100) is None


def test_bytes_used_monotonic():
    allocator = AddressAllocator(1 << 20)
    before = allocator.bytes_used
    allocator.alloc(100)
    assert allocator.bytes_used > before


def test_dram_base_latency():
    dram = Dram(base_latency=200)
    latency = dram.access_latency()
    assert latency >= 200
    assert dram.stats.reads == 1


def test_dram_write_accounting():
    dram = Dram(base_latency=200)
    dram.access_latency(write=True)
    assert dram.stats.writes == 1
    assert dram.stats.accesses == 1


def test_dram_pressure_grows_bounded():
    dram = Dram(base_latency=200, queue_window=4, pressure_penalty=10)
    latencies = [dram.access_latency() for _ in range(64)]
    assert max(latencies) <= 200 + 3 * 10
    assert min(latencies) >= 200
