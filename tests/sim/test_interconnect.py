"""Ring interconnect: slice hashing and hop latency."""

import collections

import pytest

from repro.sim import Interconnect, LatencyParams


@pytest.fixture
def ring():
    return Interconnect(16, LatencyParams())


def test_slice_hash_deterministic(ring):
    assert ring.slice_of_line(12345) == ring.slice_of_line(12345)


def test_slice_hash_roughly_uniform(ring):
    counts = collections.Counter(ring.slice_of_line(line)
                                 for line in range(16_000))
    for slice_id in range(16):
        assert 16_000 / 16 * 0.8 < counts[slice_id] < 16_000 / 16 * 1.2


def test_consecutive_lines_spread(ring):
    slices = {ring.slice_of_line(line) for line in range(64)}
    assert len(slices) >= 12   # near-perfect interleaving


def test_hops_symmetric(ring):
    for src in range(16):
        for dst in range(16):
            assert ring.hops(src, dst) == ring.hops(dst, src)


def test_hops_shortest_path(ring):
    assert ring.hops(0, 0) == 0
    assert ring.hops(0, 1) == 1
    assert ring.hops(0, 15) == 1   # wraps around
    assert ring.hops(0, 8) == 8    # farthest point


def test_transfer_latency_scales_with_hops(ring):
    near = ring.transfer_latency(0, 1)
    far = ring.transfer_latency(0, 8)
    assert far == 8 * near


def test_stats_accumulate(ring):
    ring.transfer_latency(0, 4)
    ring.transfer_latency(0, 2)
    assert ring.stats.messages == 2
    assert ring.stats.total_hops == 6
    assert ring.average_hops() == pytest.approx(3.0)


def test_table_hash_stable_per_table(ring):
    table_addr = 0x1234000
    assert (ring.slice_of_table(table_addr)
            == ring.slice_of_table(table_addr))


def test_table_hash_spreads_tables(ring):
    slices = {ring.slice_of_table(0x10000 + index * 0x4000)
              for index in range(40)}
    assert len(slices) >= 10


def test_single_stop_ring():
    ring = Interconnect(1, LatencyParams())
    assert ring.slice_of_line(999) == 0
    assert ring.hops(0, 0) == 0


def test_invalid_stop_count():
    with pytest.raises(ValueError):
        Interconnect(0, LatencyParams())
