"""Snoop filter and metadata-cache CV bits."""

from repro.sim.coherence import SnoopFilter


def make_filter():
    return SnoopFilter(cores=4, slices=4)


def test_fill_and_eviction_tracking():
    snoop = make_filter()
    snoop.record_fill(10, 0)
    snoop.record_fill(10, 1)
    assert snoop.sharers_of(10) == {0, 1}
    snoop.record_eviction(10, 0)
    assert snoop.sharers_of(10) == {1}
    snoop.record_eviction(10, 1)
    assert snoop.sharers_of(10) == set()


def test_other_sharers_excludes_writer():
    snoop = make_filter()
    snoop.record_fill(5, 0)
    snoop.record_fill(5, 2)
    assert snoop.other_sharers(5, 0) == {2}


def test_store_invalidates_others():
    snoop = make_filter()
    snoop.record_fill(7, 0)
    snoop.record_fill(7, 1)
    outcome = snoop.invalidate_for_store(7, 2)
    assert outcome["sharers"] == 2
    assert snoop.sharers_of(7) == {2}
    assert snoop.stats.lines_invalidated == 2


def test_store_with_no_sharers_registers_writer():
    snoop = make_filter()
    outcome = snoop.invalidate_for_store(9, 1)
    assert outcome["sharers"] == 0
    assert snoop.sharers_of(9) == {1}


def test_locked_line_refuses_invalidation():
    snoop = make_filter()
    snoop.record_fill(11, 0)
    outcome = snoop.invalidate_for_store(11, 1, locked=True)
    assert outcome["snoop_miss"]
    assert snoop.stats.snoop_misses == 1
    assert snoop.sharers_of(11) == {0}   # untouched


def test_metadata_cv_bit_lifecycle():
    snoop = make_filter()
    snoop.set_metadata_holder(20, 3)
    assert snoop.metadata_holder(20) == 3
    snoop.clear_metadata_holder(20)
    assert snoop.metadata_holder(20) == -1


def test_store_snoops_metadata_cache():
    snoop = make_filter()
    snoop.set_metadata_holder(30, 2)
    outcome = snoop.invalidate_for_store(30, 0)
    assert outcome["metadata_snoop"]
    assert snoop.metadata_holder(30) == -1
    assert snoop.stats.metadata_snoops == 1
