"""Memory hierarchy: core path, CHA path, inclusion, lock bits."""

import pytest

from repro.sim import MemoryHierarchy, SKYLAKE_SP_16C, TINY_MACHINE


def test_cold_access_goes_to_dram(hierarchy):
    result = hierarchy.core_access(0, 0x100000)
    assert result.level == "DRAM"
    assert result.latency >= hierarchy.latency.cha_dram


def test_second_access_hits_l1(hierarchy):
    addr = 0x200000
    hierarchy.core_access(0, addr)
    result = hierarchy.core_access(0, addr)
    assert result.level == "L1"
    assert result.latency == hierarchy.latency.l1_hit


def test_llc_hit_after_private_flush(hierarchy):
    addr = 0x300000
    hierarchy.core_access(0, addr)
    hierarchy.flush_private(0)
    result = hierarchy.core_access(0, addr)
    assert result.level == "LLC"
    assert result.latency > hierarchy.latency.l2_hit


def test_llc_latency_exceeds_l2(hierarchy):
    addr = 0x340000
    hierarchy.core_access(0, addr)
    hierarchy.flush_private(0)
    llc = hierarchy.core_access(0, addr)
    hierarchy.flush_private(0)
    hierarchy.core_access(0, addr)
    l1 = hierarchy.core_access(0, addr)
    assert llc.latency > l1.latency


def test_nuca_latency_varies_with_distance(hierarchy):
    """Different slices cost different latencies from one core (NUCA)."""
    latencies = set()
    for offset in range(0, 64 * 64, 64):
        addr = 0x400000 + offset
        hierarchy.warm_llc(addr, 64)
        result = hierarchy.core_access(15, addr)
        if result.level == "LLC":
            latencies.add(result.latency)
        hierarchy.flush_private(15)
    assert len(latencies) > 3


def test_cross_core_read_from_private_cache(hierarchy):
    addr = 0x500000
    hierarchy.core_access(0, addr)          # core 0 holds the line
    # Evict from LLC but keep private copies to force the PRIV path.
    line = hierarchy.line_of(addr)
    hierarchy.llc[hierarchy.slice_of(addr)].invalidate(line)
    result = hierarchy.core_access(1, addr)
    assert result.level == "PRIV"
    assert result.latency > hierarchy.latency.llc_hit


def test_store_invalidates_other_sharers(hierarchy):
    addr = 0x600000
    hierarchy.core_access(0, addr)
    hierarchy.core_access(1, addr)
    read_latency = hierarchy.core_access(1, addr).latency
    result = hierarchy.core_access(2, addr, write=True)
    assert result.latency >= hierarchy.latency.snoop_invalidate


def test_cha_access_never_fills_private_caches(hierarchy):
    addr = 0x700000
    hierarchy.warm_llc(addr, 64)
    before = [cache.resident_lines for cache in hierarchy.l1]
    result = hierarchy.cha_access(3, addr)
    assert result.level == "LLC"
    after = [cache.resident_lines for cache in hierarchy.l1]
    assert before == after


def test_cha_llc_access_faster_than_core(hierarchy):
    addr = 0x800000
    hierarchy.warm_llc(addr, 64)
    cha = hierarchy.cha_access(hierarchy.slice_of(addr), addr)
    core = hierarchy.core_access(0, addr)
    assert cha.latency < core.latency


def test_cha_dram_access_faster_than_core_dram(hierarchy):
    cha = hierarchy.cha_access(0, 0x900000)
    core = hierarchy.core_access(0, 0xA00000)
    assert cha.level == "DRAM" and core.level == "DRAM"
    assert cha.latency < core.latency


def test_cha_dram_fill_lands_in_llc(hierarchy):
    addr = 0xB00000
    hierarchy.cha_access(0, addr)
    assert hierarchy.llc_resident_fraction(addr, 64) == 1.0


def test_inclusive_llc_back_invalidates(tiny_hierarchy):
    """Evicting a line from the small LLC drops private copies too."""
    hierarchy = tiny_hierarchy
    tracked = 0x10000
    hierarchy.core_access(0, tracked)
    line = hierarchy.line_of(tracked)
    assert hierarchy.l1[0].contains(line)
    # Flood the LLC until the tracked line is evicted.
    addr = 0x100000
    while hierarchy.llc[hierarchy.slice_of(tracked)].contains(line):
        hierarchy.warm_llc(addr, 64)
        addr += 64
    assert not hierarchy.l1[0].contains(line)
    assert not hierarchy.l2[0].contains(line)


def test_lock_line_requires_residency(hierarchy):
    addr = 0xC00000
    assert not hierarchy.lock_line(addr)       # not resident yet
    hierarchy.warm_llc(addr, 64)
    assert hierarchy.lock_line(addr)
    assert hierarchy.line_locked(addr)
    assert hierarchy.unlock_line(addr)
    assert not hierarchy.line_locked(addr)


def test_store_against_locked_line_pays_retries(hierarchy):
    addr = 0xD00000
    hierarchy.warm_llc(addr, 64)
    hierarchy.lock_line(addr)
    locked = hierarchy.core_access(0, addr, write=True)
    assert locked.lock_retries >= 1
    hierarchy.unlock_line(addr)
    unlocked = hierarchy.core_access(1, addr + 64, write=True)
    assert unlocked.lock_retries == 0


def test_warm_llc_installs_all_lines(hierarchy):
    base, size = 0xE00000, 64 * 32
    count = hierarchy.warm_llc(base, size)
    assert count == 32
    assert hierarchy.llc_resident_fraction(base, size) == 1.0


def test_flush_region_evicts_everywhere(hierarchy):
    base = 0xF00000
    hierarchy.core_access(0, base)
    hierarchy.flush_region(base, 64)
    result = hierarchy.core_access(0, base)
    assert result.level == "DRAM"


def test_reset_stats(hierarchy):
    hierarchy.core_access(0, 0x1000)
    hierarchy.reset_stats()
    assert hierarchy.l1[0].stats.accesses == 0
    assert hierarchy.dram.stats.accesses == 0


def test_slice_mapping_matches_interconnect(hierarchy):
    addr = 0x123456
    assert (hierarchy.slice_of(addr)
            == hierarchy.interconnect.slice_of_line(hierarchy.line_of(addr)))
