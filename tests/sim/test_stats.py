"""Statistics helpers."""

import math

import pytest

from repro.sim import Breakdown, RunningStats, geometric_mean, mpkl, throughput_mops
from repro.sim.stats import speedup_table


def test_breakdown_add_and_total():
    breakdown = Breakdown()
    breakdown.add("a", 10)
    breakdown.add("a", 5)
    breakdown.add("b", 5)
    assert breakdown["a"] == 15
    assert breakdown.total == 20
    assert breakdown.fraction("a") == pytest.approx(0.75)


def test_breakdown_missing_key_is_zero():
    assert Breakdown()["nothing"] == 0.0
    assert Breakdown().fraction("nothing") == 0.0


def test_breakdown_scaled_and_merged():
    first = Breakdown({"x": 10.0})
    second = Breakdown({"x": 2.0, "y": 4.0})
    merged = first.merged(second)
    assert merged["x"] == 12.0
    scaled = merged.scaled(0.5)
    assert scaled["y"] == 2.0
    # originals untouched
    assert first["x"] == 10.0


def test_breakdown_fractions_sum_to_one():
    breakdown = Breakdown({"a": 3, "b": 7})
    assert sum(breakdown.fractions().values()) == pytest.approx(1.0)


def test_running_stats():
    stats = RunningStats()
    for value in (2.0, 4.0, 6.0):
        stats.record(value)
    assert stats.mean == pytest.approx(4.0)
    assert stats.minimum == 2.0
    assert stats.maximum == 6.0
    assert stats.variance == pytest.approx(4.0)
    assert stats.stddev == pytest.approx(2.0)
    assert stats.total == pytest.approx(12.0)


def test_running_stats_single_value():
    stats = RunningStats()
    stats.record(5.0)
    assert stats.variance == 0.0


def test_throughput_mops():
    # 1000 ops in 1000 cycles at 2.1 GHz = 2100 Mops.
    assert throughput_mops(1000, 1000, 2.1) == pytest.approx(2100.0)
    assert throughput_mops(10, 0) == 0.0


def test_mpkl():
    assert mpkl(5, 1000) == pytest.approx(5.0)
    assert mpkl(5, 0) == 0.0


def test_geometric_mean():
    assert geometric_mean([1, 100]) == pytest.approx(10.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([0, -3]) == 0.0


def test_speedup_table():
    table = speedup_table({"a": 100.0, "b": 50.0}, {"a": 25.0, "b": 50.0})
    assert table["a"] == pytest.approx(4.0)
    assert table["b"] == pytest.approx(1.0)


def test_breakdown_zero_total_fraction_and_fractions_agree():
    """Regression: fraction() and fractions() used to disagree at total=0
    (0.0 vs divide-by-1); both now report all-zero shares."""
    breakdown = Breakdown({"a": 0.0, "b": 0.0})
    assert breakdown.total == 0.0
    assert breakdown.fraction("a") == 0.0
    assert breakdown.fractions() == {"a": 0.0, "b": 0.0}
    for name in breakdown.parts:
        assert breakdown.fractions()[name] == breakdown.fraction(name)


def test_breakdown_empty_fractions():
    assert Breakdown().fractions() == {}


def test_breakdown_fractions_match_fraction_nonzero():
    breakdown = Breakdown({"a": 2.0, "b": 6.0})
    fractions = breakdown.fractions()
    for name in breakdown.parts:
        assert fractions[name] == pytest.approx(breakdown.fraction(name))
