"""Batched trace pricing: result-for-result parity with the serial path.

``CoreModel.execute_batch`` must produce *exactly* the numbers the serial
``execute`` loop produces — same cycles, same breakdown parts, same level
counts, same core counters — on both its implementations: the numpy array
kernels (:mod:`repro.sim.kernels`) and the pure-Python fallback forced by
``REPRO_NO_NUMPY=1``.  These tests pin that equality on hand-built traces
covering the interesting geometries (chains, MLP-bounded waves, stores,
compute-only traces, L1-resident reruns).
"""

from __future__ import annotations

import pytest

from repro.sim import (CoreModel, InstructionMix, MemOp, MemOpKind,
                       MemoryHierarchy, MemTrace, SKYLAKE_SP_16C)
from repro.sim import kernels

#: Both execute_batch implementations, selected via the env toggle.
PRICING_PATHS = ("vector", "python")


def _force_path(monkeypatch, path):
    if path == "vector":
        monkeypatch.delenv(kernels.NUMPY_DISABLE_ENV, raising=False)
        if not kernels.HAS_NUMPY:
            pytest.skip("numpy unavailable")
    else:
        monkeypatch.setenv(kernels.NUMPY_DISABLE_ENV, "1")


def _mixed_traces():
    """A batch exercising every pricing shape the model distinguishes."""
    mix = InstructionMix(loads=4, arithmetic=30, others=6)
    traces = [
        # Pointer chase: three dependent cold accesses.
        MemTrace([MemOp(0x10000 + i * 4096, dep=i) for i in range(3)], mix),
        # Independent accesses overlapping up to the MLP.
        MemTrace([MemOp(0x80000 + i * 4096, dep=0) for i in range(8)], mix),
        # Store-heavy trace.
        MemTrace([MemOp(0x120000, kind=MemOpKind.STORE, dep=0),
                  MemOp(0x121000, kind=MemOpKind.STORE, dep=1)], mix),
        # Compute-only trace (front-end floor binds).
        MemTrace([], InstructionMix(arithmetic=100, others=100)),
        # Rerun of the first chase: now warm, L1 hits hidden.
        MemTrace([MemOp(0x10000 + i * 4096, dep=i) for i in range(3)], mix),
        # Mixed chain with a wide middle group.
        MemTrace([MemOp(0x200000, dep=0)]
                 + [MemOp(0x210000 + i * 4096, dep=1) for i in range(5)]
                 + [MemOp(0x220000, dep=2)], mix),
    ]
    return traces


def _assert_results_equal(serial, batched):
    assert len(serial) == len(batched)
    for index, (a, b) in enumerate(zip(serial, batched)):
        assert a.cycles == b.cycles, index
        assert dict(a.breakdown.parts) == dict(b.breakdown.parts), index
        assert a.level_counts == b.level_counts, index
        assert a.loads == b.loads, index
        assert a.stores == b.stores, index
        assert a.instructions == b.instructions, index


@pytest.mark.parametrize("path", PRICING_PATHS)
@pytest.mark.parametrize("lock_cycles", [0.0, 23.0])
def test_batch_matches_serial_exactly(monkeypatch, path, lock_cycles):
    _force_path(monkeypatch, path)
    traces = _mixed_traces()
    serial_core = CoreModel(0, MemoryHierarchy(SKYLAKE_SP_16C))
    serial = [serial_core.execute(trace, lock_cycles=lock_cycles)
              for trace in traces]
    batch_core = CoreModel(0, MemoryHierarchy(SKYLAKE_SP_16C))
    batched = batch_core.execute_batch(traces, lock_cycles_each=lock_cycles)
    _assert_results_equal(serial, batched)
    # Core-level accumulators agree bit for bit too.
    assert batch_core.total_cycles == serial_core.total_cycles
    assert batch_core.retired_instructions == serial_core.retired_instructions
    assert batch_core.retired_loads == serial_core.retired_loads


@pytest.mark.parametrize("path", PRICING_PATHS)
def test_batch_evolves_cache_state_like_serial(monkeypatch, path):
    """Accesses sweep the hierarchy in serial order, so a second batch
    over the same addresses sees the warm state the serial path would."""
    _force_path(monkeypatch, path)
    traces = _mixed_traces()
    core = CoreModel(0, MemoryHierarchy(SKYLAKE_SP_16C))
    first = core.execute_batch(traces)
    second = core.execute_batch(traces)
    assert sum(r.cycles for r in second) < sum(r.cycles for r in first)
    serial_core = CoreModel(0, MemoryHierarchy(SKYLAKE_SP_16C))
    for trace in traces:
        serial_core.execute(trace)
    serial_second = [serial_core.execute(trace) for trace in traces]
    _assert_results_equal(serial_second, second)


def test_vector_and_python_paths_agree(monkeypatch):
    if not kernels.HAS_NUMPY:
        pytest.skip("numpy unavailable")
    traces = _mixed_traces()
    monkeypatch.delenv(kernels.NUMPY_DISABLE_ENV, raising=False)
    vector_core = CoreModel(0, MemoryHierarchy(SKYLAKE_SP_16C))
    vector = vector_core.execute_batch(traces, lock_cycles_each=7.5)
    monkeypatch.setenv(kernels.NUMPY_DISABLE_ENV, "1")
    python_core = CoreModel(0, MemoryHierarchy(SKYLAKE_SP_16C))
    python = python_core.execute_batch(traces, lock_cycles_each=7.5)
    _assert_results_equal(vector, python)


def test_numpy_active_respects_env(monkeypatch):
    monkeypatch.setenv(kernels.NUMPY_DISABLE_ENV, "1")
    assert kernels.numpy_active() is False
    monkeypatch.delenv(kernels.NUMPY_DISABLE_ENV, raising=False)
    assert kernels.numpy_active() is kernels.HAS_NUMPY


@pytest.mark.parametrize("path", PRICING_PATHS)
def test_empty_batch(monkeypatch, path):
    _force_path(monkeypatch, path)
    core = CoreModel(0, MemoryHierarchy(SKYLAKE_SP_16C))
    assert core.execute_batch([]) == []
