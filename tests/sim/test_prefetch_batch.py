"""CoreModel.execute_prefetch_batch semantics."""

import pytest

from repro.sim import CoreModel, InstructionMix, MemOp, MemTrace


def make_trace(addrs_by_stage, instructions=40):
    trace = MemTrace(mix=InstructionMix(arithmetic=instructions))
    for stage, addrs in enumerate(addrs_by_stage):
        for addr in addrs:
            trace.load(addr, dep=stage)
    return trace


def test_empty_batch(hierarchy):
    core = CoreModel(0, hierarchy)
    result = core.execute_prefetch_batch([])
    assert result.cycles == 0.0


def test_same_stage_accesses_overlap_across_traces(hierarchy):
    """Two lookups' stage-0 misses share one MLP wave."""
    core = CoreModel(0, hierarchy)
    traces = [make_trace([[0x100000 + i * 4096]]) for i in range(4)]
    batched = core.execute_prefetch_batch(traces)
    # Four cold accesses in one MLP-4 wave: one DRAM stall, not four.
    single_stall = hierarchy.latency.dram - hierarchy.latency.l1_hit
    assert batched.breakdown["memory"] <= single_stall * 1.5


def test_chains_still_serialise_across_stages(hierarchy):
    core = CoreModel(0, hierarchy)
    trace = make_trace([[0x200000], [0x208000], [0x210000]])
    result = core.execute_prefetch_batch([trace])
    single_stall = hierarchy.latency.dram - hierarchy.latency.l1_hit
    assert result.breakdown["memory"] >= 3 * single_stall * 0.9


def test_front_end_floor_enforced(hierarchy):
    core = CoreModel(0, hierarchy)
    traces = [make_trace([], instructions=100) for _ in range(3)]
    result = core.execute_prefetch_batch(traces)
    assert result.cycles == pytest.approx(
        300 / hierarchy.machine.core.issue_width)


def test_lock_cycles_per_trace(hierarchy):
    core = CoreModel(0, hierarchy)
    traces = [make_trace([], instructions=400) for _ in range(5)]
    result = core.execute_prefetch_batch(traces, lock_cycles_each=23)
    assert result.breakdown["locking"] == 5 * 23


def test_counters_accumulate(hierarchy):
    core = CoreModel(0, hierarchy)
    trace = MemTrace(mix=InstructionMix(loads=2, arithmetic=10))
    trace.load(0x300000, dep=0)
    trace.store(0x300040, dep=1)
    result = core.execute_prefetch_batch([trace])
    assert result.loads == 1 and result.stores == 1
    assert result.instructions == 12
    assert core.retired_instructions == 12
