"""Multi-socket topology: params validation, socket math, interconnect
routing, hierarchy penalties — and the bit-identical single-socket
parity the PR 8 refactor promises (default machine vs ``scale_out(1)``,
plus pinned pre-refactor cycle counts)."""

import random

import pytest

from repro.core import HaloSystem
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.interconnect import (
    Interconnect,
    MeshInterconnect,
    build_interconnect,
)
from repro.sim.params import (
    SKYLAKE_SP_16C,
    TINY_MACHINE,
    LatencyParams,
    MachineParams,
    SocketParams,
    Topology,
)

LAT = LatencyParams()


# ---------------------------------------------------------------------------
# params validation


class TestSocketParamsValidation:
    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError, match="cores must be >= 1"):
            SocketParams(cores=0)

    def test_rejects_zero_slices_with_actionable_message(self):
        with pytest.raises(ValueError, match="at least one LLC slice"):
            SocketParams(llc_slices=0)


class TestTopologyValidation:
    def test_rejects_zero_sockets(self):
        with pytest.raises(ValueError, match="sockets must be >= 1"):
            Topology(sockets=0)

    def test_rejects_negative_link_latency(self):
        with pytest.raises(ValueError, match="link_latency must be >= 0"):
            Topology(sockets=2, link_latency=-1)

    def test_totals(self):
        topo = Topology(sockets=2, socket=SocketParams(cores=16,
                                                       llc_slices=16))
        assert topo.total_cores == 32
        assert topo.total_slices == 32


class TestMachineTopologyValidation:
    def test_rejects_non_divisible_cores(self):
        topo = Topology(sockets=3, socket=SocketParams(cores=5,
                                                       llc_slices=5))
        with pytest.raises(ValueError, match="not divisible by"):
            MachineParams(cores=16, llc_slices=15, topology=topo)

    def test_rejects_non_divisible_slices(self):
        topo = Topology(sockets=2, socket=SocketParams(cores=8,
                                                       llc_slices=8))
        with pytest.raises(ValueError,
                           match="llc_slices=15 is not divisible"):
            MachineParams(cores=16, llc_slices=15, topology=topo)

    def test_rejects_mismatched_core_total_with_fix_suggestion(self):
        topo = Topology(sockets=2, socket=SocketParams(cores=4,
                                                       llc_slices=8))
        with pytest.raises(ValueError,
                           match=r"SocketParams\(cores=8"):
            MachineParams(cores=16, llc_slices=16, topology=topo)

    def test_rejects_mismatched_slice_total(self):
        topo = Topology(sockets=2, socket=SocketParams(cores=8,
                                                       llc_slices=4))
        with pytest.raises(ValueError, match="topology mismatch"):
            MachineParams(cores=16, llc_slices=16, topology=topo)

    def test_rejects_zero_slices(self):
        with pytest.raises(ValueError, match="at least one slice"):
            MachineParams(cores=4, llc_slices=0)

    def test_default_machine_derives_single_socket(self):
        topo = SKYLAKE_SP_16C.topo
        assert topo.sockets == 1
        assert topo.socket.cores == SKYLAKE_SP_16C.cores
        assert topo.socket.llc_slices == SKYLAKE_SP_16C.llc_slices


class TestSocketMath:
    TOPO = Topology(sockets=2, socket=SocketParams(cores=16, llc_slices=16))

    def test_socket_of_core(self):
        assert self.TOPO.socket_of_core(0) == 0
        assert self.TOPO.socket_of_core(15) == 0
        assert self.TOPO.socket_of_core(16) == 1
        assert self.TOPO.socket_of_core(31) == 1

    def test_local_core(self):
        assert self.TOPO.local_core(0) == 0
        assert self.TOPO.local_core(17) == 1

    def test_core_on_round_trips(self):
        for socket in range(2):
            for local in range(16):
                global_id = self.TOPO.core_on(socket, local)
                assert self.TOPO.socket_of_core(global_id) == socket
                assert self.TOPO.local_core(global_id) == local

    def test_core_on_rejects_bad_socket(self):
        with pytest.raises(ValueError, match="socket 2 out of range"):
            self.TOPO.core_on(2, 0)

    def test_core_on_rejects_bad_local_core(self):
        with pytest.raises(ValueError, match="local core 16 out of range"):
            self.TOPO.core_on(0, 16)


class TestScaleOut:
    def test_counts_multiply(self):
        machine = SKYLAKE_SP_16C.scale_out(2)
        assert machine.cores == 32
        assert machine.llc_slices == 32
        assert machine.topology.sockets == 2
        assert machine.topology.socket.cores == 16

    def test_refuses_double_scale_out(self):
        machine = SKYLAKE_SP_16C.scale_out(2)
        with pytest.raises(ValueError, match="already has 2 sockets"):
            machine.scale_out(2)

    def test_scale_out_one_is_single_socket_twin(self):
        twin = SKYLAKE_SP_16C.scale_out(1)
        assert twin.cores == SKYLAKE_SP_16C.cores
        assert twin.topo.sockets == 1


# ---------------------------------------------------------------------------
# interconnect routing


class TestInterconnectTopology:
    def test_single_socket_hops_match_ring_formula(self):
        ring = Interconnect(16, LAT)
        for src in range(16):
            for dst in range(16):
                distance = abs(src - dst)
                assert ring.hops(src, dst) == min(distance, 16 - distance)

    def test_single_socket_never_crosses(self):
        ring = Interconnect(16, LAT)
        assert ring.link_crossings(0, 15) == 0
        assert ring.link_latency == 0

    def test_two_socket_local_routing_unchanged(self):
        topo = Topology(sockets=2, socket=SocketParams(16, 16))
        ring = Interconnect(32, LAT, topo)
        # Stops 16..31 are socket 1's local ring of 16.
        assert ring.hops(16, 17) == 1
        assert ring.hops(16, 31) == 1     # local ring wraps
        assert ring.link_crossings(16, 31) == 0

    def test_cross_socket_routes_via_link_stops(self):
        topo = Topology(sockets=2, socket=SocketParams(16, 16))
        ring = Interconnect(32, LAT, topo)
        # src local 3 -> its link stop (3 hops), dst local 2 -> 2 hops.
        assert ring.hops(3, 18) == 5
        assert ring.link_crossings(3, 18) == 1

    def test_cross_socket_transfer_pays_link_and_counts_it(self):
        topo = Topology(sockets=2, socket=SocketParams(16, 16),
                        link_latency=70)
        ring = Interconnect(32, LAT, topo)
        local = ring.transfer_latency(0, 1)
        assert ring.stats.link_crossings == 0
        remote = ring.transfer_latency(0, 16)   # both at local stop 0
        assert remote == 70                     # 0 fabric hops + 1 crossing
        assert ring.stats.link_crossings == 1
        assert local == LAT.hop

    def test_stops_must_tile_sockets(self):
        topo = Topology(sockets=2, socket=SocketParams(16, 16))
        with pytest.raises(ValueError, match="do not tile"):
            Interconnect(31, LAT, topo)

    def test_mesh_uses_per_socket_grids(self):
        topo = Topology(sockets=2, socket=SocketParams(16, 16))
        mesh = MeshInterconnect(32, LAT, topo)
        assert mesh.columns == 4                # 16 local tiles -> 4x4
        # Local Manhattan distance: tile 0 -> tile 5 = (1,1) away.
        assert mesh.hops(16, 21) == 2
        # Cross socket: local 5 -> tile 0 (2 hops) + 0 -> local 0 (0 hops).
        assert mesh.hops(5, 16) == 2
        assert mesh.link_crossings(5, 16) == 1

    def test_build_interconnect_passes_topology(self):
        topo = Topology(sockets=2, socket=SocketParams(16, 16))
        ring = build_interconnect("ring", 32, LAT, topo)
        assert ring.sockets == 2
        mesh = build_interconnect("mesh", 32, LAT, topo)
        assert isinstance(mesh, MeshInterconnect)

    def test_slice_hash_is_global_across_sockets(self):
        """One shared NUCA address space: the hash spreads lines over all
        sockets' slices, which is what creates cross-socket traffic."""
        topo = Topology(sockets=2, socket=SocketParams(16, 16))
        ring = Interconnect(32, LAT, topo)
        sockets_hit = {ring.socket_of_stop(ring.slice_of_line(line))
                       for line in range(256)}
        assert sockets_hit == {0, 1}


# ---------------------------------------------------------------------------
# hierarchy penalties


def _hierarchy(sockets: int) -> MemoryHierarchy:
    machine = (SKYLAKE_SP_16C if sockets == 1
               else SKYLAKE_SP_16C.scale_out(sockets))
    return MemoryHierarchy(machine)


class TestHierarchyMultiSocket:
    def test_single_socket_has_no_link_penalty(self):
        hierarchy = _hierarchy(1)
        assert hierarchy._link_round_trip == 0

    def test_core_stop_is_socket_local(self):
        hierarchy = _hierarchy(2)
        # Core 16 is socket 1's local core 0 -> socket 1's stop 16.
        assert hierarchy.core_stop(16) == 16
        assert hierarchy.socket_of_core(16) == 1
        # Single socket keeps the original identity mapping.
        single = _hierarchy(1)
        assert single.core_stop(5) == 5

    def test_remote_llc_access_pays_link_round_trip(self):
        hierarchy = _hierarchy(2)
        stop = 0                      # socket 0
        local_slice, remote_slice = 1, 17
        local = hierarchy._llc_latency_from(stop, local_slice)
        remote = hierarchy._llc_latency_from(
            stop, remote_slice - 16 + 16)  # same local offset, socket 1
        # Identical local fabric distance, so the difference is exactly
        # the link round trip (2 * 70 cycles).
        assert remote - local == 2 * hierarchy.topology.link_latency
        assert hierarchy.interconnect.stats.link_crossings > 0

    def test_remote_llc_lookup_counts_crossing(self):
        hierarchy = _hierarchy(2)
        before = hierarchy.interconnect.stats.link_crossings
        # Find a line homed on socket 1 and access it from core 0.
        line = next(l for l in range(512)
                    if hierarchy.interconnect.slice_of_line(l) >= 16)
        hierarchy.core_access(0, line * 64)
        assert hierarchy.interconnect.stats.link_crossings > before

    def test_local_socket_access_matches_single_socket_cost(self):
        """A core hitting a slice on its own socket pays single-socket
        NUCA arithmetic — the link is not involved."""
        single = _hierarchy(1)
        double = _hierarchy(2)
        for local_slice in range(16):
            assert (double._llc_latency_from(0, local_slice)
                    == single._llc_latency_from(0, local_slice))


# ---------------------------------------------------------------------------
# warm/flush boundary behaviour


class TestWarmFlushBoundaries:
    def test_warm_llc_unaligned_base(self):
        hierarchy = MemoryHierarchy(TINY_MACHINE)
        # 100..199 spans lines 1..3 despite the unaligned base.
        assert hierarchy.warm_llc(100, 100) == 3

    def test_warm_llc_zero_size_installs_nothing(self):
        hierarchy = MemoryHierarchy(TINY_MACHINE)
        assert hierarchy.warm_llc(128, 0) == 0
        assert sum(len(cache._sets) for cache in hierarchy.llc) == 0

    def test_warm_llc_spans_sockets(self):
        hierarchy = _hierarchy(2)
        lines = 64
        hierarchy.warm_llc(0, lines * 64)
        warmed_sockets = {
            hierarchy.socket_of_slice(
                hierarchy.interconnect.slice_of_line(line))
            for line in range(lines)}
        assert warmed_sockets == {0, 1}
        # Every warmed line must hit in its home slice afterwards.
        for line in range(lines):
            slice_id = hierarchy.interconnect.slice_of_line(line)
            assert hierarchy.llc[slice_id].contains(line)

    def test_flush_region_unaligned_and_exact(self):
        hierarchy = MemoryHierarchy(TINY_MACHINE)
        hierarchy.warm_llc(0, 256)              # lines 0..3
        hierarchy.flush_region(65, 1)           # just line 1
        for line in range(4):
            slice_id = hierarchy.interconnect.slice_of_line(line)
            assert hierarchy.llc[slice_id].contains(line) == (line != 1)

    def test_flush_region_zero_size_is_a_noop(self):
        hierarchy = MemoryHierarchy(TINY_MACHINE)
        hierarchy.warm_llc(64, 64)
        hierarchy.flush_region(64, 0)
        assert hierarchy.llc[
            hierarchy.interconnect.slice_of_line(1)].contains(1)

    def test_flush_region_spanning_sockets_evicts_everywhere(self):
        hierarchy = _hierarchy(2)
        lines = 64
        hierarchy.warm_llc(0, lines * 64)
        hierarchy.flush_region(0, lines * 64)
        for line in range(lines):
            slice_id = hierarchy.interconnect.slice_of_line(line)
            assert not hierarchy.llc[slice_id].contains(line)


# ---------------------------------------------------------------------------
# single-socket parity: the refactor must not move one cycle


def _pin_workload(machine=None):
    rng = random.Random(11)
    system = (HaloSystem(observability=False) if machine is None
              else HaloSystem(machine=machine, observability=False))
    table = system.create_table(1 << 8, name="pin")
    keys = [rng.randbytes(16) for _ in range(64)]
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    blocking = system.run_blocking_lookups(table, keys[:24])
    software = system.run_software_lookups(table, keys[24:48])
    nonblocking = system.run_nonblocking_lookups(table, keys[48:])
    return (blocking.cycles, software.cycles, nonblocking.cycles,
            system.engine.now)


class TestSingleSocketParity:
    #: Captured on the pre-topology tree (PR 7 head): blocking cycles,
    #: software cycles, non-blocking cycles, final engine.now.
    PINNED = (1600, 2999.0, 868.0, 5467.0)

    def test_default_machine_matches_pre_refactor_pin(self):
        assert _pin_workload() == pytest.approx(self.PINNED, rel=1e-12)

    def test_explicit_single_socket_topology_is_bit_identical(self):
        default = _pin_workload()
        explicit = _pin_workload(SKYLAKE_SP_16C.scale_out(1))
        assert default == explicit   # exact, not approx

    def test_two_sockets_change_the_numbers(self):
        """Sanity check that the pin would catch a wired-but-dead
        topology: with real cross-socket penalties the same workload
        must cost more."""
        double = _pin_workload(SKYLAKE_SP_16C.scale_out(2))
        assert double[3] > self.PINNED[3]

    def test_multicore_point_matches_pre_refactor_pin(self):
        from repro.analysis.experiments import multicore_scaling

        point = multicore_scaling.run_point(2, tuples=4, packets_per_core=4,
                                            seed=23)
        assert point.software_packets_per_kcycle == pytest.approx(
            4.275502705591556, rel=1e-12)
        assert point.halo_packets_per_kcycle == pytest.approx(
            16.913319238900634, rel=1e-12)
