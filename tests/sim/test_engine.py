"""Discrete-event engine semantics."""

import pytest

from repro.sim import Engine, Resource, SimulationError, Store


def test_timeout_advances_clock(engine):
    def program():
        yield engine.timeout(10)
        return "done"

    assert engine.run_process(program()) == "done"
    assert engine.now == 10


def test_zero_timeout_same_cycle(engine):
    def program():
        yield engine.timeout(0)
        return engine.now

    assert engine.run_process(program()) == 0


def test_negative_timeout_rejected(engine):
    with pytest.raises(SimulationError):
        engine.timeout(-1)


def test_same_cycle_fifo_ordering(engine):
    order = []

    def worker(tag):
        yield engine.timeout(5)
        order.append(tag)

    for tag in range(4):
        engine.process(worker(tag))
    engine.run()
    assert order == [0, 1, 2, 3]


def test_process_return_value_propagates(engine):
    def child():
        yield engine.timeout(3)
        return 99

    def parent():
        value = yield engine.process(child())
        return value + 1

    assert engine.run_process(parent()) == 100
    assert engine.now == 3


def test_waiting_on_completed_process(engine):
    def child():
        yield engine.timeout(1)
        return "x"

    def parent():
        process = engine.process(child())
        yield engine.timeout(10)   # child long done
        value = yield process
        return value

    assert engine.run_process(parent()) == "x"
    assert engine.now == 10


def test_event_succeed_wakes_all_waiters(engine):
    gate = engine.event()
    woken = []

    def waiter(tag):
        value = yield gate
        woken.append((tag, value))

    def trigger():
        yield engine.timeout(7)
        gate.succeed("go")

    for tag in range(3):
        engine.process(waiter(tag))
    engine.process(trigger())
    engine.run()
    assert woken == [(0, "go"), (1, "go"), (2, "go")]
    assert engine.now == 7


def test_event_double_succeed_raises(engine):
    gate = engine.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_resource_limits_concurrency(engine):
    resource = engine.resource(2)
    active = []
    peak = []

    def worker():
        yield resource.acquire()
        active.append(1)
        peak.append(len(active))
        yield engine.timeout(10)
        active.pop()
        resource.release()

    for _ in range(5):
        engine.process(worker())
    engine.run()
    assert max(peak) == 2
    assert engine.now == 30   # 5 jobs, 2 wide, 10 cycles each


def test_resource_fifo_handoff(engine):
    resource = engine.resource(1)
    order = []

    def worker(tag, hold):
        yield resource.acquire()
        order.append(tag)
        yield engine.timeout(hold)
        resource.release()

    for tag in range(3):
        engine.process(worker(tag, 5))
    engine.run()
    assert order == [0, 1, 2]


def test_resource_release_without_acquire(engine):
    resource = engine.resource(1)
    with pytest.raises(SimulationError):
        resource.release()


def test_resource_capacity_validation(engine):
    with pytest.raises(SimulationError):
        engine.resource(0)


def test_resource_over_release_after_balanced_use(engine):
    """Regression: the guard fires even after legitimate acquire/release
    cycles, not only on a never-acquired resource."""
    resource = engine.resource(2)

    def worker():
        yield resource.acquire()
        yield engine.timeout(1)
        resource.release()

    for _ in range(3):
        engine.process(worker())
    engine.run()
    assert resource.in_use == 0
    with pytest.raises(SimulationError, match="release without"):
        resource.release()


def test_resource_over_release_after_queued_handoff(engine):
    """Regression: a release that hands its slot straight to a queued
    waiter leaves ``in_use`` untouched — the over-release guard must
    still hold once every legitimate holder has released."""
    resource = engine.resource(1)
    releases = []

    def worker(tag):
        yield resource.acquire()
        yield engine.timeout(5)
        resource.release()
        releases.append(tag)

    for tag in range(3):
        engine.process(worker(tag))
    engine.run()
    assert releases == [0, 1, 2]
    with pytest.raises(SimulationError, match="release without"):
        resource.release()


def test_fault_hook_bus(engine):
    """One hook per seam; absent seams resolve to None cheaply."""
    assert engine.fault_hook("any.site") is None
    marker = object()
    engine.add_fault_hook("seam", lambda: marker)
    assert engine.fault_hook("seam")() is marker
    with pytest.raises(SimulationError, match="already installed"):
        engine.add_fault_hook("seam", lambda: None)
    engine.remove_fault_hook("seam")
    assert engine.fault_hook("seam") is None
    engine.remove_fault_hook("seam")   # idempotent


def test_store_fifo(engine):
    store = engine.store()
    received = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    def producer():
        yield engine.timeout(1)
        for item in "abc":
            store.put(item)

    engine.process(consumer())
    engine.process(producer())
    engine.run()
    assert received == ["a", "b", "c"]


def test_store_buffers_when_no_getter(engine):
    store = engine.store()
    store.put(1)
    store.put(2)
    assert len(store) == 2

    def consumer():
        first = yield store.get()
        second = yield store.get()
        return (first, second)

    assert engine.run_process(consumer()) == (1, 2)


def test_deadlock_detection(engine):
    def stuck():
        yield engine.event()   # never triggered

    with pytest.raises(SimulationError, match="deadlock"):
        engine.run_process(stuck())


def test_run_until_bound(engine):
    def ticker():
        while True:
            yield engine.timeout(10)

    engine.process(ticker())
    engine.run(until=35)
    assert engine.now == 35


def test_determinism_across_runs():
    def build_and_run():
        engine = Engine()
        log = []

        def worker(tag, delay):
            yield engine.timeout(delay)
            log.append((engine.now, tag))

        for tag, delay in enumerate([5, 3, 5, 1]):
            engine.process(worker(tag, delay))
        engine.run()
        return log

    assert build_and_run() == build_and_run()


def test_bad_yield_value_raises(engine):
    def program():
        yield 42

    engine.process(program())
    with pytest.raises(SimulationError, match="unsupported"):
        engine.run()


# -- Process.kill and dead-waiter skipping -----------------------------------

def test_kill_releases_resource_queue_position(engine):
    """Regression: a killed process queued on a Resource must not be
    handed the slot — the next *live* waiter gets it."""
    resource = Resource(engine, capacity=1)
    order = []

    def holder():
        yield resource.acquire()
        yield engine.timeout(10)
        resource.release()

    def waiter(tag):
        yield resource.acquire()
        order.append((engine.now, tag))
        yield engine.timeout(1)
        resource.release()

    engine.process(holder(), name="holder")
    doomed = engine.process(waiter("doomed"), name="doomed")
    engine.process(waiter("survivor"), name="survivor")

    engine.run(until=5)          # both waiters are queued behind the holder
    doomed.kill()
    engine.run()

    assert order == [(10, "survivor")]
    assert resource.dead_skips == 1
    assert resource.in_use == 0  # capacity fully conserved after drain
    assert doomed.done and doomed.killed and doomed.result is None


def test_kill_wakes_joined_processes(engine):
    woken = []

    def sleeper():
        yield engine.timeout(1000)

    def joiner(target):
        result = yield target
        woken.append((engine.now, result))

    target = engine.process(sleeper(), name="sleeper")
    engine.process(joiner(target), name="joiner")
    engine.run(until=5)
    target.kill()
    engine.run()
    assert woken == [(5, None)]


def test_store_put_skips_killed_getter(engine):
    store = Store(engine)
    received = []

    def getter(tag):
        item = yield store.get()
        received.append((tag, item))

    doomed = engine.process(getter("doomed"), name="doomed")
    engine.process(getter("survivor"), name="survivor")
    engine.run()                 # both getters queue on the empty store
    doomed.kill()
    store.put("payload")
    engine.run()
    assert received == [("survivor", "payload")]


def test_kill_runs_generator_finally(engine):
    cleaned = []

    def worker():
        try:
            yield engine.timeout(1000)
        finally:
            cleaned.append(engine.now)

    process = engine.process(worker(), name="worker")
    engine.run(until=1)
    process.kill()
    assert cleaned == [1]
    assert process not in engine.live_processes()


def test_kill_is_idempotent_and_noop_when_done(engine):
    def quick():
        yield engine.timeout(1)
        return "done"

    process = engine.process(quick(), name="quick")
    engine.run()
    assert process.result == "done"
    process.kill()               # must not clobber the result
    process.kill()
    assert process.result == "done"
    assert not process.killed
