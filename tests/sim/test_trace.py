"""Memory-trace collection and instruction mixes."""

import pytest

from repro.sim import (
    InstructionMix,
    MemOp,
    MemOpKind,
    MemTrace,
    NULL_TRACER,
    Tracer,
)


def test_tracer_records_ops_in_groups():
    tracer = Tracer()
    tracer.load(0x100)
    tracer.barrier()
    tracer.load(0x200)
    tracer.load(0x240)
    tracer.barrier()
    tracer.store(0x300)
    trace = tracer.take()
    chains = trace.dependency_chains()
    assert [len(chain) for chain in chains] == [1, 2, 1]
    assert chains[2][0].is_store


def test_take_resets_state():
    tracer = Tracer()
    tracer.load(0x100)
    tracer.take()
    tracer.load(0x200)
    trace = tracer.take()
    assert len(trace) == 1
    assert trace.ops[0].dep == 0


def test_tracer_counts_instructions():
    tracer = Tracer()
    tracer.count(loads=10, stores=2, arithmetic=5, others=3)
    tracer.count(loads=1)
    trace = tracer.take()
    assert trace.mix.loads == 11
    assert trace.mix.total == 21


def test_null_tracer_records_nothing():
    NULL_TRACER.load(0x100)
    NULL_TRACER.count(loads=5)
    NULL_TRACER.barrier()
    assert len(NULL_TRACER.trace) == 0
    assert NULL_TRACER.trace.mix.total == 0
    assert not NULL_TRACER.enabled


def test_mix_addition_and_fractions():
    mix = (InstructionMix(loads=76, stores=25, arithmetic=44, others=65)
           + InstructionMix())
    fractions = mix.fractions()
    assert mix.total == 210
    assert fractions["memory"] == pytest.approx(0.481, abs=0.001)
    assert fractions["load"] == pytest.approx(0.362, abs=0.001)
    assert fractions["arithmetic"] == pytest.approx(0.210, abs=0.001)


def test_trace_extend_shifts_dependencies():
    first = MemTrace([MemOp(0x100, dep=0), MemOp(0x200, dep=1)],
                     InstructionMix(loads=2))
    second = MemTrace([MemOp(0x300, dep=0)], InstructionMix(loads=1))
    first.extend(second)
    assert first.max_dep == 2
    assert first.mix.loads == 3


def test_touched_lines_spanning_access():
    trace = MemTrace([MemOp(60, size=8)])   # crosses lines 0 and 1
    assert trace.touched_lines(64) == {0, 1}


def test_touched_lines_single():
    trace = MemTrace([MemOp(0, size=8), MemOp(8, size=8)])
    assert trace.touched_lines(64) == {0}


def test_memop_defaults():
    op = MemOp(0x1000)
    assert op.kind is MemOpKind.LOAD
    assert not op.is_store
    assert op.size == 8
