"""Set-associative cache model."""

import pytest

from repro.sim import Cache, CacheParams


def make_cache(size=4096, assoc=4, line=64, name="c"):
    return Cache(name, CacheParams(size, assoc, line))


def test_miss_then_hit():
    cache = make_cache()
    assert not cache.lookup(5)
    cache.fill(5)
    assert cache.lookup(5)
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_line_of_uses_line_size():
    cache = make_cache()
    assert cache.line_of(0) == 0
    assert cache.line_of(63) == 0
    assert cache.line_of(64) == 1


def test_lru_eviction_order():
    cache = make_cache(size=4 * 64, assoc=4)  # one set
    lines = [cache.set_index(0)]  # all of these map to set 0
    base_lines = [i * cache.num_sets for i in range(5)]
    for line in base_lines[:4]:
        cache.fill(line)
    cache.lookup(base_lines[0])          # refresh line 0
    victim = cache.fill(base_lines[4])   # must evict LRU = base_lines[1]
    assert victim == base_lines[1]
    assert cache.contains(base_lines[0])


def test_fill_existing_line_no_eviction():
    cache = make_cache()
    cache.fill(7)
    assert cache.fill(7) is None
    assert cache.resident_lines == 1


def test_dirty_writeback_accounting():
    cache = make_cache(size=2 * 64, assoc=2)
    lines = [i * cache.num_sets for i in range(3)]
    cache.fill(lines[0], dirty=True)
    cache.fill(lines[1])
    cache.fill(lines[2])   # evicts dirty lines[0]
    assert cache.stats.writebacks == 1


def test_invalidate():
    cache = make_cache()
    cache.fill(9)
    assert cache.invalidate(9)
    assert not cache.contains(9)
    assert not cache.invalidate(9)   # already gone
    assert cache.stats.invalidations == 1


def test_lock_bit_blocks_invalidation():
    cache = make_cache()
    cache.fill(3)
    assert cache.lock(3)
    assert not cache.invalidate(3)   # snoop miss (paper §4.4)
    assert cache.contains(3)
    assert cache.unlock(3)
    assert cache.invalidate(3)


def test_lock_bit_pins_line_against_eviction():
    cache = make_cache(size=2 * 64, assoc=2)
    lines = [i * cache.num_sets for i in range(3)]
    cache.fill(lines[0])
    cache.fill(lines[1])
    cache.lock(lines[0])
    victim = cache.fill(lines[2])
    assert victim == lines[1]        # the unlocked line went instead
    assert cache.contains(lines[0])


def test_lock_missing_line_fails():
    cache = make_cache()
    assert not cache.lock(42)
    assert not cache.is_locked(42)


def test_utilisation():
    cache = make_cache(size=8 * 64, assoc=4)
    assert cache.utilisation() == 0.0
    cache.fill(1)
    cache.fill(2)
    assert cache.utilisation() == pytest.approx(2 / 8)


def test_flush():
    cache = make_cache()
    for line in range(10):
        cache.fill(line)
    cache.flush()
    assert cache.resident_lines == 0


def test_write_marks_dirty_on_hit():
    cache = make_cache(size=2 * 64, assoc=2)
    lines = [i * cache.num_sets for i in range(3)]
    cache.fill(lines[0])
    cache.lookup(lines[0], write=True)
    cache.fill(lines[1])
    cache.fill(lines[2])   # evicts lines[0], which is now dirty
    assert cache.stats.writebacks == 1


def test_rejects_non_power_of_two_sets():
    with pytest.raises(ValueError):
        Cache("bad", CacheParams(3 * 64, 1, 64))


def test_rejects_too_small_geometry():
    with pytest.raises(ValueError):
        Cache("bad", CacheParams(32, 4, 64))


def test_miss_rate():
    cache = make_cache()
    cache.lookup(0)
    cache.fill(0)
    cache.lookup(0)
    assert cache.stats.miss_rate == pytest.approx(0.5)
    cache.stats.reset()
    assert cache.stats.accesses == 0
