"""Analysis reporting and breakdown helpers."""

import pytest

from repro.analysis import (
    FIG3_STAGES,
    PaperCheck,
    classification_share,
    format_table,
    merge_all,
    ordered_parts,
    per_packet,
    percent_str,
    ratio_str,
    render_checks,
    render_stacked,
)
from repro.sim.stats import Breakdown


def test_format_table_alignment():
    text = format_table(["name", "value"],
                        [("alpha", 1.5), ("b", 12345.0)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[2].startswith("-")       # separator row
    assert "alpha" in lines[3]
    assert "12,345" in text


def test_format_table_float_rendering():
    text = format_table(["v"], [(0.123,), (42.5,), (9999.0,)])
    assert "0.12" in text
    assert "42.5" in text
    assert "9,999" in text


def test_paper_check_rendering():
    ok = PaperCheck("metric", "3.3x", "3.1x", holds=True)
    bad = PaperCheck("metric", "3.3x", "0.5x", holds=False)
    neutral = PaperCheck("metric", "3.3x", "3.1x")
    assert "[shape holds]" in ok.render()
    assert "[DIVERGES]" in bad.render()
    assert "[" not in neutral.render()
    block = render_checks("Fig X", [ok, bad])
    assert block.startswith("paper-vs-measured — Fig X")


def test_ratio_and_percent_strings():
    assert ratio_str(3.296) == "3.30x"
    assert percent_str(0.481) == "48.1%"


def test_ordered_parts_includes_zeros():
    breakdown = Breakdown({"emc_lookup": 5.0})
    parts = dict(ordered_parts(breakdown, FIG3_STAGES))
    assert parts["emc_lookup"] == 5.0
    assert parts["packet_io"] == 0.0
    assert list(parts) == list(FIG3_STAGES)


def test_per_packet_scaling():
    breakdown = Breakdown({"a": 100.0})
    scaled = per_packet(breakdown, 10)
    assert scaled["a"] == 10.0
    assert per_packet(breakdown, 0).total == 0.0


def test_classification_share():
    breakdown = Breakdown({"emc_lookup": 20, "megaflow_lookup": 30,
                           "packet_io": 50})
    assert classification_share(breakdown) == pytest.approx(0.5)


def test_merge_all():
    merged = merge_all([Breakdown({"a": 1.0}), Breakdown({"a": 2.0,
                                                          "b": 3.0})])
    assert merged["a"] == 3.0 and merged["b"] == 3.0


def test_render_stacked_totals():
    rows = {"cfg": Breakdown({"packet_io": 10.0, "others": 5.0})}
    text = render_stacked(rows, FIG3_STAGES, title="X")
    assert "cfg" in text
    assert "15" in text.splitlines()[-1]
