"""Mesh interconnect topology."""

import pytest

from repro.sim import LatencyParams, MeshInterconnect, build_interconnect
from repro.sim.interconnect import Interconnect


@pytest.fixture
def mesh():
    return MeshInterconnect(16, LatencyParams())


def test_factory_dispatch():
    latency = LatencyParams()
    assert type(build_interconnect("ring", 8, latency)) is Interconnect
    assert isinstance(build_interconnect("mesh", 8, latency),
                      MeshInterconnect)
    with pytest.raises(ValueError):
        build_interconnect("torus", 8, latency)


def test_manhattan_distance(mesh):
    # 16 stops -> 4x4 grid, row-major.
    assert mesh.hops(0, 0) == 0
    assert mesh.hops(0, 1) == 1       # same row, next column
    assert mesh.hops(0, 4) == 1       # next row, same column
    assert mesh.hops(0, 5) == 2       # diagonal neighbour
    assert mesh.hops(0, 15) == 6      # opposite corner


def test_mesh_symmetric(mesh):
    for src in range(16):
        for dst in range(16):
            assert mesh.hops(src, dst) == mesh.hops(dst, src)


def test_mesh_worst_case_shorter_than_ring_on_big_chips():
    latency = LatencyParams()
    stops = 64
    ring = Interconnect(stops, latency)
    mesh = MeshInterconnect(stops, latency)
    ring_worst = max(ring.hops(0, dst) for dst in range(stops))
    mesh_worst = max(mesh.hops(0, dst) for dst in range(stops))
    assert mesh_worst < ring_worst


def test_mesh_average_distance_reasonable(mesh):
    total = sum(mesh.hops(src, dst)
                for src in range(16) for dst in range(16))
    average = total / (16 * 16)
    assert 2.0 <= average <= 3.0   # 4x4 mesh analytic mean = 2.5


def test_non_square_stop_count():
    mesh = MeshInterconnect(6, LatencyParams())   # 3-column grid
    assert mesh.columns == 3
    assert mesh.hops(0, 5) == 3   # (0,0) -> (1,2)


def test_mesh_slice_hash_same_as_ring():
    latency = LatencyParams()
    ring = Interconnect(16, latency)
    mesh = MeshInterconnect(16, latency)
    for line in range(0, 10_000, 97):
        assert ring.slice_of_line(line) == mesh.slice_of_line(line)
