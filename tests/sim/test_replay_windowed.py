"""Windowed trace replay: mode resolution, fallback accounting, and the
serial-equivalence contract of the concurrent fast path.

Three layers:

* **decide()** — the per-stream mode resolution: batched streams degrade
  to serial only for a recorded reason (``replay.fallback.faults`` /
  ``guard`` / ``concurrency``), and a windowed decision is batching, not
  a fallback.
* **execute_window()** — the budgeted serial pricing primitive: always at
  least one trace, the budget-crossing trace included (that is exactly
  where serial replay would first yield to a foreign event).
* **end-to-end** — collocated streamed software cores produce identical
  clocks, cycles, and outcomes whether they replay serially, windowed, or
  with windowed mode disabled (serial fallback).
"""

from __future__ import annotations

import pytest

from repro.core import HaloSystem
from repro.exec.cores import CoreWorkload
from repro.obs.metrics import MetricsRegistry
from repro.sim import (CoreModel, InstructionMix, MemOp, MemoryHierarchy,
                       MemTrace, SKYLAKE_SP_16C)
from repro.sim.engine import Engine
from repro.sim.replay import (
    METRIC_BATCHES, METRIC_FALLBACK_CONCURRENCY, METRIC_FALLBACK_FAULTS,
    METRIC_FALLBACK_GUARD, METRIC_WINDOWS, REPLAY_BATCH, REPLAY_OFF,
    REPLAY_SERIAL, REPLAY_WINDOWED, TraceReplay, windowed_replay_default)

from ..conftest import make_keys

# ---------------------------------------------------------------------------
# decide(): mode resolution and fallback counters


class _Guard:
    def before_event(self, engine):
        pass

    def on_drain(self, engine):
        pass


def _replay(engine, **kwargs):
    return TraceReplay(None, engine, **kwargs)


def test_decide_off_when_not_batched():
    assert _replay(Engine()).decide() == REPLAY_OFF


def test_decide_batch_when_engine_is_quiet():
    replay = _replay(Engine(), batched=True)
    assert replay.decide() == REPLAY_BATCH
    assert replay.fallbacks == 0


def test_faults_force_serial_and_count():
    registry = MetricsRegistry()
    engine = Engine()
    engine.add_fault_hook("seam", lambda *args: None)
    replay = _replay(engine, batched=True, metrics=registry)
    assert replay.decide() == REPLAY_SERIAL
    assert replay.fallbacks == 1
    assert registry.counter(METRIC_FALLBACK_FAULTS).value == 1


def test_guard_forces_serial_and_counts():
    registry = MetricsRegistry()
    engine = Engine()
    engine.attach_guard(_Guard())
    replay = _replay(engine, batched=True, metrics=registry)
    assert replay.decide() == REPLAY_SERIAL
    assert replay.fallbacks == 1
    assert registry.counter(METRIC_FALLBACK_GUARD).value == 1


def _busy_engine():
    engine = Engine()

    def parked():
        yield engine.timeout(100)

    engine.process(parked(), name="peer0")
    engine.process(parked(), name="peer1")
    return engine


def test_concurrency_goes_windowed_not_serial():
    registry = MetricsRegistry()
    replay = _replay(_busy_engine(), batched=True, windowed=True,
                     metrics=registry)
    assert replay.decide() == REPLAY_WINDOWED
    assert replay.fallbacks == 0
    assert registry.counter(METRIC_FALLBACK_CONCURRENCY).value == 0


def test_concurrency_with_windowed_off_counts_fallback():
    registry = MetricsRegistry()
    replay = _replay(_busy_engine(), batched=True, windowed=False,
                     metrics=registry)
    assert replay.decide() == REPLAY_SERIAL
    assert replay.fallbacks == 1
    assert registry.counter(METRIC_FALLBACK_CONCURRENCY).value == 1


def test_every_serial_decision_is_counted():
    """The no-silent-degradation invariant: a batched replay that decides
    serial has always incremented exactly one fallback counter."""
    registry = MetricsRegistry()
    engine = _busy_engine()
    engine.add_fault_hook("seam", lambda *args: None)
    engine.attach_guard(_Guard())
    replay = _replay(engine, batched=True, windowed=False, metrics=registry)
    for expected in (1, 2, 3):
        assert replay.decide() == REPLAY_SERIAL
        assert replay.fallbacks == expected
    total = sum(registry.counter(name).value
                for name in (METRIC_FALLBACK_FAULTS, METRIC_FALLBACK_GUARD,
                             METRIC_FALLBACK_CONCURRENCY))
    assert total == replay.fallbacks


def test_windowed_env_default(monkeypatch):
    monkeypatch.delenv("REPRO_WINDOWED_REPLAY", raising=False)
    assert windowed_replay_default() is True
    monkeypatch.setenv("REPRO_WINDOWED_REPLAY", "0")
    assert windowed_replay_default() is False


# ---------------------------------------------------------------------------
# execute_window(): the budgeted pricing primitive


def _uniform_traces(count):
    mix = InstructionMix(loads=1, arithmetic=20)
    return [MemTrace([MemOp(0x40000 + i * 4096, dep=0)], mix)
            for i in range(count)]


def test_window_prices_at_least_one_trace():
    core = CoreModel(0, MemoryHierarchy(SKYLAKE_SP_16C))
    results, total, index = core.execute_window(_uniform_traces(4), 0, 0.0)
    assert len(results) == 1 and index == 1
    assert total == results[0].cycles


def test_window_includes_the_crossing_trace():
    core = CoreModel(0, MemoryHierarchy(SKYLAKE_SP_16C))
    traces = _uniform_traces(6)
    probe = CoreModel(0, MemoryHierarchy(SKYLAKE_SP_16C))
    per_trace = probe.execute(traces[0]).cycles
    # Budget ends strictly inside the third trace: windows stop *after*
    # the cumulative total crosses, so three traces are priced.
    results, total, index = core.execute_window(
        traces, 0, 2.5 * per_trace)
    assert index == 3
    assert total >= 2.5 * per_trace


def test_window_without_budget_prices_everything():
    core = CoreModel(0, MemoryHierarchy(SKYLAKE_SP_16C))
    traces = _uniform_traces(5)
    results, total, index = core.execute_window(traces, 1, None)
    assert index == 5 and len(results) == 4


def test_windowed_chain_covers_all_traces():
    """Consecutive windows resume where the previous one stopped and
    cover the stream exactly once."""
    core = CoreModel(0, MemoryHierarchy(SKYLAKE_SP_16C))
    traces = _uniform_traces(10)
    index = 0
    priced = 0
    while index < len(traces):
        results, _total, index = core.execute_window(traces, index, 1.0)
        priced += len(results)
    assert priced == len(traces)


# ---------------------------------------------------------------------------
# end-to-end: collocated streamed cores


def _run_multicore(batched, windowed=None, cores=3, per_core=40):
    system = HaloSystem()
    table = system.create_table(1 << 8, name="windowed_equiv")
    keys = make_keys(64, seed=21)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    workloads = [
        CoreWorkload(backend="software", core_id=core, table=table,
                     keys=[keys[(core * 31 + i) % len(keys)]
                           for i in range(per_core)],
                     stream=True,
                     backend_kwargs={"batched": batched,
                                     "windowed": windowed},
                     name=f"win{core}")
        for core in range(cores)
    ]
    results = system.run_cores(workloads)
    return system, results


def _outcome_view(run):
    return [(r.core_id, r.finished,
             [(o.found, o.cycles) for o in r.result]) for r in run.results]


@pytest.mark.parametrize("windowed", [True, False])
def test_windowed_stream_equals_serial(windowed):
    """Batched concurrent streams — windowed or serial-fallback — give
    exactly the serial per-key clocks, cycles, and outcomes."""
    serial_system, serial_results = _run_multicore(batched=False)
    fast_system, fast_results = _run_multicore(batched=True,
                                               windowed=windowed)
    assert fast_system.engine.now == serial_system.engine.now
    assert _outcome_view(fast_results) == _outcome_view(serial_results)


def test_windowed_stream_counts_windows_without_fallbacks():
    system, _results = _run_multicore(batched=True, windowed=True)
    metrics = system.obs.metrics
    assert metrics.counter(METRIC_WINDOWS).value > 0
    for name in (METRIC_FALLBACK_FAULTS, METRIC_FALLBACK_GUARD,
                 METRIC_FALLBACK_CONCURRENCY):
        assert metrics.counter(name).value == 0


def test_windowed_off_concurrent_streams_count_fallbacks():
    system, _results = _run_multicore(batched=True, windowed=False, cores=3)
    metrics = system.obs.metrics
    assert metrics.counter(METRIC_FALLBACK_CONCURRENCY).value == 3
    assert metrics.counter(METRIC_WINDOWS).value == 0
    assert metrics.counter(METRIC_BATCHES).value == 0


def test_single_core_stream_batches_whole():
    system, _results = _run_multicore(batched=True, cores=1)
    metrics = system.obs.metrics
    assert metrics.counter(METRIC_BATCHES).value == 1
    assert metrics.counter(METRIC_WINDOWS).value == 0
