"""Property suite: the bucketed calendar is order-equivalent to the heap.

The bucket calendar (:class:`repro.sim.calendar.BucketCalendar`) replaced
the flat binary heap in the engine hot loop; these properties are what
make that swap safe.  Two layers:

* **Calendar-level** — push randomized ``(time, seq)`` schedules into
  both implementations (interleaving pushes and pops, same-cycle ties,
  fractional times sharing a floor, far-future outliers) and assert the
  pop sequences are identical.
* **Engine-level** — run randomized process programs (zero-delay
  self-wakes, same-cycle ties, far-future timeouts, ``Process.kill()``
  mid-wait, timeouts left orphaned in the calendar by a killed waiter)
  on ``Engine(calendar="heap")`` and ``Engine(calendar="bucket")`` and
  assert identical execution traces, final clocks, and event counts.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calendar import BucketCalendar, HeapCalendar
from repro.sim.engine import Engine

# ---------------------------------------------------------------------------
# calendar-level equivalence


# Times deliberately collide: integer ties, fractional times sharing a
# floor, and far-future outliers that land in the bucket calendar's
# overflow path.
_TIMES = st.sampled_from(
    [0, 0, 1, 1, 2, 3, 5, 7, 40, 200, 1000, 10**6, 10**9,
     0.5, 0.25, 1.5, 1.75, 2.5, 40.125, 999.875])


@settings(max_examples=200, deadline=None)
@given(st.lists(_TIMES, min_size=0, max_size=60),
       st.data())
def test_calendars_pop_identically(times, data):
    """Same pushes (with interleaved pops) -> same pop sequence."""
    heap, bucket = HeapCalendar(), BucketCalendar()
    popped_heap, popped_bucket = [], []
    floor = 0.0  # engine invariant: never schedule into the past
    for seq, when in enumerate(times):
        when = max(when, floor)
        heap.push(when, seq, f"task{seq}", seq)
        bucket.push(when, seq, f"task{seq}", seq)
        if len(heap) and data.draw(st.booleans(), label="pop now"):
            entry_h, entry_b = heap.pop(), bucket.pop()
            assert entry_h == entry_b
            floor = entry_h[0]
            popped_heap.append(entry_h)
            popped_bucket.append(entry_b)
    assert len(heap) == len(bucket)
    assert (heap.min_time() is None) == (bucket.min_time() is None)
    while heap:
        assert heap.min_time() == bucket.min_time()
        entry_h, entry_b = heap.pop(), bucket.pop()
        assert entry_h == entry_b
        popped_heap.append(entry_h)
        popped_bucket.append(entry_b)
    assert popped_heap == popped_bucket
    # The merged sequence must itself be (time, seq)-sorted within each
    # drain segment; over the full run times are non-decreasing.
    drained = [(entry[0], entry[1]) for entry in popped_heap]
    assert drained == sorted(drained, key=lambda e: e)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(_TIMES, st.integers(0, 3)),
                min_size=1, max_size=40))
def test_same_cycle_fifo_order(entries):
    """Entries pushed for one cycle pop in push (seq) order — both kinds."""
    for calendar in (HeapCalendar(), BucketCalendar()):
        for seq, (when, _jitter) in enumerate(entries):
            calendar.push(float(math.floor(when)), seq, None, seq)
        popped = []
        while calendar:
            popped.append(calendar.pop())
        by_time = {}
        for when, seq, _task, _value in popped:
            by_time.setdefault(when, []).append(seq)
        for seqs in by_time.values():
            assert seqs == sorted(seqs)


# ---------------------------------------------------------------------------
# engine-level equivalence


#: Delays a worker can yield: zero-delay self-wakes, same-cycle ties,
#: short cache-ish latencies, fractional cycles, and far-future parks.
_DELAYS = [0, 0, 1, 1, 2, 3, 5, 40, 200, 1000, 0.5, 2.5, 10**7]

_ACTIONS = st.one_of(
    st.tuples(st.just("timeout"), st.sampled_from(_DELAYS)),
    st.tuples(st.just("spawn"),
              st.lists(st.sampled_from(_DELAYS), min_size=0, max_size=4)),
    st.tuples(st.just("kill"), st.integers(0, 9)),
)

_PROGRAMS = st.lists(st.lists(_ACTIONS, min_size=1, max_size=8),
                     min_size=1, max_size=5)


def _run_schedule(calendar: str, programs, **engine_kwargs):
    """Interpret the randomized programs; return (trace, now, events)."""
    engine = Engine(calendar=calendar, **engine_kwargs)
    trace = []
    registry = []  # every process ever spawned, kill targets by index
    own = {}       # wid -> the worker's own Process (self-kill excluded)

    def child(cid, delays):
        for step, delay in enumerate(delays):
            yield engine.timeout(delay)
            trace.append(("child", cid, step, engine.now))

    def worker(wid, actions):
        for step, action in enumerate(actions):
            kind = action[0]
            if kind == "timeout":
                yield engine.timeout(action[1])
            elif kind == "spawn":
                cid = (wid, step)
                registry.append(engine.process(child(cid, action[1]),
                                               name=f"child{cid}"))
            else:  # kill: may hit a live, finished, or parked process
                if registry:
                    target = registry[action[1] % len(registry)]
                    if target is not own.get(wid):  # no self-kill
                        target.kill()
                yield engine.timeout(0)
            trace.append(("worker", wid, step, engine.now))

    for wid, actions in enumerate(programs):
        process = engine.process(worker(wid, actions), name=f"worker{wid}")
        own[wid] = process
        registry.append(process)
    engine.run()
    return trace, engine.now, engine.events_processed


@settings(max_examples=120, deadline=None)
@given(_PROGRAMS)
def test_engines_execute_identically(programs):
    """Heap and bucket engines: same trace, same clock, same event count.

    Killed processes exercise the orphaned-timeout path: their pending
    timeout entries stay in the calendar and must drain in the same
    order on both implementations without waking anyone.
    """
    heap_run = _run_schedule("heap", programs)
    bucket_run = _run_schedule("bucket", programs)
    assert heap_run[0] == bucket_run[0]          # execution trace
    assert heap_run[1] == bucket_run[1]          # final clock
    assert heap_run[2] == bucket_run[2]          # events processed


@settings(max_examples=120, deadline=None)
@given(_PROGRAMS)
def test_timeout_freelist_is_invisible(programs):
    """Recycling fired Timeout records must be pure allocation reuse.

    The same randomized programs (kills included — a killed waiter's
    orphaned timeout must never be recycled early) run with the free-list
    on and off and must produce identical execution traces, final clocks,
    and event counts.
    """
    recycled = _run_schedule("bucket", programs, recycle_timeouts=True)
    fresh = _run_schedule("bucket", programs, recycle_timeouts=False)
    assert recycled[0] == fresh[0]               # execution trace
    assert recycled[1] == fresh[1]               # final clock
    assert recycled[2] == fresh[2]               # events processed


def test_default_engine_is_bucketed():
    engine = Engine()
    assert engine._calendar.kind == "bucket"
    assert Engine(calendar="heap")._calendar.kind == "heap"
