"""Out-of-order core cost model."""

import pytest

from repro.sim import CoreModel, InstructionMix, MemOp, MemOpKind, MemTrace


def trace_with(mix=None, ops=()):
    trace = MemTrace(ops, mix or InstructionMix())
    return trace


def test_front_end_floor_applies(hierarchy):
    core = CoreModel(0, hierarchy)
    mix = InstructionMix(loads=0, stores=0, arithmetic=100, others=100)
    result = core.execute(trace_with(mix))
    assert result.cycles == pytest.approx(
        200 / hierarchy.machine.core.issue_width)


def test_memory_chain_serialises(hierarchy):
    core = CoreModel(0, hierarchy)
    # Three dependent cold accesses: each goes to DRAM, fully serialised.
    ops = [MemOp(0x10000 + i * 4096, dep=i) for i in range(3)]
    result = core.execute(trace_with(ops=ops))
    assert result.cycles >= 3 * (hierarchy.latency.dram
                                 - hierarchy.latency.l1_hit)


def test_independent_accesses_overlap(hierarchy):
    core = CoreModel(0, hierarchy)
    dependent = [MemOp(0x20000 + i * 4096, dep=i) for i in range(4)]
    serial = core.execute(trace_with(ops=dependent)).cycles
    hierarchy_2 = type(hierarchy)(hierarchy.machine)
    core2 = CoreModel(0, hierarchy_2)
    independent = [MemOp(0x20000 + i * 4096, dep=0) for i in range(4)]
    parallel = core2.execute(trace_with(ops=independent)).cycles
    assert parallel < serial / 2


def test_mlp_limits_overlap(hierarchy):
    core = CoreModel(0, hierarchy)
    # 8 independent cold accesses with MLP 4 need two waves.
    ops = [MemOp(0x30000 + i * 4096, dep=0) for i in range(8)]
    result = core.execute(trace_with(ops=ops))
    one_wave = hierarchy.latency.dram - hierarchy.latency.l1_hit
    assert result.cycles >= 2 * one_wave * 0.9


def test_l1_hits_are_hidden(hierarchy):
    core = CoreModel(0, hierarchy)
    addr = 0x40000
    hierarchy.core_access(0, addr)   # warm L1
    result = core.execute(trace_with(ops=[MemOp(addr, dep=0)]))
    assert result.breakdown["memory"] == 0.0


def test_lock_cycles_added(hierarchy):
    core = CoreModel(0, hierarchy)
    mix = InstructionMix(arithmetic=400)
    with_lock = core.execute(trace_with(mix), lock_cycles=23)
    assert with_lock.breakdown["locking"] == 23


def test_level_counts_recorded(hierarchy):
    core = CoreModel(0, hierarchy)
    result = core.execute(trace_with(ops=[MemOp(0x50000, dep=0)]))
    assert result.level_counts.get("DRAM") == 1


def test_store_op_counted(hierarchy):
    core = CoreModel(0, hierarchy)
    ops = [MemOp(0x60000, kind=MemOpKind.STORE, dep=0)]
    result = core.execute(trace_with(ops=ops))
    assert result.stores == 1
    assert result.loads == 0


def test_execute_many_aggregates(hierarchy):
    core = CoreModel(0, hierarchy)
    mix = InstructionMix(arithmetic=40)
    traces = [trace_with(mix) for _ in range(5)]
    result = core.execute_many(traces)
    assert result.instructions == 200
    assert result.cycles == pytest.approx(5 * 40 / 4)


def test_retired_counters_accumulate(hierarchy):
    core = CoreModel(0, hierarchy)
    core.execute(trace_with(InstructionMix(loads=2, arithmetic=10),
                            ops=[MemOp(0x70000, dep=0)]))
    assert core.retired_instructions == 12
    assert core.retired_loads == 1
    assert core.total_cycles > 0
