"""Per-core trace routing (CoreTracerRouter + capture) and the
allocation-free NullTracer fast path."""

import pytest

from repro.sim import CoreTracerRouter, MemTrace, NullTracer, Tracer, capture
from repro.sim.trace import NULL_TRACER


class TestNullTracer:
    def test_take_returns_shared_trace_without_allocating(self):
        tracer = NullTracer()
        first = tracer.take()
        tracer.begin()
        second = tracer.take()
        assert first is second is tracer.trace
        assert len(first) == 0

    def test_recording_hooks_are_noops(self):
        tracer = NullTracer()
        tracer.load(0x1000)
        tracer.store(0x2000, size=16)
        tracer.count(loads=3, arithmetic=5)
        tracer.barrier()
        trace = tracer.take()
        assert len(trace) == 0
        assert trace.mix.total == 0

    def test_disabled_flag_and_module_singleton(self):
        assert not NullTracer().enabled
        assert isinstance(NULL_TRACER, NullTracer)

    def test_capture_through_null_tracer(self):
        value, trace = capture(NULL_TRACER, 3, lambda: "ok")
        assert value == "ok"
        assert len(trace) == 0


class TestCoreTracerRouter:
    def test_default_active_is_core_zero(self):
        router = CoreTracerRouter()
        router.begin()
        router.load(0x40)
        assert len(router.tracer_for(0).trace) == 1
        assert len(router.tracer_for(1).trace) == 0

    def test_tracer_for_is_stable_per_core(self):
        router = CoreTracerRouter()
        assert router.tracer_for(2) is router.tracer_for(2)
        assert router.tracer_for(2) is not router.tracer_for(3)

    def test_capture_routes_to_issuing_core(self):
        router = CoreTracerRouter()

        def touch(addr):
            router.load(addr)
            return addr

        value, trace = capture(router, 1, touch, 0x100)
        assert value == 0x100
        assert [op.addr for op in trace] == [0x100]
        # Core 0's tracer never saw the access.
        router.begin()
        assert len(router.take()) == 0

    def test_interleaved_captures_do_not_clobber(self):
        router = CoreTracerRouter()
        _, trace_a = capture(router, 0, lambda: router.load(0xA))
        _, trace_b = capture(router, 1, lambda: router.load(0xB))
        _, trace_a2 = capture(router, 0, lambda: router.load(0xAA))
        assert [op.addr for op in trace_a] == [0xA]
        assert [op.addr for op in trace_b] == [0xB]
        assert [op.addr for op in trace_a2] == [0xAA]

    def test_nested_activation_restores_outer_core(self):
        router = CoreTracerRouter()
        token_outer = router.activate(1)
        router.begin()
        router.load(0x1)
        token_inner = router.activate(2)
        router.begin()
        router.load(0x2)
        inner = router.take()
        router.restore(token_inner)
        router.load(0x11)  # back on core 1's in-progress trace
        outer = router.take()
        router.restore(token_outer)
        assert [op.addr for op in inner] == [0x2]
        assert [op.addr for op in outer] == [0x1, 0x11]

    def test_capture_restores_on_exception(self):
        router = CoreTracerRouter()

        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            capture(router, 5, boom)
        # Active target fell back to the pre-capture one (core 0).
        router.begin()
        router.load(0xC0)
        assert [op.addr for op in router.tracer_for(0).trace] == [0xC0]
        assert len(router.tracer_for(5).trace) == 0


class TestPlainTracerHooks:
    def test_activate_is_noop_and_tracer_for_returns_self(self):
        tracer = Tracer()
        token = tracer.activate(7)
        assert token is None
        tracer.restore(token)
        assert tracer.tracer_for(7) is tracer

    def test_capture_brackets_begin_and_take(self):
        tracer = Tracer()
        tracer.load(0xDEAD)  # stale op from before the bracket
        value, trace = capture(tracer, 0, lambda: tracer.load(0xBEEF))
        assert value is None
        assert [op.addr for op in trace] == [0xBEEF]
        assert isinstance(trace, MemTrace)
