"""Machine parameter sets (paper Table 2)."""

from repro.sim import CacheParams, MachineParams, SKYLAKE_SP_16C, TINY_MACHINE

KB = 1024
MB = 1024 * KB


def test_table2_configuration():
    machine = SKYLAKE_SP_16C
    assert machine.cores == 16
    assert machine.llc_slices == 16
    assert machine.core.frequency_ghz == 2.1
    assert machine.l1d.size_bytes == 32 * KB and machine.l1d.associativity == 8
    assert machine.l2.size_bytes == 1 * MB and machine.l2.associativity == 16
    assert machine.llc_total_bytes == 32 * MB
    assert machine.llc_slice.associativity == 16


def test_halo_configuration_matches_paper():
    halo = SKYLAKE_SP_16C.halo
    assert halo.scoreboard_entries == 10      # §4.7: 10 on-the-fly queries
    assert halo.metadata_cache_tables == 10   # §4.7: 10 tables (640B)
    assert halo.hash_issue_interval == 1      # fully pipelined hash unit


def test_latency_ordering():
    latency = SKYLAKE_SP_16C.latency
    assert latency.l1_hit < latency.l2_hit < latency.llc_hit < latency.dram
    assert latency.cha_llc_hit < latency.llc_hit
    assert latency.cha_dram < latency.dram


def test_paper_latency_ratios():
    """The ratios behind Figure 10's data-access claims."""
    latency = SKYLAKE_SP_16C.latency
    assert 3.0 <= latency.llc_hit / latency.cha_llc_hit <= 9.0
    assert 1.3 <= latency.dram / latency.cha_dram <= 2.0


def test_cache_num_sets():
    params = CacheParams(32 * KB, 8)
    assert params.num_sets == 64


def test_scaled_override():
    machine = SKYLAKE_SP_16C.scaled(cores=8)
    assert machine.cores == 8
    assert machine.llc_slices == 16         # untouched
    assert SKYLAKE_SP_16C.cores == 16       # original frozen


def test_tiny_machine_is_consistent():
    assert TINY_MACHINE.cores == 2
    assert TINY_MACHINE.llc_slices == 2
    assert TINY_MACHINE.l1d.num_sets >= 1
