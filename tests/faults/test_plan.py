"""FaultPlan/FaultWindow semantics: validation, duty cycling, the
monotone-nesting property of the degradation preset, and the
deterministic RNG."""

import pytest

from repro.faults import FaultKind, FaultPlan, FaultWindow, SplitMix64


# -- windows ---------------------------------------------------------------
def test_empty_window_rejected():
    with pytest.raises(ValueError):
        FaultWindow(kind=FaultKind.ACCEL_STALL, start=100, end=100)
    with pytest.raises(ValueError):
        FaultWindow(kind=FaultKind.ACCEL_STALL, start=100, end=50)


@pytest.mark.parametrize("bad", [-0.1, 1.5])
def test_probability_range_enforced(bad):
    with pytest.raises(ValueError):
        FaultWindow(kind=FaultKind.NOC_DROP, start=0, end=10,
                    probability=bad)


def test_period_and_duty_validation():
    with pytest.raises(ValueError):
        FaultWindow(kind=FaultKind.DRAM_SPIKE, start=0, end=10, period=0)
    with pytest.raises(ValueError):
        FaultWindow(kind=FaultKind.DRAM_SPIKE, start=0, end=10, duty=1.2)


def test_plain_window_active_over_half_open_interval():
    window = FaultWindow(kind=FaultKind.ACCEL_OUTAGE, start=10, end=20)
    assert not window.active(9.99)
    assert window.active(10)
    assert window.active(19.99)
    assert not window.active(20)
    assert window.remaining(15) == 5
    assert window.remaining(25) == 0


def test_duty_cycled_window_fires_first_fraction_of_each_period():
    window = FaultWindow(kind=FaultKind.ACCEL_STALL, start=0, end=1000,
                        period=100, duty=0.25)
    assert window.active(0) and window.active(24.9)
    assert not window.active(25) and not window.active(99)
    assert window.active(100)       # next period's burst
    assert window.remaining(110) == pytest.approx(15)
    assert window.remaining(50) == 0


def test_covers_slice():
    machine_wide = FaultWindow(kind=FaultKind.ACCEL_STALL, start=0, end=1)
    targeted = FaultWindow(kind=FaultKind.ACCEL_STALL, start=0, end=1,
                           slice_id=3)
    assert machine_wide.covers_slice(0) and machine_wide.covers_slice(7)
    assert targeted.covers_slice(3) and not targeted.covers_slice(4)


# -- plans -----------------------------------------------------------------
def test_empty_plan_is_falsy_and_describes_itself():
    plan = FaultPlan()
    assert not plan
    assert "empty" in plan.describe()


def test_active_filters_kind_time_and_slice():
    plan = FaultPlan(windows=(
        FaultWindow(kind=FaultKind.ACCEL_OUTAGE, start=0, end=50,
                    slice_id=1),
        FaultWindow(kind=FaultKind.DRAM_SPIKE, start=0, end=50),
    ))
    assert len(list(plan.active(FaultKind.ACCEL_OUTAGE, 10, 1))) == 1
    assert len(list(plan.active(FaultKind.ACCEL_OUTAGE, 10, 2))) == 0
    assert len(list(plan.active(FaultKind.ACCEL_OUTAGE, 60, 1))) == 0
    assert len(list(plan.active(FaultKind.DRAM_SPIKE, 10, 5))) == 1


def test_slice_outage_preset():
    plan = FaultPlan.slice_outage(2, start=100, end=900)
    assert len(plan.windows) == 1
    window = plan.windows[0]
    assert window.kind is FaultKind.ACCEL_OUTAGE
    assert window.slice_id == 2
    assert (window.start, window.end) == (100, 900)
    assert "accel_outage" in plan.describe()


def test_degradation_intensity_zero_is_empty():
    assert not FaultPlan.degradation(0.0)


def test_degradation_intensity_validated():
    with pytest.raises(ValueError):
        FaultPlan.degradation(1.5)
    with pytest.raises(ValueError):
        FaultPlan.degradation(-0.1)


def test_degradation_coverage_nests_across_intensities():
    """Every cycle faulted at intensity x is faulted at every y > x —
    the structural guarantee behind the sweep's monotonicity check."""
    low = FaultPlan.degradation(0.25)
    high = FaultPlan.degradation(0.75)
    stall_low = low.of_kind(FaultKind.ACCEL_STALL)[0]
    stall_high = high.of_kind(FaultKind.ACCEL_STALL)[0]
    for now in range(0, 20_000, 37):
        if stall_low.active(now):
            assert stall_high.active(now), \
                f"cycle {now} faulted at 0.25 but not at 0.75"
    assert stall_high.magnitude > stall_low.magnitude
    drop_low = low.of_kind(FaultKind.NOC_DROP)[0]
    drop_high = high.of_kind(FaultKind.NOC_DROP)[0]
    assert drop_high.probability > drop_low.probability


# -- the RNG ---------------------------------------------------------------
def test_splitmix64_deterministic():
    a, b = SplitMix64(42), SplitMix64(42)
    assert [a.next_u64() for _ in range(16)] \
        == [b.next_u64() for _ in range(16)]


def test_splitmix64_uniform_and_randint_ranges():
    rng = SplitMix64(7)
    for _ in range(200):
        assert 0.0 <= rng.uniform() < 1.0
    for _ in range(200):
        assert 3 <= rng.randint(3, 9) <= 9
    with pytest.raises(ValueError):
        rng.randint(5, 4)


def test_splitmix64_fork_is_independent_and_keyed():
    parent = SplitMix64(99)
    child_a = parent.fork(1)
    child_b = parent.fork(2)
    assert child_a.next_u64() != child_b.next_u64()
    # Forking does not perturb the parent stream.
    reference = SplitMix64(99)
    assert parent.next_u64() == reference.next_u64()
