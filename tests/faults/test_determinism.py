"""The fault subsystem's two replay guarantees.

* **Bit-identical replay** — two runs of the same workload under the same
  :class:`FaultPlan` seed produce identical event timelines and identical
  fault counters.
* **Zero-fault parity** — an *installed* injector holding an empty plan
  changes nothing: every simulated cycle matches the uninstrumented run
  to 1e-12.
"""

import pytest

from repro.core import HaloSystem
from repro.faults import FaultInjector, FaultPlan

from ..conftest import make_keys

N_KEYS = 40


def run_workload(plan=None, policy=None, entries=2048, seed=91):
    """One full faulted run; returns (system, injector, outcomes)."""
    system = HaloSystem()
    table = system.create_table(entries, name="replay")
    inserted = []
    for index, key in enumerate(make_keys(400, seed=seed)):
        if table.insert(key, index):
            inserted.append((key, index))
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    injector = None
    if plan is not None:
        injector = FaultInjector(system, plan).install()
    kwargs = {"policy": policy} if policy is not None else {}
    backend = system.backend("halo-nb", **kwargs)
    keys = [key for key, _ in inserted[:N_KEYS]]
    outcomes = system.engine.run_process(backend.lookup_stream(table, keys))
    return system, injector, outcomes


def fingerprint(system, injector, outcomes):
    return (
        system.engine.now,
        system.engine.events_processed,
        tuple(injector.stats.as_dict().items()),
        tuple((o.value, o.found, o.cycles, o.degraded) for o in outcomes),
    )


def test_same_seed_replays_bit_identically():
    plan = FaultPlan.degradation(0.6, seed=2024)
    first = fingerprint(*run_workload(plan))
    second = fingerprint(*run_workload(plan))
    assert first == second


def test_different_seed_diverges():
    """The seed actually drives the probabilistic faults: with NoC drops
    in play, distinct seeds must produce distinct timelines."""
    base = FaultPlan.degradation(0.6, seed=1)
    other = FaultPlan.degradation(0.6, seed=2)
    first = fingerprint(*run_workload(base))
    second = fingerprint(*run_workload(other))
    assert first[0] != second[0] or first[2] != second[2]


def test_empty_plan_injector_is_cycle_invisible():
    bare_system, _none, bare = run_workload(plan=None)
    faulted_system, injector, faulted = run_workload(plan=FaultPlan())
    assert injector.stats.injections == 0
    assert faulted_system.engine.now \
        == pytest.approx(bare_system.engine.now, rel=1e-12)
    for bare_outcome, faulted_outcome in zip(bare, faulted):
        assert faulted_outcome.cycles \
            == pytest.approx(bare_outcome.cycles, rel=1e-12)
        assert faulted_outcome.value == bare_outcome.value


def test_uninstall_restores_unfaulted_latencies():
    plan = FaultPlan.degradation(0.8, seed=77)
    bare_system, _none, bare = run_workload(plan=None)
    system, injector, _ = run_workload(plan)
    injector.uninstall()
    # A fresh stream on the faulted system, post-uninstall, prices like a
    # healthy machine (per-op; drift from warmed state is expected, so the
    # check is on the hooks being gone, not exact parity).
    assert system.engine.fault_hook("accelerator.serve") is None
    assert system.hierarchy.dram.fault_hook is None
    assert system.hierarchy.interconnect.fault_hook is None
