"""Shard-level fault schedules: determinism, kill-set nesting, the
protected-shard guarantee, and the JSON round-trip both dispatch paths
(pool children, inline synthesis) rely on."""

import pytest

from repro.faults import (
    ShardFaultDecision,
    ShardFaultKind,
    ShardFaultPlan,
    ShardFaultWindow,
)

SHARDS = 16
ATTEMPTS = 3


class TestWindowValidation:
    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rate_range(self, bad):
        with pytest.raises(ValueError, match="outside"):
            ShardFaultWindow(kind=ShardFaultKind.KILL, rate=bad)

    def test_period_positive(self):
        with pytest.raises(ValueError, match="period"):
            ShardFaultWindow(kind=ShardFaultKind.KILL, period=0)

    def test_duty_range(self):
        with pytest.raises(ValueError, match="duty"):
            ShardFaultWindow(kind=ShardFaultKind.KILL, period=4, duty=2.0)

    def test_flap_attempts_positive(self):
        with pytest.raises(ValueError, match="flap_attempts"):
            ShardFaultWindow(kind=ShardFaultKind.FLAP, flap_attempts=0)

    def test_magnitude_non_negative(self):
        with pytest.raises(ValueError, match="magnitude"):
            ShardFaultWindow(kind=ShardFaultKind.STRAGGLER, magnitude=-1.0)


class TestTargeting:
    def test_allow_list_filters(self):
        window = ShardFaultWindow(kind=ShardFaultKind.KILL, shards=(2, 5))
        assert window.covers(2) and window.covers(5)
        assert not window.covers(0) and not window.covers(3)

    def test_duty_cycle_over_shard_index(self):
        window = ShardFaultWindow(kind=ShardFaultKind.KILL,
                                  period=4, duty=0.5)
        covered = [s for s in range(8) if window.covers(s)]
        assert covered == [0, 1, 4, 5]

    def test_flap_kills_only_early_attempts(self):
        window = ShardFaultWindow(kind=ShardFaultKind.FLAP, flap_attempts=2)
        assert window.kills_attempt(1) and window.kills_attempt(2)
        assert not window.kills_attempt(3)

    def test_straggler_never_kills(self):
        window = ShardFaultWindow(kind=ShardFaultKind.STRAGGLER,
                                  magnitude=10.0)
        assert not window.kills_attempt(1)


class TestDecide:
    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            ShardFaultPlan.kills(1.0).decide(1, 0)

    def test_pure_function_of_seed(self):
        first = ShardFaultPlan.kills(0.5, seed=9)
        second = ShardFaultPlan.kills(0.5, seed=9)
        decisions = [(s, a) for s in range(SHARDS)
                     for a in range(1, ATTEMPTS + 1)]
        assert [first.decide(s, a) for s, a in decisions] == \
            [second.decide(s, a) for s, a in decisions]

    def test_different_seed_different_kill_set(self):
        kills = lambda seed: ShardFaultPlan.kills(0.5, seed=seed) \
            .doomed_shards(SHARDS, ATTEMPTS)
        assert any(kills(seed) != kills(seed + 100) for seed in range(5))

    def test_kill_sets_nest_as_rate_rises(self):
        """The per-shard draw is independent of the rate, so raising the
        rate only ever adds shards — the monotonicity ``cluster_chaos``
        builds its p99/lost-flow checks on."""
        previous = set()
        for rate in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0):
            doomed = set(ShardFaultPlan.kills(rate, seed=3)
                         .doomed_shards(SHARDS, ATTEMPTS))
            assert previous <= doomed
            previous = doomed
        assert previous == set(range(1, SHARDS))  # all but protected

    def test_protected_shards_never_die(self):
        plan = ShardFaultPlan.kills(1.0, protected=(0, 3))
        doomed = plan.doomed_shards(SHARDS, ATTEMPTS)
        assert 0 not in doomed and 3 not in doomed
        assert len(doomed) == SHARDS - 2

    def test_protected_shards_still_straggle(self):
        plan = ShardFaultPlan(
            windows=(ShardFaultWindow(kind=ShardFaultKind.STRAGGLER,
                                      magnitude=32.0), ),
            protected=(0,))
        decision = plan.decide(0, 1)
        assert not decision.kill
        assert decision.straggle_cycles == 32.0

    def test_straggler_windows_stack(self):
        plan = ShardFaultPlan(windows=(
            ShardFaultWindow(kind=ShardFaultKind.STRAGGLER, magnitude=8.0),
            ShardFaultWindow(kind=ShardFaultKind.STRAGGLER, magnitude=4.0),
        ))
        assert plan.decide(1, 1).straggle_cycles == 12.0

    def test_flap_recovers_on_later_attempt(self):
        plan = ShardFaultPlan.flaky(1.0, attempts=2)
        assert plan.decide(1, 1).kill
        assert plan.decide(1, 2).kill
        assert not plan.decide(1, 3).kill

    def test_decision_truthiness(self):
        assert not ShardFaultDecision()
        assert ShardFaultDecision(kill=True)
        assert ShardFaultDecision(straggle_cycles=1.0)


class TestSerialisation:
    def test_round_trip_exact(self):
        plan = ShardFaultPlan.chaos(0.4, seed=77, protected=(0, 1))
        assert ShardFaultPlan.from_params(plan.to_params()) == plan

    def test_params_are_json_safe(self):
        import json
        params = ShardFaultPlan.chaos(0.3).to_params()
        assert json.loads(json.dumps(params)) == params

    def test_round_tripped_plan_decides_identically(self):
        plan = ShardFaultPlan.chaos(0.6, seed=5)
        copy = ShardFaultPlan.from_params(plan.to_params())
        for shard in range(SHARDS):
            for attempt in range(1, ATTEMPTS + 1):
                assert copy.decide(shard, attempt) == \
                    plan.decide(shard, attempt)

    def test_corrupt_kind_raises(self):
        params = ShardFaultPlan.kills(0.5).to_params()
        params["windows"][0]["kind"] = "meltdown"
        with pytest.raises(ValueError):
            ShardFaultPlan.from_params(params)


class TestPresets:
    def test_rate_zero_plans_are_empty_and_falsy(self):
        assert not ShardFaultPlan.kills(0.0)
        assert not ShardFaultPlan.flaky(0.0)
        assert not ShardFaultPlan.chaos(0.0)

    def test_kills_preset_is_permanent(self):
        plan = ShardFaultPlan.kills(1.0)
        assert plan.decide(1, 1).kill and plan.decide(1, 5).kill

    def test_chaos_affected_sets_nest(self):
        low = ShardFaultPlan.chaos(0.2, seed=4)
        high = ShardFaultPlan.chaos(0.8, seed=4)
        assert set(low.doomed_shards(SHARDS, 1)) <= \
            set(high.doomed_shards(SHARDS, 1))

    def test_describe_mentions_every_window(self):
        text = ShardFaultPlan.chaos(0.4).describe()
        assert "kill" in text and "flap" in text and "straggler" in text
        assert ShardFaultPlan.kills(0.0).describe().startswith(
            "ShardFaultPlan(empty")
