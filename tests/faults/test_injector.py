"""FaultInjector mechanics: hook lifecycle, each fault kind's effect on
the model, and the ``faults.*`` metrics source."""

import pytest

from repro.core import HaloSystem
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultWindow
from repro.faults.injector import ACCEL_SEAM
from repro.sim import SimulationError

from ..conftest import make_keys


def build_system(entries=2048, keys=600, seed=91):
    system = HaloSystem()
    table = system.create_table(entries, name="faults_test")
    inserted = []
    for index, key in enumerate(make_keys(keys, seed=seed)):
        if table.insert(key, index):
            inserted.append((key, index))
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    return system, table, inserted


# -- lifecycle -------------------------------------------------------------
def test_install_attaches_all_hooks_and_uninstall_detaches():
    system, _table, _ = build_system()
    injector = FaultInjector(system, FaultPlan.degradation(0.5))
    injector.install()
    assert system.engine.fault_hook(ACCEL_SEAM) is not None
    assert system.hierarchy.dram.fault_hook is not None
    assert system.hierarchy.interconnect.fault_hook is not None
    injector.uninstall()
    assert system.engine.fault_hook(ACCEL_SEAM) is None
    assert system.hierarchy.dram.fault_hook is None
    assert system.hierarchy.interconnect.fault_hook is None


def test_install_is_idempotent_but_second_injector_rejected():
    system, _table, _ = build_system()
    injector = FaultInjector(system, FaultPlan())
    injector.install()
    injector.install()  # no-op, no error
    other = FaultInjector(system, FaultPlan())
    with pytest.raises(SimulationError):
        other.install()


def test_engine_hook_bus_one_hook_per_site(engine):
    engine.add_fault_hook("site", lambda: None)
    with pytest.raises(SimulationError):
        engine.add_fault_hook("site", lambda: None)
    engine.remove_fault_hook("site")
    engine.remove_fault_hook("site")  # removing absent hook is fine
    assert engine.fault_hook("site") is None


def test_metrics_source_silent_until_first_injection():
    system, table, inserted = build_system()
    injector = FaultInjector(system, FaultPlan())
    injector.install()
    keys = [key for key, _ in inserted[:20]]
    backend = system.backend("halo-nb")
    system.engine.run_process(backend.lookup_stream(table, keys))
    snapshot = system.obs.metrics.snapshot()
    assert not any(name.startswith("faults.") for name in snapshot), \
        "an idle injector must not clutter the report"


# -- per-kind effects ------------------------------------------------------
def test_accel_stall_slows_lookups_and_counts():
    baseline_system, baseline_table, inserted = build_system()
    keys = [key for key, _ in inserted[:30]]
    baseline = baseline_system.engine.run_process(
        baseline_system.backend("halo-b").lookup_stream(baseline_table, keys))

    system, table, _ = build_system()
    plan = FaultPlan(windows=(FaultWindow(
        kind=FaultKind.ACCEL_STALL, start=0, end=1e9, magnitude=200.0), ))
    injector = FaultInjector(system, plan).install()
    faulted = system.engine.run_process(
        system.backend("halo-b").lookup_stream(table, keys))

    assert injector.stats.accel_stalls == len(keys)
    assert injector.stats.accel_stall_cycles == 200.0 * len(keys)
    assert sum(o.cycles for o in faulted) \
        >= sum(o.cycles for o in baseline) + 200.0 * len(keys)
    assert [o.value for o in faulted] == [o.value for o in baseline]


def test_accel_outage_defers_queries_to_window_end():
    system, table, inserted = build_system()
    slice_id = system.hierarchy.interconnect.slice_of_table(table.table_addr)
    plan = FaultPlan.slice_outage(slice_id, start=0, end=5_000)
    injector = FaultInjector(system, plan).install()
    key, value = inserted[0]
    outcome = system.engine.run_process(
        system.backend("halo-b").lookup(table, key))
    assert outcome.value == value
    assert system.engine.now >= 5_000, \
        "the query must not complete while its slice is dark"
    assert injector.stats.outage_delays == 1
    assert injector.stats.outage_cycles > 0


def test_dram_spike_inflates_access_latency():
    system, _table, _ = build_system()
    dram = system.hierarchy.dram
    base = dram.access_latency(write=False)
    plan = FaultPlan(windows=(FaultWindow(
        kind=FaultKind.DRAM_SPIKE, start=0, end=1e9, magnitude=123.0), ))
    injector = FaultInjector(system, plan).install()
    assert dram.access_latency(write=False) == pytest.approx(base + 123.0)
    assert injector.stats.dram_spikes == 1
    assert injector.stats.dram_extra_cycles == pytest.approx(123.0)
    injector.uninstall()
    assert dram.access_latency(write=False) == pytest.approx(base)


def test_noc_drop_pays_retransmit_and_duplicate_adds_traffic():
    system, _table, _ = build_system()
    interconnect = system.hierarchy.interconnect
    base = interconnect.transfer_latency(0, 3)
    plan = FaultPlan(windows=(
        FaultWindow(kind=FaultKind.NOC_DROP, start=0, end=1e9,
                    probability=1.0),
        FaultWindow(kind=FaultKind.NOC_DUPLICATE, start=0, end=1e9,
                    probability=1.0),
    ))
    injector = FaultInjector(system, plan).install()
    messages_before = interconnect.stats.messages
    faulted = interconnect.transfer_latency(0, 3)
    assert faulted > base  # the retransmit pays the path again
    assert injector.stats.noc_drops == 1
    assert injector.stats.noc_duplicates == 1
    # The real message counts once; the phantom duplicate adds another.
    assert interconnect.stats.messages == messages_before + 2


def test_lock_hold_pins_and_releases_lines():
    system, table, _ = build_system()
    addr = table.table_addr
    plan = FaultPlan(windows=(FaultWindow(
        kind=FaultKind.LOCK_HOLD, start=10, end=200, lines=(addr, )), ))
    injector = FaultInjector(system, plan).install()

    observed = {}

    def witness():
        yield system.engine.timeout(100)
        observed["during"] = system.hierarchy.line_locked(addr)
        yield system.engine.timeout(900)
        observed["after"] = system.hierarchy.line_locked(addr)

    system.engine.process(witness())
    system.engine.run()
    assert observed["during"] is True
    assert observed["after"] is False
    assert injector.stats.lock_holds == 1
    assert system.lock_manager.stats.fault_holds == 1


def test_lock_hold_respects_live_query_lease():
    system, table, _ = build_system()
    addr = table.table_addr
    lease = system.lock_manager.lock_lines([addr])
    assert not system.lock_manager.hold(addr), \
        "a fault hold must not clobber a query's lock bit"
    lease.release_all()
    assert system.lock_manager.hold(addr)
    assert system.lock_manager.release_hold(addr)
    assert not system.lock_manager.release_hold(addr)  # second release no-op


def test_queue_saturation_occupies_scoreboard_slots():
    system, table, _ = build_system()
    slice_id = system.hierarchy.interconnect.slice_of_table(table.table_addr)
    accelerator = system.accelerators[slice_id]
    entries = accelerator.scoreboard.entries
    plan = FaultPlan(windows=(FaultWindow(
        kind=FaultKind.QUEUE_SATURATION, start=0, end=500,
        slice_id=slice_id, magnitude=entries), ))
    injector = FaultInjector(system, plan).install()

    observed = {}

    def witness():
        yield system.engine.timeout(100)
        observed["held"] = accelerator.scoreboard.occupancy
        yield system.engine.timeout(900)
        observed["after"] = accelerator.scoreboard.occupancy

    system.engine.process(witness())
    system.engine.run()
    assert observed["held"] == entries
    assert observed["after"] == 0
    assert injector.stats.queue_slots_held == entries
