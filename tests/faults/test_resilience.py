"""Resilience policies under injected faults: bounded waits, software
fallback, hysteresis recovery, and the zero-lost-lookups guarantee."""

import pytest

from repro.core import HaloSystem
from repro.exec import CoreWorkload, ResiliencePolicy
from repro.faults import FaultInjector, FaultPlan

from ..conftest import make_keys

TIGHT = ResiliencePolicy(poll_budget=8, max_retries=1, backoff_base=16.0,
                         probe_interval=8, recovery_successes=2)


def build_system(entries=2048, keys=600, seed=91):
    system = HaloSystem()
    table = system.create_table(entries, name="resilience_test")
    inserted = []
    for index, key in enumerate(make_keys(keys, seed=seed)):
        if table.insert(key, index):
            inserted.append((key, index))
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    return system, table, inserted


def outage_plan(system, table, start, end):
    slice_id = system.hierarchy.interconnect.slice_of_table(table.table_addr)
    return FaultPlan.slice_outage(slice_id, start=start, end=end)


# -- policy plumbing -------------------------------------------------------
def test_policy_validation():
    with pytest.raises(ValueError):
        ResiliencePolicy(poll_budget=0)
    with pytest.raises(ValueError):
        ResiliencePolicy(max_retries=-1)
    with pytest.raises(ValueError):
        ResiliencePolicy(probe_interval=0)
    with pytest.raises(ValueError):
        ResiliencePolicy(recovery_successes=0)


def test_backoff_is_exponential():
    policy = ResiliencePolicy(backoff_base=10.0, backoff_factor=3.0)
    assert policy.backoff(0) == 10.0
    assert policy.backoff(1) == 30.0
    assert policy.backoff(2) == 90.0


def test_policy_on_healthy_machine_matches_legacy_cycles():
    """With no faults, a policy'd backend must replay the unbounded
    idiom's per-key cycles exactly — the budget is never spent."""
    bare_system, bare_table, inserted = build_system()
    keys = [key for key, _ in inserted[:30]]
    bare = bare_system.engine.run_process(
        bare_system.backend("halo-nb").lookup(bare_table, keys[0]))

    system, table, _ = build_system()
    guarded = system.engine.run_process(
        system.backend("halo-nb", policy=ResiliencePolicy())
        .lookup(table, keys[0]))
    assert guarded.cycles == pytest.approx(bare.cycles, rel=1e-12)
    assert guarded.value == bare.value
    assert not guarded.degraded


# -- fallback + recovery ---------------------------------------------------
def test_outage_triggers_fallback_then_recovery():
    system, table, inserted = build_system()
    injector = FaultInjector(
        system, outage_plan(system, table, start=500, end=6_000)).install()
    backend = system.backend("halo-nb", policy=TIGHT)
    keys = [key for key, _ in inserted[:300]]
    outcomes = system.engine.run_process(backend.lookup_stream(table, keys))

    expected = [value for _, value in inserted[:300]]
    assert [o.value for o in outcomes] == expected, "zero lost lookups"
    degraded = [o for o in outcomes if o.degraded]
    assert degraded, "the outage must force software fallbacks"
    assert backend.degraded_lookups == len(degraded)

    kinds = [what for _when, what, _slice in backend.resilience_events]
    assert kinds == ["degraded", "recovered"], \
        f"expected one clean degrade/recover cycle, got {kinds}"
    (degraded_at, _, _), (recovered_at, _, _) = backend.resilience_events
    assert 500 <= degraded_at < 6_000
    assert recovered_at > 6_000, "recovery only after the outage lifts"
    assert injector.stats.outage_delays > 0

    snapshot = system.obs.metrics.snapshot()
    assert snapshot["exec.resilience.fallbacks"] >= 1
    assert snapshot["exec.resilience.recoveries"] == 1
    assert snapshot["exec.resilience.degraded_lookups"] == len(degraded)
    assert snapshot["exec.resilience.timeouts"] >= 1

    spans = [span.name for span in system.obs.trace.roots]
    assert "resilience.degraded" in spans
    assert "resilience.recovered" in spans


def test_no_fallback_policy_blocks_until_answered():
    """fallback=False: bounded-wait-then-block — slower, never degraded."""
    system, table, inserted = build_system()
    FaultInjector(system,
                  outage_plan(system, table, start=0, end=4_000)).install()
    policy = ResiliencePolicy(poll_budget=8, max_retries=1, fallback=False)
    backend = system.backend("halo-nb", policy=policy)
    keys = [key for key, _ in inserted[:5]]
    outcomes = system.engine.run_process(backend.lookup_stream(table, keys))
    assert [o.value for o in outcomes] == [v for _, v in inserted[:5]]
    assert not any(o.degraded for o in outcomes)
    assert backend.resilience_events == []
    assert system.engine.now >= 4_000


def test_permanent_outage_serves_everything_from_software():
    system, table, inserted = build_system()
    FaultInjector(system,
                  outage_plan(system, table, start=0, end=1e9)).install()
    backend = system.backend("halo-nb", policy=TIGHT)
    keys = [key for key, _ in inserted[:60]]
    outcomes = system.engine.run_process(backend.lookup_stream(table, keys))
    assert [o.value for o in outcomes] == [v for _, v in inserted[:60]]
    # First lookup times out and falls back; everything after is degraded
    # (modulo periodic probes, which also fail and fall back).
    assert sum(o.degraded for o in outcomes) == len(outcomes)
    kinds = [what for _w, what, _s in backend.resilience_events]
    assert kinds == ["degraded"], "no recovery while the slice stays dark"


def test_adaptive_four_cores_zero_lost_lookups_under_outage():
    """The acceptance scenario: a slice-outage plan, adaptive backends on
    four cores, full workload completes with every result correct."""
    system, table, inserted = build_system(entries=4096, keys=900)
    FaultInjector(system,
                  outage_plan(system, table, start=2_000, end=9_000)).install()
    per_core = 80
    keys = [key for key, _ in inserted]
    workloads = [
        CoreWorkload(backend="adaptive", core_id=core, table=table,
                     keys=keys[core * per_core:(core + 1) * per_core],
                     policy=TIGHT, name=f"pmd{core}")
        for core in range(4)
    ]
    run = system.run_cores(workloads)
    expected = [value for _, value in inserted]
    lost = 0
    degraded = 0
    for result in run.results:
        base = result.core_id * per_core
        for offset, outcome in enumerate(result.result):
            lost += outcome.value != expected[base + offset]
            degraded += outcome.degraded
    assert lost == 0
    assert degraded > 0, "the outage must actually bite"
    snapshot = system.obs.metrics.snapshot()
    assert snapshot["exec.resilience.fallbacks"] >= 1
