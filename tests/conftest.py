"""Shared fixtures for the test suite.

numpy is the optional ``fast`` extra: the no-numpy CI leg runs the
engine/replay/kernel subsets without it, so this module must import —
and ``make_keys`` must still produce deterministic distinct keys — when
numpy is absent.  Fixtures that genuinely need numpy (``rng``) skip.
"""

import random

import pytest

try:
    import numpy as np
except ImportError:
    np = None

from repro.core import HaloSystem
from repro.sim import Engine, MemoryHierarchy, SKYLAKE_SP_16C, TINY_MACHINE, Tracer


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def hierarchy():
    """The full paper machine (Table 2)."""
    return MemoryHierarchy(SKYLAKE_SP_16C)


@pytest.fixture
def tiny_hierarchy():
    """A small machine for eviction-path tests."""
    return MemoryHierarchy(TINY_MACHINE)


@pytest.fixture
def tracer():
    return Tracer()


@pytest.fixture
def system():
    return HaloSystem()


@pytest.fixture
def rng():
    if np is None:
        pytest.skip("numpy unavailable")
    return np.random.default_rng(1234)


def make_keys(count, seed=0, key_bytes=16):
    """Distinct deterministic byte keys.

    The numpy stream is the canonical one (key values are baked into
    some recorded expectations); the stdlib fallback only runs on the
    no-numpy CI leg, whose tests assert properties, not key values.
    """
    keys = set()
    out = []
    if np is not None:
        generator = np.random.default_rng(seed)
        while len(out) < count:
            key = bytes(generator.integers(0, 256, size=key_bytes,
                                           dtype=np.uint8))
            if key not in keys:
                keys.add(key)
                out.append(key)
        return out
    generator = random.Random(seed)
    while len(out) < count:
        key = generator.randbytes(key_bytes)
        if key not in keys:
            keys.add(key)
            out.append(key)
    return out


@pytest.fixture
def keys16():
    return make_keys(64, seed=7)
