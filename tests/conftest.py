"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.core import HaloSystem
from repro.sim import Engine, MemoryHierarchy, SKYLAKE_SP_16C, TINY_MACHINE, Tracer


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def hierarchy():
    """The full paper machine (Table 2)."""
    return MemoryHierarchy(SKYLAKE_SP_16C)


@pytest.fixture
def tiny_hierarchy():
    """A small machine for eviction-path tests."""
    return MemoryHierarchy(TINY_MACHINE)


@pytest.fixture
def tracer():
    return Tracer()


@pytest.fixture
def system():
    return HaloSystem()


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


def make_keys(count, seed=0, key_bytes=16):
    """Distinct deterministic byte keys."""
    generator = np.random.default_rng(seed)
    keys = set()
    out = []
    while len(out) < count:
        key = bytes(generator.integers(0, 256, size=key_bytes,
                                       dtype=np.uint8))
        if key not in keys:
            keys.add(key)
            out.append(key)
    return out


@pytest.fixture
def keys16():
    return make_keys(64, seed=7)
