"""Hash-table network functions: NAT, prads, packet filter (Figure 13)."""

import pytest

from repro.core import HaloSystem
from repro.nf import (
    NatFunction,
    PacketFilterFunction,
    PradsFunction,
    Translation,
)
from repro.traffic import FlowSet, PacketStream


@pytest.fixture
def flows():
    return FlowSet.generate(3000, seed=41)


def test_nat_translates_known_endpoints(flows):
    system = HaloSystem()
    nat = NatFunction(system, table_entries=2000)
    installed = nat.populate_from_flows(flows.flows)
    assert installed > 0
    nat.process(flows[0])
    assert nat.lookup_hits == 1


def test_nat_miss_creates_binding(flows):
    system = HaloSystem()
    nat = NatFunction(system, table_entries=2000)
    before = len(nat.table)
    nat.process(flows[5])          # no bindings yet -> slow path
    assert nat.lookup_misses == 1
    assert len(nat.table) == before + 1
    nat.process(flows[5])          # now bound
    assert nat.lookup_hits == 1


def test_nat_binding_capacity_guard(flows):
    system = HaloSystem()
    nat = NatFunction(system, table_entries=8)
    for flow in flows.flows[:60]:
        nat.process(flow)
    assert len(nat.table) <= nat.table.capacity


def test_nat_key_is_source_endpoint(flows):
    system = HaloSystem()
    nat = NatFunction(system, table_entries=64)
    flow = flows[0]
    key = nat.key_of(flow)
    assert len(key) == 16
    nat.add_binding(flow, Translation(wan_ip=1, wan_port=2))
    assert nat.table.lookup(key) == Translation(wan_ip=1, wan_port=2)


def test_prads_builds_asset_records(flows):
    system = HaloSystem()
    prads = PradsFunction(system, table_entries=2000)
    prads.populate_from_flows(flows.flows)
    flow = flows[3]
    prads.process(flow)
    record = prads.table.lookup(prads.key_of(flow))
    assert record is not None
    assert record.packets_seen == 1
    assert (flow.proto, flow.dst_port) in record.services


def test_prads_discovers_new_assets(flows):
    system = HaloSystem()
    prads = PradsFunction(system, table_entries=100)
    prads.process(flows[0])
    assert prads.lookup_misses == 1
    assert len(prads.table) == 1


def test_filter_drops_matching_packets(flows):
    system = HaloSystem()
    nf = PacketFilterFunction(system, table_entries=128)
    installed = nf.install_rules_from_flows(flows.flows, count=50)
    assert installed == 50
    nf.process(flows[0])       # flow 0's pattern was installed
    assert nf.dropped == 1
    # A flow whose pattern was not installed passes.
    unfiltered = next(flow for flow in flows.flows[60:]
                      if nf.table.lookup(nf.key_of(flow)) is None)
    nf.process(unfiltered)
    assert nf.passed == 1


def test_measure_speedup_runs_both_modes(flows):
    system = HaloSystem()
    nat = NatFunction(system, table_entries=2000)
    nat.populate_from_flows(flows.flows)
    stream = PacketStream(flows, zipf_s=0.8, seed=42)
    software, halo, speedup = nat.measure_speedup(stream.take(60))
    assert software.packets == halo.packets == 60
    assert speedup > 1.3   # HALO helps (Figure 13 shape)


def test_throughput_metric(flows):
    system = HaloSystem()
    nat = NatFunction(system, table_entries=500)
    nat.populate_from_flows(flows.flows)
    nat.run(flows.flows[:20])
    assert nat.stats.throughput_mpps() > 0
    assert nat.stats.cycles_per_packet > 0
