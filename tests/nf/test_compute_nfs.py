"""Compute-bound collocation NFs: ACL, Snort-like IDS, mTCP stack."""

import pytest

from repro.classifier import FiveTuple, make_flow
from repro.nf import (
    AclFunction,
    IdsFunction,
    PatternAutomaton,
    TcpStackFunction,
    TcpState,
)
from repro.sim import MemoryHierarchy


@pytest.fixture
def hierarchy():
    return MemoryHierarchy()


# -- ACL ------------------------------------------------------------------------
def test_acl_classifies_and_accounts(hierarchy):
    acl = AclFunction(hierarchy)
    cycles = acl.process(make_flow(1))
    assert cycles > 0
    assert acl.permitted + acl.denied == 1
    assert acl.stats.packets == 1


def test_acl_rule_matching(hierarchy):
    acl = AclFunction(hierarchy, num_rules=6)
    assert len(acl.rules) == 6
    rule = acl.rules[0]
    inside = FiveTuple(rule.src_lo + 1, 1, 1, 1, 17)
    assert rule.matches(inside)
    outside = FiveTuple((rule.src_hi + (1 << 24)) & 0xFFFFFFFF, 1, 1, 1, 17)
    if not (rule.src_lo <= outside.src_ip <= rule.src_hi):
        assert not rule.matches(outside)


# -- IDS (pattern automaton) -------------------------------------------------------
def test_automaton_finds_patterns():
    automaton = PatternAutomaton([b"abc", b"bcd", b"zzz"])
    matches = automaton.scan(b"xxabcdyy")
    found = {pattern for _offset, pattern in matches}
    assert found == {b"abc", b"bcd"}


def test_automaton_overlapping_patterns():
    automaton = PatternAutomaton([b"aa", b"aaa"])
    matches = automaton.scan(b"aaaa")
    assert sum(1 for _o, p in matches if p == b"aa") == 3
    assert sum(1 for _o, p in matches if p == b"aaa") == 2


def test_automaton_no_false_positives():
    automaton = PatternAutomaton([b"attack"])
    assert automaton.scan(b"perfectly benign payload") == []


def test_automaton_match_offsets():
    automaton = PatternAutomaton([b"cd"])
    matches = automaton.scan(b"abcd")
    assert matches == [(3, b"cd")]


def test_ids_deterministic_payloads(hierarchy):
    ids = IdsFunction(hierarchy)
    flow = make_flow(7)
    assert ids._payload_for(flow) == ids._payload_for(flow)
    assert ids._payload_for(flow) != ids._payload_for(make_flow(8))


def test_ids_processes_packets(hierarchy):
    ids = IdsFunction(hierarchy)
    for index in range(10):
        ids.process(make_flow(index))
    assert ids.stats.packets == 10
    assert ids.stats.cycles_per_packet > 0


# -- mTCP --------------------------------------------------------------------------
def test_tcp_connection_lifecycle(hierarchy):
    stack = TcpStackFunction(hierarchy, max_connections=1024)
    flow = make_flow(3)
    stack.process(flow)
    block = stack.connection_of(flow)
    assert block is not None
    assert block.state is TcpState.SYN_RCVD
    stack.process(flow)
    assert block.state is TcpState.ESTABLISHED
    assert stack.established == 1
    assert block.packets == 2


def test_tcp_distinct_connections(hierarchy):
    stack = TcpStackFunction(hierarchy, max_connections=1024)
    for index in range(20):
        stack.process(make_flow(index))
    assert len(stack.connections) == 20


def test_tcp_sequence_advances(hierarchy):
    stack = TcpStackFunction(hierarchy, max_connections=64)
    flow = make_flow(9)
    stack.process(flow)
    stack.process(flow)
    assert stack.connection_of(flow).rcv_next == 2 * 1460


# -- shared NF machinery --------------------------------------------------------------
def test_working_set_sampling_bounds(hierarchy):
    acl = AclFunction(hierarchy)
    region = acl.working_set.region
    for _ in range(200):
        addr = acl.working_set.sample_addr()
        assert region.base <= addr < region.end


def test_warm_brings_working_set_in(hierarchy):
    acl = AclFunction(hierarchy)
    acl.warm()
    region = acl.working_set.region
    assert hierarchy.llc_resident_fraction(region.base,
                                           min(region.size, 4096)) > 0.9


def test_l1_miss_ratio_metric(hierarchy):
    acl = AclFunction(hierarchy)
    for index in range(30):
        acl.process(make_flow(index))
    ratio = acl.l1d_miss_ratio()
    assert 0.0 <= ratio <= 1.0
