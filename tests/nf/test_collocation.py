"""Collocation harness (Figure 12)."""

import pytest

from repro.nf import AclFunction
from repro.nf.collocation import CollocationResult, run_collocation
from repro.vswitch import SwitchMode


@pytest.fixture(scope="module")
def software_result():
    return run_collocation(
        lambda system: AclFunction(system.hierarchy),
        num_flows=5000, switch_mode=SwitchMode.SOFTWARE,
        packets=150, warmup=150)


@pytest.fixture(scope="module")
def halo_result():
    return run_collocation(
        lambda system: AclFunction(system.hierarchy),
        num_flows=5000, switch_mode=SwitchMode.HALO_NONBLOCKING,
        packets=150, warmup=150)


def test_software_switch_pollutes_l1(software_result):
    assert (software_result.colocated_l1_miss_ratio
            > software_result.solo_l1_miss_ratio + 0.05)


def test_software_switch_slows_nf(software_result):
    assert software_result.throughput_drop > 0.0


def test_halo_switch_barely_pollutes(halo_result):
    assert halo_result.l1_miss_increase < 0.10


def test_halo_drop_much_smaller_than_software(software_result, halo_result):
    assert (halo_result.throughput_drop
            < software_result.throughput_drop)


def test_result_metrics_consistent(software_result):
    result = software_result
    assert isinstance(result, CollocationResult)
    assert result.solo_cycles_per_packet > 0
    assert result.colocated_cycles_per_packet > 0
    assert result.nf_name == "acl"
    assert 0.0 <= result.solo_l1_miss_ratio <= 1.0
    expected_drop = 1.0 - (result.solo_cycles_per_packet
                           / result.colocated_cycles_per_packet)
    assert result.throughput_drop == pytest.approx(expected_drop)
