"""MemC3-style key-value store (§4.8 extension)."""

import pytest

from repro.core import HaloSystem
from repro.nf import KeyValueStore


@pytest.fixture
def store():
    system = HaloSystem()
    kv = KeyValueStore(system, capacity=4096)
    return system, kv


def test_set_get_roundtrip(store):
    _system, kv = store
    kv.set(b"alpha", 1)
    kv.set(b"beta", {"nested": True})
    value, cycles = kv.get(b"alpha")
    assert value == 1 and cycles > 0
    value, _ = kv.get(b"beta")
    assert value == {"nested": True}


def test_get_missing(store):
    _system, kv = store
    value, _cycles = kv.get(b"nothing")
    assert value is None
    assert kv.stats.hit_rate == 0.0


def test_update_overwrites(store):
    _system, kv = store
    kv.set(b"k", "old")
    kv.set(b"k", "new")
    assert kv.get(b"k")[0] == "new"
    assert len(kv) == 1


def test_variable_length_keys(store):
    _system, kv = store
    long_key = b"a-very-long-key-" * 8
    short_key = b"s"
    kv.set(long_key, "long")
    kv.set(short_key, "short")
    assert kv.get(long_key)[0] == "long"
    assert kv.get(short_key)[0] == "short"


def test_folded_key_collision_is_detected(store):
    """A folded index collision must not return the wrong value."""
    _system, kv = store
    kv.set(b"stored-key-1234567890", "value")
    # A different long key almost certainly folds elsewhere, but even if it
    # collided, the stored full key comparison rejects it.
    value, _ = kv.get(b"another-key-1234567890")
    assert value is None


def test_delete(store):
    _system, kv = store
    kv.set(b"gone", 1)
    assert kv.delete(b"gone")
    assert kv.get(b"gone")[0] is None
    assert not kv.delete(b"gone")


def test_halo_gets_agree_with_software(store):
    system, kv = store
    keys = [b"key-%04d" % index for index in range(300)]
    for index, key in enumerate(keys):
        kv.set(key, index)
    kv.warm()
    software = [kv.get(key)[0] for key in keys[:50]]
    kv.use_halo = True
    halo = [kv.get(key)[0] for key in keys[:50]]
    assert software == halo == list(range(50))


def test_halo_faster_on_large_store():
    from repro.nf.kvstore import _index_key
    system = HaloSystem()
    kv = KeyValueStore(system, capacity=1 << 16)
    keys = [b"item-%06d" % index for index in range(40_000)]
    for index, key in enumerate(keys):
        kv.table.insert(_index_key(key), (key, index))
    kv.warm()
    system.hierarchy.flush_private(0)
    sample = keys[:150]
    software_cycles = sum(kv.get(key)[1] for key in sample)
    kv.use_halo = True
    halo_cycles = sum(kv.get(key)[1] for key in sample)
    assert software_cycles / halo_cycles > 1.5


def test_batched_gets_with_snapshot_read(store):
    system, kv = store
    keys = [b"batch-%03d" % index for index in range(40)]
    for index, key in enumerate(keys):
        kv.set(key, index)
    kv.warm()
    kv.use_halo = True
    values, cycles = kv.get_many(keys)
    assert values == list(range(40))
    assert cycles > 0
    assert kv.stats.hit_rate > 0.9


def test_stats_tracking(store):
    _system, kv = store
    kv.set(b"a", 1)
    kv.get(b"a")
    kv.get(b"b")
    assert kv.stats.sets == 1
    assert kv.stats.gets == 2
    assert kv.stats.get_hits == 1
    assert kv.stats.get_cycles.count == 2
