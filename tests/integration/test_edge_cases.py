"""Edge cases and failure-injection across modules."""

import pytest

from repro.core import HaloSystem
from repro.sim import Cache, CacheParams, TINY_MACHINE
from repro.sim.hierarchy import MAX_LOCK_RETRIES

from ..conftest import make_keys


# -- cache: pathological lock pressure -----------------------------------------------
def test_fully_locked_set_still_evicts():
    cache = Cache("locked", CacheParams(2 * 64, 2, 64))
    lines = [i * cache.num_sets for i in range(3)]
    cache.fill(lines[0])
    cache.fill(lines[1])
    cache.lock(lines[0])
    cache.lock(lines[1])
    victim = cache.fill(lines[2])       # whole set locked: LRU goes anyway
    assert victim == lines[0]
    assert cache.contains(lines[2])


def test_store_retry_bounded_under_stuck_lock(hierarchy):
    """A never-released lock cannot livelock a writer."""
    addr = 0x900000
    hierarchy.warm_llc(addr, 64)
    hierarchy.lock_line(addr)
    result = hierarchy.core_access(0, addr, write=True)
    assert result.lock_retries <= MAX_LOCK_RETRIES
    hierarchy.unlock_line(addr)


# -- cuckoo: degenerate probes ----------------------------------------------------------
def test_cuckoo_minimum_size_table():
    from repro.hashtable import CuckooHashTable
    table = CuckooHashTable(1)
    keys = make_keys(8, seed=44)
    inserted = sum(1 for i, k in enumerate(keys) if table.insert(k, i))
    assert inserted >= 1
    for index, key in enumerate(keys[:inserted]):
        assert table.lookup(key) == index


def test_cuckoo_delete_then_reinsert_different_value():
    from repro.hashtable import CuckooHashTable
    table = CuckooHashTable(64)
    key = make_keys(1, seed=45)[0]
    table.insert(key, "first")
    table.delete(key)
    table.insert(key, "second")
    assert table.lookup(key) == "second"


def test_cuckoo_interleaved_churn():
    """Insert/delete churn never corrupts reachability."""
    from repro.hashtable import CuckooHashTable
    table = CuckooHashTable(256)
    keys = make_keys(200, seed=46)
    live = {}
    for round_index in range(3):
        for index, key in enumerate(keys):
            if (index + round_index) % 3 == 0:
                if table.insert(key, (round_index, index)):
                    live[key] = (round_index, index)
            elif key in live and (index + round_index) % 3 == 1:
                assert table.delete(key)
                del live[key]
        for key, value in live.items():
            assert table.lookup(key) == value


# -- HaloSystem on the tiny machine ------------------------------------------------------
def test_halo_system_on_tiny_machine():
    system = HaloSystem(TINY_MACHINE)
    assert len(system.accelerators) == 2
    table = system.create_table(128, name="tiny")
    keys = make_keys(80, seed=47)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    blocking = system.run_blocking_lookups(table, keys[:20])
    assert [r.value for r in blocking.results] == list(range(20))
    software = system.run_software_lookups(table, keys[:20])
    assert software.results == list(range(20))


def test_tiny_machine_llc_pressure_evicts_table():
    """A table bigger than the tiny LLC spills; lookups still correct."""
    system = HaloSystem(TINY_MACHINE)
    table = system.create_table(2048, name="big_for_tiny")
    keys = make_keys(1500, seed=48)
    for index, key in enumerate(keys):
        table.insert(key, index)
    episode = system.run_blocking_lookups(table, keys[:40])
    assert all(result.found for result in episode.results)
    assert system.hierarchy.dram.stats.accesses > 0


# -- queries / results metadata ---------------------------------------------------------
def test_query_result_latency_accounting(system):
    table = system.create_table(64)
    key = make_keys(1, seed=49)[0]
    table.insert(key, 1)
    system.warm_table(table)
    episode = system.run_blocking_lookups(table, [key])
    result = episode.results[0]
    assert result.latency >= result.service_cycles > 0
    assert result.completed_at > result.started_at >= result.query.issued_at


# -- kvstore software batch path ----------------------------------------------------------
def test_kvstore_get_many_software_mode(system):
    from repro.nf import KeyValueStore
    kv = KeyValueStore(system, capacity=256)
    for index in range(20):
        kv.set(b"k%02d" % index, index)
    values, cycles = kv.get_many([b"k%02d" % index for index in range(20)])
    assert values == list(range(20))
    assert cycles > 0


# -- collocation sweep helper ----------------------------------------------------------------
def test_collocation_sweep_grid():
    from repro.nf import AclFunction
    from repro.nf.collocation import collocation_sweep
    from repro.vswitch import SwitchMode
    results = collocation_sweep(
        [lambda system: AclFunction(system.hierarchy)],
        flow_counts=[1_000],
        modes=[SwitchMode.SOFTWARE, SwitchMode.HALO_NONBLOCKING],
        packets=60, warmup=60)
    assert len(results) == 2
    assert {r.switch_mode for r in results} == {
        SwitchMode.SOFTWARE, SwitchMode.HALO_NONBLOCKING}
