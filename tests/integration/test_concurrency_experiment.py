"""§3.4 concurrency experiment (scaled down)."""

import pytest

from repro.analysis.experiments import sec34_concurrency


@pytest.fixture(scope="module")
def result():
    return sec34_concurrency.run(table_entries=1 << 12, lookups=120)


def test_lock_share_near_paper(result):
    assert 0.08 <= result.software_lock_share <= 0.25   # paper: 13.1%


def test_writer_contention_causes_retries(result):
    assert result.software_retry_rate > 0.05
    assert (result.software_cycles_contended
            > result.software_cycles_idle)


def test_halo_immune_to_contention(result):
    halo_overhead = abs(result.halo_cycles_contended
                        / result.halo_cycles_idle - 1)
    software_overhead = (result.software_cycles_contended
                         / result.software_cycles_idle - 1)
    assert halo_overhead < 0.05
    assert halo_overhead < software_overhead


def test_report_renders(result):
    text = sec34_concurrency.report(result)
    assert "§3.4" in text and "paper" in text


def test_plain_inserts_do_not_invalidate_readers():
    """Only cuckoo moves bump the optimistic version (rte_hash model)."""
    from repro.hashtable import CuckooHashTable
    from tests.conftest import make_keys
    table = CuckooHashTable(1024)
    keys = make_keys(50, seed=99)
    token = table.lock.read_begin()
    for index, key in enumerate(keys):
        table.insert(key, index)          # plenty of room: no kicks
    assert table.stats.kicks == 0
    assert table.lock.read_validate(token)


def test_cuckoo_move_invalidates_readers():
    from repro.hashtable import CuckooHashTable
    from tests.conftest import make_keys
    table = CuckooHashTable(64)
    keys = make_keys(70, seed=98)
    token = table.lock.read_begin()
    for index, key in enumerate(keys):
        table.insert(key, index)          # overfull: kicks must happen
    assert table.stats.kicks > 0
    assert not table.lock.read_validate(token)
