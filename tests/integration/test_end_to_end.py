"""Cross-module integration: the headline paper behaviours, end to end."""

import pytest

from repro.core import ComputeMode, HaloSystem
from repro.traffic import FlowSet, PacketStream, TrafficProfile, random_keys
from repro.vswitch import SwitchMode, VirtualSwitch


@pytest.fixture(scope="module")
def llc_system():
    """A system with an LLC-resident (beyond-L2) table."""
    system = HaloSystem()
    table = system.create_table(1 << 16, name="e2e")
    keys = random_keys(40_000, seed=71)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    for core in range(system.machine.cores):
        system.hierarchy.flush_private(core)
    return system, table, keys


def test_headline_single_table_speedup(llc_system):
    """Figure 9: HALO ~3.3x over software for LLC-resident tables."""
    system, table, keys = llc_system
    sample = keys[:250]
    software = system.run_software_lookups(table, sample)
    blocking = system.run_blocking_lookups(table, sample)
    nonblocking = system.run_nonblocking_lookups(table, sample)
    speedup_b = software.cycles_per_op / blocking.cycles_per_op
    speedup_nb = software.cycles_per_op / nonblocking.cycles_per_op
    assert 2.2 <= speedup_b <= 4.5
    assert 2.2 <= speedup_nb <= 4.5
    # B and NB close on a single table (paper: within ~5%).
    assert abs(speedup_nb / speedup_b - 1.0) < 0.35


def test_headline_tuple_space_scaling():
    """Figure 11: NB mode scales with tuple count; B mode does not."""
    from repro.analysis.experiments.fig11_tuple_space import run_point
    small = run_point(5, packets=15, seed=3)
    large = run_point(20, packets=15, seed=3)
    nb_small = small.normalized_throughput()["halo-nb"]
    nb_large = large.normalized_throughput()["halo-nb"]
    b_large = large.normalized_throughput()["halo-b"]
    assert nb_large > nb_small * 1.8
    assert nb_large > 10.0
    assert b_large < 5.0


def test_switch_pipeline_agrees_with_datapath():
    """The instrumented switch and the plain datapath classify alike."""
    from repro.classifier import OvsDatapath
    profile = TrafficProfile(name="t", description="", num_flows=2000,
                             num_rules=6)
    flow_set, rules = profile.build()
    system = HaloSystem()
    switch = VirtualSwitch(system, SwitchMode.SOFTWARE)
    switch.install_rules(rules)
    datapath = OvsDatapath()
    for rule in rules:
        datapath.install_rule(rule)
    stream = PacketStream(flow_set, zipf_s=0.5, seed=7)
    for flow in stream.take(60):
        switch_result = switch.process_flow(flow).classification
        datapath_result = datapath.classify(flow)
        assert switch_result.hit == datapath_result.hit
        if switch_result.hit:
            assert switch_result.rule.matches(flow)
            assert datapath_result.rule.matches(flow)


def test_hybrid_mode_end_to_end():
    """§4.6: few flows -> software mode; many flows -> HALO mode."""
    system = HaloSystem()
    small_table = system.create_table(64, name="hot")
    hot_keys = random_keys(8, seed=72)
    for index, key in enumerate(hot_keys):
        small_table.insert(key, index)
    stream = [hot_keys[i % 8] for i in range(600)]
    system.run_adaptive_lookups(small_table, stream, window=200)
    assert system.hybrid.mode is ComputeMode.SOFTWARE

    big_table = system.create_table(4096, name="cold")
    many_keys = random_keys(3000, seed=73)
    for index, key in enumerate(many_keys):
        big_table.insert(key, index)
    system.run_adaptive_lookups(big_table, many_keys[:600], window=200)
    assert system.hybrid.mode is ComputeMode.HALO


def test_multicore_halo_scales(llc_system):
    """Cores driving distinct tables scale across the accelerators."""
    system, _table, _keys = llc_system
    from repro.traffic import random_keys as rand_keys
    tables = []
    keysets = []
    for index in range(4):
        per_core = system.create_table(2048, name=f"mc{index}")
        key_list = rand_keys(1200, seed=200 + index)
        for position, key in enumerate(key_list):
            per_core.insert(key, position)
        system.warm_table(per_core)
        tables.append(per_core)
        keysets.append(key_list)

    def worker(core_id, use_table, sample):
        results = []
        for key in sample:
            result = yield from system.isa.lookup_b(core_id, use_table, key)
            results.append(result.value)
        return results

    single = system.run_programs([worker(0, tables[0], keysets[0][:60])])
    single_rate = single.operations / single.cycles

    multi = system.run_programs([
        worker(core, tables[core], keysets[core][60:120])
        for core in range(4)])
    multi_rate = multi.operations / multi.cycles
    assert multi_rate > single_rate * 2.0


def test_lock_bits_protect_concurrent_update(llc_system):
    """§4.4: a software writer racing an accelerator query pays retries."""
    system, table, keys = llc_system
    plan = table.probe(keys[0])
    system.hierarchy.warm_llc(plan.primary_addr, 64)
    assert system.hierarchy.lock_line(plan.primary_addr)
    write = system.hierarchy.core_access(0, plan.primary_addr, write=True)
    assert write.lock_retries >= 1
    system.hierarchy.unlock_line(plan.primary_addr)
