"""Parity pins: fast paths can never silently diverge from the model.

Each pin runs a real experiment (quick grid) twice — once in the default
configuration and once with a speed/safety toggle flipped — and requires
every number in every payload to match at ``rel=1e-12``:

* **batched replay on vs off** (``REPRO_BATCHED_REPLAY``): the
  :class:`repro.sim.replay.TraceReplay` fast path captures-then-prices
  whole key streams instead of interleaving per lookup; it must be a
  pure reordering of work, not a different model.
* **guard on vs off** (``REPRO_GUARD``): the safety net observes every
  event; observation must never perturb results.
* **numpy vs pure-Python pricing** (``REPRO_NO_NUMPY``): the vectorised
  batch kernels and the fallback must price identically under batched
  replay.
* **windowed vs serial concurrency** (``REPRO_WINDOWED_REPLAY``):
  batching concurrent streams between interaction points must be a pure
  event-traffic optimisation.
* **the full stack** — batched + windowed + guard together against the
  plain defaults.

Covered experiments: fig09, fig11, multicore scaling, and the
degradation sweep — the four the speed campaign leans on hardest.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.runner import run_for_bench

EXPERIMENTS = ("fig09", "fig11", "multicore", "degradation")

REL_TOL = 1e-12


def _numeric_view(payload, prefix=""):
    """Flatten a payload into {path: number} for exact-ish comparison."""
    out = {}
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        for field in dataclasses.fields(payload):
            out.update(_numeric_view(getattr(payload, field.name),
                                     f"{prefix}.{field.name}"))
    elif isinstance(payload, dict):
        for key, value in payload.items():
            out.update(_numeric_view(value, f"{prefix}[{key!r}]"))
    elif isinstance(payload, (list, tuple)):
        for index, value in enumerate(payload):
            out.update(_numeric_view(value, f"{prefix}[{index}]"))
    elif isinstance(payload, bool) or payload is None:
        pass
    elif isinstance(payload, (int, float)):
        out[prefix] = float(payload)
    return out


def _snapshot(name):
    payloads, text = run_for_bench(name, quick=True)
    numbers = {}
    for label, payload in payloads.items():
        numbers.update(_numeric_view(payload, label))
    assert numbers, f"experiment {name!r} produced no numeric payloads"
    return numbers, text


def _assert_parity(name, baseline, candidate, toggle):
    base_numbers, base_text = baseline
    cand_numbers, cand_text = candidate
    assert base_numbers.keys() == cand_numbers.keys(), (
        f"{name}: payload shape changed under {toggle}")
    for path, base_value in base_numbers.items():
        cand_value = cand_numbers[path]
        assert math.isclose(base_value, cand_value, rel_tol=REL_TOL,
                            abs_tol=0.0), (
            f"{name}: {path} diverged under {toggle}: "
            f"{base_value!r} vs {cand_value!r}")
    assert base_text == cand_text, (
        f"{name}: rendered report drifted under {toggle}")


@pytest.mark.parametrize("name", EXPERIMENTS)
def test_batched_replay_parity(name, monkeypatch):
    monkeypatch.delenv("REPRO_BATCHED_REPLAY", raising=False)
    monkeypatch.delenv("REPRO_GUARD", raising=False)
    baseline = _snapshot(name)
    monkeypatch.setenv("REPRO_BATCHED_REPLAY", "1")
    batched = _snapshot(name)
    _assert_parity(name, baseline, batched, "REPRO_BATCHED_REPLAY=1")


@pytest.mark.parametrize("name", EXPERIMENTS)
def test_guard_parity(name, monkeypatch):
    monkeypatch.delenv("REPRO_BATCHED_REPLAY", raising=False)
    monkeypatch.delenv("REPRO_GUARD", raising=False)
    baseline = _snapshot(name)
    monkeypatch.setenv("REPRO_GUARD", "1")
    guarded = _snapshot(name)
    _assert_parity(name, baseline, guarded, "REPRO_GUARD=1")


@pytest.mark.parametrize("name", EXPERIMENTS)
def test_vectorised_pricing_parity(name, monkeypatch):
    """numpy kernels vs pure-Python fallback, both under batched replay."""
    monkeypatch.delenv("REPRO_GUARD", raising=False)
    monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
    monkeypatch.setenv("REPRO_BATCHED_REPLAY", "1")
    vectorised = _snapshot(name)
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    fallback = _snapshot(name)
    _assert_parity(name, vectorised, fallback, "REPRO_NO_NUMPY=1")


@pytest.mark.parametrize("name", ("multicore", "degradation"))
def test_windowed_replay_parity(name, monkeypatch):
    """Windowed concurrent batching vs the all-serial fallback."""
    monkeypatch.delenv("REPRO_GUARD", raising=False)
    monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
    monkeypatch.setenv("REPRO_BATCHED_REPLAY", "1")
    monkeypatch.setenv("REPRO_WINDOWED_REPLAY", "0")
    serial = _snapshot(name)
    monkeypatch.setenv("REPRO_WINDOWED_REPLAY", "1")
    windowed = _snapshot(name)
    _assert_parity(name, serial, windowed, "REPRO_WINDOWED_REPLAY=1")


@pytest.mark.parametrize("name", ("multicore", "degradation"))
def test_full_stack_parity(name, monkeypatch):
    """Every fast path plus the guard at once vs the plain defaults."""
    for var in ("REPRO_BATCHED_REPLAY", "REPRO_WINDOWED_REPLAY",
                "REPRO_GUARD", "REPRO_NO_NUMPY"):
        monkeypatch.delenv(var, raising=False)
    baseline = _snapshot(name)
    monkeypatch.setenv("REPRO_BATCHED_REPLAY", "1")
    monkeypatch.setenv("REPRO_WINDOWED_REPLAY", "1")
    monkeypatch.setenv("REPRO_GUARD", "1")
    stacked = _snapshot(name)
    _assert_parity(name, baseline, stacked,
                   "batched+windowed+guard")
