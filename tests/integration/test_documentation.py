"""Documentation stays consistent with the code."""

import ast
import importlib
import pathlib
import re

import pytest

import repro

ROOT = pathlib.Path(repro.__file__).resolve().parents[2]

#: Regex a paper-citing docstring must match somewhere.
PAPER_CITATION = re.compile(r"Figure \d+|Table \d+|§\d")


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/MODELING.md", "docs/EXPERIMENTS.md",
                 "docs/ARCHITECTURE.md"):
        path = ROOT / name
        assert path.exists(), name
        assert path.stat().st_size > 1_000


def test_design_lists_every_experiment_bench():
    text = (ROOT / "DESIGN.md").read_text()
    for bench in ("bench_fig03_breakdown", "bench_fig04_hash_analysis",
                  "bench_tab01_instructions", "bench_fig08_flow_register",
                  "bench_fig09_single_lookup",
                  "bench_fig10_latency_breakdown",
                  "bench_fig11_tuple_space", "bench_fig12_collocation",
                  "bench_tab04_power_area", "bench_fig13_nf_speedup"):
        assert bench in text, bench


def test_every_bench_file_is_documented_somewhere():
    docs = "".join((ROOT / name).read_text()
                   for name in ("DESIGN.md", "EXPERIMENTS.md",
                                "docs/EXPERIMENTS.md"))
    for bench in (ROOT / "benchmarks").glob("bench_*.py"):
        assert bench.name.replace(".py", "") in docs.replace(".py", ""), \
            f"{bench.name} missing from the experiment docs"


def test_readme_quickstart_snippet_runs():
    """The README's quickstart code block must actually execute."""
    text = (ROOT / "README.md").read_text()
    match = re.search(r"```python\n(.*?)```", text, re.DOTALL)
    assert match, "README lost its quickstart snippet"
    namespace = {}
    exec(compile(match.group(1), "<README quickstart>", "exec"), namespace)


def test_every_public_module_has_a_docstring():
    missing = []
    for path in (ROOT / "src" / "repro").rglob("*.py"):
        source = path.read_text()
        if not source.strip():
            continue
        module = ast.parse(source)
        if ast.get_docstring(module) is None:
            missing.append(str(path))
    assert missing == []


def test_every_experiment_module_docstring_names_its_artifact():
    """Each experiment's docstring must cite the figure/table/section it
    reproduces, so ``docs/EXPERIMENTS.md`` never drifts from the code."""
    from repro.analysis import experiments

    for short_name in experiments.__all__:
        module = importlib.import_module(
            f"repro.analysis.experiments.{short_name}")
        doc = module.__doc__ or ""
        assert PAPER_CITATION.search(doc), \
            f"{short_name} docstring cites no paper artifact"


def test_runner_modules_cite_the_paper():
    for short_name in ("", ".schema", ".cache", ".registry", ".scheduler"):
        module = importlib.import_module(f"repro.runner{short_name}")
        doc = module.__doc__ or ""
        assert PAPER_CITATION.search(doc), \
            f"repro.runner{short_name} docstring cites no paper artifact"


def test_experiment_artifacts_match_their_docstrings():
    """A spec's declared artifact must appear in (or be consistent with)
    its module's docstring — the registry cannot invent citations."""
    from repro.runner import discover

    for spec in discover().values():
        module = importlib.import_module(spec.module)
        doc = module.__doc__ or ""
        anchor = re.search(r"Figure \d+|Table \d+|§\d+(\.\d+)?",
                           spec.artifact)
        assert anchor, f"{spec.name} artifact {spec.artifact!r} cites " \
                       f"no figure/table/section"
        assert anchor.group(0) in doc, \
            f"{spec.name}: artifact {anchor.group(0)!r} not in docstring"


def test_cli_registry_matches_experiment_modules():
    from repro.__main__ import EXPERIMENTS
    from repro.runner import discover

    specs = discover()
    assert set(EXPERIMENTS) == set(specs)
    from repro.analysis import experiments
    module_names = set(experiments.__all__)
    for spec in specs.values():
        assert spec.module.rsplit(".", 1)[1] in module_names


def test_experiments_catalog_lists_every_experiment():
    """docs/EXPERIMENTS.md carries one catalog row per registry entry."""
    from repro.runner import discover

    text = (ROOT / "docs" / "EXPERIMENTS.md").read_text()
    for name, spec in discover().items():
        assert f"`{name}`" in text, f"{name} missing from docs/EXPERIMENTS.md"
        assert spec.module.rsplit(".", 1)[1] in text, spec.module
