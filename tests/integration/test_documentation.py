"""Documentation stays consistent with the code."""

import pathlib
import re

import pytest

import repro

ROOT = pathlib.Path(repro.__file__).resolve().parents[2]


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/MODELING.md"):
        path = ROOT / name
        assert path.exists(), name
        assert path.stat().st_size > 1_000


def test_design_lists_every_experiment_bench():
    text = (ROOT / "DESIGN.md").read_text()
    for bench in ("bench_fig03_breakdown", "bench_fig04_hash_analysis",
                  "bench_tab01_instructions", "bench_fig08_flow_register",
                  "bench_fig09_single_lookup",
                  "bench_fig10_latency_breakdown",
                  "bench_fig11_tuple_space", "bench_fig12_collocation",
                  "bench_tab04_power_area", "bench_fig13_nf_speedup"):
        assert bench in text, bench


def test_every_bench_file_is_documented_somewhere():
    docs = "".join((ROOT / name).read_text()
                   for name in ("DESIGN.md", "EXPERIMENTS.md"))
    for bench in (ROOT / "benchmarks").glob("bench_*.py"):
        assert bench.name.replace(".py", "") in docs.replace(".py", ""), \
            f"{bench.name} missing from DESIGN.md/EXPERIMENTS.md"


def test_readme_quickstart_snippet_runs():
    """The README's quickstart code block must actually execute."""
    text = (ROOT / "README.md").read_text()
    match = re.search(r"```python\n(.*?)```", text, re.DOTALL)
    assert match, "README lost its quickstart snippet"
    namespace = {}
    exec(compile(match.group(1), "<README quickstart>", "exec"), namespace)


def test_every_public_module_has_a_docstring():
    missing = []
    for path in (ROOT / "src" / "repro").rglob("*.py"):
        source = path.read_text()
        if not source.strip():
            continue
        import ast
        module = ast.parse(source)
        if ast.get_docstring(module) is None:
            missing.append(str(path))
    assert missing == []


def test_cli_registry_matches_experiment_modules():
    from repro.__main__ import EXPERIMENTS
    from repro.analysis import experiments
    module_names = set(experiments.__all__)
    # Every CLI entry is backed by a real experiment module.
    mapping = {
        "fig03": "fig03_breakdown", "fig04": "fig04_hash",
        "fig08": "fig08_flow_register", "fig09": "fig09_single_lookup",
        "fig10": "fig10_breakdown", "fig11": "fig11_tuple_space",
        "fig12": "fig12_collocation", "fig13": "fig13_nf_speedup",
        "tab01": "tab01_instructions", "tab04": "tab04_power",
        "sec34": "sec34_concurrency", "updates": "updates_comparison",
        "multicore": "multicore_scaling", "keysize": "keysize_sweep",
    }
    assert set(EXPERIMENTS) == set(mapping)
    for module_name in mapping.values():
        assert module_name in module_names
