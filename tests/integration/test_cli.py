"""The `python -m repro` experiment runner and bench CLI."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_names_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_default_is_list(capsys):
    assert main([]) == 0
    assert "experiments" in capsys.readouterr().out


def test_registry_covers_all_eval_items():
    expected = {"fig03", "fig04", "fig08", "fig09", "fig10", "fig11",
                "fig12", "fig13", "tab01", "tab04", "sec34", "updates",
                "multicore", "keysize", "abl_tlb", "abl_prefetch",
                "abl_design", "degradation", "scaling_law", "cache_churn",
                "cluster_chaos"}
    assert set(EXPERIMENTS) == expected


def test_run_quick_tab04(capsys):
    assert main(["run", "tab04"]) == 0
    out = capsys.readouterr().out
    assert "48.2" in out


def test_run_quick_fig08(capsys):
    assert main(["run", "fig08", "--quick"]) == 0
    assert "Figure 8b" in capsys.readouterr().out


def test_run_quick_tab01(capsys):
    assert main(["run", "tab01", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "instructions/lookup" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_bench_quick_tab04_writes_json(tmp_path, capsys):
    json_path = tmp_path / "summary.json"
    assert main(["bench", "--only", "tab04", "--quick", "--jobs", "1",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "bench summary:" in out
    payload = json.loads(json_path.read_text())
    assert payload["reports"]["tab04"]["slug"] == "tab04_power_area"
    assert payload["runs"][0]["experiment"] == "tab04"
    assert "runner.cache.misses" in payload["metrics"]


def test_bench_cache_hit_on_second_invocation(tmp_path, capsys):
    args = ["bench", "--only", "tab04", "--quick", "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache")]
    assert main(args) == 0
    capsys.readouterr()
    assert main(args) == 0
    assert "1 cache hits" in capsys.readouterr().out


def test_bench_unknown_name_is_an_error(tmp_path, capsys):
    code = main(["bench", "--only", "fig99", "--quick",
                 "--cache-dir", str(tmp_path / "cache")])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown experiment 'fig99'" in err


def test_bench_writes_report_files(tmp_path, capsys):
    reports = tmp_path / "reports"
    assert main(["bench", "--only", "tab04", "--quick", "--jobs", "1",
                 "--no-cache", "--reports", str(reports)]) == 0
    assert (reports / "tab04_power_area.txt").exists()
