"""The `python -m repro` experiment runner."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_names_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_default_is_list(capsys):
    assert main([]) == 0
    assert "experiments" in capsys.readouterr().out


def test_registry_covers_all_eval_items():
    expected = {"fig03", "fig04", "fig08", "fig09", "fig10", "fig11",
                "fig12", "fig13", "tab01", "tab04", "sec34", "updates", "multicore", "keysize"}
    assert set(EXPERIMENTS) == expected


def test_run_quick_tab04(capsys):
    assert main(["run", "tab04"]) == 0
    out = capsys.readouterr().out
    assert "48.2" in out


def test_run_quick_fig08(capsys):
    assert main(["run", "fig08", "--quick"]) == 0
    assert "Figure 8b" in capsys.readouterr().out


def test_run_quick_tab01(capsys):
    assert main(["run", "tab01", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "instructions/lookup" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "fig99"])
