"""Relative links in the markdown docs must point at real files.

Mirrors the CI docs job: a renamed file or a typo in a link shows up
here instead of as a 404 on the repo page.
"""

import pathlib
import re

import repro

ROOT = pathlib.Path(repro.__file__).resolve().parents[2]

#: ``[text](target)`` — the same inline-link shape the CI job checks.
LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def _relative_targets(path):
    for match in LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def test_docs_are_present():
    assert (ROOT / "README.md").exists()
    assert len(DOC_FILES) >= 3  # README + MODELING + the new docs


def test_relative_markdown_links_resolve():
    broken = []
    for doc in DOC_FILES:
        for target in _relative_targets(doc):
            if not (doc.parent / target).exists():
                broken.append(f"{doc.relative_to(ROOT)} -> {target}")
    assert broken == []


def test_architecture_is_cross_linked():
    """README and MODELING both point readers at the architecture map."""
    assert "ARCHITECTURE.md" in (ROOT / "README.md").read_text()
    assert "ARCHITECTURE.md" in (ROOT / "docs" / "MODELING.md").read_text()
