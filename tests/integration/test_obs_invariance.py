"""Observability must never perturb the model.

Disabled observability swaps every metric/span handle for a shared null
object; the simulation's cycle arithmetic is identical either way.  These
tests hold that invariant on real experiments (Figures 9 and 10) and on
the episode runners, and exercise the ``python -m repro report`` CLI.
"""

import json

import pytest

from repro.__main__ import main
from repro.analysis.experiments import fig09_single_lookup, fig10_breakdown
from repro.core import HaloSystem

from ..conftest import make_keys


def test_fig09_point_identical_with_obs_off(monkeypatch):
    point_on = fig09_single_lookup.run_point(2 ** 9, occupancy=0.5,
                                             lookups=30, seed=8)
    monkeypatch.setenv("REPRO_OBS", "0")
    point_off = fig09_single_lookup.run_point(2 ** 9, occupancy=0.5,
                                              lookups=30, seed=8)
    assert point_on.cycles_per_lookup == point_off.cycles_per_lookup
    # the registry capture itself is what turns off
    assert point_on.registry_metrics
    assert point_off.registry_metrics == {}


def test_fig10_cells_identical_with_obs_off(monkeypatch):
    cells_on = fig10_breakdown.run(table_entries=1 << 11, lookups=20)
    monkeypatch.setenv("REPRO_OBS", "0")
    cells_off = fig10_breakdown.run(table_entries=1 << 11, lookups=20)
    assert cells_on.keys() == cells_off.keys()
    for key, cell in cells_on.items():
        assert cell.breakdown.parts == cells_off[key].breakdown.parts
    assert cells_on["llc/halo"].registry_metrics
    assert cells_off["llc/halo"].registry_metrics == {}


def test_episode_cycles_identical_with_obs_off():
    def run(enabled):
        system = HaloSystem(observability=enabled)
        table = system.create_table(256, name="invariance")
        keys = make_keys(64, seed=33)
        for index, key in enumerate(keys):
            table.insert(key, index)
        system.warm_table(table)
        system.hierarchy.flush_private(0)
        blocking = system.run_blocking_lookups(table, keys[:20])
        nonblocking = system.run_nonblocking_lookups(table, keys[20:40])
        software = system.run_software_lookups(table, keys[:20])
        return (blocking.cycles, nonblocking.cycles, software.cycles)

    assert run(True) == run(False)


def test_disabled_system_records_nothing():
    system = HaloSystem(observability=False)
    table = system.create_table(128, name="dark")
    keys = make_keys(16, seed=3)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.run_blocking_lookups(table, keys[:8])
    assert system.obs.metrics.snapshot() == {}
    assert len(system.obs.trace) == 0
    assert "no metrics recorded" in system.report()


def test_repro_obs_env_default(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "off")
    assert HaloSystem().obs.enabled is False
    monkeypatch.setenv("REPRO_OBS", "1")
    assert HaloSystem().obs.enabled is True


# -- the report CLI ------------------------------------------------------------
@pytest.fixture(scope="module")
def report_output(tmp_path_factory):
    json_path = tmp_path_factory.mktemp("report") / "obs.json"
    import contextlib
    import io
    stream = io.StringIO()
    with contextlib.redirect_stdout(stream):
        code = main(["report", "--quick", "--json", str(json_path)])
    return code, stream.getvalue(), json_path


def test_report_cli_prints_component_breakdown(report_output):
    code, out, _path = report_output
    assert code == 0
    assert "HaloSystem metrics" in out
    assert "components:" in out
    # every instrumented layer shows up
    for component in ("halo", "mem", "vswitch"):
        assert f"\n{component}" in out or out.startswith(component)
    assert "span trees recorded" in out


def test_report_cli_writes_json_export(report_output):
    _code, _out, path = report_output
    export = json.loads(path.read_text(encoding="utf-8"))
    assert export["enabled"] is True
    assert export["metrics"]["vswitch.packets"] > 0
    assert export["spans"], "per-query span trees exported"
