"""Every experiment module runs end to end (scaled down) and reports."""

import pytest

from repro.analysis.experiments import (
    fig03_breakdown,
    fig04_hash,
    fig08_flow_register,
    fig09_single_lookup,
    fig10_breakdown,
    fig11_tuple_space,
    fig12_collocation,
    fig13_nf_speedup,
    tab01_instructions,
    tab04_power,
)
from repro.traffic import FIGURE3_PROFILES


def test_fig03_single_profile():
    row = fig03_breakdown.run_profile(FIGURE3_PROFILES[0],
                                      max_flows=3000, packets=150,
                                      warmup=100)
    assert 150 < row.cycles_per_packet < 3000
    assert 0.0 < row.classification_fraction < 1.0
    assert row.breakdown["packet_io"] > 0


def test_fig03_report_renders():
    rows = [fig03_breakdown.run_profile(profile, max_flows=2000,
                                        packets=100, warmup=80)
            for profile in FIGURE3_PROFILES[:2]]
    text = fig03_breakdown.report(rows)
    assert "Figure 3" in text and "paper" in text


def test_fig04_runs():
    rows = fig04_hash.run(flow_counts=(500, 4000), lookups=200)
    assert len(rows) == 4
    text = fig04_hash.report(rows)
    assert "Figure 4" in text
    cuckoo = [r for r in rows if r.table_kind == "cuckoo"]
    sfh = [r for r in rows if r.table_kind == "sfh"]
    # Cuckoo packs much denser than SFH at every size.
    for c_row, s_row in zip(cuckoo, sfh):
        assert c_row.utilisation > s_row.utilisation * 2


def test_fig04_achievable_occupancy():
    assert fig04_hash.achievable_occupancy("cuckoo", slots=2048) > 0.85
    assert fig04_hash.achievable_occupancy("sfh", slots=2048) < 0.45


def test_tab01_runs():
    result = tab01_instructions.run(lookups=100, table_entries=1 << 12)
    assert abs(result.instructions_per_lookup - 210) < 30
    assert abs(result.memory_fraction - 0.481) < 0.05
    assert "Table 1" in tab01_instructions.report(result)


def test_fig08_runs():
    points = fig08_flow_register.run(bit_sizes=(16, 32), trials=5)
    assert len(points) == 8
    assert "Figure 8b" in fig08_flow_register.report(points)


def test_fig09_point():
    point = fig09_single_lookup.run_point(2 ** 12, occupancy=0.5,
                                          lookups=80)
    normalized = point.normalized_throughput()
    assert normalized["software"] == 1.0
    assert normalized["halo-b"] > 1.0
    assert normalized["tcam"] > normalized["halo-b"]
    text = fig09_single_lookup.report([point])
    assert "Figure 9" in text


def test_fig10_runs():
    cells = fig10_breakdown.run(table_entries=1 << 12, lookups=40)
    assert set(cells) == {"llc/software", "llc/halo",
                          "dram/software", "dram/halo"}
    assert cells["dram/software"].total > cells["llc/software"].total
    assert cells["llc/halo"].total < cells["llc/software"].total
    assert "Figure 10" in fig10_breakdown.report(cells)


def test_fig11_runs():
    points = fig11_tuple_space.run(tuple_counts=(5, 10), packets=10)
    assert points[1].normalized_throughput()["halo-nb"] > 1.0
    assert "Figure 11" in fig11_tuple_space.report(points)


def test_fig12_single_cell():
    results = fig12_collocation.run(flow_counts=(2000,),
                                    packets=100, warmup=100,
                                    nf_names=("acl",))
    assert len(results) == 2
    assert "Figure 12" in fig12_collocation.report(results)


def test_fig13_single_row():
    row = fig13_nf_speedup.run_one("nat", 1000, packets=60)
    assert row.speedup > 1.2
    rows = [row,
            fig13_nf_speedup.run_one("prads", 1000, packets=60),
            fig13_nf_speedup.run_one("pktfilter", 100, packets=60)]
    assert "Figure 13" in fig13_nf_speedup.report(rows)


def test_tab04_runs():
    result = tab04_power.run()
    assert result.efficiency_vs_1mb_tcam == pytest.approx(48.2, abs=0.1)
    assert "Table 4" in tab04_power.report(result)


def test_updates_comparison_runs():
    from repro.analysis.experiments import updates_comparison
    result = updates_comparison.run(updates=300)
    assert result.tcam_mean_cycles > result.cuckoo_mean_cycles
    assert "rule updates" in updates_comparison.report(result)


def test_multicore_scaling_runs():
    from repro.analysis.experiments import multicore_scaling
    points = multicore_scaling.run(core_counts=(1, 4), packets_per_core=6)
    assert points[1].halo_packets_per_kcycle > points[0].halo_packets_per_kcycle * 2
    assert all(p.halo_speedup > 2.0 for p in points)
    assert "Multi-core" in multicore_scaling.report(points)


def test_keysize_sweep_runs():
    from repro.analysis.experiments import keysize_sweep
    points = keysize_sweep.run(key_sizes=(8, 64), table_entries=1 << 12,
                               lookups=60)
    assert all(p.speedup > 1.5 for p in points)
    assert "header" in keysize_sweep.report(points)
