"""The virtual switch under HALO modes: the Figure-3-meets-HALO story."""

import pytest

from repro.analysis.experiments import fig03_breakdown
from repro.traffic import FIGURE3_PROFILES
from repro.vswitch import SwitchMode


@pytest.fixture(scope="module")
def heavy_profile_rows():
    profile = FIGURE3_PROFILES[-1]   # gateway: most rules, most tuples
    software = fig03_breakdown.run_profile(
        profile, max_flows=8_000, packets=250, warmup=150,
        mode=SwitchMode.SOFTWARE)
    halo = fig03_breakdown.run_profile(
        profile, max_flows=8_000, packets=250, warmup=150,
        mode=SwitchMode.HALO_NONBLOCKING)
    return software, halo


def test_halo_switch_cuts_packet_cost(heavy_profile_rows):
    software, halo = heavy_profile_rows
    assert halo.cycles_per_packet < software.cycles_per_packet * 0.7


def test_halo_attacks_the_classification_stages(heavy_profile_rows):
    software, halo = heavy_profile_rows
    software_classification = (software.breakdown["emc_lookup"]
                               + software.breakdown["megaflow_lookup"])
    halo_classification = (halo.breakdown["emc_lookup"]
                           + halo.breakdown["megaflow_lookup"])
    assert halo_classification < software_classification * 0.6
    # The non-classification stages are untouched.
    assert halo.breakdown["packet_io"] == pytest.approx(
        software.breakdown["packet_io"], rel=0.05)
    assert halo.breakdown["preprocess"] == pytest.approx(
        software.breakdown["preprocess"], rel=0.3)


def test_both_modes_hit_the_same_layers(heavy_profile_rows):
    software, halo = heavy_profile_rows
    # Software serves hot flows from the EMC; the HALO pipeline classifies
    # everything through accelerated TSS — every packet must still hit.
    assert software.layer_hits.get("miss", 0) == 0
    assert halo.layer_hits.get("miss", 0) == 0
    assert sum(halo.layer_hits.values()) == sum(software.layer_hits.values())
