"""Span trees, the trace recorder, and nesting validation."""

from repro.obs import NULL_SPAN, Span, TraceRecorder, validate_nesting


def test_span_children_and_walk():
    root = Span("query", 0.0)
    a = root.child("dispatch", 1.0)
    b = root.child("serve", 3.0)
    leaf = b.child("key_fetch", 3.5)
    assert [s.name for s in root.walk()] == [
        "query", "dispatch", "serve", "key_fetch"]
    assert a in root.children and leaf in b.children


def test_span_duration_and_attrs():
    span = Span("s", 10.0, core=3)
    assert span.duration == 0.0    # unfinished
    span.note(found=True)
    span.finish(25.0)
    assert span.duration == 15.0
    assert span.attrs == {"core": 3, "found": True}


def test_span_to_dict_omits_empty_fields():
    span = Span("s", 0.0).finish(1.0)
    out = span.to_dict()
    assert out == {"name": "s", "start": 0.0, "end": 1.0}
    span.note(k=1)
    span.child("c", 0.5).finish(0.9)
    out = span.to_dict()
    assert out["attrs"] == {"k": 1}
    assert out["children"][0]["name"] == "c"


def test_null_span_absorbs_everything():
    child = NULL_SPAN.child("anything", 5.0, attr=1)
    assert child is NULL_SPAN
    NULL_SPAN.note(x=2)
    NULL_SPAN.finish(99.0)
    assert NULL_SPAN.attrs == {}
    assert NULL_SPAN.end is None


def test_recorder_collects_roots():
    recorder = TraceRecorder()
    recorder.root("q1", 0.0).finish(1.0)
    recorder.root("q2", 1.0).finish(2.0)
    assert len(recorder) == 2
    assert [s["name"] for s in recorder.to_dicts()] == ["q1", "q2"]


def test_disabled_recorder_returns_null_span():
    recorder = TraceRecorder(enabled=False)
    assert recorder.root("q", 0.0) is NULL_SPAN
    assert len(recorder) == 0


def test_recorder_capacity_evicts_oldest_and_counts_drops():
    recorder = TraceRecorder(capacity=2)
    recorder.root("a", 0.0)
    recorder.root("b", 1.0)
    recorder.root("c", 2.0)
    assert [s.name for s in recorder.roots] == ["b", "c"]
    assert recorder.dropped == 1
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.dropped == 0


def test_validate_nesting_accepts_well_formed_tree():
    root = Span("query", 0.0)
    stage = root.child("serve", 2.0)
    stage.child("fetch", 2.5).finish(4.0)
    stage.finish(5.0)
    root.finish(6.0)
    assert validate_nesting(root) == []


def test_validate_nesting_flags_unfinished_span():
    root = Span("query", 0.0)
    root.child("serve", 1.0)   # never finished
    root.finish(2.0)
    problems = validate_nesting(root)
    assert any("never finished" in p for p in problems)


def test_validate_nesting_flags_reversed_interval():
    root = Span("query", 5.0).finish(1.0)
    problems = validate_nesting(root)
    assert any("before it starts" in p for p in problems)


def test_validate_nesting_flags_escaping_child():
    root = Span("query", 0.0)
    root.child("late", 1.0).finish(10.0)
    root.finish(4.0)
    problems = validate_nesting(root)
    assert any("escapes parent" in p for p in problems)
