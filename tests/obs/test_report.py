"""Rendering metric snapshots as per-component tables."""

from repro.obs import (
    MetricsRegistry,
    Observability,
    render_component_totals,
    render_metrics_report,
)


def build_snapshot():
    registry = MetricsRegistry()
    registry.counter("halo.queries").inc(12)
    registry.gauge("halo.estimate").set(3.25)
    histogram = registry.histogram("mem.latency")
    for value in (4.0, 8.0, 120.0):
        histogram.observe(value)
    registry.histogram("mem.unused")   # empty: should not appear
    return registry.snapshot()


def test_report_groups_by_component_and_skips_empty():
    text = render_metrics_report(build_snapshot(), title="demo")
    assert "demo" in text
    lines = text.splitlines()
    assert any(line.startswith("halo") and "queries" in line
               for line in lines)
    assert any(line.startswith("mem") and "latency" in line
               for line in lines)
    assert "unused" not in text


def test_report_histogram_row_has_percentiles():
    text = render_metrics_report(build_snapshot())
    row = next(line for line in text.splitlines() if "latency" in line)
    # count, then mean/p50/p95/p99/max columns are populated
    assert "3" in row and "120" in row


def test_empty_snapshot_renders_hint():
    assert "no metrics recorded" in render_metrics_report({})


def test_component_totals_counts_metrics():
    text = render_component_totals(build_snapshot())
    assert "halo: 2 metrics" in text
    assert "mem: 1 metrics" in text


def test_observability_export_shape(tmp_path):
    obs = Observability(enabled=True)
    obs.metrics.counter("c").inc()
    obs.trace.root("q", 0.0).finish(1.0)
    export = obs.export()
    assert export["enabled"] is True
    assert export["metrics"]["c"] == 1
    assert export["spans"][0]["name"] == "q"
    path = tmp_path / "obs.json"
    obs.write_json(str(path))
    assert path.exists() and path.read_text().startswith("{")
