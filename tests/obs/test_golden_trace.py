"""Golden-trace regression: a fixed workload's full observability export.

The workload is deterministic (seeded keys, fresh engine), so the metrics
snapshot and the per-query span trees must be bit-for-bit reproducible.
The expected export lives in ``tests/data/golden_obs.json``; regenerate it
after an *intentional* model change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_golden_trace.py

Query ids come from a process-global counter (they depend on what ran
before this test), so the comparison scrubs them from span attributes.
"""

import json
import os
from pathlib import Path

import pytest

from repro.classifier import ExactMatchCache
from repro.classifier.flow import FlowMask, make_flow
from repro.classifier.rules import Action, Rule
from repro.cluster import RssBalancer
from repro.core import HaloSystem
from repro.obs import validate_nesting
from repro.workloads import ChurnEngine, ChurnSpec

from ..conftest import make_keys

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_obs.json"

BLOCKING = 24
NONBLOCKING = 32

#: EMC side-workload sizing: small capacity + a long-enough stream so
#: evictions, admission rejects, and several miss-rate windows all land.
EMC_LOOKUPS = 1024
EMC_MISS_WINDOW = 64
EMC_ENTRIES = 16


def run_workload() -> HaloSystem:
    system = HaloSystem(observability=True)
    table = system.create_table(1 << 8, name="golden")
    keys = make_keys(96, seed=21)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    system.run_blocking_lookups(table, keys[:BLOCKING])
    system.run_nonblocking_lookups(table, keys[BLOCKING:BLOCKING + NONBLOCKING])
    # A metrics-wired EMC driven directly (no engine, no tracer): adds
    # the emc.* counter and windowed miss-rate families to the export
    # without touching the span trees.
    emc = ExactMatchCache(EMC_ENTRIES, policy="second-chance",
                          metrics=system.obs.metrics,
                          miss_window=EMC_MISS_WINDOW)
    rule = Rule(mask=FlowMask.exact(), match=make_flow(0),
                action=Action.output(0))
    churn = ChurnEngine(ChurnSpec.high_churn(seed=33))
    for flow in churn.packets(EMC_LOOKUPS):
        if emc.lookup(flow) is None:
            emc.install(flow, rule)
    # Failover side-workload, metrics-only (no ``trace=`` — the span
    # assertions below pin every root to a "query" tree): a balancer
    # fail/restore cycle adds the cluster.failover.* counter family to
    # the pinned export.
    balancer = RssBalancer(shards=4, table_size=32, seed=13,
                           metrics=system.obs.metrics)
    balancer.fail_shard(1)
    balancer.fail_shard(3)
    balancer.restore_shard(1)
    return system


def _scrub(span: dict) -> None:
    attrs = span.get("attrs")
    if attrs:
        attrs.pop("query_id", None)
        if not attrs:
            del span["attrs"]
    for child in span.get("children", ()):
        _scrub(child)


def sanitized_export(system: HaloSystem) -> dict:
    export = json.loads(system.obs.to_json())
    for span in export["spans"]:
        _scrub(span)
    return export


@pytest.fixture(scope="module")
def workload():
    return run_workload()


def test_export_matches_golden_snapshot(workload):
    export = sanitized_export(workload)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(export, indent=2, sort_keys=True)
                               + "\n", encoding="utf-8")
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert export["metrics"] == golden["metrics"]
    assert export["spans"] == golden["spans"]


def test_metric_counting_invariants(workload):
    snapshot = workload.obs.metrics.snapshot()
    queries = snapshot["halo.accelerator.queries"]
    assert queries == BLOCKING + NONBLOCKING
    assert (snapshot["halo.accelerator.hits"]
            + snapshot["halo.accelerator.misses"]) == queries
    assert snapshot["halo.distributor.dispatched"] == queries
    assert (snapshot["halo.isa.lookup_b"]
            + snapshot["halo.isa.lookup_nb"]) == queries
    assert snapshot["halo.query.latency_cycles"]["count"] == queries
    assert snapshot["halo.locks.held"] == 0
    # every metadata lookup either hit or missed
    assert (snapshot["halo.accelerator.metadata_hits"]
            + snapshot["halo.accelerator.metadata_misses"]) == queries


def test_failover_metrics_exported(workload):
    """The cluster failover counters land in the pinned export, and the
    unhealthy-shards gauge reflects the final (one still dead) state."""
    snapshot = workload.obs.metrics.snapshot()
    assert snapshot["cluster.failover.fail_events"] == 2
    assert snapshot["cluster.failover.restore_events"] == 1
    assert snapshot["cluster.failover.resteered_entries"] > 0
    assert snapshot["cluster.failover.unhealthy_shards"] == 1


def test_emc_policy_metrics_exported(workload):
    """The cache-policy seam publishes its counters into the same
    registry the golden snapshot pins."""
    snapshot = workload.obs.metrics.snapshot()
    assert snapshot["emc.evictions"] > 0
    assert snapshot["emc.admission_rejects"] > 0
    window = snapshot["emc.second-chance.window_miss_rate"]
    assert window["count"] == EMC_LOOKUPS // EMC_MISS_WINDOW


def test_one_span_tree_per_query_and_nesting_holds(workload):
    roots = workload.obs.trace.roots
    assert len(roots) == BLOCKING + NONBLOCKING
    for root in roots:
        assert root.name == "query"
        assert validate_nesting(root) == []


def test_span_stage_structure(workload):
    """Each query tree walks distributor -> accelerator -> memory stages."""
    for root in workload.obs.trace.roots:
        names = [span.name for span in root.walk()]
        assert "distributor.dispatch" in names
        assert "accelerator.queue" in names
        assert "accelerator.serve" in names
        assert "metadata_fetch" in names
        assert "key_fetch" in names
        assert "hash" in names
        assert "bucket_scan" in names
        assert "deliver" in names
        assert "found" in root.attrs


def test_span_durations_cover_children(workload):
    for root in workload.obs.trace.roots:
        for span in root.walk():
            child_span = sum(c.duration for c in span.children)
            assert span.duration >= 0.0
            # children are sequential stages of their parent
            assert child_span <= span.duration + 1e-9
