"""The metrics registry: counters, gauges, histograms, snapshots."""

import json
import math

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)


# -- counters / gauges ---------------------------------------------------------
def test_counter_increments_and_resets():
    registry = MetricsRegistry()
    counter = registry.counter("x.count")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    counter.reset()
    assert counter.value == 0


def test_counter_get_or_create_returns_same_object():
    registry = MetricsRegistry()
    assert registry.counter("a.b") is registry.counter("a.b")
    assert registry.counter("a.b") is not registry.counter("a.c")


def test_gauge_set_and_callback():
    registry = MetricsRegistry()
    gauge = registry.gauge("x.level")
    gauge.set(3.5)
    assert gauge.value == 3.5
    state = {"v": 7.0}
    live = registry.gauge("x.live", fn=lambda: state["v"])
    assert live.value == 7.0
    state["v"] = 9.0
    assert live.value == 9.0


# -- histograms ----------------------------------------------------------------
def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=())
    with pytest.raises(ValueError):
        Histogram("h", bounds=(4.0, 2.0))
    with pytest.raises(ValueError):
        Histogram("h", bounds=(1.0, 1.0, 2.0))


def test_histogram_counts_and_moments():
    histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 1.0, 1.5, 3.0, 100.0):
        histogram.observe(value)
    assert histogram.count == 5
    assert histogram.sum == pytest.approx(106.0)
    assert histogram.min == 0.5
    assert histogram.max == 100.0
    # bisect_left semantics: a value equal to a bound lands in that bucket.
    assert histogram.bucket_counts == [2, 1, 1]
    assert histogram.overflow == 1


def test_histogram_percentiles_ordered_and_clamped():
    histogram = Histogram("h")
    for value in range(1, 101):
        histogram.observe(float(value))
    p50, p95, p99 = histogram.p50, histogram.p95, histogram.p99
    assert p50 <= p95 <= p99
    assert histogram.min <= p50
    assert p99 <= histogram.max


def test_histogram_percentile_of_empty_is_zero():
    histogram = Histogram("h")
    assert histogram.p50 == 0.0
    assert histogram.percentile(1.0) == 0.0


def test_histogram_percentile_fraction_validated():
    with pytest.raises(ValueError):
        Histogram("h").percentile(1.5)


def test_histogram_overflow_rank_returns_max():
    histogram = Histogram("h", bounds=(1.0,))
    histogram.observe(50.0)
    histogram.observe(60.0)
    assert histogram.p99 == 60.0


def test_histogram_merge_requires_identical_bounds():
    a = Histogram("a", bounds=(1.0, 2.0))
    b = Histogram("b", bounds=(1.0, 4.0))
    with pytest.raises(ValueError):
        a.merge(b)


def test_histogram_merge_adds_bucketwise():
    a = Histogram("a")
    b = Histogram("b")
    for value in (1.0, 3.0, 9.0):
        a.observe(value)
    for value in (2.0, 1e9):
        b.observe(value)
    merged = a.merge(b)
    assert merged.count == 5
    assert merged.overflow == 1
    assert merged.min == 1.0
    assert merged.max == 1e9
    assert sum(merged.bucket_counts) + merged.overflow == 5


def test_histogram_reset():
    histogram = Histogram("h")
    histogram.observe(5.0)
    histogram.reset()
    assert histogram.count == 0
    assert histogram.sum == 0.0
    assert histogram.min == math.inf
    assert histogram.to_dict() == {"count": 0}


def test_histogram_to_dict_shape():
    histogram = Histogram("h")
    histogram.observe(3.0)
    out = histogram.to_dict()
    for key in ("count", "sum", "mean", "min", "max", "p50", "p95", "p99",
                "buckets", "overflow"):
        assert key in out
    assert out["buckets"] == {"le_4": 1}


def test_default_buckets_are_powers_of_two():
    assert DEFAULT_LATENCY_BUCKETS[0] == 1.0
    assert DEFAULT_LATENCY_BUCKETS[-1] == 65536.0
    for left, right in zip(DEFAULT_LATENCY_BUCKETS, DEFAULT_LATENCY_BUCKETS[1:]):
        assert right == 2 * left


# -- registry snapshot / export ------------------------------------------------
def test_snapshot_inlines_sources_and_sorts():
    registry = MetricsRegistry()
    registry.counter("z.count").inc(2)
    registry.gauge("a.level").set(1.0)
    registry.register_source("mid.block", lambda: {"x": 1, "y": 2})
    snapshot = registry.snapshot()
    assert snapshot["z.count"] == 2
    assert snapshot["mid.block.x"] == 1
    assert snapshot["mid.block.y"] == 2
    assert list(snapshot) == sorted(snapshot)


def test_snapshot_histogram_is_summary_dict():
    registry = MetricsRegistry()
    registry.histogram("h.latency").observe(4.0)
    snapshot = registry.snapshot()
    assert snapshot["h.latency"]["count"] == 1


def test_to_json_round_trips():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.histogram("h").observe(2.0)
    parsed = json.loads(registry.to_json())
    assert parsed["c"] == 1
    assert parsed["h"]["count"] == 1


def test_names_covers_all_kinds():
    registry = MetricsRegistry()
    registry.counter("c")
    registry.gauge("g")
    registry.histogram("h")
    registry.register_source("s", dict)
    assert registry.names() == ["c", "g", "h", "s"]


def test_registry_reset_zeroes_push_metrics():
    registry = MetricsRegistry()
    registry.counter("c").inc(5)
    registry.gauge("g").set(2.0)
    registry.histogram("h").observe(1.0)
    registry.reset()
    snapshot = registry.snapshot()
    assert snapshot["c"] == 0
    assert snapshot["g"] == 0.0
    assert snapshot["h"] == {"count": 0}


# -- disabled registry ---------------------------------------------------------
def test_disabled_registry_hands_out_shared_nulls():
    registry = MetricsRegistry(enabled=False)
    assert registry.counter("a") is NULL_COUNTER
    assert registry.gauge("b") is NULL_GAUGE
    assert registry.histogram("c") is NULL_HISTOGRAM


def test_disabled_registry_records_nothing():
    registry = MetricsRegistry(enabled=False)
    registry.counter("a").inc(100)
    registry.gauge("b").set(5.0)
    registry.histogram("c").observe(9.0)
    registry.register_source("s", lambda: {"x": 1})
    assert registry.snapshot() == {}
    assert registry.names() == []


def test_null_objects_stay_zero_even_after_use():
    NULL_COUNTER.inc(3)
    assert NULL_COUNTER.value == 0
    NULL_GAUGE.set(4.0)
    assert NULL_GAUGE.value == 0.0
    NULL_HISTOGRAM.observe(2.0)
    assert NULL_HISTOGRAM.count == 0
