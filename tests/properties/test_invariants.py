"""Cross-cutting property-based invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.hashtable import CuckooHashTable, hash_bytes, secondary_index, signature_of
from repro.sim import Cache, CacheParams, Engine
from repro.sim.interconnect import Interconnect
from repro.sim.params import LatencyParams


# -- cache invariants ---------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 500), st.booleans()),
                max_size=150))
def test_cache_never_exceeds_capacity(accesses):
    cache = Cache("prop", CacheParams(16 * 64, 4, 64))
    for line, write in accesses:
        if not cache.lookup(line, write=write):
            cache.fill(line, dirty=write)
        # Capacity invariant holds after every operation.
        assert cache.resident_lines <= 16
        for set_index in range(cache.num_sets):
            bucket = cache._sets.get(set_index, {})
            assert len(bucket) <= cache.assoc


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 100), min_size=1, max_size=100))
def test_cache_hit_after_fill_without_eviction(lines):
    cache = Cache("prop", CacheParams(1 << 16, 8, 64))  # big: no eviction
    for line in lines:
        cache.fill(line)
    for line in lines:
        assert cache.lookup(line)


# -- hashing invariants ---------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(st.binary(min_size=0, max_size=64), st.integers(0, 2 ** 32))
def test_hash_stable_and_in_range(data, seed):
    value = hash_bytes(data, seed)
    assert value == hash_bytes(data, seed)
    assert 0 <= value < (1 << 64)
    assert 0 <= signature_of(value) < (1 << 16)


@settings(max_examples=120, deadline=None)
@given(st.integers(0, 4095), st.integers(0, 0xFFFF))
def test_secondary_index_involution(index, signature):
    mask = 4095
    alternative = secondary_index(index, signature, mask)
    assert 0 <= alternative <= mask
    assert secondary_index(alternative, signature, mask) == index


# -- cuckoo layout invariants ------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.sets(st.binary(min_size=16, max_size=16), min_size=1,
               max_size=100))
def test_probe_addresses_inside_table_regions(keys):
    table = CuckooHashTable(256)
    for index, key in enumerate(sorted(keys)):
        table.insert(key, index)
    layout = table.layout
    for key in keys:
        plan = table.probe(key)
        assert layout.buckets.contains(plan.primary_addr)
        assert layout.buckets.contains(plan.secondary_addr)
        for kv_addr in plan.kv_probes:
            assert layout.key_values.contains(kv_addr)


@settings(max_examples=40, deadline=None)
@given(st.sets(st.binary(min_size=16, max_size=16), min_size=1,
               max_size=120))
def test_cuckoo_size_equals_distinct_inserts(keys):
    table = CuckooHashTable(512)
    for key in keys:
        table.insert(key, 0)
    assert len(table) == len(keys)
    occupied = sum(entries * count for entries, count
                   in table.bucket_occupancy_histogram().items())
    assert occupied == len(keys)


# -- interconnect invariants -----------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(st.integers(2, 32), st.integers(0, 1 << 48))
def test_slice_hash_in_range(stops, line):
    ring = Interconnect(stops, LatencyParams())
    assert 0 <= ring.slice_of_line(line) < stops


@settings(max_examples=100, deadline=None)
@given(st.integers(2, 32), st.integers(0, 63), st.integers(0, 63))
def test_hops_triangle_bound(stops, a, b):
    ring = Interconnect(stops, LatencyParams())
    src, dst = a % stops, b % stops
    hops = ring.hops(src, dst)
    assert 0 <= hops <= stops // 2
    assert hops == ring.hops(dst, src)


# -- engine determinism ---------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 50), min_size=1, max_size=20))
def test_engine_event_ordering_deterministic(delays):
    def run():
        engine = Engine()
        log = []

        def worker(tag, delay):
            yield engine.timeout(delay)
            log.append((engine.now, tag))

        for tag, delay in enumerate(delays):
            engine.process(worker(tag, delay))
        engine.run()
        return log

    first = run()
    second = run()
    assert first == second
    times = [when for when, _tag in first]
    assert times == sorted(times)
