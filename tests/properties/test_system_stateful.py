"""Stateful end-to-end fuzz: the whole HaloSystem against a model dict.

Random interleavings of inserts, deletes, software lookups, LOOKUP_B, and
LOOKUP_NB batches must all agree with a plain dict — across displacements,
cache evictions, lock bits, and accelerator scheduling.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core import HaloSystem

keys16 = st.binary(min_size=16, max_size=16)


class HaloSystemMachine(RuleBasedStateMachine):

    @initialize()
    def setup(self):
        self.system = HaloSystem()
        self.table = self.system.create_table(256, name="fuzz")
        self.model = {}

    @rule(key=keys16, value=st.integers())
    def insert(self, key, value):
        if self.table.insert(key, value):
            self.model[key] = value

    @rule(key=keys16)
    def delete(self, key):
        assert self.table.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=keys16)
    def software_lookup(self, key):
        value = self.system.run_software_lookups(
            self.table, [key]).results[0]
        assert value == self.model.get(key)

    @rule(key=keys16)
    def halo_blocking_lookup(self, key):
        result = self.system.run_blocking_lookups(
            self.table, [key]).results[0]
        assert result.found == (key in self.model)
        assert result.value == self.model.get(key)

    @rule(keys=st.lists(keys16, min_size=1, max_size=6))
    def halo_batch_lookup(self, keys):
        episode = self.system.run_nonblocking_lookups(self.table, keys)
        for key, result in zip(keys, episode.results):
            assert result.value == self.model.get(key)

    @invariant()
    def sizes_agree(self):
        if hasattr(self, "table"):
            assert len(self.table) == len(self.model)

    @invariant()
    def no_leaked_lock_bits(self):
        if hasattr(self, "table"):
            layout = self.table.layout
            for bucket in range(layout.num_buckets):
                addr = layout.bucket_addr(bucket)
                assert not self.system.hierarchy.line_locked(addr)


TestHaloSystemFuzz = HaloSystemMachine.TestCase
TestHaloSystemFuzz.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None)
