"""Second round of property-based invariants: SFH, TSS, flow register
windows, the DES engine under random workloads, decision trees."""

from hypothesis import given, settings, strategies as st

from repro.classifier import (
    Action,
    DecisionTreeClassifier,
    FiveTuple,
    FlowMask,
    TupleSpaceSearch,
    rule_for_flow,
)
from repro.hashtable import SingleHashTable
from repro.sim import Engine

keys16 = st.binary(min_size=16, max_size=16)

flows = st.builds(
    FiveTuple,
    src_ip=st.integers(0, 0xFFFFFFFF),
    dst_ip=st.integers(0, 0xFFFFFFFF),
    src_port=st.integers(0, 0xFFFF),
    dst_port=st.integers(0, 0xFFFF),
    proto=st.integers(0, 0xFF),
)

group_masks = st.builds(
    FlowMask.prefixes,
    src_prefix=st.sampled_from([0, 8]),
    dst_prefix=st.sampled_from([16, 24]),
    src_port=st.just(False),
    dst_port=st.booleans(),
    proto=st.booleans(),
)


# -- SFH behaves like a dict even when overfull --------------------------------------
@settings(max_examples=40, deadline=None)
@given(st.dictionaries(keys16, st.integers(), max_size=100),
       st.sampled_from([2, 8, 64]))
def test_sfh_matches_dict(entries, expected_keys):
    table = SingleHashTable(expected_keys=expected_keys)
    for key, value in entries.items():
        assert table.insert(key, value)
    assert len(table) == len(entries)
    for key, value in entries.items():
        assert table.lookup(key) == value


@settings(max_examples=30, deadline=None)
@given(st.sets(keys16, min_size=2, max_size=40), st.data())
def test_sfh_delete_is_precise(keys, data):
    keys = sorted(keys)
    table = SingleHashTable(expected_keys=8)
    for index, key in enumerate(keys):
        table.insert(key, index)
    victim = data.draw(st.sampled_from(keys))
    assert table.delete(victim)
    for index, key in enumerate(keys):
        assert table.lookup(key) == (None if key == victim else index)


# -- TSS: classify agrees with a linear scan over installed rules ----------------------
@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(flows, group_masks), min_size=1, max_size=20),
       flows)
def test_tss_classify_all_matches_linear_scan(rule_specs, probe):
    tss = TupleSpaceSearch(tuple_capacity=64)
    rules = []
    for anchor, mask in rule_specs:
        rule = rule_for_flow(anchor, Action.drop(), mask)
        if tss.install(rule):
            rules.append(rule)
    expected_ids = {rule.rule_id for rule in rules if rule.matches(probe)}
    # Duplicate (mask, key) installs overwrite in the tuple's hash table,
    # so compare against the *last* rule per (mask, masked-key).
    last_per_slot = {}
    for rule in rules:
        last_per_slot[(rule.mask, rule.key)] = rule.rule_id
    surviving = set(last_per_slot.values())
    got_ids = {rule.rule_id for rule in tss.classify_all(probe)}
    assert got_ids == (expected_ids & surviving)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(flows, group_masks), min_size=1, max_size=15),
       flows)
def test_tss_first_match_is_a_real_match(rule_specs, probe):
    tss = TupleSpaceSearch(tuple_capacity=64)
    for anchor, mask in rule_specs:
        tss.install(rule_for_flow(anchor, Action.drop(), mask))
    found, searched = tss.classify(probe)
    assert 0 <= searched <= tss.num_tuples
    if found is not None:
        assert found.matches(probe)


# -- decision tree vs linear scan -------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(flows, group_masks), min_size=1, max_size=12),
       st.lists(flows, min_size=1, max_size=10))
def test_dtree_matches_linear_scan(rule_specs, probes):
    rules = [rule_for_flow(anchor, Action.output(i), mask, priority=i)
             for i, (anchor, mask) in enumerate(rule_specs)]
    tree = DecisionTreeClassifier(rules)
    for probe in probes:
        matches = [rule for rule in rules if rule.matches(probe)]
        expected = (max(matches, key=lambda r: (r.priority, -r.rule_id))
                    if matches else None)
        got = tree.classify_functional(probe)
        assert (got is None) == (expected is None)
        if expected is not None:
            assert got.rule_id == expected.rule_id


# -- engine resources never over-grant ---------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.integers(1, 4), st.lists(st.integers(1, 20), min_size=1,
                                   max_size=15))
def test_resource_concurrency_bound(capacity, holds):
    engine = Engine()
    resource = engine.resource(capacity)
    active = [0]
    peak = [0]

    def worker(hold):
        yield resource.acquire()
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        yield engine.timeout(hold)
        active[0] -= 1
        resource.release()

    for hold in holds:
        engine.process(worker(hold))
    engine.run()
    assert peak[0] <= capacity
    assert active[0] == 0
    # Work conservation: total time is at least the critical path.
    assert engine.now >= max(holds)
