"""Property-based tests for the fixed-bucket histogram (repro.obs).

Fixed bounds make merging exact — two histograms over the same bounds add
bucket-wise — which is what the registry relies on to aggregate per-slice
latency distributions.  Hypothesis locks in:

* count conservation: every observation lands in exactly one bucket
  (including values exactly on a bound, and in the overflow bucket);
* merge is commutative and associative on counts, and equivalent to
  observing the concatenated stream;
* percentiles are monotone in the queried fraction and clamped to the
  observed ``[min, max]`` range.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import DEFAULT_LATENCY_BUCKETS, Histogram

values = st.floats(min_value=0.0, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
value_lists = st.lists(values, min_size=0, max_size=200)

# Also exercise values exactly on bucket bounds, where bisect off-by-ones
# would silently misplace observations.
boundary_values = st.sampled_from(DEFAULT_LATENCY_BUCKETS)
mixed_lists = st.lists(st.one_of(values, boundary_values),
                       min_size=0, max_size=200)


def fill(samples, name="h"):
    histogram = Histogram(name)
    for value in samples:
        histogram.observe(value)
    return histogram


@settings(max_examples=150, deadline=None)
@given(mixed_lists)
def test_count_conservation(samples):
    histogram = fill(samples)
    assert histogram.count == len(samples)
    assert sum(histogram.bucket_counts) + histogram.overflow == len(samples)


@settings(max_examples=150, deadline=None)
@given(mixed_lists, mixed_lists)
def test_merge_equals_concatenated_stream(left, right):
    merged = fill(left).merge(fill(right))
    combined = fill(left + right)
    assert merged.bucket_counts == combined.bucket_counts
    assert merged.overflow == combined.overflow
    assert merged.count == combined.count
    assert merged.sum == pytest.approx(combined.sum)
    if merged.count:
        assert merged.min == combined.min
        assert merged.max == combined.max


@settings(max_examples=100, deadline=None)
@given(value_lists, value_lists)
def test_merge_commutes(left, right):
    ab = fill(left).merge(fill(right))
    ba = fill(right).merge(fill(left))
    assert ab.bucket_counts == ba.bucket_counts
    assert ab.overflow == ba.overflow
    assert ab.count == ba.count


@settings(max_examples=100, deadline=None)
@given(value_lists, value_lists, value_lists)
def test_merge_associates_on_counts(a, b, c):
    left = fill(a).merge(fill(b)).merge(fill(c))
    right = fill(a).merge(fill(b).merge(fill(c)))
    assert left.bucket_counts == right.bucket_counts
    assert left.overflow == right.overflow
    assert left.count == right.count
    assert left.sum == pytest.approx(right.sum)


@settings(max_examples=150, deadline=None)
@given(st.lists(values, min_size=1, max_size=200),
       st.lists(st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False), min_size=2, max_size=6))
def test_percentiles_monotone_and_clamped(samples, fractions):
    histogram = fill(samples)
    estimates = [histogram.percentile(f) for f in sorted(fractions)]
    for lower, upper in zip(estimates, estimates[1:]):
        assert lower <= upper + 1e-9
    for estimate in estimates:
        assert histogram.min <= estimate <= histogram.max


@settings(max_examples=150, deadline=None)
@given(st.lists(values, min_size=1, max_size=200))
def test_mean_within_extremes(samples):
    histogram = fill(samples)
    assert histogram.min - 1e-9 <= histogram.mean <= histogram.max + 1e-9


@settings(max_examples=100, deadline=None)
@given(value_lists)
def test_reset_then_refill_reproduces(samples):
    histogram = fill(samples)
    histogram.reset()
    for value in samples:
        histogram.observe(value)
    assert histogram.bucket_counts == fill(samples).bucket_counts
    assert histogram.count == len(samples)
