"""Lookup backends: identical answers across modes, engine scheduling,
and cycle parity with the pre-backend synchronous software path."""

import pytest

from repro.core import HaloSystem
from repro.exec import (
    BackendKind,
    LookupOutcome,
    SoftwareBackend,
    make_backend,
)

from ..conftest import make_keys

N_KEYS = 60


def build_system(entries=4096, keys=2000, seed=91):
    system = HaloSystem()
    table = system.create_table(entries, name="exec_test")
    inserted = []
    for index, key in enumerate(make_keys(keys, seed=seed)):
        if table.insert(key, index):
            inserted.append((key, index))
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    return system, table, inserted


ALL_KINDS = ("software", "halo-b", "halo-nb", "adaptive")


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_backend_returns_outcomes_and_advances_engine(kind):
    system, table, inserted = build_system()
    backend = system.backend(kind)
    keys = [key for key, _ in inserted[:N_KEYS]]
    before = system.engine.now
    outcomes = system.engine.run_process(backend.lookup_stream(table, keys))
    assert system.engine.now > before, \
        f"{kind} backend must spend cycles as engine time"
    assert len(outcomes) == N_KEYS
    for outcome, (_, value) in zip(outcomes, inserted[:N_KEYS]):
        assert isinstance(outcome, LookupOutcome)
        assert outcome.found
        assert outcome.value == value
        assert outcome.cycles > 0


def test_backend_parity_identical_values_across_modes():
    per_kind = {}
    for kind in ALL_KINDS:
        system, table, inserted = build_system()
        backend = system.backend(kind)
        keys = [key for key, _ in inserted[:N_KEYS]]
        missing = make_keys(10, seed=4242)
        outcomes = system.engine.run_process(
            backend.lookup_stream(table, keys + missing))
        per_kind[kind] = [(o.value, o.found) for o in outcomes]
    baseline = per_kind["software"]
    for kind in ALL_KINDS[1:]:
        assert per_kind[kind] == baseline, \
            f"{kind} disagrees with software results"


def test_software_backend_cycles_match_presched_sum():
    """Regression pin: engine-scheduled software episodes report exactly
    the cycles the old synchronous sum produced."""
    # Reference: the raw SoftwareLookupEngine sum on an identical system.
    ref_system, ref_table, inserted = build_system()
    keys = [key for key, _ in inserted[:N_KEYS]]
    engine = ref_system.software_engine(0)
    expected = 0.0
    for key in keys:
        _value, result = engine.lookup(ref_table, key)
        expected += result.cycles

    system, table, _ = build_system()
    episode = system.run_software_lookups(table, keys)
    assert episode.operations == N_KEYS
    assert episode.cycles == pytest.approx(expected, rel=1e-12)
    # And the per-outcome cycles sum to the same total.
    backend_system, backend_table, _ = build_system()
    outcomes = backend_system.engine.run_process(
        backend_system.backend("software").lookup_stream(backend_table, keys))
    assert sum(o.cycles for o in outcomes) == pytest.approx(expected,
                                                            rel=1e-12)


def test_legacy_episode_result_types_preserved():
    system, table, inserted = build_system()
    keys = [key for key, _ in inserted[:20]]
    software = system.run_software_lookups(table, keys)
    assert software.results == [value for _, value in inserted[:20]]
    blocking = system.run_blocking_lookups(table, keys)
    assert all(result.found for result in blocking.results)
    assert [result.value for result in blocking.results] == software.results
    nonblocking = system.run_nonblocking_lookups(table, keys)
    assert [result.value for result in nonblocking.results] == software.results


def test_make_backend_kinds_and_strings():
    system, _, _ = build_system(entries=64, keys=16)
    for kind in BackendKind:
        backend = make_backend(kind, system)
        assert backend.kind is kind
        assert make_backend(kind.value, system).kind is kind
    assert isinstance(system.backend(BackendKind.SOFTWARE), SoftwareBackend)


def test_halo_backends_replace_emc_software_does_not():
    system, _, _ = build_system(entries=64, keys=16)
    assert not system.backend("software").replaces_emc
    assert system.backend("halo-b").replaces_emc
    assert system.backend("halo-nb").replaces_emc
    assert not system.backend("adaptive").replaces_emc


def test_blocking_search_stops_at_first_match():
    system, table, inserted = build_system()
    other = system.create_table(1024, name="exec_other")
    hit_key = inserted[0][0]
    backend = system.backend("halo-b")
    outcomes = system.engine.run_process(backend.search(
        [(table, hit_key), (other, hit_key), (other, hit_key)],
        first_match=True))
    assert len(outcomes) == 1 and outcomes[0].found


def test_nonblocking_search_issues_everything():
    system, table, inserted = build_system()
    other = system.create_table(1024, name="exec_other")
    hit_key = inserted[0][0]
    backend = system.backend("halo-nb")
    outcomes = system.engine.run_process(backend.search(
        [(table, hit_key), (other, hit_key)], first_match=True))
    assert len(outcomes) == 2
    assert outcomes[0].found and not outcomes[1].found


def test_adaptive_backend_switches_modes_with_flow_estimate():
    system, table, inserted = build_system()
    keys = [key for key, _ in inserted[:400]]
    episode = system.run_adaptive_lookups(table, keys, window=100)
    assert episode.operations == 400
    assert episode.results[:5] == [value for _, value in inserted[:5]]
    # Enough distinct flows must push the controller out of software mode.
    assert system.hybrid.stats.windows >= 3
