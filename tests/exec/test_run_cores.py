"""run_cores: pinned backends genuinely share one engine timeline —
interleaving, determinism, and emergent shared-hierarchy contention."""

import pytest

from repro.core import HaloSystem
from repro.exec import CoreWorkload, run_cores

from ..conftest import make_keys


def build_loaded_system(table_specs, seed=17):
    """One system with one warm table per (name, core) spec."""
    system = HaloSystem()
    tables = {}
    for index, name in enumerate(table_specs):
        table = system.create_table(4096, name=name)
        inserted = []
        for value, key in enumerate(make_keys(1500, seed=seed + index)):
            if table.insert(key, value):
                inserted.append(key)
        system.warm_table(table)
        tables[name] = (table, inserted)
    return system, tables


def mixed_run(n_keys=40, seed=17):
    system, tables = build_loaded_system(["sw_t", "halo_t"], seed=seed)
    sw_table, sw_keys = tables["sw_t"]
    halo_table, halo_keys = tables["halo_t"]
    run = system.run_cores([
        CoreWorkload(backend="software", core_id=0, table=sw_table,
                     keys=sw_keys[:n_keys]),
        CoreWorkload(backend="halo-nb", core_id=1, table=halo_table,
                     keys=halo_keys[:n_keys]),
    ])
    return system, run


def test_mixed_backends_interleave_on_one_timeline():
    system, run = mixed_run()
    assert {result.kind.value for result in run.results} == \
        {"software", "halo-nb"}
    # Each core's marks advance monotonically and the merged timeline
    # alternates between cores — not two back-to-back serial phases.
    for result in run.results:
        assert result.marks == sorted(result.marks)
        assert len(result.marks) == 40
    assert run.interleavings() > 10
    assert run.elapsed > 0
    assert system.engine.now == run.finished


def test_all_outcomes_correct_in_concurrent_run():
    _, run = mixed_run()
    for result in run.results:
        assert all(outcome.found for outcome in result.result)
        assert result.cycles > 0
        assert result.cycles_per_op > 0


def test_run_cores_is_deterministic():
    def snapshot():
        _, run = mixed_run()
        return ([(r.core_id, r.started, r.finished, r.marks,
                  [(o.value, o.cycles) for o in r.result])
                 for r in run.results], run.timeline())

    assert snapshot() == snapshot()


def test_single_core_software_workload_matches_serial_run():
    """With one core the scheduled run degenerates to the serial walk."""
    system, tables = build_loaded_system(["solo"])
    table, keys = tables["solo"]
    run = system.run_cores([
        CoreWorkload(backend="software", core_id=0, table=table,
                     keys=keys[:30]),
    ])

    ref_system, ref_tables = build_loaded_system(["solo"])
    ref_table, ref_keys = ref_tables["solo"]
    engine = ref_system.software_engine(0)
    expected = 0.0
    for key in ref_keys[:30]:
        _value, result = engine.lookup(ref_table, key)
        expected += result.cycles
    assert run.by_core(0).cycles == pytest.approx(expected, rel=1e-12)


def test_collocated_software_cores_contend_on_shared_hierarchy():
    """Two software PMDs on one machine touch the same LLC: each sees the
    other's cache pressure, and the run is slower than either solo."""
    def software_cycles(core_ids):
        system, tables = build_loaded_system(
            [f"t{core}" for core in core_ids])
        workloads = []
        for index, core in enumerate(core_ids):
            table, keys = tables[f"t{core}"]
            workloads.append(CoreWorkload(
                backend="software", core_id=core, table=table,
                keys=keys[:50]))
        run = system.run_cores(workloads)
        llc = sum(cache.stats.accesses for cache in system.hierarchy.llc)
        return run, llc

    solo, _ = software_cycles([0])
    duo, llc_accesses = software_cycles([0, 1])
    assert duo.interleavings() > 0
    assert llc_accesses > 0
    # Wall-clock of the collocated pair covers both cores' busy time.
    assert duo.elapsed >= solo.elapsed


def test_custom_program_workload_and_by_core():
    system, tables = build_loaded_system(["prog"])
    table, keys = tables["prog"]

    def program(backend):
        first = yield from backend.lookup(table, keys[0])
        second = yield from backend.lookup(table, keys[1])
        return [first, second]

    run = system.run_cores([
        CoreWorkload(backend="halo-b", core_id=3, program=program,
                     name="custom"),
    ])
    result = run.by_core(3)
    assert result.name == "custom"
    assert [outcome.found for outcome in result.result] == [True, True]
    with pytest.raises(KeyError):
        run.by_core(9)


def test_streamed_workload_uses_batch_idiom():
    system, tables = build_loaded_system(["batch"])
    table, keys = tables["batch"]
    run = system.run_cores([
        CoreWorkload(backend="halo-nb", core_id=0, table=table,
                     keys=keys[:24], stream=True),
    ])
    outcomes = run.by_core(0).result
    assert len(outcomes) == 24 and all(o.found for o in outcomes)
    # Batched streams have no per-key marks.
    assert run.by_core(0).marks == []


# ---------------------------------------------------------------------------
# topology-aware placement (PR 8)


def test_socket_placement_resolves_to_global_core():
    from repro.exec.cores import resolve_placement
    from repro.sim.params import SKYLAKE_SP_16C

    system = HaloSystem(machine=SKYLAKE_SP_16C.scale_out(2))
    table = system.create_table(256, name="placed")
    keys = make_keys(8, seed=3)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)

    workload = CoreWorkload(backend="software", core_id=1, socket=1,
                            table=table, keys=keys)
    resolved = resolve_placement(system, workload)
    assert resolved.core_id == 17      # socket 1, local core 1
    assert resolved.socket is None

    run = system.run_cores([workload])
    assert run.results[0].core_id == 17
    assert all(outcome.found for outcome in run.results[0].result)


def test_global_core_ids_stay_untouched_without_socket():
    from repro.exec.cores import resolve_placement

    system = HaloSystem()
    workload = CoreWorkload(backend="software", core_id=5)
    assert resolve_placement(system, workload) is workload


def test_bad_socket_placement_raises_actionably():
    system = HaloSystem()   # single socket
    workload = CoreWorkload(backend="software", core_id=0, socket=1)
    with pytest.raises(ValueError, match="socket 1 out of range"):
        run_cores(system, [workload])
