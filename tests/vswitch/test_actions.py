"""Action execution."""

import pytest

from repro.classifier import Action, ActionKind, make_flow
from repro.classifier.rules import Action as RuleAction
from repro.sim import AddressAllocator
from repro.vswitch import ActionExecutor, PacketPool


@pytest.fixture
def executor():
    return ActionExecutor(num_ports=4)


@pytest.fixture
def pool():
    return PacketPool(AddressAllocator(1 << 26), buffers=4)


def test_output_forwards_to_port(executor, pool):
    packet = pool.wrap(make_flow(1))
    outcome = executor.execute(packet, Action.output(2))
    assert outcome.output_port == 2
    assert executor.ports[2].packets == 1
    assert executor.ports[2].bytes == packet.size_bytes
    assert outcome.cycles > 0


def test_output_port_wraps(executor, pool):
    packet = pool.wrap(make_flow(2))
    outcome = executor.execute(packet, Action.output(6))
    assert outcome.output_port == 6 % 4


def test_drop_accounting(executor, pool):
    outcome = executor.execute(pool.wrap(make_flow(3)), Action.drop())
    assert outcome.dropped
    assert executor.dropped == 1
    assert all(stats.packets == 0 for stats in executor.ports.values())


def test_nat_rewrites_source(executor, pool):
    flow = make_flow(4)
    action = RuleAction(ActionKind.NAT, ((198 << 24) | 7, 5555))
    outcome = executor.execute(pool.wrap(flow), action)
    rewritten = outcome.rewritten_flow
    assert rewritten.src_ip == (198 << 24) | 7
    assert rewritten.src_port == 5555
    assert rewritten.dst_ip == flow.dst_ip          # destination untouched
    assert rewritten.proto == flow.proto


def test_nat_default_masquerade(executor, pool):
    action = RuleAction(ActionKind.NAT)
    outcome = executor.execute(pool.wrap(make_flow(5)), action)
    assert outcome.rewritten_flow.src_ip == (203 << 24) | 1


def test_mirror_duplicates_packet(executor, pool):
    action = RuleAction(ActionKind.MIRROR, (3, 1))
    outcome = executor.execute(pool.wrap(make_flow(6)), action)
    assert outcome.output_port == 1
    assert executor.ports[3].packets == 1
    assert executor.ports[1].packets == 1
    assert executor.mirrored == 1


def test_controller_punt_is_expensive(executor, pool):
    action = RuleAction(ActionKind.CONTROLLER)
    outcome = executor.execute(pool.wrap(make_flow(7)), action)
    assert outcome.punted
    assert executor.punted == 1
    output = executor.execute(pool.wrap(make_flow(8)), Action.output(0))
    assert outcome.cycles > output.cycles * 3


def test_port_packet_counts(executor, pool):
    for index in range(6):
        executor.execute(pool.wrap(make_flow(index)),
                         Action.output(index % 2))
    assert executor.port_packet_counts() == [3, 3, 0, 0]


def test_requires_ports():
    with pytest.raises(ValueError):
        ActionExecutor(num_ports=0)


def test_switch_pipeline_exercises_actions():
    """End to end: classified packets land on their rules' output ports."""
    from repro.core import HaloSystem
    from repro.traffic import TrafficProfile, PacketStream
    from repro.vswitch import SwitchMode, VirtualSwitch
    profile = TrafficProfile(name="t", description="", num_flows=2000,
                             num_rules=4)
    flow_set, rules = profile.build()
    system = HaloSystem()
    switch = VirtualSwitch(system, SwitchMode.SOFTWARE)
    switch.install_rules(rules)
    switch.prewarm_megaflows(flow_set.flows)
    stream = PacketStream(flow_set, zipf_s=0.3, seed=4)
    switch.process_stream(stream.take(80))
    assert sum(switch.actions.port_packet_counts()) == 80
    assert sum(1 for count in switch.actions.port_packet_counts()
               if count > 0) >= 2
