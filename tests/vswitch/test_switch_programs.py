"""The DES-program pipeline: engine scheduling, per-layer halo
attribution, and the prewarm-before-install fix."""

import pytest

from repro.classifier import HitLayer
from repro.core import HaloSystem
from repro.sim.stats import Breakdown
from repro.traffic import PacketStream, TrafficProfile
from repro.vswitch import SwitchMode, VirtualSwitch


@pytest.fixture
def workload():
    profile = TrafficProfile(name="t", description="", num_flows=4000,
                             num_rules=6, zipf_s=0.8)
    flow_set, rules = profile.build()
    return profile, flow_set, rules


def build_switch(rules, flow_set, mode=SwitchMode.SOFTWARE, prewarm=True):
    system = HaloSystem()
    switch = VirtualSwitch(system, mode, megaflow_tuple_capacity=1 << 14)
    switch.install_rules(rules)
    if prewarm:
        switch.prewarm_megaflows(flow_set.flows)
        switch.warm()
    return switch


def test_prewarm_before_install_rules_is_safe(workload):
    """Regression: prewarm used to raise AttributeError pre-install."""
    _profile, flow_set, _rules = workload
    system = HaloSystem()
    switch = VirtualSwitch(system, SwitchMode.SOFTWARE)
    assert switch.prewarm_megaflows(flow_set.flows[:50]) == 0


def test_packet_program_advances_engine_in_software_mode(workload):
    _profile, flow_set, rules = workload
    switch = build_switch(rules, flow_set)
    engine = switch.system.engine
    before = engine.now
    record = switch.process_flow(flow_set[0])
    # The whole pipeline is engine-scheduled: elapsed simulated time
    # equals the packet's accounted cycles.
    assert engine.now - before == pytest.approx(record.cycles, rel=1e-12)


def test_halo_fallthrough_books_each_layer_separately(workload):
    """Regression: a MegaFlow miss that falls through to OpenFlow used to
    book the MegaFlow search cycles under openflow_lookup."""
    _profile, flow_set, rules = workload
    # Prewarm only the head of the flow set so later flows miss the
    # megaflow layer but still match an OpenFlow rule.
    switch = build_switch(rules, flow_set, SwitchMode.HALO_NONBLOCKING,
                          prewarm=False)
    switch.prewarm_megaflows(flow_set.flows[:20])
    switch.warm()
    fallthrough = None
    for flow in flow_set.flows[2000:2200]:
        breakdown = Breakdown()
        record = switch.system.engine.run_process(
            switch.packet_program(flow))
        if record.classification.layer is HitLayer.OPENFLOW:
            fallthrough = record
            break
    assert fallthrough is not None, "no openflow fallthrough in sample"
    assert fallthrough.breakdown["megaflow_lookup"] > 0, \
        "megaflow search cycles must stay in megaflow_lookup"
    assert fallthrough.breakdown["openflow_lookup"] > 0
    # And a direct megaflow hit books nothing to the openflow stage.
    hit = switch.process_flow(flow_set[0])
    assert hit.classification.layer is HitLayer.MEGAFLOW
    assert hit.breakdown["openflow_lookup"] == 0


def test_pmd_program_concurrent_with_second_switch(workload):
    """Two PMD loops (one software, one HALO) share one engine timeline."""
    profile, flow_set, rules = workload
    system = HaloSystem()
    software = VirtualSwitch(system, SwitchMode.SOFTWARE, core_id=0,
                             megaflow_tuple_capacity=1 << 14)
    halo = VirtualSwitch(system, SwitchMode.HALO_NONBLOCKING, core_id=1,
                         megaflow_tuple_capacity=1 << 14)
    for switch in (software, halo):
        switch.install_rules(rules)
        switch.prewarm_megaflows(flow_set.flows)
        switch.warm()
    stream = PacketStream(flow_set, zipf_s=profile.zipf_s, seed=9)
    flows = stream.take(30)
    engine = system.engine
    start = engine.now
    processes = [engine.process(software.pmd_program(flows), name="sw"),
                 engine.process(halo.pmd_program(flows), name="halo")]
    engine.run()
    elapsed = engine.now - start
    sw_records, halo_records = (p.result for p in processes)
    assert len(sw_records) == len(halo_records) == 30
    sw_busy = sum(r.cycles for r in sw_records)
    halo_busy = sum(r.cycles for r in halo_records)
    # True concurrency: the wall clock is far less than the serial sum and
    # at least the slower loop's busy time.
    assert elapsed < sw_busy + halo_busy
    assert elapsed >= max(sw_busy, halo_busy) - 1e-9
    assert all(r.classification.hit for r in sw_records)
    assert all(r.classification.hit for r in halo_records)


def test_software_breakdown_unchanged_by_scheduling(workload):
    """Per-stage numbers equal a reference computed from the traced ops
    directly — scheduling through the engine is accounting-neutral."""
    profile, flow_set, rules = workload
    first = build_switch(rules, flow_set)
    second = build_switch(rules, flow_set)
    stream_a = PacketStream(flow_set, zipf_s=profile.zipf_s, seed=11)
    stream_b = PacketStream(flow_set, zipf_s=profile.zipf_s, seed=11)
    for flow_a, flow_b in zip(stream_a.take(25), stream_b.take(25)):
        record_a = first.process_flow(flow_a)
        record_b = second.process_flow(flow_b)
        for stage in ("packet_io", "preprocess", "emc_lookup",
                      "megaflow_lookup", "openflow_lookup", "others"):
            assert record_a.breakdown[stage] == pytest.approx(
                record_b.breakdown[stage], rel=1e-12)
