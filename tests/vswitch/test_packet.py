"""Packets and buffer pools."""

import pytest

from repro.sim import AddressAllocator
from repro.vswitch import BUFFER_STRIDE, Packet, PacketPool
from repro.classifier import make_flow


def make_pool(buffers=8):
    return PacketPool(AddressAllocator(1 << 30), buffers=buffers)


def test_wrap_assigns_buffer():
    pool = make_pool()
    packet = pool.wrap(make_flow(1))
    assert packet.buffer_addr >= pool.region.base
    assert packet.size_bytes == 64
    assert packet.key == make_flow(1).pack()


def test_buffers_recycle_round_robin():
    pool = make_pool(buffers=4)
    addrs = [pool.wrap(make_flow(index)).buffer_addr for index in range(8)]
    assert addrs[0] == addrs[4]
    assert len(set(addrs[:4])) == 4


def test_buffer_stride():
    pool = make_pool(buffers=4)
    a = pool.wrap(make_flow(0)).buffer_addr
    b = pool.wrap(make_flow(1)).buffer_addr
    assert b - a == BUFFER_STRIDE


def test_packet_ids_unique():
    pool = make_pool()
    first = pool.wrap(make_flow(0))
    second = pool.wrap(make_flow(0))
    assert first.packet_id != second.packet_id


def test_header_addr_is_buffer_start():
    pool = make_pool()
    packet = pool.wrap(make_flow(3))
    assert packet.header_addr == packet.buffer_addr


def test_pool_requires_buffers():
    with pytest.raises(ValueError):
        make_pool(buffers=0)
