"""The instrumented virtual switch."""

import pytest

from repro.classifier import HitLayer
from repro.core import HaloSystem
from repro.traffic import FlowSet, PacketStream, TrafficProfile
from repro.vswitch import SwitchMode, VirtualSwitch


@pytest.fixture
def workload():
    profile = TrafficProfile(name="t", description="", num_flows=4000,
                             num_rules=6, zipf_s=0.8)
    flow_set, rules = profile.build()
    return profile, flow_set, rules


def build_switch(rules, flow_set, mode=SwitchMode.SOFTWARE, prewarm=True):
    system = HaloSystem()
    switch = VirtualSwitch(system, mode, megaflow_tuple_capacity=1 << 14)
    switch.install_rules(rules)
    if prewarm:
        switch.prewarm_megaflows(flow_set.flows)
        switch.warm()
    return switch


def test_pipeline_stages_accounted(workload):
    _profile, flow_set, rules = workload
    switch = build_switch(rules, flow_set)
    record = switch.process_flow(flow_set[0])
    for stage in ("packet_io", "preprocess", "others"):
        assert record.breakdown[stage] > 0
    assert record.cycles > 150


def test_classification_matches_rules(workload):
    _profile, flow_set, rules = workload
    switch = build_switch(rules, flow_set)
    for flow in flow_set.flows[:80]:
        record = switch.process_flow(flow)
        assert record.classification.hit
        assert record.classification.rule.matches(flow)


def test_emc_hit_on_repeat(workload):
    _profile, flow_set, rules = workload
    switch = build_switch(rules, flow_set)
    flow = flow_set[0]
    switch.process_flow(flow)
    record = switch.process_flow(flow)
    assert record.classification.layer is HitLayer.EMC


def test_prewarm_populates_megaflow(workload):
    _profile, flow_set, rules = workload
    switch = build_switch(rules, flow_set, prewarm=False)
    installed = switch.prewarm_megaflows(flow_set.flows[:1000])
    assert installed > 0
    record = switch.process_flow(flow_set[0])
    assert record.classification.layer is HitLayer.MEGAFLOW


def test_stats_accumulate(workload):
    profile, flow_set, rules = workload
    switch = build_switch(rules, flow_set)
    stream = PacketStream(flow_set, zipf_s=profile.zipf_s, seed=3)
    stats = switch.process_stream(stream.take(60))
    assert stats.packets == 60
    assert stats.cycles_per_packet > 0
    assert 0.0 < stats.classification_fraction() < 1.0
    assert sum(stats.layer_hits.values()) == 60


def test_halo_modes_classify_identically(workload):
    """Software and HALO pipelines agree on the matched rule."""
    profile, flow_set, rules = workload
    software = build_switch(rules, flow_set, SwitchMode.SOFTWARE)
    halo = build_switch(rules, flow_set, SwitchMode.HALO_NONBLOCKING)
    stream = PacketStream(flow_set, zipf_s=profile.zipf_s, seed=5)
    flows = stream.take(40)
    for flow in flows:
        sw_record = software.process_flow(flow)
        halo_record = halo.process_flow(flow)
        assert halo_record.classification.hit == sw_record.classification.hit
        if sw_record.classification.hit:
            # Both return a rule that matches; ties across layers may pick
            # different-but-equivalent megaflows, so compare the action set.
            assert halo_record.classification.rule.matches(flow)


def test_halo_switch_faster_classification(workload):
    profile, flow_set, rules = workload
    software = build_switch(rules, flow_set, SwitchMode.SOFTWARE)
    halo = build_switch(rules, flow_set, SwitchMode.HALO_NONBLOCKING)
    stream = PacketStream(flow_set, zipf_s=0.2, seed=6)
    flows = stream.take(80)
    software.process_stream(flows)
    halo.process_stream(flows)
    sw_classification = (software.stats.breakdown["emc_lookup"]
                         + software.stats.breakdown["megaflow_lookup"])
    halo_classification = (halo.stats.breakdown["emc_lookup"]
                           + halo.stats.breakdown["megaflow_lookup"])
    assert halo_classification < sw_classification


def test_halo_blocking_mode_runs(workload):
    _profile, flow_set, rules = workload
    switch = build_switch(rules, flow_set, SwitchMode.HALO_BLOCKING)
    record = switch.process_flow(flow_set[1])
    assert record.classification.hit


def test_miss_layer_for_unmatched_flow():
    from repro.classifier import make_flow
    profile = TrafficProfile(name="t", description="", num_flows=100,
                             num_rules=2)
    flow_set, rules = profile.build()
    system = HaloSystem()
    switch = VirtualSwitch(system, SwitchMode.SOFTWARE)
    switch.install_rules(rules[:-1])   # drop the catch-all
    record = switch.process_flow(make_flow(0, group=77))
    assert record.classification.layer is HitLayer.MISS
