"""Packet I/O cost model (DDIO, pre-processing)."""

from repro.classifier import make_flow
from repro.sim import MemoryHierarchy
from repro.vswitch import PMD_RX_TX_CYCLES, PacketIo, PacketPool
from repro.vswitch.pktio import OTHERS_CYCLES, PREPROCESS_CYCLES


def setup(ddio=True):
    hierarchy = MemoryHierarchy()
    pktio = PacketIo(hierarchy, core_id=0, ddio=ddio)
    pool = PacketPool(hierarchy.allocator, buffers=8)
    return hierarchy, pktio, pool


def test_receive_cost_constant():
    _h, pktio, pool = setup()
    packet = pool.wrap(make_flow(1))
    assert pktio.receive(packet) == PMD_RX_TX_CYCLES
    assert pktio.stats.rx_packets == 1


def test_ddio_places_packet_in_llc():
    hierarchy, pktio, pool = setup(ddio=True)
    packet = pool.wrap(make_flow(2))
    pktio.receive(packet)
    line = hierarchy.line_of(packet.buffer_addr)
    slice_id = hierarchy.interconnect.slice_of_line(line)
    assert hierarchy.llc[slice_id].contains(line)


def test_preprocess_cheap_with_ddio():
    """DDIO avoids the DRAM read for the header."""
    hierarchy, pktio, pool = setup(ddio=True)
    packet = pool.wrap(make_flow(3))
    pktio.receive(packet)
    cost = pktio.preprocess(packet)
    assert cost < PREPROCESS_CYCLES + hierarchy.latency.dram / 2
    assert pktio.stats.header_reads_llc == 1


def test_preprocess_expensive_without_ddio():
    hierarchy, pktio, pool = setup(ddio=False)
    packet = pool.wrap(make_flow(4))
    pktio.receive(packet)
    cost = pktio.preprocess(packet)
    assert cost > PREPROCESS_CYCLES + 100
    assert pktio.stats.header_reads_dram == 1


def test_finish_cost():
    _h, pktio, pool = setup()
    assert pktio.finish(pool.wrap(make_flow(5))) == OTHERS_CYCLES
