"""Ablations of the HALO design choices the paper fixes in §4.7.

The paper chose: 10 scoreboard entries, a 10-table metadata cache, one
fully-pipelined hash unit, and one accelerator per LLC slice, noting these
"maintain a decent balance between performance and hardware cost".  These
benches sweep each knob to show the balance point.
"""

from typing import Generator

import numpy as np

from repro.core import HaloSystem
from repro.sim.params import HaloParams, SKYLAKE_SP_16C
from repro.traffic import random_keys

from _common import record_report, run_once

TUPLES = 20
ENTRIES_PER_TUPLE = 1024
PACKETS = 30


def _tss_cycles_per_packet(machine) -> float:
    """HALO-NB tuple space search cost on a given machine config."""
    system = HaloSystem(machine)
    tables = []
    keysets = []
    for index in range(TUPLES):
        table = system.create_table(ENTRIES_PER_TUPLE, name=f"abl{index}")
        keys = random_keys(800, seed=300 + index)
        for position, key in enumerate(keys):
            table.insert(key, position)
        system.warm_table(table)
        tables.append(table)
        keysets.append(keys)
    rng = np.random.default_rng(9)

    def program() -> Generator:
        for _packet in range(PACKETS):
            hit = int(rng.integers(0, TUPLES))
            pending = []
            for index, table in enumerate(tables):
                key = (keysets[index][int(rng.integers(0, 800))]
                       if index == hit else
                       bytes(rng.integers(0, 256, size=16, dtype=np.uint8)))
                process = yield from system.isa.lookup_nb(0, table, key)
                pending.append(process)
            yield from system.isa.snapshot_read_poll(0, pending)
        return []

    start = system.engine.now
    system.engine.run_process(program())
    return (system.engine.now - start) / PACKETS


def _sweep_scoreboard():
    rows = []
    for depth in (1, 2, 5, 10, 20):
        machine = SKYLAKE_SP_16C.scaled(
            halo=HaloParams(scoreboard_entries=depth))
        rows.append((depth, _tss_cycles_per_packet(machine)))
    return rows


def test_ablation_scoreboard_depth(benchmark):
    rows = run_once(benchmark, _sweep_scoreboard)
    lines = ["Ablation — scoreboard depth (TSS-20 NB cycles/packet):"]
    lines += [f"  depth {depth:2d}: {cycles:7.1f}" for depth, cycles in rows]
    lines.append("  paper picks 10: deeper adds little, shallower hurts")
    record_report("ablation_scoreboard", "\n".join(lines))
    by_depth = dict(rows)
    assert by_depth[1] > by_depth[10] * 0.99    # depth 1 no better
    assert by_depth[20] > by_depth[10] * 0.8    # beyond 10: diminishing


def _sweep_accelerator_count():
    rows = []
    for slices in (2, 4, 8, 16):
        machine = SKYLAKE_SP_16C.scaled(llc_slices=slices, cores=slices)
        rows.append((slices, _tss_cycles_per_packet(machine)))
    return rows


def test_ablation_accelerator_count(benchmark):
    rows = run_once(benchmark, _sweep_accelerator_count)
    lines = ["Ablation — accelerators (LLC slices), TSS-20 NB cycles/packet:"]
    lines += [f"  {slices:2d} accelerators: {cycles:7.1f}"
              for slices, cycles in rows]
    lines.append("  distributed design: more accelerators -> more overlap")
    record_report("ablation_accelerators", "\n".join(lines))
    by_count = dict(rows)
    assert by_count[2] > by_count[16]     # scaling with parallelism


def _sweep_metadata_cache():
    rows = []
    for tables in (1, 2, 5, 10):
        machine = SKYLAKE_SP_16C.scaled(
            halo=HaloParams(metadata_cache_tables=tables))
        system = HaloSystem(machine)
        cycles = _metadata_workload(system)
        hits = sum(acc.stats.metadata_hits for acc in system.accelerators)
        misses = sum(acc.stats.metadata_misses
                     for acc in system.accelerators)
        rate = hits / (hits + misses) if hits + misses else 0.0
        rows.append((tables, cycles, rate))
    return rows


def _metadata_workload(system) -> float:
    """Round-robin over 24 tables: stresses the metadata cache."""
    tables = []
    keysets = []
    for index in range(24):
        table = system.create_table(256, name=f"meta{index}")
        keys = random_keys(128, seed=400 + index)
        for position, key in enumerate(keys):
            table.insert(key, position)
        system.warm_table(table)
        tables.append(table)
        keysets.append(keys)

    def program():
        for round_index in range(8):
            for index, table in enumerate(tables):
                yield from system.isa.lookup_b(
                    0, table, keysets[index][round_index])
        return []

    start = system.engine.now
    system.engine.run_process(program())
    return (system.engine.now - start) / (8 * 24)


def test_ablation_metadata_cache_size(benchmark):
    rows = run_once(benchmark, _sweep_metadata_cache)
    lines = ["Ablation — metadata cache capacity "
             "(24-table round robin, LOOKUP_B):"]
    lines += [f"  {tables:2d} tables: {cycles:6.1f} cyc/lookup, "
              f"{rate*100:5.1f}% metadata hits"
              for tables, cycles, rate in rows]
    record_report("ablation_metadata_cache", "\n".join(lines))
    assert rows[-1][2] >= rows[0][2]    # bigger cache, better hit rate


def _sweep_hash_pipeline():
    rows = []
    for interval in (1, 3):
        machine = SKYLAKE_SP_16C.scaled(
            halo=HaloParams(hash_issue_interval=interval))
        rows.append((interval, _tss_cycles_per_packet(machine)))
    return rows


def test_ablation_hash_unit_pipelining(benchmark):
    rows = run_once(benchmark, _sweep_hash_pipeline)
    lines = ["Ablation — hash-unit issue interval (1 = fully pipelined):"]
    lines += [f"  interval {interval}: {cycles:7.1f} cyc/packet"
              for interval, cycles in rows]
    record_report("ablation_hash_pipeline", "\n".join(lines))
    by_interval = dict(rows)
    assert by_interval[3] >= by_interval[1]
