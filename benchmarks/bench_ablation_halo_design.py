"""Ablations of the HALO design choices the paper fixes in §4.7.

The paper chose: 10 scoreboard entries, a 10-table metadata cache, one
fully-pipelined hash unit, and one accelerator per LLC slice, noting these
"maintain a decent balance between performance and hardware cost".  These
sweeps show the balance point for each knob.

Thin wrapper over the ``repro.runner`` registry (experiment
``abl_design``); ``python -m repro bench --only abl_design`` runs the
same grid (one grid point per knob sweep).
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_ablation_halo_design(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "abl_design")
    record_report("ablation_halo_design", report)

    by_depth = dict(payloads["scoreboard"])
    assert by_depth[1] > by_depth[10] * 0.99
    assert by_depth[20] > by_depth[10] * 0.8

    by_count = dict(payloads["accelerators"])
    assert by_count[2] > by_count[16]

    metadata_rows = payloads["metadata_cache"]
    assert metadata_rows[-1][2] >= metadata_rows[0][2]

    by_interval = dict(payloads["hash_pipeline"])
    assert by_interval[3] >= by_interval[1]
