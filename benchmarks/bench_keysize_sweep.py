"""§3.4 — lookup cost across header/key sizes (4-64 B).

The paper profiles hash-table lookups over the typical network-header
sizes; HALO's advantage holds across the range.
"""

from repro.analysis.experiments import keysize_sweep

from _common import record_report, run_once


def test_keysize_sweep(benchmark):
    points = run_once(benchmark, keysize_sweep.run, lookups=200)
    record_report("keysize_sweep", keysize_sweep.report(points))
    assert all(p.speedup > 1.5 for p in points)
    assert points[-1].software_cycles >= points[0].software_cycles
