"""§3.4 — lookup cost across header/key sizes (4-64 B).

The paper profiles hash-table lookups over the typical network-header
sizes; HALO's advantage holds across the range.

Thin wrapper over the ``repro.runner`` registry (experiment ``keysize``);
``python -m repro bench --only keysize`` runs the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_keysize_sweep_speedup(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "keysize")
    record_report("keysize_sweep", report)
    points = list(payloads.values())
    assert all(p.speedup > 1.5 for p in points)
    assert points[-1].software_cycles >= points[0].software_cycles
