"""Cache-management policies under million-flow churn (§3.2 extension).

Sweeps the pluggable EMC policies (random / LRU / second-chance /
correlator) over the three churn scenarios (steady, MMPP high-churn,
duty-cycled SYN flood) and checks the Flow Correlator shape: admission
policies beat plain LRU replacement under attack traffic, while the
default random policy stays bit-identical with the seed EMC.

Thin wrapper over the ``repro.runner`` registry (experiment
``cache_churn``); ``python -m repro bench --only cache_churn`` runs the
same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_cache_churn(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "cache_churn")
    record_report("cache_churn", report)
    cells = {(cell.scenario, cell.policy): cell
             for cell in payloads.values()}
    assert len(cells) == 12
    # Policies evict in place: occupancy never exceeds capacity.
    assert all(cell.emc_occupancy <= cell.emc_entries
               for cell in cells.values())
    # The default policy must not move the baseline (rel=1e-12 pins).
    assert all(cell.default_parity for (_, policy), cell in cells.items()
               if policy == "random")
    # Flood: one-hit wonders are an admission problem — at least one
    # admission-gating policy beats plain LRU replacement.
    flood_lru = cells[("flood", "lru")].emc_miss_rate
    best_admission = min(cells[("flood", "second-chance")].emc_miss_rate,
                         cells[("flood", "correlator")].emc_miss_rate)
    assert best_admission < flood_lru
    # Pure churn without attack traffic still favours recency.
    assert (cells[("churn", "lru")].emc_miss_rate
            < cells[("churn", "random")].emc_miss_rate)
    # The SYN scenario actually floods.
    assert cells[("flood", "lru")].syn_fraction > 0.3
