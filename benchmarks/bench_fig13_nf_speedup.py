"""Figure 13 — hash-table NF throughput gains with HALO.

Paper: NAT, prads, and a hash-based packet filter speed up by 2.3-2.7x.
"""

from repro.analysis.experiments import fig13_nf_speedup

from _common import record_report, run_once


def test_fig13_nf_speedups(benchmark):
    rows = run_once(benchmark, fig13_nf_speedup.run, packets=250)
    record_report("fig13_nf_speedup", fig13_nf_speedup.report(rows))
    assert all(row.speedup > 1.3 for row in rows)
    largest = [max((r for r in rows if r.nf_name == name),
                   key=lambda r: r.table_entries)
               for name in {r.nf_name for r in rows}]
    assert all(1.9 <= row.speedup <= 3.0 for row in largest)
