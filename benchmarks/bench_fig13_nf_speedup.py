"""Figure 13 — hash-table NF throughput gains with HALO.

Paper: NAT, prads, and a hash-based packet filter speed up by 2.3-2.7x.

Thin wrapper over the ``repro.runner`` registry (experiment ``fig13``);
``python -m repro bench --only fig13`` runs the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_fig13_nf_speedup(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "fig13")
    record_report("fig13_nf_speedup", report)
    rows = [row for shard in payloads.values() for row in shard]
    assert all(r.speedup > 1.3 for r in rows)
    for shard in payloads.values():
        largest = max(shard, key=lambda r: r.table_entries)
        assert 1.9 <= largest.speedup <= 3.0
