"""Scale-out law: per-socket HALO vs sharded vswitch cluster (§6 ext.).

When does sharding the flow table across independent single-socket
vswitch instances beat one monolithic vswitch on a multi-socket NUCA
machine?  The sweep measures the crossover and the effect of
skew-triggered RSS rebalancing.

Thin wrapper over the ``repro.runner`` registry (experiment
``scaling_law``); ``python -m repro bench --only scaling_law`` runs the
same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_scaling_law(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "scaling_law")
    record_report("scaling_law", report)
    points = {point.label: point for point in payloads.values()}
    assert (points["shard_2"].throughput_per_kcycle
            > points["mono_2s"].throughput_per_kcycle)
    assert points["mono_2s"].link_crossings > 0
    assert points["skew_4_rebal"].rebalance_moves > 0
    assert (points["skew_4_rebal"].max_shard_fraction
            < points["skew_4"].max_shard_fraction)
