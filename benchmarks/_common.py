"""Shared benchmark utilities.

Every benchmark regenerates one paper table/figure: it runs the experiment
once (``benchmark.pedantic(..., rounds=1)`` — these are simulations, not
micro-benchmarks), prints the paper-vs-measured report, and archives it
under ``benchmarks/reports/``.

Report paths and seeds come from the :mod:`repro.runner` helpers — the
same code path ``python -m repro bench --reports`` and the scheduler use
— so the pytest wrappers can never drift from the CLI on naming, layout,
or per-run seeding.
"""

from __future__ import annotations

import sys

from repro.runner import derive_seed  # noqa: F401  (re-export for wrappers)
from repro.runner.scheduler import archive_report, default_reports_dir

REPORTS_DIR = default_reports_dir()


def record_report(name: str, text: str) -> None:
    """Print a report and archive it for EXPERIMENTS.md."""
    archive_report(name, text, REPORTS_DIR)
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}", file=sys.stderr, flush=True)


def run_once(benchmark, func, *args, **kwargs):
    """Run a whole-experiment function exactly once under the benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
