"""Shared benchmark utilities.

Every benchmark regenerates one paper table/figure: it runs the experiment
once (``benchmark.pedantic(..., rounds=1)`` — these are simulations, not
micro-benchmarks), prints the paper-vs-measured report, and archives it
under ``benchmarks/reports/``.
"""

from __future__ import annotations

import pathlib
import sys

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"


def record_report(name: str, text: str) -> None:
    """Print a report and archive it for EXPERIMENTS.md."""
    REPORTS_DIR.mkdir(exist_ok=True)
    (REPORTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}", file=sys.stderr, flush=True)


def run_once(benchmark, func, *args, **kwargs):
    """Run a whole-experiment function exactly once under the benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
