"""Ablation — how far can *software* prefetch batching go?

The paper's baseline is "highly optimized with software prefetching"
(rte_hash).  This ablation models an idealised ``lookup_bulk`` whose
same-stage misses overlap perfectly up to the MSHRs, and asks what of
HALO's advantage survives:

* pure single-table *throughput*: idealised batching closes most of the
  gap (real DPDK bulk gets part of this);
* *latency* (a packet needs this lookup now): blocking software cannot
  batch — HALO-B keeps its ~3×;
* private-cache pollution (Figure 12), locking (§3.4), and TSS fan-out
  (Figure 11) are untouched by prefetching.
"""

from repro.core import HaloSystem
from repro.traffic import random_keys

from _common import record_report, run_once


def _measure():
    system = HaloSystem()
    table = system.create_table(1 << 16, name="prefetch_ablation")
    keys = random_keys(40_000, seed=21)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    sample = keys[:400]

    serial = system.run_software_lookups(table, sample)
    rows = [("software serial", serial.cycles_per_op)]
    for batch in (2, 4, 8, 16):
        engine = system.software_engine()
        _values, cycles = engine.lookup_bulk(table, sample, batch=batch)
        rows.append((f"software bulk x{batch}", cycles / len(sample)))
    blocking = system.run_blocking_lookups(table, sample)
    rows.append(("HALO LOOKUP_B", blocking.cycles_per_op))
    nonblocking = system.run_nonblocking_lookups(table, sample)
    rows.append(("HALO LOOKUP_NB", nonblocking.cycles_per_op))
    return rows


def test_ablation_software_prefetch_batching(benchmark):
    rows = run_once(benchmark, _measure)
    lines = ["Ablation — software prefetch batching vs HALO "
             "(cycles/lookup, LLC-resident table):"]
    lines += [f"  {name:20s} {cycles:7.1f}" for name, cycles in rows]
    lines.append("  idealised bulk batching approaches HALO's throughput;")
    lines.append("  HALO's remaining edge: latency, zero private-cache")
    lines.append("  pollution (Fig.12), no locking (§3.4), TSS fan-out "
                 "(Fig.11)")
    record_report("ablation_software_prefetch", "\n".join(lines))
    by_name = dict(rows)
    assert by_name["software bulk x8"] < by_name["software serial"]
    assert by_name["HALO LOOKUP_B"] < by_name["software serial"] / 2
