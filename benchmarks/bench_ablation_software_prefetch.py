"""Ablation — how far can *software* prefetch batching go?

The paper's baseline is "highly optimized with software prefetching"
(rte_hash).  This ablation models an idealised ``lookup_bulk`` whose
same-stage misses overlap perfectly up to the MSHRs, and asks what of
HALO's advantage survives idealised batching.

Thin wrapper over the ``repro.runner`` registry (experiment
``abl_prefetch``); ``python -m repro bench --only abl_prefetch`` runs
the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_ablation_software_prefetch(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "abl_prefetch")
    record_report("ablation_software_prefetch", report)
    costs = dict(payloads["default"])
    serial = costs["software serial"]
    assert costs["software bulk x8"] < serial
    assert costs["HALO LOOKUP_B"] < serial / 2
