"""Chaos-tested cluster failover: shard kills, RSS re-steering, zero
lost flows (§4.4 extension, scale-out degradation).

Kills 1..3 of 4 shards through a seeded ``ShardFaultPlan`` while
``run_cluster(failover=True)`` detects each death through the
supervised pool's failure-classification seam, re-steers the victims'
RSS indirection-table entries, and replays their flow substreams
through the survivors.  Checks the self-healing shape: failover is free
when nothing fails, no flow is ever lost, recovered-flow p99 degrades
monotonically (bounded by dead-shards × detection epochs + one
makespan), correlator admission beats LRU on the survivors' cold-cache
refill, and the whole chaos schedule replays bit-identically from its
seed.

Thin wrapper over the ``repro.runner`` registry (experiment
``cluster_chaos``); ``python -m repro bench --only cluster_chaos`` runs
the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_cluster_chaos(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "cluster_chaos")
    record_report("cluster_chaos", report)
    points = {point.label: point for point in payloads.values()}

    # Failover mode is free when nothing fails: the kill_00 point runs
    # a same-seed plain baseline internally and records the worst
    # relative diff (exact parity in practice).
    assert points["kill_00"].parity_rel <= 1e-12

    kills = [points[name] for name in ("kill_00", "kill_02", "kill_04",
                                       "kill_07")]
    # The kill sets nest and actually grow with the rate.
    assert [p.failed_shards for p in kills] == [0, 1, 2, 3]
    # Zero lost flows at every kill rate — the tentpole claim.
    assert all(p.lost_flows == 0 for p in kills)
    assert all(p.recovery_lookups > 0 for p in kills if p.failed_shards)
    # p99 degradation is monotone in the kill rate and bounded by one
    # detection epoch per dead shard plus a makespan.
    p99s = [p.p99_cycles for p in kills]
    assert p99s == sorted(p99s)
    assert all(p.p99_cycles <= p.failed_shards * p.detection_cycles
               + p.makespan_cycles for p in kills)
    # Admission filtering protects the survivors' cold caches.
    assert (points["cold_corr"].cold_miss_rate
            < points["cold_lru"].cold_miss_rate)
    # Same seed, same chaos, bit-identical results.
    assert points["determinism"].bit_identical
