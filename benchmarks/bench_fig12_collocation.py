"""Figure 12 — interference on collocated network functions.

Paper: the software switch drops ACL/Snort/mTCP throughput 17-26% via L1D
pollution; the HALO switch costs them < 3.2%.
"""

from repro.analysis.experiments import fig12_collocation
from repro.vswitch import SwitchMode

from _common import record_report, run_once


def test_fig12_collocated_nf_interference(benchmark):
    results = run_once(benchmark, fig12_collocation.run,
                       flow_counts=(1_000, 50_000), packets=350, warmup=350)
    record_report("fig12_collocation", fig12_collocation.report(results))
    software = [r for r in results if r.switch_mode is SwitchMode.SOFTWARE]
    halo = [r for r in results if r.switch_mode is not SwitchMode.SOFTWARE]
    assert max(r.throughput_drop for r in software) > 0.08
    assert max(r.throughput_drop for r in halo) < 0.05
    assert all(r.l1_miss_increase > 0.05 for r in software)
