"""Figure 12 — interference on collocated network functions.

Paper: the software switch drops ACL/Snort/mTCP throughput 17-26% via L1D
pollution; the HALO switch costs them < 3.2%.

Thin wrapper over the ``repro.runner`` registry (experiment ``fig12``);
``python -m repro bench --only fig12`` runs the same grid.
"""

from repro.runner import run_for_bench
from repro.vswitch import SwitchMode

from _common import record_report, run_once


def test_fig12_collocation_interference(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "fig12")
    record_report("fig12_collocation", report)
    rows = [row for shard in payloads.values() for row in shard]
    software = [r for r in rows if r.switch_mode is SwitchMode.SOFTWARE]
    halo = [r for r in rows if r.switch_mode is not SwitchMode.SOFTWARE]
    assert max(r.throughput_drop for r in software) > 0.08
    assert max(r.throughput_drop for r in halo) < 0.05
    assert all(r.l1_miss_increase > 0.05 for r in software)
