"""Figure 10 — per-lookup latency breakdown (compute/data access/locking).

Paper: HALO's near-data access is 4.1x faster than a core's when the entry
is in LLC and 1.6x when in DRAM; hardware lock bits remove the software
locking component entirely.

Thin wrapper over the ``repro.runner`` registry (experiment ``fig10``);
``python -m repro bench --only fig10`` runs the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_fig10_lookup_latency_breakdown(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "fig10")
    record_report("fig10_latency_breakdown", report)
    cells = payloads["default"]
    llc_ratio = (cells["llc/software"].breakdown["memory"]
                 / cells["llc/halo"].breakdown["memory"])
    dram_ratio = (cells["dram/software"].breakdown["memory"]
                  / cells["dram/halo"].breakdown["memory"])
    assert 2.8 <= llc_ratio <= 5.5     # paper: 4.1x
    assert 1.2 <= dram_ratio <= 2.2    # paper: 1.6x
    assert cells["llc/halo"].breakdown["locking"] == 0.0
