"""Multi-core switch scaling (§3.4 motivation / §4.1 design goal 2).

HALO's distributed per-CHA accelerators must not become a centralised
bottleneck as PMD cores scale.
"""

from repro.analysis.experiments import multicore_scaling

from _common import record_report, run_once


def test_multicore_switch_scaling(benchmark):
    points = run_once(benchmark, multicore_scaling.run,
                      core_counts=(1, 2, 4, 8), packets_per_core=20)
    record_report("multicore_scaling", multicore_scaling.report(points))
    base, last = points[0], points[-1]
    assert all(p.halo_speedup > 2.0 for p in points)
    assert (last.halo_packets_per_kcycle
            > base.halo_packets_per_kcycle * last.cores * 0.4)
