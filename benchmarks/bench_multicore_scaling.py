"""Multi-core switch scaling (§3.4 motivation / §4.1 design goal 2).

HALO's distributed per-CHA accelerators must not become a centralised
bottleneck as PMD cores scale.

Thin wrapper over the ``repro.runner`` registry (experiment ``multicore``);
``python -m repro bench --only multicore`` runs the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_multicore_scaling(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "multicore")
    record_report("multicore_scaling", report)
    points = list(payloads.values())
    assert all(p.halo_speedup > 2.0 for p in points)
    base = points[0].halo_packets_per_kcycle
    last = points[-1]
    assert last.halo_packets_per_kcycle > base * last.cores * 0.4
