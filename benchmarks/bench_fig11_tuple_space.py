"""Figure 11 — tuple space search scaling with tuple count.

Paper: HALO non-blocking scales TSS up to 23.4x at 20 tuples; blocking
mode is limited; TCAM-class devices stay flat and fastest.
"""

from repro.analysis.experiments import fig11_tuple_space

from _common import record_report, run_once


def test_fig11_tuple_space_scaling(benchmark):
    points = run_once(benchmark, fig11_tuple_space.run,
                      tuple_counts=(5, 10, 15, 20), packets=40)
    record_report("fig11_tuple_space", fig11_tuple_space.report(points))
    last = points[-1].normalized_throughput()
    first = points[0].normalized_throughput()
    assert last["halo-nb"] >= 14.0          # paper: up to 23.4x
    assert last["halo-nb"] > first["halo-nb"] * 1.5
    assert last["halo-b"] < 5.0             # blocking mode limited
