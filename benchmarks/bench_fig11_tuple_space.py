"""Figure 11 — tuple space search scaling with tuple count.

Paper: HALO non-blocking scales TSS up to 23.4x at 20 tuples; blocking
mode is limited; TCAM-class devices stay flat and fastest.

Thin wrapper over the ``repro.runner`` registry (experiment ``fig11``);
``python -m repro bench --only fig11`` runs the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_fig11_tuple_space_scaling(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "fig11")
    record_report("fig11_tuple_space", report)
    points = list(payloads.values())
    last = points[-1].normalized_throughput()
    first = points[0].normalized_throughput()
    assert last["halo-nb"] >= 14.0          # paper: up to 23.4x
    assert last["halo-nb"] > first["halo-nb"] * 1.5
    assert last["halo-b"] < 5.0             # blocking mode limited
