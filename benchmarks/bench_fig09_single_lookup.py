"""Figure 9 — single hash-table lookup throughput (size + occupancy sweeps).

Paper: HALO up to 3.3x over software for LLC-resident tables (2.1x beyond
LLC); TCAM-class devices fastest; software wins only at tiny (L1-resident)
tables; blocking vs non-blocking within ~5% on one table.
"""

from repro.analysis.experiments import fig09_single_lookup

from _common import record_report, run_once


def _run_both():
    sizes = fig09_single_lookup.run_size_sweep(
        sizes=(2 ** 3, 2 ** 6, 2 ** 9, 2 ** 12, 2 ** 15, 2 ** 18),
        lookups=300)
    occupancy = fig09_single_lookup.run_occupancy_sweep(
        table_entries=2 ** 15, lookups=250)
    return sizes, occupancy


def test_fig09_single_lookup_throughput(benchmark):
    sizes, occupancy = run_once(benchmark, _run_both)
    record_report("fig09_single_lookup",
                  fig09_single_lookup.report(sizes, occupancy))
    largest = sizes[-1].normalized_throughput()
    smallest = sizes[0].normalized_throughput()
    assert 2.3 <= largest["halo-b"] <= 4.3
    assert smallest["halo-b"] <= 1.1      # software wins at tiny tables
    assert largest["tcam"] > largest["halo-nb"]


def test_fig09_dram_resident_point(benchmark):
    """The beyond-LLC regime: paper reports ~2.1x average."""
    point = run_once(benchmark, fig09_single_lookup.run_point,
                     2 ** 16, 0.5, 200, 8, True)
    normalized = point.normalized_throughput()
    record_report("fig09_dram_point",
                  f"Figure 9 (DRAM-resident table): HALO-B "
                  f"{normalized['halo-b']:.2f}x, HALO-NB "
                  f"{normalized['halo-nb']:.2f}x vs software "
                  f"(paper: ~2.1x average beyond LLC)")
    assert 1.3 <= normalized["halo-b"] <= 3.0
