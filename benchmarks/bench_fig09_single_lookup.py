"""Figure 9 — single hash-table lookup throughput (size + occupancy sweeps).

Paper: HALO up to 3.3x over software for LLC-resident tables (2.1x beyond
LLC); TCAM-class devices fastest; software wins only at tiny (L1-resident)
tables; blocking vs non-blocking within ~5% on one table.

Thin wrapper over the ``repro.runner`` registry (experiment ``fig09``:
per-size shards plus occupancy and DRAM-resident points);
``python -m repro bench --only fig09`` runs the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_fig09_single_lookup_throughput(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "fig09")
    record_report("fig09_single_lookup", report)

    largest = payloads["size_2e18"].normalized_throughput()
    smallest = payloads["size_2e03"].normalized_throughput()
    assert 2.3 <= largest["halo-b"] <= 4.3
    assert smallest["halo-b"] <= 1.1      # software wins at tiny tables
    assert largest["tcam"] > largest["halo-nb"]

    # The beyond-LLC regime: paper reports ~2.1x average.
    dram = payloads["dram_point"].normalized_throughput()
    assert 1.3 <= dram["halo-b"] <= 3.0
