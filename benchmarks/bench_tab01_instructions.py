"""Table 1 / §3.4 — per-lookup instruction profile and locking overhead.

Paper: ~210 instructions/lookup (48.1% memory, 21.0% arithmetic, 30.9%
other); optimistic locking costs 13.1% of execution time.
"""

from repro.analysis.experiments import tab01_instructions

from _common import record_report, run_once


def test_tab01_lookup_instruction_profile(benchmark):
    result = run_once(benchmark, tab01_instructions.run,
                      lookups=600, table_entries=1 << 16)
    record_report("tab01_instructions", tab01_instructions.report(result))
    assert abs(result.instructions_per_lookup - 210) < 25
    assert abs(result.memory_fraction - 0.481) < 0.03
    assert abs(result.locking_share - 0.131) < 0.05
