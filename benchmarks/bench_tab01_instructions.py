"""Table 1 / §3.4 — per-lookup instruction profile and locking overhead.

Paper: ~210 instructions/lookup (48.1% memory, 21.0% arithmetic, 30.9%
other); optimistic locking costs 13.1% of execution time.

Thin wrapper over the ``repro.runner`` registry (experiment ``tab01``);
``python -m repro bench --only tab01`` runs the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_tab01_lookup_instruction_profile(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "tab01")
    record_report("tab01_instructions", report)
    result = payloads["default"]
    assert abs(result.instructions_per_lookup - 210) < 25
    assert abs(result.memory_fraction - 0.481) < 0.03
    assert abs(result.locking_share - 0.131) < 0.05
