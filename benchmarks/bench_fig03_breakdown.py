"""Figure 3 — per-packet cycle breakdown of software packet processing.

Paper: 340-993 cycles/packet across five traffic configurations; flow
classification grows from 30.9% to 77.8% of the total, dominated by
MegaFlow tuple-space lookups.
"""

from repro.analysis.experiments import fig03_breakdown

from _common import record_report, run_once


def test_fig03_packet_processing_breakdown(benchmark):
    rows = run_once(benchmark, fig03_breakdown.run,
                    max_flows=60_000, packets=1_500, warmup=500)
    record_report("fig03_breakdown", fig03_breakdown.report(rows))
    assert rows[-1].cycles_per_packet > rows[0].cycles_per_packet
    assert rows[-1].classification_fraction > rows[0].classification_fraction
