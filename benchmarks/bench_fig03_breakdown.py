"""Figure 3 — per-packet cycle breakdown of software packet processing.

Paper: 340-993 cycles/packet across five traffic configurations; flow
classification grows from 30.9% to 77.8% of the total, dominated by
MegaFlow tuple-space lookups.

Thin wrapper over the ``repro.runner`` registry (experiment ``fig03``);
``python -m repro bench --only fig03`` runs the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_fig03_packet_processing_breakdown(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "fig03")
    record_report("fig03_breakdown", report)
    rows = list(payloads.values())
    assert rows[-1].cycles_per_packet > rows[0].cycles_per_packet
    assert rows[-1].classification_fraction > rows[0].classification_fraction
