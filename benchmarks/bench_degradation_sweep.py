"""Graceful degradation under injected hardware faults (§6 extension).

Sweeps the machine-wide fault-intensity mix over every lookup backend and
checks that throughput degrades monotonically while the resilience
policies keep every lookup answered.

Thin wrapper over the ``repro.runner`` registry (experiment
``degradation``); ``python -m repro bench --only degradation`` runs the
same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_degradation_sweep(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "degradation")
    record_report("degradation_sweep", report)
    points = sorted(payloads.values(), key=lambda p: p.intensity)
    assert points[0].intensity == 0.0
    for point in points:
        assert all(cell.wrong_results == 0
                   for cell in point.cells.values())
    healthy = points[0].cells["adaptive"].lookups_per_kcycle
    worst = points[-1].cells["adaptive"].lookups_per_kcycle
    assert worst < healthy, "max fault intensity must cost throughput"
    for kind in ("software", "halo-b", "halo-nb", "adaptive"):
        series = [point.cells[kind].lookups_per_kcycle for point in points]
        assert all(cur <= prev * 1.01
                   for prev, cur in zip(series, series[1:])), \
            f"{kind} throughput is not monotone non-increasing: {series}"
