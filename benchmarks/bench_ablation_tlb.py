"""Ablation — page size / TLB reach (why DPDK tables live on hugepages).

The paper's baseline uses contiguous (hugepage) table memory.  This
ablation turns the D-TLB model on and compares 4 KB pages, 2 MB
hugepages, and perfect translation for the same LLC-resident table.
HALO is immune either way: the accelerator's accesses carry
already-translated addresses.
"""

from repro.core import HaloSystem
from repro.sim import SKYLAKE_SP_16C, TlbParams
from repro.traffic import random_keys

from _common import record_report, run_once


def _measure():
    rows = []
    for name, tlb in (("perfect (paper default)", None),
                      ("2MB hugepages (DPDK)", TlbParams.hugepages()),
                      ("4KB pages", TlbParams.small_pages())):
        system = HaloSystem(SKYLAKE_SP_16C.scaled(tlb=tlb))
        table = system.create_table(1 << 16, name="tlb_abl")
        keys = random_keys(40_000, seed=31)
        for index, key in enumerate(keys):
            table.insert(key, index)
        system.warm_table(table)
        system.hierarchy.flush_private(0)
        software = system.run_software_lookups(table, keys[:250])
        halo = system.run_blocking_lookups(table, keys[250:500])
        miss_rate = (system.hierarchy.tlbs[0].stats.miss_rate
                     if system.hierarchy.tlbs else 0.0)
        rows.append((name, software.cycles_per_op, halo.cycles_per_op,
                     miss_rate))
    return rows


def test_ablation_tlb_page_size(benchmark):
    rows = run_once(benchmark, _measure)
    lines = ["Ablation — D-TLB page size (software vs HALO cyc/lookup):"]
    lines += [f"  {name:24s} sw {software:6.1f}  halo {halo:5.1f}  "
              f"(TLB miss {miss:.1%})"
              for name, software, halo, miss in rows]
    lines.append("  hugepages make translation free; HALO is immune "
                 "either way")
    record_report("ablation_tlb", "\n".join(lines))
    by_name = {name: software for name, software, _h, _m in rows}
    assert by_name["4KB pages"] > by_name["2MB hugepages (DPDK)"] * 1.1
    halo_costs = [halo for _n, _s, halo, _m in rows]
    assert max(halo_costs) - min(halo_costs) < 5.0
