"""Ablation — page size / TLB reach (why DPDK tables live on hugepages).

The paper's baseline uses contiguous (hugepage) table memory.  This
ablation turns the D-TLB model on and compares 4 KB pages, 2 MB
hugepages, and perfect translation for the same LLC-resident table.
HALO carries already-translated addresses (§4.2) and is immune.

Thin wrapper over the ``repro.runner`` registry (experiment ``abl_tlb``);
``python -m repro bench --only abl_tlb`` runs the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_ablation_tlb_page_size(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "abl_tlb")
    record_report("ablation_tlb", report)
    rows = payloads["default"]
    software_by_name = {name: software for name, software, _halo, _m in rows}
    assert (software_by_name["4KB pages"]
            > software_by_name["2MB hugepages (DPDK)"] * 1.1)
    halo_costs = [halo for _name, _software, halo, _miss in rows]
    assert max(halo_costs) - min(halo_costs) < 5.0
