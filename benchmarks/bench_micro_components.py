"""Micro-benchmarks of the library's own hot components (wall-clock).

Unlike the figure/table benches (whole simulations run once), these use
pytest-benchmark's statistical timing on the data structures a downstream
user calls in a loop: hashing, cuckoo operations, classification, the DES
engine, and cache accesses.
"""

import numpy as np
import pytest

from repro.classifier import Action, FlowMask, OvsDatapath, make_flow, rule_for_flow
from repro.hashtable import CuckooHashTable, hash_bytes
from repro.sim import Engine, MemoryHierarchy
from repro.traffic import random_keys


@pytest.fixture(scope="module")
def table():
    table = CuckooHashTable(1 << 14)
    keys = random_keys(10_000, seed=1)
    for index, key in enumerate(keys):
        table.insert(key, index)
    return table, keys


def test_perf_hash_bytes(benchmark):
    key = b"0123456789abcdef"
    benchmark(hash_bytes, key)


def test_perf_cuckoo_lookup_hit(benchmark, table):
    cuckoo, keys = table
    benchmark(cuckoo.lookup, keys[1234])


def test_perf_cuckoo_lookup_miss(benchmark, table):
    cuckoo, _keys = table
    missing = random_keys(1, seed=777)[0]
    benchmark(cuckoo.lookup, missing)


def test_perf_cuckoo_insert_delete(benchmark, table):
    cuckoo, _keys = table
    fresh = random_keys(1, seed=888)[0]

    def insert_then_delete():
        cuckoo.insert(fresh, 0)
        cuckoo.delete(fresh)

    benchmark(insert_then_delete)


def test_perf_datapath_classify(benchmark):
    datapath = OvsDatapath()
    mask = FlowMask.prefixes(dst_prefix=16, src_prefix=0,
                             src_port=False, dst_port=False)
    for group in range(8):
        datapath.install_rule(rule_for_flow(make_flow(0, group=group),
                                            Action.output(group), mask))
    flows = [make_flow(index, group=index % 8) for index in range(512)]
    for flow in flows:
        datapath.classify(flow)   # warm the caches
    state = {"i": 0}

    def classify_next():
        state["i"] = (state["i"] + 1) % len(flows)
        return datapath.classify(flows[state["i"]])

    benchmark(classify_next)


def test_perf_engine_event_throughput(benchmark):
    def run_events():
        engine = Engine()

        def ticker():
            for _ in range(1000):
                yield engine.timeout(1)

        engine.process(ticker())
        engine.run()

    benchmark(run_events)


def test_perf_hierarchy_access(benchmark):
    hierarchy = MemoryHierarchy()
    addrs = [int(a) * 64 for a in
             np.random.default_rng(3).integers(0, 1 << 18, size=256)]
    state = {"i": 0}

    def access_next():
        state["i"] = (state["i"] + 1) % len(addrs)
        return hierarchy.core_access(0, addrs[state["i"]])

    benchmark(access_next)
