"""Figure 8b — linear-counting flow-register accuracy.

Paper: a register accurately estimates ~2x more flows than it has bits;
32 bits suffice for the 64-flow hybrid-mode threshold.

Thin wrapper over the ``repro.runner`` registry (experiment ``fig08``);
``python -m repro bench --only fig08`` runs the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_fig08_flow_register_accuracy(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "fig08")
    record_report("fig08_flow_register", report)
    points = payloads["default"]
    at_2x = [p for p in points if p.true_flows == 2 * p.bits]
    assert sum(p.relative_error for p in at_2x) / len(at_2x) < 0.25
