"""Figure 8b — linear-counting flow-register accuracy.

Paper: a register accurately estimates ~2x more flows than it has bits;
32 bits suffice for the 64-flow hybrid-mode threshold.
"""

from repro.analysis.experiments import fig08_flow_register

from _common import record_report, run_once


def test_fig08_flow_register_accuracy(benchmark):
    points = run_once(benchmark, fig08_flow_register.run,
                      bit_sizes=(8, 16, 32, 64, 128, 256), trials=25)
    record_report("fig08_flow_register",
                  fig08_flow_register.report(points))
    at_2x = [p for p in points if p.true_flows == 2 * p.bits]
    assert sum(p.relative_error for p in at_2x) / len(at_2x) < 0.25
