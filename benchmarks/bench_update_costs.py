"""Rule-update cost: cuckoo vs TCAM (paper refs [67], §2.2).

Completes the TCAM comparison: Table 4 covers power, Figure 9 covers
lookup latency, and this bench covers the update side the paper argues
makes TCAM "expensive and inflexible".
"""

from repro.analysis.experiments import updates_comparison

from _common import record_report, run_once


def test_update_cost_cuckoo_vs_tcam(benchmark):
    result = run_once(benchmark, updates_comparison.run, updates=2_000)
    record_report("update_costs", updates_comparison.report(result))
    assert result.tcam_mean_cycles > result.cuckoo_mean_cycles
    assert result.cuckoo_kicks_per_insert < 2.0
    assert result.tcam_p99_cycles > result.cuckoo_p99_cycles
