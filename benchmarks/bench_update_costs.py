"""Rule-update cost: cuckoo vs TCAM (paper refs [67], §2.2).

Completes the TCAM comparison: Table 4 covers power, Figure 9 covers
lookup latency, and this bench covers the update side the paper argues
makes TCAM "expensive and inflexible".

Thin wrapper over the ``repro.runner`` registry (experiment ``updates``);
``python -m repro bench --only updates`` runs the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_update_costs(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "updates")
    record_report("update_costs", report)
    result = payloads["default"]
    assert result.tcam_mean_cycles > result.cuckoo_mean_cycles
    assert result.cuckoo_kicks_per_insert < 2.0
    assert result.tcam_p99_cycles > result.cuckoo_p99_cycles
