"""§3.4 — concurrency overhead on shared flow tables.

Paper: the optimistic-locking scheme costs 13.1% of execution time, and
concurrent cuckoo moves force reader retries; HALO's hardware lock bits
remove both.
"""

from repro.analysis.experiments import sec34_concurrency

from _common import record_report, run_once


def test_sec34_shared_table_concurrency(benchmark):
    result = run_once(benchmark, sec34_concurrency.run,
                      table_entries=1 << 14, lookups=400)
    record_report("sec34_concurrency", sec34_concurrency.report(result))
    assert 0.08 <= result.software_lock_share <= 0.25
    software_overhead = (result.software_cycles_contended
                         / result.software_cycles_idle - 1)
    halo_overhead = (result.halo_cycles_contended
                     / result.halo_cycles_idle - 1)
    assert software_overhead > 0.02
    assert halo_overhead < software_overhead / 2
