"""§3.4 — concurrency overhead on shared flow tables.

Paper: the optimistic-locking scheme costs 13.1% of execution time, and
concurrent cuckoo moves force reader retries; HALO's hardware lock bits
remove both.

Thin wrapper over the ``repro.runner`` registry (experiment ``sec34``);
``python -m repro bench --only sec34`` runs the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_sec34_shared_table_concurrency(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "sec34")
    record_report("sec34_concurrency", report)
    result = payloads["default"]
    assert 0.08 <= result.software_lock_share <= 0.25
    software_overhead = (result.software_cycles_contended
                         / result.software_cycles_idle - 1)
    halo_overhead = (result.halo_cycles_contended
                     / result.halo_cycles_idle - 1)
    assert software_overhead > 0.02
    assert halo_overhead < software_overhead / 2
