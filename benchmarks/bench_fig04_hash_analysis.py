"""Figure 4 — cuckoo vs single-function hash: cache behaviour.

Paper: cuckoo sustains ~95% occupancy and stays LLC-resident to millions of
flows; SFH (~20% occupancy) starts missing the LLC at ~100K flows,
stalling the CPU.

Thin wrapper over the ``repro.runner`` registry (experiment ``fig04``);
``python -m repro bench --only fig04`` runs the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_fig04_hash_table_cache_behaviour(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "fig04")
    record_report("fig04_hash_analysis", report)
    rows = [row for shard in payloads.values() for row in shard]
    biggest = max(r.num_flows for r in rows)
    cuckoo = next(r for r in rows
                  if r.table_kind == "cuckoo" and r.num_flows == biggest)
    sfh = next(r for r in rows
               if r.table_kind == "sfh" and r.num_flows == biggest)
    assert sfh.llc_mpkl > cuckoo.llc_mpkl
    assert sfh.stall_fraction > cuckoo.stall_fraction
