"""Figure 4 — cuckoo vs single-function hash: cache behaviour.

Paper: cuckoo sustains ~95% occupancy and stays LLC-resident to millions of
flows; SFH (~20% occupancy) starts missing the LLC at ~100K flows,
stalling the CPU.
"""

from repro.analysis.experiments import fig04_hash

from _common import record_report, run_once


def test_fig04_hash_table_cache_behaviour(benchmark):
    rows = run_once(benchmark, fig04_hash.run,
                    flow_counts=(1_000, 10_000, 100_000, 400_000),
                    lookups=1_200)
    record_report("fig04_hash_analysis", fig04_hash.report(rows))
    biggest = max(r.num_flows for r in rows)
    cuckoo = next(r for r in rows
                  if r.table_kind == "cuckoo" and r.num_flows == biggest)
    sfh = next(r for r in rows
               if r.table_kind == "sfh" and r.num_flows == biggest)
    assert sfh.llc_mpkl > cuckoo.llc_mpkl
    assert sfh.stall_fraction > cuckoo.stall_fraction
