"""Table 4 — power and area of hardware flow-classification solutions.

Paper: TCAM 1KB-1MB explodes in cost with capacity; one HALO accelerator
costs 0.012 tiles / 97.2 mW / 1.76 nJ per query and is up to 48.2x more
energy-efficient than TCAM.

Thin wrapper over the ``repro.runner`` registry (experiment ``tab04``);
``python -m repro bench --only tab04`` runs the same grid.
"""

from repro.runner import run_for_bench

from _common import record_report, run_once


def test_tab04_power_and_area(benchmark):
    payloads, report = run_once(benchmark, run_for_bench, "tab04")
    record_report("tab04_power_area", report)
    result = payloads["default"]
    assert abs(result.efficiency_vs_1mb_tcam - 48.2) < 0.1
    assert result.halo.area_tiles == 0.012
