"""Table 4 — power and area of hardware flow-classification solutions.

Paper: TCAM 1KB-1MB explodes in cost with capacity; one HALO accelerator
costs 0.012 tiles / 97.2 mW / 1.76 nJ per query and is up to 48.2x more
energy-efficient than TCAM.
"""

import pytest

from repro.analysis.experiments import tab04_power

from _common import record_report, run_once


def test_tab04_power_and_area(benchmark):
    result = run_once(benchmark, tab04_power.run)
    record_report("tab04_power_area", tab04_power.report(result))
    assert result.efficiency_vs_1mb_tcam == pytest.approx(48.2, abs=0.1)
    assert result.halo.area_tiles == 0.012
