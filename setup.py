"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on this box lacks ``wheel`` (offline), so the PEP 660
editable path cannot build; this shim lets the legacy ``setup.py develop``
path (``pip install -e . --no-use-pep517 --no-build-isolation``) work.
Metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
