"""NAT — DPDK-based network address translation (paper Table 3).

An exact-match hash table maps (LAN IP, LAN port) to (WAN IP, WAN port).
The paper evaluates 1K / 10K / 100K translation entries; HALO speeds the
per-packet translation lookup, yielding a ~2.3-2.7× end-to-end gain
(Figure 13).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable

from ..classifier.flow import FiveTuple
from ..core.halo_system import HaloSystem
from ..sim.trace import InstructionMix
from .hash_nf import HashTableNetworkFunction

#: Table sizes the paper evaluates.
NAT_TABLE_SIZES = (1_000, 10_000, 100_000)

#: Cycles to rewrite the header and fix the checksum after a translation.
HEADER_REWRITE_CYCLES = 12.0


@dataclass(frozen=True)
class Translation:
    """One NAT binding."""

    wan_ip: int
    wan_port: int


class NatFunction(HashTableNetworkFunction):
    """Exact-match source NAT."""

    MIX = InstructionMix(loads=16, stores=8, arithmetic=14, others=14)

    def __init__(self, system: HaloSystem, table_entries: int = 10_000,
                 core_id: int = 0, use_halo: bool = False,
                 seed: int = 101) -> None:
        super().__init__(system, table_entries, core_id=core_id,
                         use_halo=use_halo, name="nat", seed=seed)

    def key_of(self, flow: FiveTuple) -> bytes:
        """NAT keys on the LAN-side (source) endpoint plus protocol."""
        return struct.pack("<IHB9x", flow.src_ip, flow.src_port, flow.proto)

    def add_binding(self, flow: FiveTuple, translation: Translation) -> None:
        if not self.table.insert(self.key_of(flow), translation):
            raise RuntimeError("NAT table full")

    def populate_from_flows(self, flows: Iterable[FiveTuple]) -> int:
        """One binding per distinct LAN endpoint, up to table capacity."""
        installed = 0
        seen = set()
        for flow in flows:
            key = self.key_of(flow)
            if key in seen:
                continue
            seen.add(key)
            translation = Translation(
                wan_ip=(203 << 24) | (installed & 0xFFFF),
                wan_port=20_000 + (installed % 40_000))
            if not self.table.insert(key, translation):
                break
            installed += 1
        self.system.warm_table(self.table)
        return installed

    def on_hit(self, flow: FiveTuple, value: Translation) -> float:
        return HEADER_REWRITE_CYCLES

    def on_miss(self, flow: FiveTuple) -> float:
        # Slow path: allocate a new binding (bounded so streams with many
        # novel endpoints do not overflow the table mid-measurement).
        if len(self.table) < self.table.capacity * 0.9:
            translation = Translation(
                wan_ip=(203 << 24) | (len(self.table) & 0xFFFF),
                wan_port=20_000 + (len(self.table) % 40_000))
            self.table.insert(self.key_of(flow), translation)
            return HEADER_REWRITE_CYCLES * 3
        return HEADER_REWRITE_CYCLES
