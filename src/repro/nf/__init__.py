"""Network functions (paper Table 3): collocation workloads (ACL, Snort,
mTCP) and hash-table-bound services HALO accelerates (NAT, prads, filter)."""

from .acl import AclFunction, AclRule, DEFAULT_ACL_RULES
from .base import NetworkFunction, NfStats, WorkingSet
from .hash_nf import HashTableNetworkFunction
from .ids import DEFAULT_PATTERNS, IdsFunction, PatternAutomaton
from .kvstore import KeyValueStore, KvStats
from .nat import NAT_TABLE_SIZES, NatFunction, Translation
from .packet_filter import FILTER_RULE_SIZES, FilterVerdict, PacketFilterFunction
from .prads import AssetRecord, PRADS_TABLE_SIZES, PradsFunction
from .tcpstack import ConnectionBlock, TcpStackFunction, TcpState

__all__ = [
    "AclFunction",
    "AclRule",
    "AssetRecord",
    "ConnectionBlock",
    "DEFAULT_ACL_RULES",
    "DEFAULT_PATTERNS",
    "FILTER_RULE_SIZES",
    "FilterVerdict",
    "HashTableNetworkFunction",
    "IdsFunction",
    "KeyValueStore",
    "KvStats",
    "NAT_TABLE_SIZES",
    "NatFunction",
    "NetworkFunction",
    "NfStats",
    "PRADS_TABLE_SIZES",
    "PacketFilterFunction",
    "PatternAutomaton",
    "PradsFunction",
    "TcpStackFunction",
    "TcpState",
    "Translation",
    "WorkingSet",
]
