"""Hash-table based IP packet filter (paper Table 3, ref [3]).

Filtering rules live in a hash table keyed by (source IP, destination IP,
protocol); packets matching a rule are dropped (or logged), the rest pass.
The paper evaluates 100 / 1K / 10K rules drawn from an open rule set — we
synthesise an equivalent set from the flow population.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable

from ..classifier.flow import FiveTuple
from ..core.halo_system import HaloSystem
from ..sim.trace import InstructionMix
from .hash_nf import HashTableNetworkFunction

FILTER_RULE_SIZES = (100, 1_000, 10_000)

#: Logging/counting a filtered packet.
DROP_ACCOUNT_CYCLES = 8.0


@dataclass(frozen=True)
class FilterVerdict:
    drop: bool
    rule_label: str = ""


class PacketFilterFunction(HashTableNetworkFunction):
    """Exact-match filter over (src, dst, proto)."""

    MIX = InstructionMix(loads=14, stores=6, arithmetic=12, others=14)

    def __init__(self, system: HaloSystem, table_entries: int = 1_000,
                 core_id: int = 0, use_halo: bool = False,
                 seed: int = 103) -> None:
        super().__init__(system, table_entries, core_id=core_id,
                         use_halo=use_halo, name="pktfilter", seed=seed)
        self.dropped = 0
        self.passed = 0

    def key_of(self, flow: FiveTuple) -> bytes:
        return struct.pack("<IIB7x", flow.src_ip, flow.dst_ip, flow.proto)

    def install_rules_from_flows(self, flows: Iterable[FiveTuple],
                                 count: int) -> int:
        """Filter ``count`` distinct (src, dst, proto) patterns."""
        installed = 0
        seen = set()
        for flow in flows:
            if installed >= count:
                break
            key = self.key_of(flow)
            if key in seen:
                continue
            seen.add(key)
            verdict = FilterVerdict(drop=True,
                                    rule_label=f"rule{installed}")
            if not self.table.insert(key, verdict):
                break
            installed += 1
        self.system.warm_table(self.table)
        return installed

    def on_hit(self, flow: FiveTuple, value: FilterVerdict) -> float:
        if value.drop:
            self.dropped += 1
        return DROP_ACCOUNT_CYCLES

    def on_miss(self, flow: FiveTuple) -> float:
        self.passed += 1
        return 0.0
