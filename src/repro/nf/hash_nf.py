"""Shared base for hash-table-bound network functions (Figure 13).

NAT, prads, and the packet filter all follow the same per-packet shape:

    derive key from header -> hash-table lookup -> small fixed NF work

The lookup dominates, so accelerating it with HALO yields the 2.3-2.7×
end-to-end speedups of Figure 13 (Amdahl-limited by the fixed work).
Each NF can run in software mode (traced cuckoo lookup on the core) or
HALO mode (``LOOKUP_B`` to the accelerators).  Both modes are
:mod:`repro.exec` backends, so the same NF object works synchronously
(:meth:`~repro.nf.base.NetworkFunction.process`) or as a DES program
pinned to a core alongside other workloads.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Tuple

from ..classifier.flow import FiveTuple
from ..core.halo_system import HaloSystem
from ..sim.trace import InstructionMix
from .base import NetworkFunction, NfStats


class HashTableNetworkFunction(NetworkFunction):
    """An NF whose fast path is one lookup in its own cuckoo table."""

    #: Fixed per-packet work besides the lookup (override per NF).
    MIX = InstructionMix(loads=14, stores=6, arithmetic=12, others=14)
    DEPENDENT_TOUCHES = 1
    INDEPENDENT_TOUCHES = 0

    def __init__(self, system: HaloSystem, table_entries: int,
                 core_id: int = 0, use_halo: bool = False,
                 working_set_bytes: int = 32 * 1024,
                 name: Optional[str] = None, seed: int = 77) -> None:
        super().__init__(system.hierarchy, core_id=core_id,
                         working_set_bytes=working_set_bytes,
                         name=name, seed=seed)
        self.system = system
        self.use_halo = use_halo
        self.table = system.create_table(
            max(8, table_entries), name=f"{self.name}.table")
        self._software_backend = system.backend("software", core_id=core_id)
        self._halo_backend = system.backend("halo-b", core_id=core_id)
        self.lookup_hits = 0
        self.lookup_misses = 0

    @property
    def backend(self):
        """The lookup backend the current mode selects."""
        return self._halo_backend if self.use_halo else self._software_backend

    # -- table management (NF-specific key/value types) ---------------------------
    def populate(self, entries: Iterable[Tuple[bytes, Any]]) -> None:
        for key, value in entries:
            if not self.table.insert(key, value):
                raise RuntimeError(f"{self.name}: table full while populating")
        self.system.warm_table(self.table)

    def key_of(self, flow: FiveTuple) -> bytes:
        """The lookup key for one packet (override to change key shape)."""
        return flow.pack()

    # -- per-packet processing ---------------------------------------------------------
    def lookup_program(self, key: bytes):
        """Program: one table lookup through the current mode's backend;
        returns ``(value, cycles)``."""
        outcome = yield from self.backend.lookup(self.table, key)
        return outcome.value, outcome.cycles

    def _lookup(self, key: bytes) -> Tuple[Any, float]:
        """(value, cycles) for the table lookup in the current mode."""
        return self.system.engine.run_process(
            self.lookup_program(key), name=f"{self.name}.lookup")

    def on_hit(self, flow: FiveTuple, value: Any) -> float:
        """Extra cycles on a hit (e.g. NAT header rewrite). Default: none."""
        return 0.0

    def on_miss(self, flow: FiveTuple) -> float:
        """Extra cycles on a miss (e.g. drop / slow path). Default: none."""
        return 0.0

    def _process_impl(self, flow: FiveTuple) -> float:
        value, lookup_cycles = self._lookup(self.key_of(flow))
        return lookup_cycles + self._fixed_work(flow, value)

    def _program_impl(self, engine, flow: FiveTuple):
        value, lookup_cycles = yield from self.lookup_program(
            self.key_of(flow))
        fixed = self._fixed_work(flow, value)
        if fixed:
            yield engine.timeout(fixed)
        return lookup_cycles + fixed

    def _fixed_work(self, flow: FiveTuple, value: Any) -> float:
        """The non-lookup per-packet cycles (base trace + hit/miss extra)."""
        fixed = self.core.execute(self._base_trace())
        if value is not None:
            self.lookup_hits += 1
            extra = self.on_hit(flow, value)
        else:
            self.lookup_misses += 1
            extra = self.on_miss(flow)
        return fixed.cycles + extra

    # -- the Figure 13 measurement -----------------------------------------------------
    def measure_speedup(self, flows,
                        shared_core: bool = True) -> Tuple[NfStats, NfStats,
                                                           float]:
        """Run the same stream in software and HALO mode; return both stats
        and the throughput speedup HALO/software.

        ``shared_core`` models the deployed condition (paper §5.2): the NF
        shares its core with other per-packet work, so its table lines do
        not linger in the private caches between packets — each phase
        flushes L1/L2 between packets, leaving the tables LLC-resident.
        """
        flows = list(flows)

        def run_phase() -> NfStats:
            self.stats = NfStats()
            for flow in flows:
                if shared_core:
                    self.hierarchy.flush_private(self.core.core_id)
                self.process(flow)
            return self.stats

        self.use_halo = False
        software = run_phase()
        software_cpp = software.cycles_per_packet
        self.use_halo = True
        halo = run_phase()
        speedup = (software_cpp / halo.cycles_per_packet
                   if halo.cycles_per_packet else 0.0)
        return software, halo, speedup
