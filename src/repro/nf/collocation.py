"""Collocation experiments — Figure 12.

Runs a network function and the virtual switch on the *same* core (SMT
siblings share the L1/L2 in our model) and measures the NF's throughput
drop and L1D miss-ratio increase caused by the switch's cache footprint.

With the software switch, every classification walks EMC buckets, MegaFlow
tuples, and key-value lines through the shared private caches — evicting
the NF's hot state.  With HALO, lookups execute at the CHAs and the private
caches stay mostly clean, so the drop collapses to a few percent.

The collocated phase runs the switch's PMD loop and the NF's inner loop as
*concurrent DES programs* on the system engine (both software and HALO
classification are engine-scheduled backends), synchronised into the same
per-round packet ordering as the solo measurement so only cache pressure —
not packet order — differs between the phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..classifier.flow import FiveTuple
from ..core.halo_system import HaloSystem
from ..sim.engine import Store
from ..traffic.generator import PacketStream
from ..traffic.profiles import TrafficProfile
from ..vswitch.switch import SwitchMode, VirtualSwitch
from .base import NetworkFunction


@dataclass
class CollocationResult:
    """One NF x switch-mode x flow-count measurement."""

    nf_name: str
    switch_mode: SwitchMode
    num_flows: int
    solo_cycles_per_packet: float
    colocated_cycles_per_packet: float
    solo_l1_miss_ratio: float
    colocated_l1_miss_ratio: float

    @property
    def throughput_drop(self) -> float:
        """Fractional NF throughput loss when collocated (Figure 12a)."""
        if self.colocated_cycles_per_packet <= 0:
            return 0.0
        return 1.0 - (self.solo_cycles_per_packet
                      / self.colocated_cycles_per_packet)

    @property
    def l1_miss_increase(self) -> float:
        """Absolute L1D miss-ratio increase (Figure 12b)."""
        return self.colocated_l1_miss_ratio - self.solo_l1_miss_ratio


def _nf_packet_with_l1_delta(nf: NetworkFunction,
                             flow: FiveTuple) -> tuple:
    """Process one NF packet, returning (cycles, l1_hits, l1_misses) deltas
    attributable to the NF alone (the switch shares the same L1)."""
    stats = nf.hierarchy.l1[nf.core.core_id].stats
    hits_before, misses_before = stats.hits, stats.misses
    cycles = nf.process(flow)
    return (cycles, stats.hits - hits_before, stats.misses - misses_before)


def run_collocation(
    nf_factory: Callable[[HaloSystem], NetworkFunction],
    num_flows: int,
    switch_mode: SwitchMode,
    packets: int = 600,
    interleave: int = 1,
    warmup: int = 200,
    num_rules: int = 10,
    seed: int = 31,
) -> CollocationResult:
    """Measure one Figure 12 cell.

    ``interleave`` switch packets are processed between consecutive NF
    packets in the collocated phase (hyper-threaded siblings make roughly
    equal forward progress).
    """
    system = HaloSystem()
    nf = nf_factory(system)
    core_id = nf.core.core_id

    profile = TrafficProfile(name="colloc", description="collocation",
                             num_flows=num_flows, num_rules=num_rules,
                             zipf_s=0.6, seed=seed)
    flow_set, rules = profile.build()
    switch = VirtualSwitch(system, switch_mode, core_id=core_id,
                           megaflow_tuple_capacity=1 << 16)
    switch.install_rules(rules)
    switch.prewarm_megaflows(flow_set.flows)
    switch.warm()

    switch_stream = PacketStream(flow_set, zipf_s=profile.zipf_s, seed=seed)
    # One fixed NF packet list reused by warmup, solo, and collocated phases,
    # so NF-side state (connection tables, asset records) is identical in
    # both measurements and only the switch's cache pressure differs.
    nf_flows = PacketStream(flow_set, zipf_s=0.9, seed=seed + 1).take(packets)

    def _measure_solo() -> tuple:
        cycles = hits = misses = 0.0
        for flow in nf_flows:
            packet_cycles, packet_hits, packet_misses = \
                _nf_packet_with_l1_delta(nf, flow)
            cycles += packet_cycles
            hits += packet_hits
            misses += packet_misses
        accesses = hits + misses
        return cycles / len(nf_flows), (misses / accesses if accesses else 0.0)

    def _measure_collocated() -> tuple:
        # Switch PMD loop and NF inner loop as two concurrent engine
        # processes, turn-taking through a Store so each round keeps the
        # solo phase's packet order (``interleave`` switch packets, then
        # one NF packet) while both genuinely share the engine timeline.
        engine = system.engine
        switch_turn = Store(engine)
        nf_turn = Store(engine)
        totals = {"cycles": 0.0, "hits": 0.0, "misses": 0.0}

        def switch_prog():
            for _ in nf_flows:
                yield switch_turn.get()
                for switch_flow in switch_stream.take(interleave):
                    yield from switch.packet_program(switch_flow)
                nf_turn.put(None)

        def nf_prog():
            l1 = nf.hierarchy.l1[nf.core.core_id].stats
            for flow in nf_flows:
                yield nf_turn.get()
                hits_before, misses_before = l1.hits, l1.misses
                totals["cycles"] += yield from nf.packet_program(engine, flow)
                totals["hits"] += l1.hits - hits_before
                totals["misses"] += l1.misses - misses_before
                switch_turn.put(None)

        engine.process(switch_prog(), name="switch_pmd")
        engine.process(nf_prog(), name=f"{nf.name}_loop")
        switch_turn.put(None)
        engine.run()
        accesses = totals["hits"] + totals["misses"]
        return (totals["cycles"] / len(nf_flows),
                (totals["misses"] / accesses if accesses else 0.0))

    # -- warmup: working set resident, NF tables populated ----------------------
    nf.warm()
    for flow in (nf_flows * ((warmup // packets) + 1))[:warmup]:
        nf.process(flow)
    for flow in switch_stream.take(warmup):
        switch.process_flow(flow)

    # -- solo phase (NF alone, post-warm) -----------------------------------------
    # Re-settle the hot set into L1 (warm() sweeps the region and leaves the
    # tail resident, not the hot head).
    for flow in nf_flows[:min(len(nf_flows), 200)]:
        nf.process(flow)
    solo_cpp, solo_miss_ratio = _measure_solo()

    # -- collocated phase (switch interleaves on the same core) --------------------
    coloc_cpp, coloc_miss_ratio = _measure_collocated()

    return CollocationResult(
        nf_name=nf.name,
        switch_mode=switch_mode,
        num_flows=num_flows,
        solo_cycles_per_packet=solo_cpp,
        colocated_cycles_per_packet=coloc_cpp,
        solo_l1_miss_ratio=solo_miss_ratio,
        colocated_l1_miss_ratio=coloc_miss_ratio,
    )


def collocation_sweep(nf_factories: List[Callable[[HaloSystem], NetworkFunction]],
                      flow_counts: List[int],
                      modes: List[SwitchMode],
                      **kwargs) -> List[CollocationResult]:
    """The full Figure 12 grid."""
    results = []
    for factory in nf_factories:
        for flows in flow_counts:
            for mode in modes:
                results.append(run_collocation(factory, flows, mode,
                                               **kwargs))
    return results
