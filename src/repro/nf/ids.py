"""Snort-like network intrusion detection (paper Table 3).

The hot loop of an IDS is multi-pattern string matching: an Aho-Corasick
automaton walked once per payload byte.  The automaton's hot states want to
live in L1/L2; random TCP/IP payloads (the paper's traffic) mostly bounce
around the root neighbourhood with occasional deep excursions.  Of the
three collocated NFs this has the largest working set, hence the largest
pollution-induced drop in Figure 12.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..classifier.flow import FiveTuple
from ..sim.hierarchy import MemoryHierarchy
from ..sim.trace import InstructionMix
from .base import NetworkFunction

#: Payload bytes scanned per packet (64B frames, paper's traffic).
SCAN_BYTES = 40
#: Automaton transitions that leave the register-cached root fan-out and
#: actually touch memory, per packet.
MEMORY_TRANSITIONS = 12


class PatternAutomaton:
    """A small real Aho-Corasick automaton (functional detection layer)."""

    def __init__(self, patterns: List[bytes]) -> None:
        self.patterns = list(patterns)
        # goto function as nested dicts; failure links by BFS.
        self._goto: List[Dict[int, int]] = [{}]
        self._output: List[List[bytes]] = [[]]
        self._fail: List[int] = [0]
        for pattern in self.patterns:
            self._add(pattern)
        self._build_failures()

    def _add(self, pattern: bytes) -> None:
        state = 0
        for symbol in pattern:
            nxt = self._goto[state].get(symbol)
            if nxt is None:
                nxt = len(self._goto)
                self._goto.append({})
                self._output.append([])
                self._fail.append(0)
                self._goto[state][symbol] = nxt
            state = nxt
        self._output[state].append(pattern)

    def _build_failures(self) -> None:
        from collections import deque
        queue = deque()
        for symbol, state in self._goto[0].items():
            self._fail[state] = 0
            queue.append(state)
        while queue:
            current = queue.popleft()
            for symbol, nxt in self._goto[current].items():
                queue.append(nxt)
                fallback = self._fail[current]
                while fallback and symbol not in self._goto[fallback]:
                    fallback = self._fail[fallback]
                self._fail[nxt] = self._goto[fallback].get(symbol, 0)
                if self._fail[nxt] == nxt:
                    self._fail[nxt] = 0
                self._output[nxt].extend(self._output[self._fail[nxt]])

    def scan(self, data: bytes) -> List[Tuple[int, bytes]]:
        """All (offset, pattern) matches in ``data``."""
        matches = []
        state = 0
        for offset, symbol in enumerate(data):
            while state and symbol not in self._goto[state]:
                state = self._fail[state]
            state = self._goto[state].get(symbol, 0)
            for pattern in self._output[state]:
                matches.append((offset, pattern))
        return matches

    @property
    def num_states(self) -> int:
        return len(self._goto)


DEFAULT_PATTERNS = [
    b"GET /etc/passwd", b"cmd.exe", b"/bin/sh", b"SELECT * FROM",
    b"\x90\x90\x90\x90", b"union select", b"../..", b"<script>",
]


class IdsFunction(NetworkFunction):
    """Pattern-matching IDS with a real automaton and a big working set."""

    MIX = InstructionMix(loads=150, stores=30, arithmetic=120, others=120)
    DEPENDENT_TOUCHES = MEMORY_TRANSITIONS
    INDEPENDENT_TOUCHES = 2

    def __init__(self, hierarchy: MemoryHierarchy, core_id: int = 0,
                 patterns: List[bytes] = None, seed: int = 202) -> None:
        super().__init__(hierarchy, core_id=core_id,
                         working_set_bytes=512 * 1024, name="snort",
                         seed=seed)
        self.automaton = PatternAutomaton(patterns or DEFAULT_PATTERNS)
        self._rng = np.random.default_rng(seed)
        self.alerts = 0

    def _payload_for(self, flow: FiveTuple) -> bytes:
        """Pseudo-random payload derived from the flow (deterministic)."""
        seed = (flow.src_ip * 31 + flow.dst_ip) & 0xFFFFFFFF
        rng = np.random.default_rng(seed)
        return bytes(rng.integers(32, 127, size=SCAN_BYTES, dtype=np.uint8))

    def _process_impl(self, flow: FiveTuple) -> float:
        matches = self.automaton.scan(self._payload_for(flow))
        if matches:
            self.alerts += len(matches)
        return self.core.execute(self._base_trace()).cycles
