"""prads — passive real-time asset detection system (paper Table 3).

Observes traffic and keeps a hash table of discovered assets (hosts and the
services they expose), keyed by endpoint.  Every packet looks its source
endpoint up to update the asset record; unknown endpoints create one.  The
paper evaluates 1K / 10K / 100K asset records.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable

from ..classifier.flow import FiveTuple
from ..core.halo_system import HaloSystem
from ..sim.trace import InstructionMix
from .hash_nf import HashTableNetworkFunction

PRADS_TABLE_SIZES = (1_000, 10_000, 100_000)

#: Updating an asset record (service set, last-seen) after the lookup.
RECORD_UPDATE_CYCLES = 10.0
#: Creating a fresh asset record (slow path).
RECORD_CREATE_CYCLES = 60.0


@dataclass
class AssetRecord:
    """A discovered host asset."""

    ip: int
    services: set = field(default_factory=set)
    packets_seen: int = 0


class PradsFunction(HashTableNetworkFunction):
    """Passive asset detection keyed by source host."""

    MIX = InstructionMix(loads=18, stores=8, arithmetic=12, others=16)

    def __init__(self, system: HaloSystem, table_entries: int = 10_000,
                 core_id: int = 0, use_halo: bool = False,
                 seed: int = 102) -> None:
        super().__init__(system, table_entries, core_id=core_id,
                         use_halo=use_halo, name="prads", seed=seed)

    def key_of(self, flow: FiveTuple) -> bytes:
        return struct.pack("<I12x", flow.src_ip)

    def populate_from_flows(self, flows: Iterable[FiveTuple]) -> int:
        installed = 0
        seen = set()
        for flow in flows:
            key = self.key_of(flow)
            if key in seen:
                continue
            seen.add(key)
            record = AssetRecord(ip=flow.src_ip)
            if not self.table.insert(key, record):
                break
            installed += 1
        self.system.warm_table(self.table)
        return installed

    def on_hit(self, flow: FiveTuple, value: AssetRecord) -> float:
        value.packets_seen += 1
        value.services.add((flow.proto, flow.dst_port))
        return RECORD_UPDATE_CYCLES

    def on_miss(self, flow: FiveTuple) -> float:
        if len(self.table) < self.table.capacity * 0.9:
            self.table.insert(self.key_of(flow), AssetRecord(ip=flow.src_ip))
        return RECORD_CREATE_CYCLES
