"""mTCP-like scalable user-level TCP stack (paper Table 3).

The per-packet fast path of a user-level TCP stack: find the connection
control block (a hash-table lookup over the 4-tuple), run the state
machine, touch the socket buffers.  The paper issues "5 million requests
with 100 concurrent connections" — a small hot connection set with heavy
per-packet protocol work.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..classifier.flow import FiveTuple
from ..hashtable.cuckoo import CuckooHashTable
from ..sim.hierarchy import MemoryHierarchy
from ..sim.trace import InstructionMix
from .base import NetworkFunction

DEFAULT_MAX_CONNECTIONS = 100_000


class TcpState(Enum):
    LISTEN = "listen"
    SYN_RCVD = "syn_rcvd"
    ESTABLISHED = "established"
    CLOSE_WAIT = "close_wait"
    CLOSED = "closed"


@dataclass
class ConnectionBlock:
    """A TCP control block."""

    flow: FiveTuple
    state: TcpState = TcpState.LISTEN
    rcv_next: int = 0
    snd_next: int = 0
    packets: int = 0

    def advance(self) -> None:
        """A minimal state machine step per packet."""
        self.packets += 1
        self.rcv_next += 1460
        if self.state is TcpState.LISTEN:
            self.state = TcpState.SYN_RCVD
        elif self.state is TcpState.SYN_RCVD:
            self.state = TcpState.ESTABLISHED


class TcpStackFunction(NetworkFunction):
    """User-level TCP fast path with a real connection table."""

    MIX = InstructionMix(loads=80, stores=30, arithmetic=60, others=70)
    DEPENDENT_TOUCHES = 4      # CB -> socket -> buffer -> descriptor
    INDEPENDENT_TOUCHES = 12   # timers, event queue, epoll set, buffers
    HOT_FRACTION = 0.05       # ~100 hot connections' control state
    HOT_PROBABILITY = 0.93

    def __init__(self, hierarchy: MemoryHierarchy, core_id: int = 0,
                 max_connections: int = DEFAULT_MAX_CONNECTIONS,
                 seed: int = 203) -> None:
        super().__init__(hierarchy, core_id=core_id,
                         working_set_bytes=384 * 1024, name="mtcp",
                         seed=seed)
        self.connections = CuckooHashTable(
            max_connections, key_bytes=16,
            allocator=hierarchy.allocator, name="mtcp.conns")
        self.established = 0

    @staticmethod
    def _conn_key(flow: FiveTuple) -> bytes:
        return struct.pack("<IIHH4x", flow.src_ip, flow.dst_ip,
                           flow.src_port, flow.dst_port)

    def connection_of(self, flow: FiveTuple) -> Optional[ConnectionBlock]:
        return self.connections.lookup(self._conn_key(flow))

    def _process_impl(self, flow: FiveTuple) -> float:
        key = self._conn_key(flow)
        block = self.connections.lookup(key)
        if block is None:
            block = ConnectionBlock(flow=flow)
            self.connections.insert(key, block)
        was_established = block.state is TcpState.ESTABLISHED
        block.advance()
        if block.state is TcpState.ESTABLISHED and not was_established:
            self.established += 1
        trace = self._base_trace()
        # The connection-table probe itself touches its bucket lines.
        plan = self.connections.probe(key)
        trace.load(plan.primary_addr, 64, dep=trace.max_dep + 1)
        return self.core.execute(trace).cycles
