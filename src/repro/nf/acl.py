"""ACL — the DPDK access-control-list library (paper Table 3).

DPDK's ACL classifier compiles rules into a multi-bit trie; each packet
walks a handful of dependent trie nodes.  The paper's configuration:
"packets are randomly generated to match 6 rules and 1 route with various
wildcarding".  ACL is compute-intensive with a modest hot working set — the
profile that makes it sensitive to L1D pollution in Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..classifier.flow import FiveTuple
from ..sim.hierarchy import MemoryHierarchy
from ..sim.trace import InstructionMix
from .base import NetworkFunction

#: Rules + route from the paper's configuration.
DEFAULT_ACL_RULES = 6
DEFAULT_ROUTES = 1

#: Trie nodes visited per packet (multi-bit trie over the 5-tuple).
TRIE_DEPTH = 5


@dataclass(frozen=True)
class AclRule:
    """A range-based ACL rule (the functional check behind the cost model)."""

    src_lo: int
    src_hi: int
    dst_lo: int
    dst_hi: int
    proto: int
    permit: bool

    def matches(self, flow: FiveTuple) -> bool:
        return (self.src_lo <= flow.src_ip <= self.src_hi
                and self.dst_lo <= flow.dst_ip <= self.dst_hi
                and (self.proto == 0 or self.proto == flow.proto))


class AclFunction(NetworkFunction):
    """Trie-walking access control."""

    MIX = InstructionMix(loads=62, stores=14, arithmetic=50, others=48)
    DEPENDENT_TOUCHES = TRIE_DEPTH
    INDEPENDENT_TOUCHES = 8   # rule data, category bitmaps, result arrays

    def __init__(self, hierarchy: MemoryHierarchy, core_id: int = 0,
                 num_rules: int = DEFAULT_ACL_RULES, seed: int = 201) -> None:
        super().__init__(hierarchy, core_id=core_id,
                         working_set_bytes=256 * 1024, name="acl", seed=seed)
        rng = np.random.default_rng(seed)
        self.rules: List[AclRule] = []
        for index in range(num_rules):
            base = int(rng.integers(0, 1 << 30))
            self.rules.append(AclRule(
                src_lo=base, src_hi=base + (1 << 22),
                dst_lo=0, dst_hi=0xFFFFFFFF,
                proto=0, permit=bool(index % 2)))
        self.permitted = 0
        self.denied = 0

    def _process_impl(self, flow: FiveTuple) -> float:
        verdict = next((rule.permit for rule in self.rules
                        if rule.matches(flow)), True)
        if verdict:
            self.permitted += 1
        else:
            self.denied += 1
        return self.core.execute(self._base_trace()).cycles
