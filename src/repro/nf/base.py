"""Network-function base machinery (paper Table 3).

The evaluation uses NFs in two roles:

* as **collocated cache-footprint generators** (Figure 12: ACL, Snort,
  mTCP share an SMT core with the virtual switch and suffer L1D pollution);
* as **hash-table-bound services HALO accelerates directly** (Figure 13:
  NAT, prads, packet filter).

Both roles need the same ingredients: a per-packet instruction mix, a
working set held in simulated memory whose accesses run through the shared
cache hierarchy, and (for the hash-based NFs) a real cuckoo table.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..classifier.flow import FiveTuple
from ..sim.core import CoreModel
from ..sim.hierarchy import MemoryHierarchy
from ..sim.memory import Region
from ..sim.stats import RunningStats
from ..sim.trace import InstructionMix, MemTrace


@dataclass
class NfStats:
    packets: int = 0
    cycles: RunningStats = field(default_factory=RunningStats)

    @property
    def cycles_per_packet(self) -> float:
        return self.cycles.mean

    def throughput_mpps(self, frequency_ghz: float = 2.1) -> float:
        """Packets/second in millions at the given clock."""
        if not self.cycles.mean:
            return 0.0
        return frequency_ghz * 1e9 / self.cycles.mean / 1e6


class WorkingSet:
    """A region of state the NF touches per packet.

    Accesses follow a Zipf-like hot/cold split: a configurable fraction of
    touches land in a hot subset (which therefore wants to live in L1/L2),
    the rest roam the whole region.  Under cache pollution from a
    collocated switch the hot subset keeps getting evicted — the Figure 12
    mechanism.
    """

    def __init__(self, hierarchy: MemoryHierarchy, size_bytes: int,
                 name: str, hot_fraction: float = 0.06,
                 hot_probability: float = 0.85, seed: int = 77) -> None:
        self.hierarchy = hierarchy
        self.region: Region = hierarchy.allocator.alloc(size_bytes, name)
        self.hot_lines = max(1, int(size_bytes * hot_fraction) // 64)
        self.total_lines = max(1, size_bytes // 64)
        self.hot_probability = hot_probability
        self._rng = np.random.default_rng(seed)

    def sample_addr(self) -> int:
        if self._rng.random() < self.hot_probability:
            line = int(self._rng.integers(0, self.hot_lines))
        else:
            line = int(self._rng.integers(0, self.total_lines))
        return self.region.base + line * 64


class NetworkFunction(ABC):
    """Base class: cost accounting for a per-packet NF."""

    #: Per-packet instruction mix (override per NF).
    MIX = InstructionMix(loads=60, stores=20, arithmetic=60, others=60)
    #: Working-set accesses per packet, split into dependency groups.
    DEPENDENT_TOUCHES = 2
    INDEPENDENT_TOUCHES = 2
    #: Hot-subset geometry of the working set (see :class:`WorkingSet`).
    HOT_FRACTION = 0.06
    HOT_PROBABILITY = 0.85

    def __init__(self, hierarchy: MemoryHierarchy, core_id: int = 0,
                 working_set_bytes: int = 128 * 1024,
                 name: Optional[str] = None, seed: int = 77) -> None:
        self.name = name or type(self).__name__
        self.hierarchy = hierarchy
        self.core = CoreModel(core_id, hierarchy)
        self.working_set = WorkingSet(hierarchy, working_set_bytes,
                                      f"{self.name}.state",
                                      hot_fraction=self.HOT_FRACTION,
                                      hot_probability=self.HOT_PROBABILITY,
                                      seed=seed)
        self.stats = NfStats()

    # -- cost assembly -----------------------------------------------------------
    def _base_trace(self) -> MemTrace:
        """Instruction mix + working-set touches for one packet."""
        trace = MemTrace(mix=InstructionMix(
            loads=self.MIX.loads, stores=self.MIX.stores,
            arithmetic=self.MIX.arithmetic, others=self.MIX.others))
        for _ in range(self.INDEPENDENT_TOUCHES):
            trace.load(self.working_set.sample_addr(), 8, dep=0)
        for hop in range(self.DEPENDENT_TOUCHES):
            trace.load(self.working_set.sample_addr(), 8, dep=1 + hop)
        return trace

    def l1d_miss_ratio(self) -> float:
        """The NF core's current L1D miss ratio (Figure 12b's metric)."""
        return self.hierarchy.l1[self.core.core_id].stats.miss_rate

    def warm(self) -> None:
        """Touch the whole working set once (L2/LLC steady state)."""
        region = self.working_set.region
        for line in range(region.size // 64):
            self.hierarchy.core_access(self.core.core_id,
                                       region.base + line * 64)

    # -- the per-packet entry point ----------------------------------------------
    def process(self, flow: FiveTuple) -> float:
        """Process one packet; returns (and records) its cycle cost."""
        cycles = self._process_impl(flow)
        self.stats.packets += 1
        self.stats.cycles.record(cycles)
        return cycles

    def packet_program(self, engine, flow: FiveTuple):
        """Process one packet as a DES program on ``engine``.

        Same cycle accounting as :meth:`process`, but the cost is spent as
        simulated time — so an NF inner loop can run concurrently with a
        switch PMD loop (or another NF) on the shared engine and the
        collocation contention emerges from the interleaving.
        """
        cycles = yield from self._program_impl(engine, flow)
        self.stats.packets += 1
        self.stats.cycles.record(cycles)
        return cycles

    def _program_impl(self, engine, flow: FiveTuple):
        """Program-shaped packet handling; default wraps the synchronous
        implementation and spends its cycles as one engine timeout."""
        cycles = self._process_impl(flow)
        if cycles:
            yield engine.timeout(cycles)
        return cycles

    @abstractmethod
    def _process_impl(self, flow: FiveTuple) -> float:
        """NF-specific packet handling; returns cycles."""

    def run(self, flows) -> NfStats:
        for flow in flows:
            self.process(flow)
        return self.stats
