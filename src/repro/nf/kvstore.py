"""A MemC3-style in-memory key-value store — the paper's §4.8 extension.

"MemC3 applied exactly the same cuckoo hash table described in this paper
to memcached ... We believe HALO can be easily integrated into the
aforementioned applications with the three extended x86-64 instructions."

This module does exactly that: a GET/SET key-value cache whose index is
the repository's cuckoo table, with GETs runnable in software or through
``LOOKUP_B``/``LOOKUP_NB``.  SETs stay on the software path (HALO
accelerates lookups; updates remain the CPU's job, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Tuple

from ..hashtable.hashing import hash_bytes
from ..sim.stats import RunningStats
from ..sim.trace import capture


def _index_key(key: bytes, key_bytes: int = 16) -> bytes:
    """Arbitrary-length keys map to fixed-size index keys (MemC3 stores a
    tag + pointer; we fold long keys through the hash)."""
    if len(key) == key_bytes:
        return key
    digest = hash_bytes(key, seed=0x6B65)
    folded = digest.to_bytes(8, "little") + len(key).to_bytes(8, "little")
    return folded[:key_bytes]


@dataclass
class KvStats:
    gets: int = 0
    get_hits: int = 0
    sets: int = 0
    get_cycles: RunningStats = field(default_factory=RunningStats)
    set_cycles: RunningStats = field(default_factory=RunningStats)

    @property
    def hit_rate(self) -> float:
        return self.get_hits / self.gets if self.gets else 0.0


class KeyValueStore:
    """GET/SET cache over a HALO-acceleratable cuckoo index."""

    def __init__(self, system, capacity: int = 1 << 16,
                 use_halo: bool = False, core_id: int = 0,
                 name: str = "kv") -> None:
        self.system = system
        self.use_halo = use_halo
        self.core_id = core_id
        self.table = system.create_table(capacity, name=f"{name}.index")
        self._engine = system.software_engine(core_id)
        self.stats = KvStats()

    # -- operations ---------------------------------------------------------------
    def set(self, key: bytes, value: Any) -> bool:
        """Store a value; always the software path (traced insert)."""
        ok, trace = capture(self.table.tracer, self.core_id,
                            self.table.insert, _index_key(key), (key, value))
        result = self._engine.core.execute(
            trace, lock_cycles=self.table.lock.write_overhead_cycles())
        self.stats.sets += 1
        self.stats.set_cycles.record(result.cycles)
        return ok

    def get(self, key: bytes) -> Tuple[Optional[Any], float]:
        """Fetch a value; returns (value or None, cycles spent)."""
        index_key = _index_key(key)
        if self.use_halo:
            episode = self.system.run_blocking_lookups(
                self.table, [index_key], core_id=self.core_id)
            stored = episode.results[0].value
            cycles = episode.cycles
        else:
            stored, result = self._engine.lookup(self.table, index_key)
            cycles = result.cycles
        self.stats.gets += 1
        self.stats.get_cycles.record(cycles)
        if stored is None or stored[0] != key:
            return None, cycles
        self.stats.get_hits += 1
        return stored[1], cycles

    def get_many(self, keys: Iterable[bytes]) -> Tuple[List[Any], float]:
        """Batched GETs: the LOOKUP_NB + SNAPSHOT_READ idiom in HALO mode."""
        keys = list(keys)
        if not self.use_halo:
            values = []
            total = 0.0
            for key in keys:
                value, cycles = self.get(key)
                values.append(value)
                total += cycles
            return values, total
        index_keys = [_index_key(key) for key in keys]
        episode = self.system.run_nonblocking_lookups(
            self.table, index_keys, core_id=self.core_id)
        values: List[Any] = []
        for key, result in zip(keys, episode.results):
            self.stats.gets += 1
            self.stats.get_cycles.record(episode.cycles_per_op)
            stored = result.value
            if stored is not None and stored[0] == key:
                self.stats.get_hits += 1
                values.append(stored[1])
            else:
                values.append(None)
        return values, episode.cycles

    def delete(self, key: bytes) -> bool:
        return self.table.delete(_index_key(key))

    def __len__(self) -> int:
        return len(self.table)

    def warm(self) -> None:
        self.system.warm_table(self.table)
