"""Execution backends: one DES-native model for software and HALO compute.

``repro.exec`` sits between :mod:`repro.core` (the machine: ISA,
accelerators, software engine) and the workloads (:mod:`repro.vswitch`,
:mod:`repro.nf`).  It turns each compute mode into a
:class:`~repro.exec.backend.LookupBackend` — a factory of engine programs —
and :func:`~repro.exec.cores.run_cores` pins any mix of backends to cores
so they contend on the shared memory hierarchy like real collocated
threads.
"""

from .backend import (
    AdaptiveBackend,
    BackendKind,
    HaloBlockingBackend,
    HaloNonblockingBackend,
    LookupBackend,
    LookupOutcome,
    ResiliencePolicy,
    SliceHealth,
    SoftwareBackend,
    make_backend,
)
from .cores import CoreResult, CoreWorkload, MultiCoreRun, run_cores

__all__ = [
    "AdaptiveBackend",
    "BackendKind",
    "CoreResult",
    "CoreWorkload",
    "HaloBlockingBackend",
    "HaloNonblockingBackend",
    "LookupBackend",
    "LookupOutcome",
    "MultiCoreRun",
    "ResiliencePolicy",
    "SliceHealth",
    "SoftwareBackend",
    "make_backend",
    "run_cores",
]
