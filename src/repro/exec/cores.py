"""Pin backends to cores and run them concurrently on one engine.

:func:`run_cores` is the multi-core entry point the paper's collocation
experiments need: each :class:`CoreWorkload` names a core (either a
global core id, or a socket-local one via ``socket=`` on a multi-socket
:class:`~repro.sim.params.Topology`), a backend kind (or instance), and
either a ``(table, keys)`` stream or an arbitrary program factory.  All workloads are spawned as engine processes and run to
calendar exhaustion, so software PMD loops, HALO issue loops, and NF inner
loops genuinely share the simulated timeline — L1/LLC/DRAM and interconnect
contention emerge from the interleaving instead of being bolted on.

Each per-key completion is stamped with ``engine.now``, so callers (and
tests) can inspect the merged timeline and verify cores actually
interleave rather than running back to back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple, Union

from .backend import BackendKind, LookupBackend, LookupOutcome, make_backend


@dataclass
class CoreWorkload:
    """One core's assignment: which backend runs what.

    Provide either ``table`` + ``keys`` (the common lookup-stream shape) or
    ``program`` — a callable receiving the resolved backend and returning a
    DES generator (for PMD loops, NF pipelines, anything custom).
    """

    backend: Union[str, BackendKind, LookupBackend]
    core_id: int = 0
    #: Topology-aware placement: when set, ``core_id`` is interpreted as
    #: a *socket-local* core index and resolved to a global core id
    #: against the system machine's :class:`~repro.sim.params.Topology`
    #: at :func:`run_cores` time.  ``None`` (default) keeps ``core_id``
    #: global — the pre-topology behaviour.
    socket: Optional[int] = None
    table: Any = None
    keys: Sequence[bytes] = ()
    program: Optional[Callable[[LookupBackend], Generator]] = None
    #: Use the backend's batched ``lookup_stream`` instead of per-key
    #: lookups (faster for non-blocking HALO, but per-key timeline marks
    #: collapse to batch boundaries).
    stream: bool = False
    backend_kwargs: dict = field(default_factory=dict)
    name: str = ""
    #: Optional :class:`~repro.exec.backend.ResiliencePolicy`, applied to
    #: backend kinds that honour one (``halo-nb`` and ``adaptive``);
    #: ignored — rather than rejected — for the others so heterogeneous
    #: workload lists can share a single policy object.
    policy: Any = None


@dataclass
class CoreResult:
    """What one core did: its outcomes and its slice of the timeline."""

    core_id: int
    kind: Optional[BackendKind]
    result: Any
    started: float
    finished: float
    #: ``engine.now`` after each completed lookup (empty for custom
    #: programs and streamed workloads).
    marks: List[float] = field(default_factory=list)
    name: str = ""

    @property
    def cycles(self) -> float:
        return self.finished - self.started

    @property
    def operations(self) -> int:
        if isinstance(self.result, list):
            return len(self.result)
        return 1

    @property
    def cycles_per_op(self) -> float:
        ops = self.operations
        return self.cycles / ops if ops else 0.0


@dataclass
class MultiCoreRun:
    """The outcome of one :func:`run_cores` call."""

    results: List[CoreResult]
    started: float
    finished: float

    @property
    def elapsed(self) -> float:
        """Wall-clock simulated cycles for the whole run."""
        return self.finished - self.started

    def by_core(self, core_id: int) -> CoreResult:
        for result in self.results:
            if result.core_id == core_id:
                return result
        raise KeyError(f"no workload ran on core {core_id}")

    def timeline(self) -> List[Tuple[float, int]]:
        """Merged per-lookup completion stamps: ``(engine.now, core_id)``."""
        merged = [(mark, result.core_id)
                  for result in self.results for mark in result.marks]
        merged.sort()
        return merged

    def interleavings(self) -> int:
        """Adjacent timeline entries from *different* cores.

        Zero means the cores ran back to back (no true concurrency); a
        healthy collocated run alternates cores throughout.
        """
        timeline = self.timeline()
        return sum(1 for prev, cur in zip(timeline, timeline[1:])
                   if prev[1] != cur[1])


_POLICY_KINDS = (BackendKind.HALO_NONBLOCKING, BackendKind.ADAPTIVE)


def resolve_placement(system, workload: CoreWorkload) -> CoreWorkload:
    """Resolve socket-relative placement to a global core id.

    Returns ``workload`` untouched when no socket is requested;
    otherwise a copy whose ``core_id`` is the global id of
    ``(socket, local core)`` on the system machine's topology, with the
    topology's own actionable errors for out-of-range placements.
    """
    if workload.socket is None:
        return workload
    from dataclasses import replace

    topology = system.machine.topo
    global_core = topology.core_on(workload.socket, workload.core_id)
    return replace(workload, core_id=global_core, socket=None)


def _resolve_backend(system, workload: CoreWorkload) -> LookupBackend:
    if isinstance(workload.backend, LookupBackend):
        return workload.backend
    kwargs = dict(workload.backend_kwargs)
    if workload.policy is not None:
        kind = workload.backend
        if isinstance(kind, str):
            kind = BackendKind(kind)
        if kind in _POLICY_KINDS:
            kwargs.setdefault("policy", workload.policy)
    return make_backend(workload.backend, system, core_id=workload.core_id,
                        **kwargs)


def _stream_program(backend: LookupBackend, workload: CoreWorkload,
                    marks: List[float], engine) -> Generator:
    if workload.stream:
        outcomes = yield from backend.lookup_stream(workload.table,
                                                    workload.keys)
        return outcomes
    outcomes: List[LookupOutcome] = []
    for key in workload.keys:
        outcome = yield from backend.lookup(workload.table, key)
        outcomes.append(outcome)
        marks.append(engine.now)
    return outcomes


def run_cores(system, workloads: Sequence[CoreWorkload]) -> MultiCoreRun:
    """Run every workload concurrently on the system's engine.

    Returns a :class:`MultiCoreRun` once the calendar drains.  Workloads
    are spawned in list order, which (with the engine's deterministic
    same-cycle FIFO) makes the whole run reproducible.
    """
    engine = system.engine
    started = engine.now
    entries = []
    workloads = [resolve_placement(system, workload)
                 for workload in workloads]
    for index, workload in enumerate(workloads):
        backend = _resolve_backend(system, workload)
        marks: List[float] = []
        name = workload.name or (
            f"core{workload.core_id}:{backend.kind.value}")

        def outer(workload=workload, backend=backend, marks=marks):
            start = engine.now
            if workload.program is not None:
                value = yield from workload.program(backend)
            else:
                value = yield from _stream_program(backend, workload,
                                                   marks, engine)
            return CoreResult(core_id=workload.core_id, kind=backend.kind,
                              result=value, started=start,
                              finished=engine.now, marks=marks)

        entries.append(engine.process(outer(), name=name))
    engine.run()
    results = [process.result for process in entries]
    for result, workload in zip(results, workloads):
        result.name = workload.name or result.name
    return MultiCoreRun(results=results, started=started,
                        finished=engine.now)
