"""DES-native lookup backends — one execution model for every compute mode.

Historically the software baseline executed *outside* the simulation engine
(summed core cycles, ``engine.now`` untouched) while the HALO paths ran as
engine processes, so the two could never genuinely interleave on one shared
memory hierarchy.  This module unifies them: a :class:`LookupBackend` is a
factory of *DES generator programs* — software, HALO-blocking,
HALO-nonblocking, and the adaptive hybrid are all scheduled on the shared
:class:`~repro.sim.engine.Engine`, charge their cycles as simulated time,
and replay their memory accesses through the shared hierarchy.  Any mix of
backends can therefore be pinned to cores (see :mod:`repro.exec.cores`) and
contend for L1/LLC/DRAM/interconnect like collocated threads on real
hardware.

Every backend's ``lookup``/``lookup_stream``/``search`` return
:class:`LookupOutcome` values, so callers compare modes without re-imple-
menting per-mode dispatch.  The software backend additionally exposes
:meth:`SoftwareBackend.traced_call` — the primitive the virtual switch uses
to charge arbitrary traced structure operations (EMC probes, megaflow
installs) to its core.

This module deliberately imports nothing from :mod:`repro.core` at module
level: backends reach the ISA, hierarchy, and software engine through the
``HaloSystem`` facade passed to them, keeping the import layering
one-directional (``repro.exec`` sits between ``repro.core`` and the
workload layer — see ``scripts/check_layering.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Any, ClassVar, Generator, Iterable, List, Optional, Sequence, Tuple

from ..hashtable.locking import READ_SIDE_CYCLES
from ..sim.replay import (REPLAY_BATCH, REPLAY_WINDOWED, TraceReplay,
                          batched_replay_default)
from ..sim.trace import capture


class BackendKind(Enum):
    """The four execution models a lookup stream can run under."""

    SOFTWARE = "software"
    HALO_BLOCKING = "halo-b"
    HALO_NONBLOCKING = "halo-nb"
    ADAPTIVE = "adaptive"


@dataclass(slots=True)
class LookupOutcome:
    """One lookup's result, uniform across backends.

    Slotted: one is built per lookup on every backend's hot path.

    ``raw`` carries the backend-native result object when one exists (the
    :class:`~repro.core.query.QueryResult` for HALO paths); software
    lookups leave it ``None``.  ``degraded`` marks results produced by a
    resilience fallback (software answered because the accelerator path
    timed out or was known-unhealthy).
    """

    value: Any
    found: bool
    cycles: float
    raw: Any = None
    degraded: bool = False


@dataclass(frozen=True)
class ResiliencePolicy:
    """Bounded-wait + graceful-degradation knobs for accelerator backends.

    Installed on ``halo-nb`` (and through it, ``adaptive``) backends:

    * each ``SNAPSHOT_READ`` poll loop gets a ``poll_budget`` — once spent,
      the wait is retried ``max_retries`` times with exponential backoff
      (``backoff_base * backoff_factor**attempt`` cycles between polls);
    * when every retry times out and ``fallback`` is set, the lookup is
      answered by the software path instead (zero lost lookups — the
      abandoned accelerator query keeps draining in the background) and
      the target slice is marked unhealthy;
    * an unhealthy slice serves from software, but every
      ``probe_interval``-th lookup probes the accelerator again;
      ``recovery_successes`` consecutive probe successes flip it back to
      healthy (the hysteresis that prevents flapping).
    """

    poll_budget: int = 2048
    max_retries: int = 2
    backoff_base: float = 32.0
    backoff_factor: float = 2.0
    fallback: bool = True
    probe_interval: int = 32
    recovery_successes: int = 2

    def __post_init__(self) -> None:
        if self.poll_budget < 1:
            raise ValueError("poll_budget must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.probe_interval < 1:
            raise ValueError("probe_interval must be >= 1")
        if self.recovery_successes < 1:
            raise ValueError("recovery_successes must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Cycles to wait before retry number ``attempt`` (0-based)."""
        return self.backoff_base * (self.backoff_factor ** attempt)


class SliceHealth:
    """Health state one backend tracks for one accelerator slice.

    ``events`` is the fallback/recovery timeline:
    ``(cycle, "degraded" | "probe" | "recovered", slice_id)`` tuples, in
    simulated-time order — what ``examples/chaos_demo.py`` prints.
    """

    __slots__ = ("slice_id", "policy", "healthy", "probe_successes",
                 "since_probe", "degraded_lookups", "events")

    def __init__(self, slice_id: int, policy: ResiliencePolicy) -> None:
        self.slice_id = slice_id
        self.policy = policy
        self.healthy = True
        self.probe_successes = 0
        self.since_probe = 0
        self.degraded_lookups = 0
        self.events: List[Tuple[float, str, int]] = []

    def mark_degraded(self, now: float) -> None:
        if self.healthy:
            self.events.append((now, "degraded", self.slice_id))
        self.healthy = False
        self.probe_successes = 0
        self.since_probe = 0

    def should_probe(self) -> bool:
        """While unhealthy: is this lookup the periodic accelerator probe?"""
        self.since_probe += 1
        if self.since_probe >= self.policy.probe_interval:
            self.since_probe = 0
            return True
        return False

    def note_probe_success(self, now: float) -> bool:
        """Record a successful probe; True when it completes the recovery."""
        self.probe_successes += 1
        if self.probe_successes >= self.policy.recovery_successes:
            self.healthy = True
            self.probe_successes = 0
            self.events.append((now, "recovered", self.slice_id))
            return True
        return False

    def note_probe_failure(self) -> None:
        self.probe_successes = 0


class LookupBackend(ABC):
    """A compute mode expressed as DES generator programs.

    Subclasses define :meth:`lookup`; the streaming and multi-table search
    programs have serial defaults built on it.  All generators must be
    driven by the system's engine (``engine.run_process`` for synchronous
    callers, ``engine.process`` for concurrent ones).
    """

    kind: ClassVar[BackendKind]
    #: True when the backend supersedes the software EMC layer (the HALO
    #: pipeline classifies everything through accelerated tuple-space
    #: search, keeping private caches clean — the Figure 12 property).
    replaces_emc: ClassVar[bool] = False

    def __init__(self, system, core_id: int = 0) -> None:
        self.system = system
        self.core_id = core_id

    @abstractmethod
    def lookup(self, table, key: bytes) -> Generator:
        """Program for one lookup; returns a :class:`LookupOutcome`."""

    def lookup_stream(self, table, keys: Iterable[bytes]) -> Generator:
        """Program for a key stream; returns ``List[LookupOutcome]``."""
        outcomes: List[LookupOutcome] = []
        for key in keys:
            outcome = yield from self.lookup(table, key)
            outcomes.append(outcome)
        return outcomes

    def search(self, queries: Sequence[Tuple[Any, bytes]],
               first_match: bool = False) -> Generator:
        """Program searching ``(table, key)`` pairs (tuple-space style).

        With ``first_match`` the search may stop at the first hit (the
        serialised idiom); backends that batch (non-blocking) still issue
        everything and let the caller pick the first hit.  Returns the
        ``List[LookupOutcome]`` actually executed, in query order.
        """
        outcomes: List[LookupOutcome] = []
        for table, key in queries:
            outcome = yield from self.lookup(table, key)
            outcomes.append(outcome)
            if first_match and outcome.found:
                break
        return outcomes

    def traced_call(self, func, *args, lock_cycles: Optional[float] = None,
                    **kwargs) -> Generator:
        """Program for one traced structure operation (software-only)."""
        raise NotImplementedError(
            f"{self.kind.value} backend cannot execute traced core "
            f"operations")


class SoftwareBackend(LookupBackend):
    """The DPDK-style baseline as an engine program.

    Cycle arithmetic is byte-for-byte the pre-DES path — the trace replays
    against the hierarchy and :class:`~repro.sim.core.CoreModel` prices it —
    but the cost is then spent as engine time, so software cores occupy the
    shared timeline and contend with whatever else is running.

    ``batched=True`` (or ``REPRO_BATCHED_REPLAY=1`` in the environment)
    opts streams into the :class:`~repro.sim.replay.TraceReplay` fast
    paths: when nothing needs per-event interleaving the whole stream is
    priced in one pass and spent as a single timeout, and with concurrent
    processes the stream batches between interaction points (windowed
    replay; disable with ``windowed=False`` or
    ``REPRO_WINDOWED_REPLAY=0``).  Cycle outcomes, run stats, and metrics
    agree with the serial path (the parity suite pins rel=1e-12); with
    faults or guards the replay transparently falls back to one event per
    lookup, counting every fallback under ``replay.fallback.*``.
    """

    kind = BackendKind.SOFTWARE
    replaces_emc = False

    def __init__(self, system, core_id: int = 0,
                 with_locking: bool = True,
                 batched: Optional[bool] = None,
                 windowed: Optional[bool] = None) -> None:
        super().__init__(system, core_id)
        self.software = system.software_engine(core_id,
                                               with_locking=with_locking)
        if batched is None:
            batched = batched_replay_default()
        obs = getattr(system, "obs", None)
        self.replay = TraceReplay(self.software.core, system.engine,
                                  batched=batched, windowed=windowed,
                                  metrics=getattr(obs, "metrics", None))

    @property
    def core(self):
        return self.software.core

    def lookup(self, table, key: bytes) -> Generator:
        value, result = self.software.lookup(table, key)
        if result.cycles:
            yield self.system.engine.timeout(result.cycles)
        return LookupOutcome(value=value, found=value is not None,
                             cycles=result.cycles)

    def lookup_stream(self, table, keys: Iterable[bytes]) -> Generator:
        """Program for a key stream, batched when the replay allows it.

        The replay mode is decided once per stream: ``batch`` and
        ``windowed`` streams capture every trace up front and replay them
        through :class:`~repro.sim.replay.TraceReplay`; serial fallbacks
        (faults, guard, windowed replay disabled) and non-batched backends
        keep the per-key lookup loop.
        """
        mode = self.replay.decide()
        if mode not in (REPLAY_BATCH, REPLAY_WINDOWED):
            outcomes = yield from LookupBackend.lookup_stream(self, table,
                                                              keys)
            return outcomes
        software = self.software
        values, traces = software.capture_lookups(table, keys)
        lock_cycles = READ_SIDE_CYCLES if software.with_locking else 0.0
        results = yield from self.replay.replay(
            traces, lock_cycles_each=lock_cycles, mode=mode)
        software.record_lookups(values, results)
        outcome_cls = LookupOutcome
        return [outcome_cls(value=value, found=value is not None,
                            cycles=result.cycles)
                for value, result in zip(values, results)]

    def traced_call(self, func, *args, lock_cycles: Optional[float] = None,
                    **kwargs) -> Generator:
        """Run any traced functional call on this core as a DES step.

        Captures the call's memory trace under this core's tracer, prices
        it on the core model (read-side lock overhead by default, matching
        the per-op cost the switch always charged), and spends the cycles
        as engine time.  Returns ``(value, ExecutionResult)``.
        """
        tracer = self.system.tracer
        value, trace = capture(tracer, self.core_id, func, *args, **kwargs)
        if lock_cycles is None:
            lock_cycles = (READ_SIDE_CYCLES if self.software.with_locking
                           else 0.0)
        result = self.software.core.execute(trace, lock_cycles=lock_cycles)
        if result.cycles:
            yield self.system.engine.timeout(result.cycles)
        return value, result


class HaloBlockingBackend(LookupBackend):
    """``LOOKUP_B`` issued back to back — the core blocks per query."""

    kind = BackendKind.HALO_BLOCKING
    replaces_emc = True

    def lookup(self, table, key: bytes) -> Generator:
        engine = self.system.engine
        start = engine.now
        result = yield from self.system.isa.lookup_b(self.core_id, table, key)
        return LookupOutcome(value=result.value, found=result.found,
                             cycles=engine.now - start, raw=result)


class HaloNonblockingBackend(LookupBackend):
    """The batched ``LOOKUP_NB`` + ``SNAPSHOT_READ`` idiom (§4.5).

    With a :class:`ResiliencePolicy` installed, every poll loop is bounded
    and the backend degrades to the software path per slice (see the
    policy's docstring).  Without one — the default — the cycle behaviour
    is byte-for-byte the original unbounded idiom.
    """

    kind = BackendKind.HALO_NONBLOCKING
    replaces_emc = True

    def __init__(self, system, core_id: int = 0,
                 policy: Optional[ResiliencePolicy] = None) -> None:
        super().__init__(system, core_id)
        self.policy = policy
        self._health: dict = {}
        self._fallback: Optional[SoftwareBackend] = None
        if policy is not None:
            registry = system.obs.metrics
            self._m_timeouts = registry.counter("exec.resilience.timeouts")
            self._m_retries = registry.counter("exec.resilience.retries")
            self._m_fallbacks = registry.counter("exec.resilience.fallbacks")
            self._m_degraded = registry.counter(
                "exec.resilience.degraded_lookups")
            self._m_probes = registry.counter("exec.resilience.probes")
            self._m_recoveries = registry.counter(
                "exec.resilience.recoveries")

    # -- health bookkeeping ------------------------------------------------
    def health_of(self, table) -> SliceHealth:
        """This backend's health record for the slice serving ``table``."""
        slice_id = self.system.hierarchy.interconnect.slice_of_table(
            table.table_addr)
        health = self._health.get(slice_id)
        if health is None:
            health = self._health[slice_id] = SliceHealth(slice_id,
                                                          self.policy)
        return health

    @property
    def resilience_events(self) -> List[Tuple[float, str, int]]:
        """All slices' fallback/recovery events, in simulated-time order."""
        events = [event for health in self._health.values()
                  for event in health.events]
        events.sort()
        return events

    @property
    def degraded_lookups(self) -> int:
        return sum(health.degraded_lookups for health in self._health.values())

    def lookup(self, table, key: bytes) -> Generator:
        if self.policy is not None:
            outcome = yield from self._resilient_lookup(table, key)
            return outcome
        engine = self.system.engine
        isa = self.system.isa
        start = engine.now
        process = yield from isa.lookup_nb(self.core_id, table, key)
        results = yield from isa.snapshot_read_poll(self.core_id, [process])
        result = results[0]
        return LookupOutcome(value=result.value, found=result.found,
                             cycles=engine.now - start, raw=result)

    def lookup_stream(self, table, keys: Iterable[bytes]) -> Generator:
        if self.policy is not None:
            # Per-key bounded waits: the batched poll shares one result
            # line across eight queries and cannot time one out alone.
            outcomes = yield from LookupBackend.lookup_stream(self, table,
                                                              keys)
            return outcomes
        keys = list(keys)
        engine = self.system.engine
        start = engine.now
        results = yield from self.system.isa.lookup_batch(
            self.core_id, table, keys)
        elapsed = engine.now - start
        per_op = elapsed / len(results) if results else 0.0
        return [LookupOutcome(value=r.value, found=r.found, cycles=per_op,
                              raw=r) for r in results]

    # -- the resilient path ------------------------------------------------
    def _resilient_lookup(self, table, key: bytes) -> Generator:
        engine = self.system.engine
        policy = self.policy
        health = self.health_of(table)
        start = engine.now
        if not health.healthy:
            if health.should_probe():
                self._m_probes.inc()
                outcome = yield from self._attempt(table, key, start, health,
                                                   probing=True)
                if outcome is not None:
                    return outcome
            health.degraded_lookups += 1
            self._m_degraded.inc()
            outcome = yield from self._fallback_lookup(table, key, start)
            return outcome
        outcome = yield from self._attempt(table, key, start, health,
                                           probing=False)
        if outcome is not None:
            return outcome
        if not policy.fallback:
            # Bounded-wait-then-block: no fallback path configured, so
            # finish the wait unbounded (never loses the lookup).
            process = yield from self.system.isa.lookup_nb(
                self.core_id, table, key)
            results = yield from self.system.isa.snapshot_read_poll(
                self.core_id, [process])
            result = results[0]
            return LookupOutcome(value=result.value, found=result.found,
                                 cycles=engine.now - start, raw=result)
        self._m_fallbacks.inc()
        if health.healthy:
            self.system.obs.trace.root(
                "resilience.degraded", engine.now,
                slice=health.slice_id, core=self.core_id).finish(engine.now)
        health.mark_degraded(engine.now)
        health.degraded_lookups += 1
        self._m_degraded.inc()
        outcome = yield from self._fallback_lookup(table, key, start)
        return outcome

    def _attempt(self, table, key: bytes, start: float, health: SliceHealth,
                 probing: bool) -> Generator:
        """One accelerated lookup under the poll budget; None on timeout.

        A timed-out query is abandoned, not cancelled: it still drains in
        the background and its result slot is simply never read.
        """
        engine = self.system.engine
        isa = self.system.isa
        policy = self.policy
        process = yield from isa.lookup_nb(self.core_id, table, key)
        results = yield from isa.snapshot_read_poll(
            self.core_id, [process], budget=policy.poll_budget)
        attempt = 0
        while results is None and attempt < policy.max_retries:
            self._m_timeouts.inc()
            self._m_retries.inc()
            yield engine.timeout(policy.backoff(attempt))
            attempt += 1
            results = yield from isa.snapshot_read_poll(
                self.core_id, [process], budget=policy.poll_budget)
        if results is None:
            self._m_timeouts.inc()
            if probing:
                health.note_probe_failure()
            return None
        result = results[0]
        if probing and health.note_probe_success(engine.now):
            self._m_recoveries.inc()
            self.system.obs.trace.root(
                "resilience.recovered", engine.now,
                slice=health.slice_id, core=self.core_id).finish(engine.now)
        return LookupOutcome(value=result.value, found=result.found,
                             cycles=engine.now - start, raw=result)

    def _fallback_lookup(self, table, key: bytes,
                         start: float) -> Generator:
        if self._fallback is None:
            self._fallback = SoftwareBackend(self.system, self.core_id)
        outcome = yield from self._fallback.lookup(table, key)
        return LookupOutcome(value=outcome.value, found=outcome.found,
                             cycles=self.system.engine.now - start,
                             raw=outcome.raw, degraded=True)

    def search(self, queries: Sequence[Tuple[Any, bytes]],
               first_match: bool = False) -> Generator:
        """Fan all queries out at once, one result line, one poll loop."""
        if not queries:
            return []
        engine = self.system.engine
        isa = self.system.isa
        start = engine.now
        pending = []
        for table, key in queries:
            process = yield from isa.lookup_nb(self.core_id, table, key)
            pending.append(process)
        results = yield from isa.snapshot_read_poll(self.core_id, pending)
        elapsed = engine.now - start
        per_op = elapsed / len(results) if results else 0.0
        return [LookupOutcome(value=r.value, found=r.found, cycles=per_op,
                              raw=r) for r in results]


class AdaptiveBackend(LookupBackend):
    """The hybrid controller's mode, re-evaluated every ``window`` lookups.

    Delegates each lookup to the software or non-blocking HALO sub-backend
    according to :class:`~repro.core.hybrid.HybridController`, feeding the
    controller's flow estimator on the software side exactly as the
    pre-backend adaptive episode runner did.
    """

    kind = BackendKind.ADAPTIVE
    replaces_emc = False

    def __init__(self, system, core_id: int = 0, window: int = 256,
                 policy: Optional[ResiliencePolicy] = None) -> None:
        super().__init__(system, core_id)
        self.window = window
        self.policy = policy
        self._software = SoftwareBackend(system, core_id)
        self._halo = HaloNonblockingBackend(system, core_id, policy=policy)
        self._in_window = 0

    @property
    def resilience_events(self) -> List[Tuple[float, str, int]]:
        """Fallback/recovery timeline of the HALO sub-backend."""
        return self._halo.resilience_events

    @property
    def degraded_lookups(self) -> int:
        return self._halo.degraded_lookups

    @property
    def active(self) -> LookupBackend:
        """The sub-backend the hybrid controller currently selects."""
        # Imported lazily through the system to avoid a static exec->core
        # edge; ComputeMode.HALO is the only non-software mode.
        if self.system.hybrid.mode.value == "halo":
            return self._halo
        return self._software

    def _observe_software(self, table, key: bytes) -> None:
        self.system.hybrid.observe_software_lookup(
            table.probe(key).primary_hash)

    def _tick_window(self, count: int = 1) -> None:
        self._in_window += count
        if self._in_window >= self.window:
            self._in_window = 0
            self.system.hybrid.end_window()

    def lookup(self, table, key: bytes) -> Generator:
        backend = self.active
        outcome = yield from backend.lookup(table, key)
        if backend is self._software:
            self._observe_software(table, key)
        self._tick_window()
        return outcome

    def lookup_stream(self, table, keys: Iterable[bytes]) -> Generator:
        """Window-chunked stream: batch HALO windows, serial software ones."""
        keys = list(keys)
        outcomes: List[LookupOutcome] = []
        for start in range(0, len(keys), self.window):
            chunk = keys[start:start + self.window]
            backend = self.active
            if backend is self._halo:
                chunk_outcomes = yield from backend.lookup_stream(table, chunk)
            else:
                chunk_outcomes = []
                for key in chunk:
                    outcome = yield from backend.lookup(table, key)
                    self._observe_software(table, key)
                    chunk_outcomes.append(outcome)
            outcomes.extend(chunk_outcomes)
            self.system.hybrid.end_window()
        return outcomes


_BACKENDS = {
    BackendKind.SOFTWARE: SoftwareBackend,
    BackendKind.HALO_BLOCKING: HaloBlockingBackend,
    BackendKind.HALO_NONBLOCKING: HaloNonblockingBackend,
    BackendKind.ADAPTIVE: AdaptiveBackend,
}


def make_backend(kind, system, core_id: int = 0, **kwargs) -> LookupBackend:
    """Build a backend from a :class:`BackendKind` or its string value."""
    if isinstance(kind, str):
        kind = BackendKind(kind)
    return _BACKENDS[kind](system, core_id=core_id, **kwargs)
