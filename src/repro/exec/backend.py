"""DES-native lookup backends — one execution model for every compute mode.

Historically the software baseline executed *outside* the simulation engine
(summed core cycles, ``engine.now`` untouched) while the HALO paths ran as
engine processes, so the two could never genuinely interleave on one shared
memory hierarchy.  This module unifies them: a :class:`LookupBackend` is a
factory of *DES generator programs* — software, HALO-blocking,
HALO-nonblocking, and the adaptive hybrid are all scheduled on the shared
:class:`~repro.sim.engine.Engine`, charge their cycles as simulated time,
and replay their memory accesses through the shared hierarchy.  Any mix of
backends can therefore be pinned to cores (see :mod:`repro.exec.cores`) and
contend for L1/LLC/DRAM/interconnect like collocated threads on real
hardware.

Every backend's ``lookup``/``lookup_stream``/``search`` return
:class:`LookupOutcome` values, so callers compare modes without re-imple-
menting per-mode dispatch.  The software backend additionally exposes
:meth:`SoftwareBackend.traced_call` — the primitive the virtual switch uses
to charge arbitrary traced structure operations (EMC probes, megaflow
installs) to its core.

This module deliberately imports nothing from :mod:`repro.core` at module
level: backends reach the ISA, hierarchy, and software engine through the
``HaloSystem`` facade passed to them, keeping the import layering
one-directional (``repro.exec`` sits between ``repro.core`` and the
workload layer — see ``scripts/check_layering.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Any, ClassVar, Generator, Iterable, List, Optional, Sequence, Tuple

from ..hashtable.locking import READ_SIDE_CYCLES
from ..sim.trace import capture


class BackendKind(Enum):
    """The four execution models a lookup stream can run under."""

    SOFTWARE = "software"
    HALO_BLOCKING = "halo-b"
    HALO_NONBLOCKING = "halo-nb"
    ADAPTIVE = "adaptive"


@dataclass
class LookupOutcome:
    """One lookup's result, uniform across backends.

    ``raw`` carries the backend-native result object when one exists (the
    :class:`~repro.core.query.QueryResult` for HALO paths); software
    lookups leave it ``None``.
    """

    value: Any
    found: bool
    cycles: float
    raw: Any = None


class LookupBackend(ABC):
    """A compute mode expressed as DES generator programs.

    Subclasses define :meth:`lookup`; the streaming and multi-table search
    programs have serial defaults built on it.  All generators must be
    driven by the system's engine (``engine.run_process`` for synchronous
    callers, ``engine.process`` for concurrent ones).
    """

    kind: ClassVar[BackendKind]
    #: True when the backend supersedes the software EMC layer (the HALO
    #: pipeline classifies everything through accelerated tuple-space
    #: search, keeping private caches clean — the Figure 12 property).
    replaces_emc: ClassVar[bool] = False

    def __init__(self, system, core_id: int = 0) -> None:
        self.system = system
        self.core_id = core_id

    @abstractmethod
    def lookup(self, table, key: bytes) -> Generator:
        """Program for one lookup; returns a :class:`LookupOutcome`."""

    def lookup_stream(self, table, keys: Iterable[bytes]) -> Generator:
        """Program for a key stream; returns ``List[LookupOutcome]``."""
        outcomes: List[LookupOutcome] = []
        for key in keys:
            outcome = yield from self.lookup(table, key)
            outcomes.append(outcome)
        return outcomes

    def search(self, queries: Sequence[Tuple[Any, bytes]],
               first_match: bool = False) -> Generator:
        """Program searching ``(table, key)`` pairs (tuple-space style).

        With ``first_match`` the search may stop at the first hit (the
        serialised idiom); backends that batch (non-blocking) still issue
        everything and let the caller pick the first hit.  Returns the
        ``List[LookupOutcome]`` actually executed, in query order.
        """
        outcomes: List[LookupOutcome] = []
        for table, key in queries:
            outcome = yield from self.lookup(table, key)
            outcomes.append(outcome)
            if first_match and outcome.found:
                break
        return outcomes

    def traced_call(self, func, *args, lock_cycles: Optional[float] = None,
                    **kwargs) -> Generator:
        """Program for one traced structure operation (software-only)."""
        raise NotImplementedError(
            f"{self.kind.value} backend cannot execute traced core "
            f"operations")


class SoftwareBackend(LookupBackend):
    """The DPDK-style baseline as an engine program.

    Cycle arithmetic is byte-for-byte the pre-DES path — the trace replays
    against the hierarchy and :class:`~repro.sim.core.CoreModel` prices it —
    but the cost is then spent as engine time, so software cores occupy the
    shared timeline and contend with whatever else is running.
    """

    kind = BackendKind.SOFTWARE
    replaces_emc = False

    def __init__(self, system, core_id: int = 0,
                 with_locking: bool = True) -> None:
        super().__init__(system, core_id)
        self.software = system.software_engine(core_id,
                                               with_locking=with_locking)

    @property
    def core(self):
        return self.software.core

    def lookup(self, table, key: bytes) -> Generator:
        value, result = self.software.lookup(table, key)
        if result.cycles:
            yield self.system.engine.timeout(result.cycles)
        return LookupOutcome(value=value, found=value is not None,
                             cycles=result.cycles)

    def traced_call(self, func, *args, lock_cycles: Optional[float] = None,
                    **kwargs) -> Generator:
        """Run any traced functional call on this core as a DES step.

        Captures the call's memory trace under this core's tracer, prices
        it on the core model (read-side lock overhead by default, matching
        the per-op cost the switch always charged), and spends the cycles
        as engine time.  Returns ``(value, ExecutionResult)``.
        """
        tracer = self.system.tracer
        value, trace = capture(tracer, self.core_id, func, *args, **kwargs)
        if lock_cycles is None:
            lock_cycles = (READ_SIDE_CYCLES if self.software.with_locking
                           else 0.0)
        result = self.software.core.execute(trace, lock_cycles=lock_cycles)
        if result.cycles:
            yield self.system.engine.timeout(result.cycles)
        return value, result


class HaloBlockingBackend(LookupBackend):
    """``LOOKUP_B`` issued back to back — the core blocks per query."""

    kind = BackendKind.HALO_BLOCKING
    replaces_emc = True

    def lookup(self, table, key: bytes) -> Generator:
        engine = self.system.engine
        start = engine.now
        result = yield from self.system.isa.lookup_b(self.core_id, table, key)
        return LookupOutcome(value=result.value, found=result.found,
                             cycles=engine.now - start, raw=result)


class HaloNonblockingBackend(LookupBackend):
    """The batched ``LOOKUP_NB`` + ``SNAPSHOT_READ`` idiom (§4.5)."""

    kind = BackendKind.HALO_NONBLOCKING
    replaces_emc = True

    def lookup(self, table, key: bytes) -> Generator:
        engine = self.system.engine
        isa = self.system.isa
        start = engine.now
        process = yield from isa.lookup_nb(self.core_id, table, key)
        results = yield from isa.snapshot_read_poll(self.core_id, [process])
        result = results[0]
        return LookupOutcome(value=result.value, found=result.found,
                             cycles=engine.now - start, raw=result)

    def lookup_stream(self, table, keys: Iterable[bytes]) -> Generator:
        keys = list(keys)
        engine = self.system.engine
        start = engine.now
        results = yield from self.system.isa.lookup_batch(
            self.core_id, table, keys)
        elapsed = engine.now - start
        per_op = elapsed / len(results) if results else 0.0
        return [LookupOutcome(value=r.value, found=r.found, cycles=per_op,
                              raw=r) for r in results]

    def search(self, queries: Sequence[Tuple[Any, bytes]],
               first_match: bool = False) -> Generator:
        """Fan all queries out at once, one result line, one poll loop."""
        if not queries:
            return []
        engine = self.system.engine
        isa = self.system.isa
        start = engine.now
        pending = []
        for table, key in queries:
            process = yield from isa.lookup_nb(self.core_id, table, key)
            pending.append(process)
        results = yield from isa.snapshot_read_poll(self.core_id, pending)
        elapsed = engine.now - start
        per_op = elapsed / len(results) if results else 0.0
        return [LookupOutcome(value=r.value, found=r.found, cycles=per_op,
                              raw=r) for r in results]


class AdaptiveBackend(LookupBackend):
    """The hybrid controller's mode, re-evaluated every ``window`` lookups.

    Delegates each lookup to the software or non-blocking HALO sub-backend
    according to :class:`~repro.core.hybrid.HybridController`, feeding the
    controller's flow estimator on the software side exactly as the
    pre-backend adaptive episode runner did.
    """

    kind = BackendKind.ADAPTIVE
    replaces_emc = False

    def __init__(self, system, core_id: int = 0, window: int = 256) -> None:
        super().__init__(system, core_id)
        self.window = window
        self._software = SoftwareBackend(system, core_id)
        self._halo = HaloNonblockingBackend(system, core_id)
        self._in_window = 0

    @property
    def active(self) -> LookupBackend:
        """The sub-backend the hybrid controller currently selects."""
        # Imported lazily through the system to avoid a static exec->core
        # edge; ComputeMode.HALO is the only non-software mode.
        if self.system.hybrid.mode.value == "halo":
            return self._halo
        return self._software

    def _observe_software(self, table, key: bytes) -> None:
        self.system.hybrid.observe_software_lookup(
            table.probe(key).primary_hash)

    def _tick_window(self, count: int = 1) -> None:
        self._in_window += count
        if self._in_window >= self.window:
            self._in_window = 0
            self.system.hybrid.end_window()

    def lookup(self, table, key: bytes) -> Generator:
        backend = self.active
        outcome = yield from backend.lookup(table, key)
        if backend is self._software:
            self._observe_software(table, key)
        self._tick_window()
        return outcome

    def lookup_stream(self, table, keys: Iterable[bytes]) -> Generator:
        """Window-chunked stream: batch HALO windows, serial software ones."""
        keys = list(keys)
        outcomes: List[LookupOutcome] = []
        for start in range(0, len(keys), self.window):
            chunk = keys[start:start + self.window]
            backend = self.active
            if backend is self._halo:
                chunk_outcomes = yield from backend.lookup_stream(table, chunk)
            else:
                chunk_outcomes = []
                for key in chunk:
                    outcome = yield from backend.lookup(table, key)
                    self._observe_software(table, key)
                    chunk_outcomes.append(outcome)
            outcomes.extend(chunk_outcomes)
            self.system.hybrid.end_window()
        return outcomes


_BACKENDS = {
    BackendKind.SOFTWARE: SoftwareBackend,
    BackendKind.HALO_BLOCKING: HaloBlockingBackend,
    BackendKind.HALO_NONBLOCKING: HaloNonblockingBackend,
    BackendKind.ADAPTIVE: AdaptiveBackend,
}


def make_backend(kind, system, core_id: int = 0, **kwargs) -> LookupBackend:
    """Build a backend from a :class:`BackendKind` or its string value."""
    if isinstance(kind, str):
        kind = BackendKind(kind)
    return _BACKENDS[kind](system, core_id=core_id, **kwargs)
