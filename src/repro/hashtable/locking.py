"""Software optimistic locking (the DPDK ``rte_hash`` read-write concurrency
scheme the paper profiles in §3.4).

Readers snapshot a per-table *change counter* before probing and validate it
afterwards; a concurrent cuckoo displacement bumps the counter and forces the
reader to retry.  Writers serialise on a table mutex (modelled, not OS-level).

The paper measures this scheme at **13.1% of total execution time**; the cost
model below charges an instruction overhead per read-side critical section
plus the full probe cost again on each retry.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.trace import InstructionMix

#: Extra instructions per read-side acquire+validate (two acquire-loads of the
#: counter, fences, compare/branch).  At ~0.5 CPI plus one L1-resident load
#: pair this lands at ≈23 cycles on a ~175-cycle LLC-resident lookup — the
#: paper's 13.1%.
READ_SIDE_MIX = InstructionMix(loads=18, stores=8, arithmetic=10, others=10)

#: Cycle cost charged per read-side critical section (see module docstring).
READ_SIDE_CYCLES = 23.0

#: Cycle cost of a writer acquiring/releasing the table lock.
WRITE_SIDE_CYCLES = 48.0


@dataclass
class LockStats:
    read_sections: int = 0
    read_retries: int = 0
    write_sections: int = 0


class OptimisticLock:
    """Functional optimistic lock with retry semantics.

    Usage (reader)::

        token = lock.read_begin()
        ... probe ...
        if not lock.read_validate(token):
            retry

    Writers wrap mutations in :meth:`write_begin` / :meth:`write_end`; every
    write invalidates concurrent readers.
    """

    def __init__(self) -> None:
        self.counter = 0
        self._writing = False
        self.stats = LockStats()

    # -- reader side -----------------------------------------------------------
    def read_begin(self) -> int:
        self.stats.read_sections += 1
        return self.counter

    def read_validate(self, token: int) -> bool:
        valid = (token == self.counter) and not self._writing
        if not valid:
            self.stats.read_retries += 1
        return valid

    # -- writer side -----------------------------------------------------------
    def write_begin(self) -> None:
        if self._writing:
            raise RuntimeError("nested write_begin on optimistic lock")
        self._writing = True
        self.stats.write_sections += 1

    def write_end(self) -> None:
        if not self._writing:
            raise RuntimeError("write_end without write_begin")
        self.counter += 1
        self._writing = False

    # -- cost model --------------------------------------------------------------
    def read_overhead_cycles(self, retries: int = 0,
                             probe_cycles: float = 0.0) -> float:
        """Cycles spent on locking for one lookup with ``retries`` retries."""
        return READ_SIDE_CYCLES * (1 + retries) + probe_cycles * retries

    def write_overhead_cycles(self) -> float:
        return WRITE_SIDE_CYCLES
