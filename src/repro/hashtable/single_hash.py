"""Single-function hash table (SFH) — the Figure 4 baseline.

One hash function, one candidate bucket per key, overflow chained into
spill buckets.  Without a second choice or displacement, keeping the
overflow probability low requires heavy over-provisioning, so realistic
sizings run at ~20% slot utilisation (paper §3.3: "most of the table
buckets only have one or two entries occupied") and the table's cache
footprint is several times the cuckoo table's — which is what produces the
LLC-miss cliff at ~100K flows in Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..sim.memory import AddressAllocator
from ..sim.trace import InstructionMix, Tracer, NULL_TRACER
from .hashing import hash_bytes, signature_of
from .layout import StandaloneAllocator, TableLayout, allocate_table, next_power_of_two

#: SFH lookup is simpler than cuckoo's (one bucket, no alt-index math).
LOOKUP_MIX = InstructionMix(loads=62, stores=20, arithmetic=30, others=50)
INSERT_MIX = InstructionMix(loads=70, stores=50, arithmetic=40, others=60)
#: Following an overflow-chain link costs an extra dependent line read.
CHAIN_HOP_MIX = InstructionMix(loads=10, stores=0, arithmetic=6, others=8)

#: Default over-provisioning: one bucket per expected key.  With 8-way
#: buckets this is the ~12.5–20% utilisation regime the paper reports.
DEFAULT_BUCKETS_PER_KEY = 1.0


@dataclass
class SfhStats:
    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    chain_hops: int = 0
    overflows: int = 0


class SingleHashTable:
    """A 1-choice hash table with per-bucket overflow chaining."""

    def __init__(
        self,
        expected_keys: int,
        key_bytes: int = 16,
        assoc: int = 8,
        buckets_per_key: float = DEFAULT_BUCKETS_PER_KEY,
        allocator: Optional[AddressAllocator] = None,
        tracer: Tracer = NULL_TRACER,
        seed: int = 0x0F1E,
        name: str = "sfh",
    ) -> None:
        if expected_keys < 1:
            raise ValueError("expected_keys must be positive")
        self.key_bytes = key_bytes
        self.assoc = assoc
        self.seed = seed
        self.name = name
        self.tracer = tracer
        num_buckets = next_power_of_two(
            max(2, int(expected_keys * buckets_per_key)))
        allocator = allocator or StandaloneAllocator()
        self.layout: TableLayout = allocate_table(
            allocator, name, num_buckets, assoc, key_bytes)
        self._mask = num_buckets - 1
        # bucket -> list of (signature, key, value); entries beyond ``assoc``
        # live in overflow lines.
        self._buckets: List[List[Tuple[int, bytes, Any]]] = [
            [] for _ in range(num_buckets)]
        # Overflow lines are allocated lazily from a spill region.
        self._spill = allocator.alloc(
            max(64, num_buckets * 8), f"{name}.spill")
        self._size = 0
        self.stats = SfhStats()
        self._key_scratch = allocator.alloc(64, f"{name}.keybuf").base

    def __len__(self) -> int:
        return self._size

    @property
    def num_buckets(self) -> int:
        return self.layout.num_buckets

    @property
    def capacity(self) -> int:
        return self.layout.num_slots

    @property
    def load_factor(self) -> float:
        """In-bucket slot utilisation (excludes overflow entries)."""
        in_bucket = sum(min(len(b), self.assoc) for b in self._buckets)
        return in_bucket / self.capacity

    def bucket_occupancy_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for bucket in self._buckets:
            histogram[len(bucket)] = histogram.get(len(bucket), 0) + 1
        return histogram

    # -- internals ---------------------------------------------------------------
    def _index(self, key: bytes) -> Tuple[int, int]:
        if len(key) != self.key_bytes:
            raise ValueError("bad key length")
        digest = hash_bytes(key, self.seed)
        return digest & self._mask, signature_of(digest)

    def _overflow_addr(self, bucket_index: int, chain_hop: int) -> int:
        # Deterministic synthetic address for the hop-th overflow line.
        offset = ((bucket_index * 7 + chain_hop) * 64) % self._spill.size
        return self._spill.base + offset

    # -- operations ----------------------------------------------------------------
    def lookup(self, key: bytes, key_addr: Optional[int] = None) -> Any:
        index, signature = self._index(key)
        self.stats.lookups += 1
        bucket = self._buckets[index]
        tracer = self.tracer
        if tracer.enabled:
            tracer.load(key_addr if key_addr is not None else self._key_scratch,
                        self.key_bytes)
            tracer.barrier()
            tracer.load(self.layout.bucket_addr(index), 64)
        mix = LOOKUP_MIX
        value = None
        found = False
        kv_probed = False
        for position, (stored_sig, stored_key, stored_value) in enumerate(bucket):
            if position and position % self.assoc == 0:
                # Crossed into an overflow line: dependent chain hop.
                hop = position // self.assoc
                self.stats.chain_hops += 1
                if tracer.enabled:
                    tracer.barrier()
                    tracer.load(self._overflow_addr(index, hop), 64)
                mix = mix + CHAIN_HOP_MIX
            if stored_sig != signature:
                continue
            if not kv_probed and tracer.enabled:
                tracer.barrier()
            kv_probed = True
            slot = min(index * self.assoc + (position % self.assoc),
                       self.layout.num_slots - 1)
            if tracer.enabled:
                tracer.load(self.layout.kv_addr(slot),
                            self.layout.kv_slot_bytes)
            if stored_key == key:
                value = stored_value
                found = True
                break
        if found:
            self.stats.hits += 1
        if tracer.enabled:
            tracer.count(loads=mix.loads, stores=mix.stores,
                         arithmetic=mix.arithmetic, others=mix.others)
        return value

    def insert(self, key: bytes, value: Any) -> bool:
        index, signature = self._index(key)
        self.stats.inserts += 1
        bucket = self._buckets[index]
        tracer = self.tracer
        if tracer.enabled:
            tracer.load(self._key_scratch, self.key_bytes)
            tracer.barrier()
            tracer.load(self.layout.bucket_addr(index), 64)
            tracer.barrier()
            tracer.store(self.layout.bucket_addr(index), 64)
            tracer.count(loads=INSERT_MIX.loads, stores=INSERT_MIX.stores,
                         arithmetic=INSERT_MIX.arithmetic,
                         others=INSERT_MIX.others)
        for position, (stored_sig, stored_key, _value) in enumerate(bucket):
            if stored_sig == signature and stored_key == key:
                bucket[position] = (signature, key, value)
                return True
        if len(bucket) >= self.assoc:
            self.stats.overflows += 1
        bucket.append((signature, key, value))
        self._size += 1
        return True

    def delete(self, key: bytes) -> bool:
        index, signature = self._index(key)
        bucket = self._buckets[index]
        for position, (stored_sig, stored_key, _value) in enumerate(bucket):
            if stored_sig == signature and stored_key == key:
                del bucket[position]
                self._size -= 1
                return True
        return False
