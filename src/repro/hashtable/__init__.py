"""Hash-table substrates: DPDK-style cuckoo hash and the SFH baseline."""

from .cuckoo import (
    CuckooHashTable,
    CuckooStats,
    LOOKUP_MIX,
    LookupPlan,
    TableFull,
)
from .hashing import hash_bytes, hash32, mix64, secondary_index, signature_of
from .layout import (
    StandaloneAllocator,
    TableLayout,
    allocate_table,
    next_power_of_two,
)
from .locking import OptimisticLock, READ_SIDE_CYCLES, WRITE_SIDE_CYCLES
from .single_hash import SingleHashTable

__all__ = [
    "CuckooHashTable",
    "CuckooStats",
    "LOOKUP_MIX",
    "LookupPlan",
    "OptimisticLock",
    "READ_SIDE_CYCLES",
    "SingleHashTable",
    "StandaloneAllocator",
    "TableFull",
    "TableLayout",
    "WRITE_SIDE_CYCLES",
    "allocate_table",
    "hash32",
    "hash_bytes",
    "mix64",
    "next_power_of_two",
    "secondary_index",
    "signature_of",
]
