"""Hash functions used by the flow tables and by HALO's hash unit.

Pure-Python, deterministic, seedable mixers.  The HALO hash unit (paper
Figure 6) is "implemented with simple logics, such as boolean, shift, and
other bit-wise operations" — exactly the operations below, so the same
function doubles as the functional model of the accelerator's hash unit.
"""

from __future__ import annotations

import struct

MASK64 = 0xFFFFFFFFFFFFFFFF
MASK32 = 0xFFFFFFFF


def mix64(value: int) -> int:
    """SplitMix64 finaliser: xor-shift / multiply rounds (hash-unit ops)."""
    value &= MASK64
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & MASK64
    return value ^ (value >> 31)


def hash_bytes(data: bytes, seed: int = 0) -> int:
    """64-bit hash of an arbitrary byte string (jhash/xxhash-style rounds).

    Processes 8-byte lanes with multiply-rotate mixing, then finalises.
    """
    acc = (seed ^ (len(data) * 0x9E3779B97F4A7C15)) & MASK64
    view = memoryview(data)
    offset = 0
    while offset + 8 <= len(data):
        (lane,) = struct.unpack_from("<Q", view, offset)
        acc = (acc ^ mix64(lane)) * 0xC2B2AE3D27D4EB4F & MASK64
        acc = ((acc << 31) | (acc >> 33)) & MASK64
        offset += 8
    if offset < len(data):
        tail = bytes(view[offset:]) + b"\x00" * (8 - (len(data) - offset))
        (lane,) = struct.unpack_from("<Q", tail, 0)
        acc = (acc ^ mix64(lane)) * 0x165667B19E3779F9 & MASK64
    return mix64(acc)


def hash32(data: bytes, seed: int = 0) -> int:
    return hash_bytes(data, seed) & MASK32


def signature_of(hash_value: int) -> int:
    """16-bit bucket signature stored per entry (paper Figure 2b)."""
    return (hash_value >> 16) & 0xFFFF


def secondary_index(primary_index: int, signature: int, mask: int) -> int:
    """DPDK rte_hash alternative-bucket derivation.

    The alternative bucket is computed from the *signature*, so an entry can
    be moved between its two buckets knowing only its stored signature —
    required for cuckoo displacement.
    """
    return (primary_index ^ mix64(signature | 0x5BD1)) & mask


def crc_like(value: int, seed: int = 0) -> int:
    """A cheap 32-bit mixer for integer keys (flow-register indexing)."""
    return mix64(value ^ (seed * 0x9E3779B97F4A7C15)) & MASK32
