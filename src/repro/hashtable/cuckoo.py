"""Cuckoo hash table — a functional model of DPDK's ``rte_hash``.

This is the paper's software baseline *and* the data structure HALO
accelerates.  Properties reproduced faithfully:

* 8-way set-associative buckets, one 64-byte cache line each, holding
  {16-bit signature, key-value slot pointer} pairs (Figure 2b);
* two candidate buckets per key; the alternative bucket index is derived
  from the signature so displacement needs no key re-hash;
* BFS cuckoo displacement on insert ("cuckoo move"), giving ~95% achievable
  occupancy without rehashing (§3.3);
* a contiguous key-value array referenced by slot index;
* optional memory tracing: every probe emits the loads/stores the
  equivalent C code performs, with dependency groups (key → buckets → kv).

The per-lookup instruction mix is calibrated to the paper's Table 1:
210 instructions — 36.2% loads, 11.8% stores, 21.0% arithmetic, 30.9% other.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..sim.memory import AddressAllocator
from ..sim.trace import InstructionMix, MemOp, MemOpKind, Tracer, NULL_TRACER
from .hashing import hash_bytes, secondary_index, signature_of
from .layout import StandaloneAllocator, TableLayout, allocate_table, next_power_of_two
from .locking import OptimisticLock

#: Paper Table 1 — average instruction cost of one lookup.
LOOKUP_MIX = InstructionMix(loads=76, stores=25, arithmetic=44, others=65)
#: Additional work when a signature collision forces an extra key compare.
SIG_COLLISION_MIX = InstructionMix(loads=4, stores=0, arithmetic=6, others=2)
#: Per 8-byte key lane beyond the 16-byte baseline: extra hash rounds and
#: key-compare work (§3.4 profiles 4-64 B headers).
EXTRA_LANE_MIX = InstructionMix(loads=2, stores=0, arithmetic=5, others=1)
#: Insert cost (hash + both-bucket scan + slot claim + entry write).
INSERT_MIX = InstructionMix(loads=92, stores=58, arithmetic=58, others=82)
#: Extra work per cuckoo displacement hop.
KICK_MIX = InstructionMix(loads=16, stores=18, arithmetic=10, others=12)
#: Delete cost.
DELETE_MIX = InstructionMix(loads=70, stores=30, arithmetic=40, others=55)

DEFAULT_ASSOC = 8
DEFAULT_KEY_BYTES = 16
MAX_BFS_NODES = 1024


class TableFull(RuntimeError):
    """Raised when an insert cannot find a displacement path."""


@dataclass
class Entry:
    """One occupied bucket slot."""

    signature: int
    slot: int


@dataclass(slots=True)
class LookupPlan:
    """The structured probe a lookup performs.

    Shared between the software path (traced, replayed on a core) and the
    HALO accelerator (replayed CHA-side) so both execute the *same* probe.
    One is allocated per probe on every path, hence ``slots``.
    """

    key: bytes
    primary_hash: int
    signature: int
    primary_index: int
    secondary_index: int
    primary_addr: int
    secondary_addr: int
    buckets_scanned: int = 0
    sig_compares: int = 0
    #: Key-value addresses probed while scanning the primary / secondary
    #: bucket (signature matches needing a full key compare).
    kv_probes_primary: List[int] = field(default_factory=list)
    kv_probes_secondary: List[int] = field(default_factory=list)
    found: bool = False
    found_in_secondary: bool = False
    value: Any = None
    slot: Optional[int] = None

    @property
    def kv_probes(self) -> List[int]:
        return self.kv_probes_primary + self.kv_probes_secondary


@dataclass
class CuckooStats:
    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    insert_failures: int = 0
    kicks: int = 0
    deletes: int = 0
    sig_collisions: int = 0


class CuckooHashTable:
    """A 2-choice, ``assoc``-way cuckoo hash over fixed-size byte keys."""

    def __init__(
        self,
        capacity: int,
        key_bytes: int = DEFAULT_KEY_BYTES,
        assoc: int = DEFAULT_ASSOC,
        allocator: Optional[AddressAllocator] = None,
        tracer: Tracer = NULL_TRACER,
        seed: int = 0x5EED,
        name: str = "cuckoo",
        max_kick_depth: int = 100,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.key_bytes = key_bytes
        self.assoc = assoc
        self.seed = seed
        self.name = name
        self.max_kick_depth = max_kick_depth
        self.tracer = tracer
        #: 8-byte hash/compare lanes beyond the 16-byte (2-lane) baseline.
        self.extra_key_lanes = max(0, -(-key_bytes // 8) - 2)
        num_buckets = next_power_of_two(max(2, (capacity + assoc - 1) // assoc))
        allocator = allocator or StandaloneAllocator()
        self.layout: TableLayout = allocate_table(
            allocator, name, num_buckets, assoc, key_bytes)
        self._mask = num_buckets - 1
        self._buckets: List[List[Entry]] = [[] for _ in range(num_buckets)]
        self._kv: List[Optional[Tuple[bytes, Any]]] = [None] * self.layout.num_slots
        self._free_slots = list(range(self.layout.num_slots - 1, -1, -1))
        self._size = 0
        self.stats = CuckooStats()
        self.lock = OptimisticLock()
        # key -> per-key probe geometry cache, see :meth:`_indices`.
        self._hash_memo: dict = {}
        # Layout constants hoisted off the hot probe path (pure, fixed at
        # construction; ``kv_slot_bytes`` is a computed property).
        self._kv_base = self.layout.key_values.base
        self._kv_slot_bytes = self.layout.kv_slot_bytes
        # key -> (mutation stamp, op tuple, mix) memo for lookup trace
        # emission; any structural change bumps ``_mutations`` and lets
        # stale entries age out lazily.  See :meth:`lookup`.
        self._trace_memo: dict = {}
        self._mutations = 0
        # Scratch buffer standing in for the caller's key storage.
        self._key_scratch = allocator.alloc(64, f"{name}.keybuf").base

    # -- geometry / introspection -------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def num_buckets(self) -> int:
        return self.layout.num_buckets

    @property
    def capacity(self) -> int:
        return self.layout.num_slots

    @property
    def load_factor(self) -> float:
        return self._size / self.capacity

    @property
    def table_addr(self) -> int:
        return self.layout.table_addr

    def bucket_utilisation(self) -> float:
        """Fraction of bucket slots occupied — ~95% achievable (paper §3.3)."""
        return self.load_factor

    def bucket_occupancy_histogram(self) -> Dict[int, int]:
        """#buckets by occupied-entry count (paper compares vs SFH)."""
        histogram: Dict[int, int] = {}
        for bucket in self._buckets:
            histogram[len(bucket)] = histogram.get(len(bucket), 0) + 1
        return histogram

    def bucket_keys(self, bucket_index: int) -> List[bytes]:
        """The keys stored in one bucket (cache-style eviction support)."""
        keys = []
        for entry in self._buckets[bucket_index]:
            stored = self._kv[entry.slot]
            if stored is not None:
                keys.append(stored[0])
        return keys

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        for bucket in self._buckets:
            for entry in bucket:
                stored = self._kv[entry.slot]
                if stored is not None:
                    yield stored

    #: Hash-memo entries kept before the cache resets (bounds memory on
    #: streaming workloads that never repeat a key).
    _HASH_MEMO_CAP = 1 << 16

    # -- hashing ------------------------------------------------------------------
    def _check_key(self, key: bytes) -> None:
        if len(key) != self.key_bytes:
            raise ValueError(
                f"key length {len(key)} != table key size {self.key_bytes}")

    def _indices(self, key: bytes) -> Tuple[int, int, int, int, int, int]:
        """(primary_hash, primary_index, signature, secondary_index,
        primary_addr, secondary_addr).

        Memoised per key: everything here is pure (seed, bucket mask, and
        layout are fixed for the table's lifetime) and NFV key streams
        revisit the same flows constantly.  The memo is capacity-capped so
        million-flow churn can't grow it without bound.
        """
        memo = self._hash_memo
        cached = memo.get(key)
        if cached is None:
            if len(memo) >= self._HASH_MEMO_CAP:
                memo.clear()
            primary_hash = hash_bytes(key, self.seed)
            index1 = primary_hash & self._mask
            signature = signature_of(primary_hash)
            index2 = secondary_index(index1, signature, self._mask)
            cached = memo[key] = (
                primary_hash, index1, signature, index2,
                self.layout.bucket_addr(index1),
                self.layout.bucket_addr(index2))
        return cached

    def _alt_index(self, index: int, signature: int) -> int:
        return secondary_index(index, signature, self._mask)

    # -- probe (shared by software and HALO paths) ---------------------------------
    def probe(self, key: bytes) -> LookupPlan:
        """Pure functional probe: no tracing, no stats mutation."""
        self._check_key(key)
        primary_hash, index1, signature, index2, addr1, addr2 = (
            self._indices(key))
        plan = LookupPlan(
            key=key,
            primary_hash=primary_hash,
            signature=signature,
            primary_index=index1,
            secondary_index=index2,
            primary_addr=addr1,
            secondary_addr=addr2,
        )
        buckets = self._buckets
        kv = self._kv
        kv_base = self._kv_base
        kv_slot_bytes = self._kv_slot_bytes
        for which, index in enumerate((index1, index2)):
            plan.buckets_scanned += 1
            kv_probes = (plan.kv_probes_secondary if which
                         else plan.kv_probes_primary)
            for entry in buckets[index]:
                plan.sig_compares += 1
                if entry.signature != signature:
                    continue
                slot = entry.slot
                stored = kv[slot]
                kv_probes.append(kv_base + slot * kv_slot_bytes)
                if stored is not None and stored[0] == key:
                    plan.found = True
                    plan.found_in_secondary = bool(which)
                    plan.value = stored[1]
                    plan.slot = slot
                    return plan
            if which == 0 and index2 == index1:
                break  # degenerate: both candidates are the same bucket
        return plan

    # -- lookup (software path, traced) ---------------------------------------------
    def lookup(self, key: bytes, key_addr: Optional[int] = None) -> Any:
        """Find ``key``; returns the stored value or ``None``.

        Emits the software lookup's memory trace and instruction mix into
        the table's tracer (paper §4.3 query procedure, DPDK both-bucket
        prefetch included).
        """
        plan = self.probe(key)
        self.stats.lookups += 1
        if plan.found:
            self.stats.hits += 1
        extra_compares = max(0, len(plan.kv_probes) - 1)
        self.stats.sig_collisions += extra_compares

        tracer = self.tracer
        if tracer.enabled:
            # A lookup's trace is a pure function of the key and the
            # table's contents, so memoise the emitted op sequence per
            # key and invalidate on any mutation (NFV key streams repeat
            # flows constantly; the real hardware's flow cache exploits
            # exactly this locality).  ``key_addr`` callers place the key
            # load at a caller-chosen address, so only the default-scratch
            # form is cached.
            if key_addr is None:
                memo = self._trace_memo
                cached = memo.get(key)
                if cached is not None and cached[0] == self._mutations:
                    tracer.emit_trace(cached[1], 2, cached[2])
                    return plan.value
            # Relative dependency groups: key load (0) -> bucket reads
            # (1) -> kv probes (2), two barriers total — identical to the
            # serial load/barrier emission this replaces.
            ops = [MemOp(key_addr if key_addr is not None
                         else self._key_scratch, self.key_bytes,
                         MemOpKind.LOAD, 0),
                   MemOp(plan.primary_addr, 64, MemOpKind.LOAD, 1)]
            if plan.secondary_addr != plan.primary_addr:
                ops.append(MemOp(plan.secondary_addr, 64, MemOpKind.LOAD, 1))
            kv_slot_bytes = self._kv_slot_bytes
            for kv_addr in plan.kv_probes:
                ops.append(MemOp(kv_addr, kv_slot_bytes, MemOpKind.LOAD, 2))
            mix = LOOKUP_MIX
            for _ in range(extra_compares):
                mix = mix + SIG_COLLISION_MIX
            for _ in range(self.extra_key_lanes):
                mix = mix + EXTRA_LANE_MIX
            ops = tuple(ops)
            tracer.emit_trace(ops, 2, mix)
            if key_addr is None:
                if len(memo) >= self._HASH_MEMO_CAP:
                    memo.clear()
                memo[key] = (self._mutations, ops, mix)
        return plan.value

    # -- insert -----------------------------------------------------------------------
    def insert(self, key: bytes, value: Any) -> bool:
        """Insert or update ``key``; returns False only if the table is full."""
        self._check_key(key)
        self._mutations += 1
        plan = self.probe(key)
        self.stats.inserts += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.load(self._key_scratch, self.key_bytes)
            tracer.barrier()
            tracer.load(plan.primary_addr, 64)
            tracer.load(plan.secondary_addr, 64)
            tracer.barrier()
            tracer.count(loads=INSERT_MIX.loads, stores=INSERT_MIX.stores,
                         arithmetic=INSERT_MIX.arithmetic,
                         others=INSERT_MIX.others)

        if plan.found:
            # Update in place.
            self._kv[plan.slot] = (key, value)
            if tracer.enabled:
                tracer.store(self.layout.kv_addr(plan.slot),
                             self.layout.kv_slot_bytes)
            return True

        placed = self._place(key, value, plan)
        if not placed:
            self.stats.insert_failures += 1
        return placed

    def _place(self, key: bytes, value: Any, plan: LookupPlan) -> bool:
        for index in (plan.primary_index, plan.secondary_index):
            if len(self._buckets[index]) < self.assoc:
                # A plain slot claim is a single-entry write — readers never
                # see a torn state, so no version bump (rte_hash behaviour).
                self._store_entry(index, plan.signature, key, value)
                return True
        path = self._find_kick_path(plan.primary_index, plan.secondary_index)
        if path is None:
            return False
        # Cuckoo moves relocate entries readers may be chasing: the
        # optimistic version must change so concurrent readers retry
        # (the Figure 7a race).
        self.lock.write_begin()
        try:
            self._apply_kick_path(path)
        finally:
            self.lock.write_end()
        destination = path[0][0]
        self._store_entry(destination, plan.signature, key, value)
        return True

    def _store_entry(self, bucket_index: int, signature: int, key: bytes,
                     value: Any) -> None:
        if not self._free_slots:
            raise TableFull(f"{self.name}: key-value array exhausted")
        slot = self._free_slots.pop()
        self._kv[slot] = (key, value)
        self._buckets[bucket_index].append(Entry(signature, slot))
        self._size += 1
        if self.tracer.enabled:
            self.tracer.barrier()
            self.tracer.store(self.layout.kv_addr(slot),
                              self.layout.kv_slot_bytes)
            self.tracer.store(self.layout.bucket_addr(bucket_index), 64)

    # -- BFS cuckoo displacement ---------------------------------------------------
    def _find_kick_path(self, index1: int,
                        index2: int) -> Optional[List[Tuple[int, int]]]:
        """BFS for a chain of moves freeing a slot in ``index1`` or ``index2``.

        Returns ``[(bucket, entry_position), ...]`` from the bucket that will
        receive the new key down to the bucket with a free slot, or ``None``.
        """
        # Each queue item: (bucket_index, path_of_moves) where path records
        # (source_bucket, entry_position) hops taken to get here.
        queue: deque = deque()
        queue.append((index1, [(index1, -1)]))
        if index2 != index1:
            queue.append((index2, [(index2, -1)]))
        visited = {index1, index2}
        nodes = 0
        while queue and nodes < MAX_BFS_NODES:
            bucket_index, path = queue.popleft()
            nodes += 1
            if len(path) - 1 > self.max_kick_depth:
                continue
            bucket = self._buckets[bucket_index]
            if len(bucket) < self.assoc:
                return path
            for position, entry in enumerate(bucket):
                alt = self._alt_index(bucket_index, entry.signature)
                if alt in visited:
                    continue
                visited.add(alt)
                hop = path[:-1] + [(bucket_index, position), (alt, -1)]
                queue.append((alt, hop))
        return None

    def _apply_kick_path(self, path: List[Tuple[int, int]]) -> None:
        """Execute the moves, last hop first ("cuckoo move", Figure 7a)."""
        # path = [(b0,-1)] means b0 already has room; longer paths record the
        # entry positions to displace at each intermediate bucket.
        moves = [(bucket, position) for bucket, position in path
                 if position >= 0]
        for bucket_index, position in reversed(moves):
            entry = self._buckets[bucket_index][position]
            destination = self._alt_index(bucket_index, entry.signature)
            if len(self._buckets[destination]) >= self.assoc:
                raise RuntimeError("BFS kick path invalidated mid-move")
            del self._buckets[bucket_index][position]
            self._buckets[destination].append(entry)
            self.stats.kicks += 1
            if self.tracer.enabled:
                self.tracer.barrier()
                self.tracer.load(self.layout.bucket_addr(bucket_index), 64)
                self.tracer.store(self.layout.bucket_addr(bucket_index), 64)
                self.tracer.store(self.layout.bucket_addr(destination), 64)
                self.tracer.count(loads=KICK_MIX.loads, stores=KICK_MIX.stores,
                                  arithmetic=KICK_MIX.arithmetic,
                                  others=KICK_MIX.others)

    # -- delete -------------------------------------------------------------------------
    def delete(self, key: bytes) -> bool:
        self._mutations += 1
        plan = self.probe(key)
        self.stats.deletes += 1
        if not plan.found:
            return False
        bucket_index = (plan.secondary_index if plan.found_in_secondary
                        else plan.primary_index)
        bucket = self._buckets[bucket_index]
        for position, entry in enumerate(bucket):
            if entry.slot == plan.slot:
                self.lock.write_begin()
                del bucket[position]
                self._kv[plan.slot] = None
                self._free_slots.append(plan.slot)
                self._size -= 1
                self.lock.write_end()
                if self.tracer.enabled:
                    self.tracer.load(self.layout.bucket_addr(bucket_index), 64)
                    self.tracer.barrier()
                    self.tracer.store(self.layout.bucket_addr(bucket_index), 64)
                    self.tracer.store(self.layout.kv_addr(plan.slot),
                                      self.layout.kv_slot_bytes)
                    self.tracer.count(
                        loads=DELETE_MIX.loads, stores=DELETE_MIX.stores,
                        arithmetic=DELETE_MIX.arithmetic,
                        others=DELETE_MIX.others)
                return True
        raise RuntimeError("probe found a slot the bucket scan cannot see")
