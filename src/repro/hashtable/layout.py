"""Memory layout of hash tables (paper Figure 2b).

A table occupies three contiguous regions obtained from the simulator's
address allocator:

* **metadata** — one cache line holding table size, key length, hash seed,
  etc.  HALO's per-accelerator metadata cache caches exactly this line.
* **buckets** — an array of 64-byte buckets, each holding ``assoc``
  {16-bit signature, 48-bit pointer} pairs ("each bucket typically occupies
  and aligns with one CPU cache line").
* **key-value array** — fixed-size {key, data} slots referenced by bucket
  pointers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.memory import AddressAllocator, Region
from ..sim.params import CACHE_LINE_BYTES

#: Bytes per {signature, pointer} pair inside a bucket.
ENTRY_PAIR_BYTES = 8


def _round_up(value: int, multiple: int) -> int:
    return (value + multiple - 1) // multiple * multiple


def next_power_of_two(value: int) -> int:
    result = 1
    while result < value:
        result <<= 1
    return result


@dataclass(frozen=True)
class TableLayout:
    """Resolved addresses for one hash table."""

    name: str
    num_buckets: int
    assoc: int
    key_bytes: int
    value_bytes: int
    metadata: Region
    buckets: Region
    key_values: Region

    @property
    def kv_slot_bytes(self) -> int:
        return _round_up(self.key_bytes + self.value_bytes, 16)

    @property
    def num_slots(self) -> int:
        return self.num_buckets * self.assoc

    @property
    def total_bytes(self) -> int:
        return self.metadata.size + self.buckets.size + self.key_values.size

    def bucket_addr(self, bucket_index: int) -> int:
        if not 0 <= bucket_index < self.num_buckets:
            raise IndexError(f"bucket {bucket_index} out of range")
        return self.buckets.base + bucket_index * CACHE_LINE_BYTES

    def kv_addr(self, slot_index: int) -> int:
        if not 0 <= slot_index < self.num_slots:
            raise IndexError(f"slot {slot_index} out of range")
        return self.key_values.base + slot_index * self.kv_slot_bytes

    @property
    def table_addr(self) -> int:
        """The address identifying this table (HALO's RAX operand, §4.5)."""
        return self.metadata.base


def allocate_table(allocator: AddressAllocator, name: str, num_buckets: int,
                   assoc: int, key_bytes: int,
                   value_bytes: int = 8) -> TableLayout:
    """Carve a table's three regions out of simulated physical memory."""
    if num_buckets & (num_buckets - 1):
        raise ValueError("num_buckets must be a power of two")
    if assoc * ENTRY_PAIR_BYTES > CACHE_LINE_BYTES:
        raise ValueError(
            f"{assoc} entries do not fit one {CACHE_LINE_BYTES}B bucket line")
    metadata = allocator.alloc(CACHE_LINE_BYTES, f"{name}.meta")
    buckets = allocator.alloc(num_buckets * CACHE_LINE_BYTES, f"{name}.buckets")
    slot_bytes = _round_up(key_bytes + value_bytes, 16)
    key_values = allocator.alloc(num_buckets * assoc * slot_bytes, f"{name}.kv")
    return TableLayout(
        name=name,
        num_buckets=num_buckets,
        assoc=assoc,
        key_bytes=key_bytes,
        value_bytes=value_bytes,
        metadata=metadata,
        buckets=buckets,
        key_values=key_values,
    )


class StandaloneAllocator(AddressAllocator):
    """Allocator for tables used without a full machine simulation."""

    def __init__(self) -> None:
        super().__init__(size_bytes=1 << 40)
