"""Breakdown analysis helpers: stage ordering, merging, and rendering.

Used by the Figure 3 (per-packet pipeline) and Figure 10 (per-lookup
latency) reproductions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..sim.stats import Breakdown

#: Canonical stage order for the Figure 3 pipeline breakdown.
FIG3_STAGES = ["packet_io", "preprocess", "emc_lookup", "megaflow_lookup",
               "openflow_lookup", "others"]

#: Canonical component order for the Figure 10 lookup breakdown.
FIG10_COMPONENTS = ["compute", "memory", "locking"]


def ordered_parts(breakdown: Breakdown,
                  order: Sequence[str]) -> List[tuple]:
    """(name, value) pairs in canonical order, including zero stages."""
    return [(name, breakdown[name]) for name in order]


def per_packet(breakdown: Breakdown, packets: int) -> Breakdown:
    """Scale an accumulated breakdown to per-packet averages."""
    if packets <= 0:
        return Breakdown()
    return breakdown.scaled(1.0 / packets)


def classification_share(breakdown: Breakdown) -> float:
    """Fraction of the total spent in flow classification."""
    total = breakdown.total or 1.0
    return (breakdown["emc_lookup"] + breakdown["megaflow_lookup"]
            + breakdown["openflow_lookup"]) / total


def merge_all(breakdowns: Iterable[Breakdown]) -> Breakdown:
    merged = Breakdown()
    for item in breakdowns:
        merged = merged.merged(item)
    return merged


def render_stacked(rows: Dict[str, Breakdown], order: Sequence[str],
                   title: str = "") -> str:
    """A stacked-bar-as-text rendering: one row per configuration."""
    lines = []
    if title:
        lines.append(title)
    header = ["config"] + list(order) + ["total"]
    widths = [max(18, len(header[0]))] + [
        max(10, len(name)) for name in header[1:]]
    lines.append("  ".join(name.ljust(width)
                           for name, width in zip(header, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for name, breakdown in rows.items():
        cells = [name.ljust(widths[0])]
        for index, stage in enumerate(order):
            cells.append(f"{breakdown[stage]:.0f}".ljust(widths[index + 1]))
        cells.append(f"{breakdown.total:.0f}".ljust(widths[-1]))
        lines.append("  ".join(cells))
    return "\n".join(lines)
