"""Cache-management policies under million-flow churn (§3.2 extension).

The paper's §3.2 profiling drives the OVS caches with *static* flow
populations; this experiment asks what the EMC/megaflow hierarchy does
when flows churn.  Each cell streams one :class:`~repro.workloads.churn.ChurnSpec`
scenario (steady / high-churn MMPP bursts under Zipf skew / duty-cycled
SYN-flood waves) through an engine-free :class:`~repro.classifier.datapath.OvsDatapath`
whose EMC runs one :class:`~repro.classifier.cache_policy.CachePolicy`
(``random`` — the historical default — ``lru``, ``second-chance``,
``correlator``), and measures the steady-state EMC miss rate after a
warm-up fifth of the stream.

The Flow Correlator observation this reproduces: under one-hit-wonder
pressure the miss rate is decided by *admission*, not capacity — every
SYN-flood packet is a unique key that evicts a resident elephant for
zero future hits, so policies that gate admission (``second-chance``
lottery, ``correlator`` proven-reuse) beat plain LRU replacement in the
flood scenario, while pure churn without attack traffic still favours
recency (pollution there is self-limiting).  A vendored
copy of the seed EMC's install loop also runs against the default policy
on the same stream, pinning the refactor bit-identical (the rel=1e-12
parity the fig09/fig11 pins enforce for the full vswitch path).
"""

from __future__ import annotations

import random as _random_mod
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ...classifier.cache_policy import POLICY_NAMES, make_policy
from ...classifier.datapath import OvsDatapath
from ...classifier.emc import ExactMatchCache
from ...classifier.flow import FlowMask, make_flow
from ...classifier.rules import Action, Rule
from ...hashtable.cuckoo import CuckooHashTable
from ...workloads import ChurnEngine, ChurnSpec
from ..reporting import PaperCheck, format_table, render_checks

SCENARIOS = ("steady", "churn", "flood")

_SPEC_BUILDERS = {
    "steady": ChurnSpec.steady,
    "churn": ChurnSpec.high_churn,
    "flood": ChurnSpec.syn_flood,
}


@dataclass
class ChurnCell:
    """One (scenario, policy) measurement."""

    scenario: str
    policy: str
    packets: int
    emc_entries: int
    emc_miss_rate: float          # steady-state (post-warm-up)
    emc_evictions: int
    emc_admission_rejects: int
    emc_occupancy: int
    megaflow_share: float
    syn_fraction: float
    live_flows: int
    arrivals: int
    default_parity: bool          # random policy only: matches seed EMC


def _build_rules(groups: int) -> List[Rule]:
    """One dst-/16 rule per service group plus a catch-all, so churn
    traffic exercises the caches rather than punting to the controller."""
    mask = FlowMask.prefixes(src_prefix=0, dst_prefix=16,
                             src_port=False, dst_port=True, proto=False)
    rules = [Rule(mask=mask, match=mask.apply(make_flow(0, group=group)),
                  action=Action.output(group % 8), priority=groups - group)
             for group in range(groups)]
    catch_all = FlowMask.prefixes(src_prefix=0, dst_prefix=0,
                                  src_port=False, dst_port=False,
                                  proto=False)
    rules.append(Rule(mask=catch_all, match=catch_all.apply(make_flow(0)),
                      action=Action.output(0), priority=0))
    return rules


class _SeedReferenceEmc:
    """The pre-policy EMC install loop, vendored verbatim as the parity
    oracle for the default ``random`` policy."""

    def __init__(self, capacity: int, seed: int = 0xE3C) -> None:
        self.table = CuckooHashTable(capacity, key_bytes=16, name="seedref")
        self._random = _random_mod.Random(seed)
        self.evictions = 0
        self.installs = 0

    def install(self, key: bytes, rule: Rule) -> None:
        plan = self.table.probe(key)
        if plan.found:
            self.table.insert(key, rule)
            return
        candidates = (plan.primary_index, plan.secondary_index)
        if all(len(self.table.bucket_keys(index)) >= self.table.assoc
               for index in candidates):
            bucket = self._random.choice(candidates)
            victims = self.table.bucket_keys(bucket)
            if victims:
                self.table.delete(self._random.choice(victims))
                self.evictions += 1
        if self.table.insert(key, rule):
            self.installs += 1


def _default_policy_parity(scenario: str, packets: int, emc_entries: int,
                           seed: int) -> bool:
    """Replay the cell's stream through the policy-driven EMC and the
    vendored seed loop; True iff contents and stats stay identical."""
    spec = _SPEC_BUILDERS[scenario](seed=seed)
    engine = ChurnEngine(spec)
    emc = ExactMatchCache(emc_entries)   # default RandomEvictionPolicy
    reference = _SeedReferenceEmc(emc_entries)
    rule = Rule(mask=FlowMask.exact(),
                match=make_flow(0), action=Action.output(0))
    for flow in engine.packets(packets):
        key = flow.pack()
        if emc.lookup(flow) is None:
            emc.install(flow, rule)
        if reference.table.lookup(key) is None:
            reference.install(key, rule)
    same_contents = (sorted(key for key, _ in emc.table.items())
                     == sorted(key for key, _ in reference.table.items()))
    return (same_contents
            and emc.stats.evictions == reference.evictions
            and emc.stats.installs == reference.installs)


def run_cell(scenario: str, policy: str, packets: int = 40_000,
             emc_entries: int = 512, seed: int = 1009) -> ChurnCell:
    spec = _SPEC_BUILDERS[scenario](seed=seed)
    engine = ChurnEngine(spec)
    datapath = OvsDatapath(emc_entries=emc_entries,
                           megaflow_tuple_capacity=65_536,
                           emc_policy=make_policy(policy))
    for rule in _build_rules(spec.groups):
        datapath.install_rule(rule)

    warmup = packets // 5
    for flow in engine.packets(warmup):
        datapath.classify(flow)
    warm_lookups = datapath.emc.stats.lookups
    warm_hits = datapath.emc.stats.hits
    for flow in engine.packets(packets - warmup):
        datapath.classify(flow)

    lookups = datapath.emc.stats.lookups - warm_lookups
    hits = datapath.emc.stats.hits - warm_hits
    miss_rate = 1.0 - hits / lookups if lookups else 0.0
    parity = (policy == "random"
              and _default_policy_parity(scenario, packets, emc_entries,
                                         seed))
    return ChurnCell(
        scenario=scenario,
        policy=policy,
        packets=packets,
        emc_entries=emc_entries,
        emc_miss_rate=miss_rate,
        emc_evictions=datapath.emc.stats.evictions,
        emc_admission_rejects=datapath.emc.stats.admission_rejects,
        emc_occupancy=len(datapath.emc),
        megaflow_share=datapath.stats.layer_fractions()["megaflow"],
        syn_fraction=engine.stats.syn_fraction,
        live_flows=engine.live_flows,
        arrivals=engine.stats.arrivals,
        default_parity=parity,
    )


def run(scenarios: Sequence[str] = SCENARIOS,
        policies: Sequence[str] = POLICY_NAMES,
        packets: int = 40_000, emc_entries: int = 512,
        seed: int = 1009) -> List[ChurnCell]:
    return [run_cell(scenario, policy, packets=packets,
                     emc_entries=emc_entries, seed=seed)
            for scenario in scenarios for policy in policies]


def report(cells: List[ChurnCell]) -> str:
    by_key: Dict[tuple, ChurnCell] = {
        (cell.scenario, cell.policy): cell for cell in cells}
    scenarios = [s for s in SCENARIOS
                 if any(cell.scenario == s for cell in cells)]
    policies = [p for p in POLICY_NAMES
                if any(cell.policy == p for cell in cells)]
    rows = []
    for scenario in scenarios:
        for policy in policies:
            cell = by_key[(scenario, policy)]
            rows.append((
                scenario, policy,
                f"{cell.emc_miss_rate * 100:.1f}%",
                cell.emc_evictions,
                cell.emc_admission_rejects,
                f"{cell.megaflow_share * 100:.1f}%",
                f"{cell.syn_fraction * 100:.0f}%",
                cell.arrivals,
            ))
    table = format_table(
        ["scenario", "policy", "EMC miss", "evictions", "adm. rejects",
         "megaflow", "SYN", "flows"],
        rows,
        title="EMC policy x churn scenario (steady-state miss rate, "
              "post-warm-up)")

    checks = []
    admission = [p for p in ("second-chance", "correlator") if p in policies]
    if "flood" in scenarios and "lru" in policies and admission:
        lru = by_key[("flood", "lru")].emc_miss_rate
        best_name = min(admission,
                        key=lambda p: by_key[("flood", p)].emc_miss_rate)
        best = by_key[("flood", best_name)].emc_miss_rate
        checks.append(PaperCheck(
            "admission beats LRU under Zipf + high-churn SYN-flood phases",
            "Flow Correlator: one-hit wonders are an admission problem",
            f"{best_name} {best * 100:.1f}% vs lru {lru * 100:.1f}% miss",
            holds=best < lru))
    if "churn" in scenarios and {"lru", "random"} <= set(policies):
        lru = by_key[("churn", "lru")].emc_miss_rate
        rnd = by_key[("churn", "random")].emc_miss_rate
        checks.append(PaperCheck(
            "recency beats random replacement under pure churn",
            "no attack traffic: pollution is self-limiting, recency wins",
            f"lru {lru * 100:.1f}% vs random {rnd * 100:.1f}% miss",
            holds=lru < rnd))
    parity_cells = [cell for cell in cells if cell.policy == "random"]
    if parity_cells:
        checks.append(PaperCheck(
            "default policy bit-identical to seed EMC",
            "refactor must not move the baseline (rel=1e-12 pins)",
            f"{sum(cell.default_parity for cell in parity_cells)}"
            f"/{len(parity_cells)} scenarios identical",
            holds=all(cell.default_parity for cell in parity_cells)))
    checks.append(PaperCheck(
        "EMC occupancy bounded by capacity",
        "policies evict in place, never grow the table",
        f"max {max(cell.emc_occupancy for cell in cells)} of "
        f"{cells[0].emc_entries} entries",
        holds=all(cell.emc_occupancy <= cell.emc_entries
                  for cell in cells)))
    return table + "\n\n" + render_checks("cache churn", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "cache_churn",
    "artifact": "§3.2 extension (cache churn)",
    "slug": "cache_churn",
    "title": "EMC/megaflow policy x churn scenario miss rates",
    "grid": [
        (f"{scenario}/{policy}",
         {"scenario": scenario, "policy": policy, "packets": 40_000,
          "emc_entries": 512, "seed": 1009},
         {"scenario": scenario, "policy": policy, "packets": 8_000,
          "emc_entries": 256, "seed": 1009})
        for scenario in SCENARIOS
        for policy in POLICY_NAMES
    ],
}


def bench_run(label, params, seed):
    """Runner hook: one grid point = one (scenario, policy) cell."""
    del label, seed
    return run_cell(params["scenario"], params["policy"],
                    packets=params["packets"],
                    emc_entries=params["emc_entries"],
                    seed=params["seed"])


def bench_report(payloads):
    return report(list(payloads.values()))
