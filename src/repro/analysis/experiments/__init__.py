"""One module per reproduced table/figure; each exposes ``run()`` (returning
structured results), ``report()`` (rendering the paper-vs-measured text),
and a ``BENCH`` declaration + ``bench_run``/``bench_report`` hooks that
register it with the parallel experiment runner (:mod:`repro.runner`).

See DESIGN.md §4 for the experiment index and docs/EXPERIMENTS.md for the
catalog mapping each module to its paper artifact and ``repro bench`` name.
"""

from . import (
    abl_design,
    abl_prefetch,
    abl_tlb,
    cache_churn,
    cluster_chaos,
    degradation_sweep,
    fig03_breakdown,
    fig04_hash,
    fig08_flow_register,
    fig09_single_lookup,
    fig10_breakdown,
    fig11_tuple_space,
    fig12_collocation,
    fig13_nf_speedup,
    keysize_sweep,
    multicore_scaling,
    scaling_law,
    sec34_concurrency,
    tab01_instructions,
    tab04_power,
    updates_comparison,
)

__all__ = [
    "abl_design",
    "abl_prefetch",
    "abl_tlb",
    "cache_churn",
    "cluster_chaos",
    "degradation_sweep",
    "fig03_breakdown",
    "fig04_hash",
    "fig08_flow_register",
    "fig09_single_lookup",
    "fig10_breakdown",
    "fig11_tuple_space",
    "fig12_collocation",
    "fig13_nf_speedup",
    "keysize_sweep",
    "multicore_scaling",
    "scaling_law",
    "sec34_concurrency",
    "tab01_instructions",
    "tab04_power",
    "updates_comparison",
]
