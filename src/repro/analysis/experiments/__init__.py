"""One module per reproduced table/figure; each exposes ``run()`` (returning
structured results) and ``report()`` (rendering the paper-vs-measured text).

See DESIGN.md §4 for the experiment index.
"""

from . import (
    fig03_breakdown,
    fig04_hash,
    fig08_flow_register,
    fig09_single_lookup,
    fig10_breakdown,
    fig11_tuple_space,
    fig12_collocation,
    fig13_nf_speedup,
    keysize_sweep,
    multicore_scaling,
    sec34_concurrency,
    tab01_instructions,
    tab04_power,
    updates_comparison,
)

__all__ = [
    "fig03_breakdown",
    "fig04_hash",
    "fig08_flow_register",
    "fig09_single_lookup",
    "fig10_breakdown",
    "fig11_tuple_space",
    "fig12_collocation",
    "fig13_nf_speedup",
    "keysize_sweep",
    "multicore_scaling",
    "sec34_concurrency",
    "tab01_instructions",
    "tab04_power",
    "updates_comparison",
]
