"""Figure 9 — single hash-table lookup throughput across table sizes and
occupancy rates, for all five solutions.

Paper result: with the table LLC-resident, HALO reaches ~3.3× the software
throughput (and ~2.1× once the table spills past the LLC); TCAM/SRAM-TCAM
are fastest (constant few-cycle searches); software wins only for tiny
tables whose working set lives in the L1; blocking and non-blocking HALO
stay within ~5% of each other on a single table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ...core.halo_system import HaloSystem
from ...tcam.sram_tcam import SRAM_TCAM_SEARCH_CYCLES
from ...tcam.tcam import TCAM_SEARCH_CYCLES
from ...traffic.generator import random_keys
from ..reporting import PaperCheck, format_table, render_checks

#: Default table-size sweep (entries).  The paper sweeps 2^3..2^24; we stop
#: at 2^18 by default for runtime (2 MB buckets + 8 MB values: well past L2,
#: LLC-resident) — pass larger sizes to push into DRAM.
DEFAULT_SIZES = (2 ** 3, 2 ** 6, 2 ** 9, 2 ** 12, 2 ** 15, 2 ** 18)
DEFAULT_OCCUPANCIES = (0.25, 0.50, 0.75, 0.90)

SOLUTIONS = ("software", "halo-b", "halo-nb", "tcam", "sram-tcam")

#: Registry metrics captured per point so every reported number can be
#: traced back to a named observability metric (see docs/MODELING.md §7).
TRACEABLE_METRICS = (
    "halo.accelerator.service_cycles",
    "halo.query.latency_cycles",
    "mem.cha_access.cycles",
    "mem.core_access.cycles",
)


@dataclass
class Fig9Point:
    table_entries: int
    occupancy: float
    cycles_per_lookup: Dict[str, float] = field(default_factory=dict)
    #: Snapshot of the :data:`TRACEABLE_METRICS` registry entries for this
    #: point's system (histogram summary dicts); empty when obs is off.
    registry_metrics: Dict[str, dict] = field(default_factory=dict)

    def normalized_throughput(self) -> Dict[str, float]:
        """Throughput normalised to software (the paper's y-axis)."""
        software = self.cycles_per_lookup["software"]
        return {name: software / cycles
                for name, cycles in self.cycles_per_lookup.items()}


def run_point(table_entries: int, occupancy: float = 0.5,
              lookups: int = 300, seed: int = 8,
              dram_resident: bool = False) -> Fig9Point:
    """Measure all five solutions on one (size, occupancy) cell."""
    system = HaloSystem()
    table = system.create_table(table_entries, name="fig9")
    fill = max(1, int(table.capacity * occupancy))
    keys = random_keys(fill, seed=seed)
    inserted = []
    for index, key in enumerate(keys):
        if table.insert(key, index):
            inserted.append(key)
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    if dram_resident:
        system.flush_table(table)

    rng = np.random.default_rng(seed + 1)
    sample = [inserted[int(i)] for i in
              rng.integers(0, len(inserted), size=lookups)]

    point = Fig9Point(table_entries=table_entries, occupancy=occupancy)
    # One uniform entry point for every simulated solution: each backend is
    # an engine program on the same machine state.  Run order matters (each
    # run warms the caches for free); the DRAM scenario re-flushes between
    # runs to keep the table memory-resident for every solution.
    simulated = ("software", "halo-b", "halo-nb")
    for index, kind in enumerate(simulated):
        episode = system.run_backend_lookups(kind, table, sample)
        point.cycles_per_lookup[kind] = episode.cycles_per_op
        if dram_resident and index < len(simulated) - 1:
            system.flush_table(table)
    # TCAM-class devices answer in constant time regardless of size, under
    # the paper's assumption that the rule set fits the device.
    point.cycles_per_lookup["tcam"] = float(TCAM_SEARCH_CYCLES)
    point.cycles_per_lookup["sram-tcam"] = float(SRAM_TCAM_SEARCH_CYCLES)
    snapshot = system.obs.metrics.snapshot()
    point.registry_metrics = {name: snapshot[name]
                              for name in TRACEABLE_METRICS
                              if isinstance(snapshot.get(name), dict)
                              and snapshot[name].get("count")}
    return point


def run_size_sweep(sizes: Sequence[int] = DEFAULT_SIZES,
                   occupancy: float = 0.5,
                   lookups: int = 300, seed: int = 8) -> List[Fig9Point]:
    return [run_point(size, occupancy, lookups, seed) for size in sizes]


def run_occupancy_sweep(table_entries: int = 2 ** 15,
                        occupancies: Sequence[float] = DEFAULT_OCCUPANCIES,
                        lookups: int = 300, seed: int = 8) -> List[Fig9Point]:
    return [run_point(table_entries, occ, lookups, seed)
            for occ in occupancies]


def report(size_points: List[Fig9Point],
           occupancy_points: List[Fig9Point] = ()) -> str:
    rows = []
    for point in size_points:
        normalized = point.normalized_throughput()
        rows.append((point.table_entries, f"{point.occupancy*100:.0f}%")
                    + tuple(f"{normalized[s]:.2f}x" for s in SOLUTIONS))
    table = format_table(
        ["entries", "occ"] + list(SOLUTIONS), rows,
        title="Figure 9 — single-lookup throughput normalised to software")

    sections = [table]
    if occupancy_points:
        rows = []
        for point in occupancy_points:
            normalized = point.normalized_throughput()
            rows.append((point.table_entries, f"{point.occupancy*100:.0f}%")
                        + tuple(f"{normalized[s]:.2f}x" for s in SOLUTIONS))
        sections.append(format_table(
            ["entries", "occ"] + list(SOLUTIONS), rows,
            title="Figure 9 — occupancy sweep"))

    largest = size_points[-1].normalized_throughput()
    smallest = size_points[0].normalized_throughput()
    checks = [
        PaperCheck("HALO speedup, LLC-resident table", "up to 3.3x",
                   f"{largest['halo-b']:.2f}x (B) / "
                   f"{largest['halo-nb']:.2f}x (NB)",
                   holds=2.3 <= max(largest["halo-b"],
                                    largest["halo-nb"]) <= 4.3),
        PaperCheck("software at tiny tables", "best (L1-resident)",
                   f"HALO-B {smallest['halo-b']:.2f}x",
                   holds=smallest["halo-b"] <= 1.1),
        PaperCheck("TCAM", "always fastest",
                   f"{largest['tcam']:.1f}x at the largest size",
                   holds=largest["tcam"] > largest["halo-b"]),
        PaperCheck("B vs NB on one table", "within ~5%",
                   f"{abs(largest['halo-nb'] / largest['halo-b'] - 1) * 100:.0f}% apart",
                   holds=abs(largest["halo-nb"] / largest["halo-b"] - 1)
                   < 0.25),
    ]
    sections.append(render_checks("Figure 9", checks))
    footer = _traceable_footer(size_points[-1])
    if footer:
        sections.append(footer)
    return "\n\n".join(sections)


def _traceable_footer(point: Fig9Point) -> str:
    """Names the registry metrics behind the largest-table measurement."""
    if not point.registry_metrics:
        return ""
    lines = [f"traceable metrics ({point.table_entries} entries, "
             f"{point.occupancy * 100:.0f}% occupancy):"]
    for name, summary in sorted(point.registry_metrics.items()):
        lines.append(
            f"  {name}: n={summary['count']} mean={summary['mean']:.1f} "
            f"p50={summary['p50']:.1f} p95={summary['p95']:.1f} "
            f"p99={summary['p99']:.1f}")
    return "\n".join(lines)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

_SIZE_EXPONENTS = (3, 6, 9, 12, 15, 18)
_QUICK_SIZE_EXPONENTS = (3, 9, 15)

BENCH = {
    "name": "fig09",
    "artifact": "Figure 9",
    "slug": "fig09_single_lookup",
    "title": "single-lookup throughput sweep",
    "grid": [
        (f"size_2e{exp:02d}",
         {"kind": "size", "table_entries": 2 ** exp, "lookups": 300},
         {"kind": "size", "table_entries": 2 ** exp, "lookups": 120}
         if exp in _QUICK_SIZE_EXPONENTS else None)
        for exp in _SIZE_EXPONENTS
    ] + [
        ("occupancy_sweep",
         {"kind": "occupancy", "table_entries": 2 ** 15, "lookups": 250},
         None),
        ("dram_point",
         {"kind": "dram", "table_entries": 2 ** 16, "lookups": 200},
         None),
    ],
}


def bench_run(label, params, seed):
    """Runner hook: sizes shard per table size; occupancy/DRAM own points."""
    del label, seed  # run_point pins seed=8 for paper fidelity
    kind = params["kind"]
    if kind == "size":
        return run_point(params["table_entries"], 0.5,
                         lookups=params["lookups"])
    if kind == "occupancy":
        return run_occupancy_sweep(table_entries=params["table_entries"],
                                   lookups=params["lookups"])
    if kind == "dram":
        return run_point(params["table_entries"], 0.5,
                         lookups=params["lookups"], dram_resident=True)
    raise ValueError(f"unknown fig09 grid kind {kind!r}")


def bench_report(payloads):
    size_points = [payload for label, payload in payloads.items()
                   if label.startswith("size_")]
    occupancy_points = payloads.get("occupancy_sweep", [])
    sections = [report(size_points, occupancy_points)]
    dram = payloads.get("dram_point")
    if dram is not None:
        normalized = dram.normalized_throughput()
        sections.append(
            f"Figure 9 (DRAM-resident table): HALO-B "
            f"{normalized['halo-b']:.2f}x, HALO-NB "
            f"{normalized['halo-nb']:.2f}x vs software "
            f"(paper: ~2.1x average beyond LLC)")
    return "\n\n".join(sections)
