"""Header-size sweep — §3.4's profiling dimension.

The paper profiles hash-table lookups "with different packet header size
that ranges from 4 to 64 bytes" (the typical sizes of network protocol
headers).  Key size moves three costs at once:

* hashing work (more 8-byte lanes through the hash unit / more software
  hash instructions);
* the key fetch (a 64-byte key spans a full cache line);
* key-value slot size (larger kv entries, more lines per compare).

Software pays all three on the core; HALO pays them at the accelerator,
so the speedup holds (and slightly grows) across header sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ...core.halo_system import HaloSystem
from ...traffic.generator import random_keys
from ..reporting import PaperCheck, format_table, render_checks

#: §3.4: "the typical sizes of network protocol headers".
DEFAULT_KEY_SIZES = (4, 8, 16, 32, 64)


@dataclass
class KeySizePoint:
    key_bytes: int
    software_cycles: float
    halo_cycles: float

    @property
    def speedup(self) -> float:
        return (self.software_cycles / self.halo_cycles
                if self.halo_cycles else 0.0)


def run_point(key_bytes: int, table_entries: int = 1 << 14,
              lookups: int = 200, seed: int = 29) -> KeySizePoint:
    system = HaloSystem()
    table = system.create_table(table_entries, key_bytes=key_bytes,
                                name=f"k{key_bytes}")
    keys = random_keys(int(table_entries * 0.6), key_bytes=key_bytes,
                       seed=seed)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    rng = np.random.default_rng(seed + 1)
    sample = [keys[int(i)] for i in rng.integers(0, len(keys),
                                                 size=lookups)]
    software = system.run_software_lookups(table, sample)
    blocking = system.run_blocking_lookups(table, sample)
    episode_values = [r.value for r in blocking.results]
    assert episode_values == software.results, "paths disagree"
    return KeySizePoint(key_bytes=key_bytes,
                        software_cycles=software.cycles_per_op,
                        halo_cycles=blocking.cycles_per_op)


def run(key_sizes: Sequence[int] = DEFAULT_KEY_SIZES,
        table_entries: int = 1 << 14, lookups: int = 200,
        seed: int = 29) -> List[KeySizePoint]:
    return [run_point(size, table_entries, lookups, seed)
            for size in key_sizes]


def report(points: List[KeySizePoint]) -> str:
    table = format_table(
        ["key bytes", "software cyc", "HALO-B cyc", "speedup"],
        [(p.key_bytes, p.software_cycles, p.halo_cycles,
          f"{p.speedup:.2f}x") for p in points],
        title="§3.4 — lookup cost vs header/key size (4-64 B)")
    checks = [
        PaperCheck("HALO wins at every header size", "4-64 B profiled",
                   f"{min(p.speedup for p in points):.2f}x - "
                   f"{max(p.speedup for p in points):.2f}x",
                   holds=all(p.speedup > 1.5 for p in points)),
        PaperCheck("cost grows with key size", "more hash/fetch work",
                   f"software {points[0].software_cycles:.0f} -> "
                   f"{points[-1].software_cycles:.0f} cycles",
                   holds=points[-1].software_cycles
                   >= points[0].software_cycles),
    ]
    return table + "\n\n" + render_checks("header-size sweep", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "keysize",
    "artifact": "§3.4 extension (key size)",
    "slug": "keysize_sweep",
    "title": "lookup cost vs header size (4-64 B)",
    "grid": [
        (f"key_{size:02d}B",
         {"key_bytes": size, "lookups": 200, "seed": 29},
         {"key_bytes": size, "lookups": 80, "seed": 29})
        for size in DEFAULT_KEY_SIZES
    ],
}


def bench_run(label, params, seed):
    """Runner hook: one grid point = one key size."""
    del label, seed
    return run_point(params["key_bytes"], lookups=params["lookups"],
                     seed=params["seed"])


def bench_report(payloads):
    return report(list(payloads.values()))
