"""Figure 4 — cuckoo hash vs single-function hash (SFH) cache behaviour.

Paper result: cuckoo keeps table occupancy ~95% vs SFH's ~20%; with up to
millions of flows cuckoo's loads still mostly hit the LLC, while SFH's
larger footprint starts missing the LLC around 100K flows, stalling the
CPU.  Metrics: L2/LLC misses per thousand retired loads (MPKL) and the
stall-cycle fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...hashtable.cuckoo import CuckooHashTable
from ...hashtable.single_hash import SingleHashTable
from ...sim.core import CoreModel
from ...sim.hierarchy import MemoryHierarchy
from ...sim.stats import mpkl
from ...sim.trace import Tracer
from ...traffic.generator import random_keys
from ..reporting import PaperCheck, format_table, render_checks

import numpy as np

#: Flow counts swept (the paper goes to 4M; we default to 400K for runtime
#: — the SFH LLC cliff appears at the same ~100K point either way).
DEFAULT_FLOW_COUNTS = (1_000, 10_000, 100_000, 400_000)


@dataclass
class Fig4Row:
    table_kind: str
    num_flows: int
    utilisation: float
    l2_mpkl: float
    llc_mpkl: float
    stall_fraction: float
    cycles_per_lookup: float


def achievable_occupancy(kind: str, slots: int = 8192,
                         seed: int = 5) -> float:
    """Fill a table with random keys until placement fails; return the
    occupancy reached.  Cuckoo displacement sustains ~95%; a single-choice
    table overflows its first bucket at a small fraction of capacity
    (paper §3.3: ~95% vs ~20%)."""
    keys = random_keys(slots + 64, seed=seed)
    if kind == "cuckoo":
        table = CuckooHashTable(slots)
        for index, key in enumerate(keys):
            if not table.insert(key, index):
                break
        return table.load_factor
    table = SingleHashTable(slots // 8, buckets_per_key=1.0)
    for index, key in enumerate(keys):
        table.insert(key, index)
        if table.stats.overflows:
            break
    return table.load_factor


def _measure(table, hierarchy: MemoryHierarchy, tracer: Tracer,
             keys: List[bytes], lookups: int, seed: int = 5) -> tuple:
    """(l2_mpkl, llc_mpkl, stall_fraction, cycles/lookup) for a key stream."""
    core = CoreModel(0, hierarchy)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, len(keys), size=lookups)
    # Steady state: the table has been serving traffic, so as much of it as
    # fits is LLC-resident (a table bigger than the LLC self-evicts during
    # this sweep — exactly the SFH regime).
    layout = table.layout
    hierarchy.warm_llc(layout.buckets.base, layout.buckets.size)
    hierarchy.warm_llc(layout.key_values.base, layout.key_values.size)
    hierarchy.flush_private(0)
    for index in indices[:lookups // 4]:
        tracer.begin()
        table.lookup(keys[int(index)])
        core.execute(tracer.take())
    hierarchy.reset_stats()
    retired_loads = 0
    total_cycles = 0.0
    memory_cycles = 0.0
    for index in indices[lookups // 4:]:
        tracer.begin()
        table.lookup(keys[int(index)])
        trace = tracer.take()
        retired_loads += trace.mix.loads
        result = core.execute(trace)
        total_cycles += result.cycles
        memory_cycles += result.memory_cycles
    l2_misses = sum(cache.stats.misses for cache in hierarchy.l2)
    llc_misses = sum(cache.stats.misses for cache in hierarchy.llc)
    measured = lookups - lookups // 4
    return (mpkl(l2_misses, retired_loads),
            mpkl(llc_misses, retired_loads),
            memory_cycles / total_cycles if total_cycles else 0.0,
            total_cycles / measured)


def run(flow_counts=DEFAULT_FLOW_COUNTS, lookups: int = 1_200,
        seed: int = 5) -> List[Fig4Row]:
    rows: List[Fig4Row] = []
    for count in flow_counts:
        keys = random_keys(count, seed=seed)
        for kind in ("cuckoo", "sfh"):
            hierarchy = MemoryHierarchy()
            tracer = Tracer()
            if kind == "cuckoo":
                # DPDK-style sizing: capacity close to the key count, the
                # high-occupancy regime cuckoo hashing enables (~95%).
                table = CuckooHashTable(int(count / 0.90) + 8,
                                        allocator=hierarchy.allocator,
                                        tracer=tracer)
            else:
                table = SingleHashTable(count,
                                        allocator=hierarchy.allocator,
                                        tracer=tracer)
            for index, key in enumerate(keys):
                table.insert(key, index)
            hierarchy.flush_private(0)
            l2, llc, stall, cycles = _measure(
                table, hierarchy, tracer, keys, lookups, seed=seed)
            rows.append(Fig4Row(
                table_kind=kind, num_flows=count,
                utilisation=table.load_factor,
                l2_mpkl=l2, llc_mpkl=llc, stall_fraction=stall,
                cycles_per_lookup=cycles))
    return rows


def report(rows: List[Fig4Row]) -> str:
    table = format_table(
        ["table", "flows", "util", "L2 MPKL", "LLC MPKL", "stall%",
         "cyc/lookup"],
        [(r.table_kind, r.num_flows, f"{r.utilisation*100:.0f}%",
          r.l2_mpkl, r.llc_mpkl, f"{r.stall_fraction*100:.0f}%",
          r.cycles_per_lookup) for r in rows],
        title="Figure 4 — hash-table cache behaviour (cuckoo vs SFH)")

    biggest = max(r.num_flows for r in rows)
    cuckoo_big = next(r for r in rows
                      if r.table_kind == "cuckoo" and r.num_flows == biggest)
    sfh_big = next(r for r in rows
                   if r.table_kind == "sfh" and r.num_flows == biggest)
    sfh_100k = next((r for r in rows if r.table_kind == "sfh"
                     and r.num_flows >= 100_000), sfh_big)
    cuckoo_max = achievable_occupancy("cuckoo")
    sfh_max = achievable_occupancy("sfh")
    checks = [
        PaperCheck("cuckoo achievable occupancy", "~95%",
                   f"{cuckoo_max*100:.0f}%",
                   holds=cuckoo_max > 0.85),
        PaperCheck("SFH occupancy at first overflow", "~20%",
                   f"{sfh_max*100:.0f}%",
                   holds=sfh_max < 0.45),
        PaperCheck("cuckoo LLC misses at max flows", "near zero",
                   f"{cuckoo_big.llc_mpkl:.1f} MPKL",
                   holds=cuckoo_big.llc_mpkl < 5.0),
        PaperCheck("SFH LLC misses from 100K flows", "significant",
                   f"{sfh_100k.llc_mpkl:.1f} MPKL",
                   holds=sfh_100k.llc_mpkl > cuckoo_big.llc_mpkl * 3
                   or sfh_100k.llc_mpkl > 5.0),
    ]
    return table + "\n\n" + render_checks("Figure 4", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "fig04",
    "artifact": "Figure 4",
    "slug": "fig04_hash_analysis",
    "title": "cuckoo vs SFH cache behaviour",
    "grid": [
        (f"flows_{count}",
         {"flow_counts": [count], "lookups": 1_200},
         {"flow_counts": [count], "lookups": 400} if count <= 10_000
         else None)
        for count in DEFAULT_FLOW_COUNTS
    ],
}


def bench_run(label, params, seed):
    """Runner hook: one grid point = one flow-count column of Figure 4."""
    del label, seed
    return run(flow_counts=tuple(params["flow_counts"]),
               lookups=params["lookups"])


def bench_report(payloads):
    """Runner hook: concatenate the per-flow-count row pairs, grid order."""
    return report([row for rows in payloads.values() for row in rows])
