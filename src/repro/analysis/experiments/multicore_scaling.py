"""Multi-core switch scaling — §3.4's motivation, measured.

The paper motivates HALO partly by scalability: "to scale up the
throughput of packet processing, the virtual switch usually exploits the
multiple CPU cores", but shared tables bring locking and core-to-core
overheads, and a centralised accelerator "could become the bottleneck in a
multi-core processor".  HALO's answer is one accelerator per LLC slice.

This experiment runs N PMD-style worker cores, each classifying its own
packet stream against its own megaflow tuple space (OVS gives every PMD
thread a private datapath classifier cache), and reports aggregate
throughput:

* **software** — per-core tuple-by-tuple lookups (optimistic locking),
  run as N concurrent software-backend programs via
  :func:`repro.exec.cores.run_cores`: the cores genuinely interleave on
  the shared engine, so LLC/DRAM contention between PMD threads emerges
  instead of being assumed away (with one core the schedule degenerates
  to the old serial walk — identical numbers);
* **HALO-NB** — every core fans its packet's tuple lookups out to the
  distributed accelerators; the DES engine times the true concurrent
  execution, including any contention at the accelerators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Sequence

import numpy as np

from ...core.halo_system import HaloSystem
from ...exec.cores import CoreWorkload
from ...traffic.generator import random_keys
from ..reporting import PaperCheck, format_table, render_checks

DEFAULT_CORE_COUNTS = (1, 2, 4, 8)
ENTRIES_PER_TUPLE = 1024


@dataclass
class ScalingPoint:
    cores: int
    software_packets_per_kcycle: float
    halo_packets_per_kcycle: float

    @property
    def halo_speedup(self) -> float:
        if not self.software_packets_per_kcycle:
            return 0.0
        return (self.halo_packets_per_kcycle
                / self.software_packets_per_kcycle)


def _build_tuples(system: HaloSystem, tuples: int, seed: int):
    tables, keysets = [], []
    for index in range(tuples):
        table = system.create_table(ENTRIES_PER_TUPLE, name=f"mc{index}")
        keys = random_keys(800, seed=seed * 50 + index)
        for position, key in enumerate(keys):
            table.insert(key, position)
        system.warm_table(table)
        tables.append(table)
        keysets.append(keys)
    return tables, keysets


def _packet_keys(rng, keysets, tuples: int) -> List[bytes]:
    hit = int(rng.integers(0, tuples))
    return [keysets[i][int(rng.integers(0, 800))] if i == hit
            else bytes(rng.integers(0, 256, size=16, dtype=np.uint8))
            for i in range(tuples)]


def run_point(cores: int, tuples: int = 10, packets_per_core: int = 20,
              seed: int = 23) -> ScalingPoint:
    # -- software: N concurrent PMD walkers, one software backend per core,
    # pinned via run_cores on one shared engine.  Locking overhead is in the
    # per-lookup cost; LLC/DRAM contention between the walkers is timed by
    # the engine.  Aggregate rate is N / (mean per-packet busy cycles).
    system = HaloSystem()
    rng = np.random.default_rng(seed)
    sw_per_core = [_build_tuples(system, tuples, seed + 7 * core)
                   for core in range(cores)]

    def software_worker(backend, tables, keysets) -> Generator:
        cycles = 0.0
        for _packet in range(packets_per_core):
            system.hierarchy.flush_private(backend.core_id)
            for index, table in enumerate(tables):
                keys = _packet_keys(rng, keysets, tuples)
                outcome = yield from backend.lookup(table, keys[index])
                cycles += outcome.cycles
                if outcome.value is not None:
                    break
        return cycles

    workloads = [
        CoreWorkload(backend="software", core_id=core,
                     program=lambda backend, core=core: software_worker(
                         backend, *sw_per_core[core]),
                     name=f"pmd{core}")
        for core in range(cores)
    ]
    multicore = system.run_cores(workloads)
    per_core_cycles = [result.result / packets_per_core
                       for result in multicore.results]
    mean_cost = float(np.mean(per_core_cycles))
    software_rate = cores / mean_cost * 1000.0

    # -- HALO-NB: N concurrent DES programs; elapsed time is real parallel
    # time, so accelerator contention shows up by construction.  Each core
    # owns its PMD-private tuple tables (as in OVS), spread by the query
    # distributor across all accelerators.
    system = HaloSystem()
    per_core = [_build_tuples(system, tuples, seed + 7 * core)
                for core in range(cores)]
    rng = np.random.default_rng(seed + 1)
    packet_lists = [[_packet_keys(rng, per_core[core][1], tuples)
                     for _ in range(packets_per_core)]
                    for core in range(cores)]

    def worker(core_id: int, packet_keys) -> Generator:
        core_tables = per_core[core_id][0]
        for keys in packet_keys:
            pending = []
            for index, table in enumerate(core_tables):
                process = yield from system.isa.lookup_nb(core_id, table,
                                                          keys[index])
                pending.append(process)
            yield from system.isa.snapshot_read_poll(core_id, pending)
        return []

    start = system.engine.now
    system.run_programs([worker(core, packet_lists[core])
                         for core in range(cores)])
    elapsed = system.engine.now - start
    halo_rate = cores * packets_per_core / elapsed * 1000.0

    return ScalingPoint(cores=cores,
                        software_packets_per_kcycle=software_rate,
                        halo_packets_per_kcycle=halo_rate)


def run(core_counts: Sequence[int] = DEFAULT_CORE_COUNTS,
        tuples: int = 10, packets_per_core: int = 20,
        seed: int = 23) -> List[ScalingPoint]:
    return [run_point(cores, tuples, packets_per_core, seed)
            for cores in core_counts]


def report(points: List[ScalingPoint]) -> str:
    base = points[0]
    rows = []
    for point in points:
        rows.append((
            point.cores,
            point.software_packets_per_kcycle,
            f"{point.software_packets_per_kcycle / base.software_packets_per_kcycle:.1f}x",
            point.halo_packets_per_kcycle,
            f"{point.halo_packets_per_kcycle / base.halo_packets_per_kcycle:.1f}x",
            f"{point.halo_speedup:.1f}x"))
    table = format_table(
        ["cores", "sw pkts/kcyc", "sw scaling", "halo pkts/kcyc",
         "halo scaling", "halo/sw"],
        rows,
        title="Multi-core tuple-space-search throughput "
              "(PMD-private tuple tables)")
    last = points[-1]
    checks = [
        PaperCheck("HALO ahead at every core count",
                   "distributed accelerators keep up",
                   f"{min(p.halo_speedup for p in points):.1f}x "
                   f"- {max(p.halo_speedup for p in points):.1f}x",
                   holds=all(p.halo_speedup > 2.0 for p in points)),
        PaperCheck("HALO keeps scaling with cores",
                   "no centralised bottleneck (§4.1 goal 2)",
                   f"{last.halo_packets_per_kcycle / base.halo_packets_per_kcycle:.1f}x "
                   f"at {last.cores} cores",
                   holds=(last.halo_packets_per_kcycle
                          > base.halo_packets_per_kcycle * last.cores * 0.4)),
    ]
    return table + "\n\n" + render_checks("multi-core scaling", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "multicore",
    "artifact": "§3.4 extension (multi-core)",
    "slug": "multicore_scaling",
    "title": "multi-core switch scaling, software vs HALO",
    "grid": [
        (f"cores_{count:02d}",
         {"cores": count, "tuples": 10, "packets_per_core": 20,
          "seed": 23},
         {"cores": count, "tuples": 10, "packets_per_core": 8, "seed": 23}
         if count <= 4 else None)
        for count in DEFAULT_CORE_COUNTS
    ],
}


def bench_run(label, params, seed):
    """Runner hook: one grid point = one core count."""
    del label, seed
    return run_point(params["cores"], tuples=params["tuples"],
                     packets_per_core=params["packets_per_core"],
                     seed=params["seed"])


def bench_report(payloads):
    return report(list(payloads.values()))
