"""Figure 10 — per-lookup latency breakdown, software vs HALO, with the
table resident in LLC vs DRAM.

Paper result: HALO cuts the computing portion by ~48.1% (the memory-adjacent
instructions move into the accelerator), accesses data 4.1× faster than a
core when the entry is in LLC and 1.6× faster when it is in DRAM, and
eliminates the software locking overhead entirely (hardware lock bits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ...core.halo_system import HaloSystem
from ...hashtable.locking import READ_SIDE_CYCLES
from ...sim.stats import Breakdown
from ...traffic.generator import random_keys
from ..reporting import PaperCheck, format_table, render_checks


#: Registry metrics captured per scenario so the breakdown is traceable to
#: named observability metrics (see docs/MODELING.md §7).
TRACEABLE_METRICS = (
    "halo.accelerator.service_cycles",
    "halo.query.latency_cycles",
    "mem.cha_access.cycles",
    "mem.core_access.cycles",
)


@dataclass
class Fig10Cell:
    scenario: str            # "llc" | "dram"
    solution: str            # "software" | "halo"
    breakdown: Breakdown     # per-lookup cycles: compute / memory / locking
    #: Histogram summaries for :data:`TRACEABLE_METRICS`, captured from the
    #: scenario's registry once both solutions have run; empty when obs off.
    registry_metrics: Dict[str, dict] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.breakdown.total


def _measure_software(system: HaloSystem, table, keys, scenario: str,
                      lookups: int, seed: int) -> Fig10Cell:
    engine = system.software_engine()
    rng = np.random.default_rng(seed)
    merged = Breakdown()
    for index in rng.integers(0, len(keys), size=lookups):
        if scenario == "dram":
            system.flush_table(table)
        _value, result = engine.lookup(table, keys[int(index)])
        merged = merged.merged(result.breakdown)
    return Fig10Cell(scenario, "software", merged.scaled(1.0 / lookups))


def _measure_halo(system: HaloSystem, table, keys, scenario: str,
                  lookups: int, seed: int) -> Fig10Cell:
    """HALO-B lookups, decomposed into compute vs memory components.

    The accelerator's service time is dominated by CHA-side data accesses;
    the compute part (hash unit, comparators, metadata-cache hit) is a few
    cycles.  We reconstruct the same components from the accelerator's
    stats and the episode's measured latency.
    """
    rng = np.random.default_rng(seed)
    merged = Breakdown()
    halo_params = system.machine.halo
    compute_per_query = (halo_params.hash_latency
                         + 2 * halo_params.compare_latency + 1)
    for index in rng.integers(0, len(keys), size=lookups):
        if scenario == "dram":
            system.flush_table(table)
        episode = system.run_blocking_lookups(table, [keys[int(index)]])
        total = episode.cycles
        dispatch = (system.hierarchy.latency.dispatch
                    + system.hierarchy.latency.result_return)
        memory = max(0.0, total - compute_per_query - dispatch)
        merged.add("compute", compute_per_query + dispatch)
        merged.add("memory", memory)
    return Fig10Cell(scenario, "halo", merged.scaled(1.0 / lookups))


def run(table_entries: int = 1 << 16, lookups: int = 200,
        seed: int = 9) -> Dict[str, Fig10Cell]:
    """Returns cells keyed ``"{scenario}/{solution}"``."""
    cells: Dict[str, Fig10Cell] = {}
    for scenario in ("llc", "dram"):
        system = HaloSystem()
        table = system.create_table(table_entries, name="fig10")
        keys = random_keys(int(table_entries * 0.6), seed=seed)
        for index, key in enumerate(keys):
            table.insert(key, index)
        system.warm_table(table)
        system.hierarchy.flush_private(0)
        cells[f"{scenario}/software"] = _measure_software(
            system, table, keys, scenario, lookups, seed)
        if scenario == "dram":
            system.flush_table(table)
        cells[f"{scenario}/halo"] = _measure_halo(
            system, table, keys, scenario, lookups, seed + 1)
        snapshot = system.obs.metrics.snapshot()
        cells[f"{scenario}/halo"].registry_metrics = {
            name: snapshot[name] for name in TRACEABLE_METRICS
            if isinstance(snapshot.get(name), dict)
            and snapshot[name].get("count")}
    return cells


def report(cells: Dict[str, Fig10Cell]) -> str:
    llc_software = cells["llc/software"]
    rows = []
    for key in ("llc/software", "llc/halo", "dram/software", "dram/halo"):
        cell = cells[key]
        rows.append((key,
                     cell.breakdown["compute"],
                     cell.breakdown["memory"],
                     cell.breakdown["locking"],
                     cell.total,
                     f"{cell.total / llc_software.total:.2f}"))
    table = format_table(
        ["scenario/solution", "compute", "data access", "locking", "total",
         "vs sw-llc"],
        rows,
        title="Figure 10 — lookup latency breakdown "
              "(cycles, normalised column vs software/LLC)")

    llc_ratio = (cells["llc/software"].breakdown["memory"]
                 / max(cells["llc/halo"].breakdown["memory"], 1e-9))
    dram_ratio = (cells["dram/software"].breakdown["memory"]
                  / max(cells["dram/halo"].breakdown["memory"], 1e-9))
    checks = [
        PaperCheck("data access speedup in LLC", "4.1x",
                   f"{llc_ratio:.1f}x", holds=2.8 <= llc_ratio <= 5.5),
        PaperCheck("data access speedup in DRAM", "1.6x",
                   f"{dram_ratio:.1f}x", holds=1.2 <= dram_ratio <= 2.2),
        PaperCheck("software locking overhead", "present (13.1%)",
                   f"{cells['llc/software'].breakdown['locking']:.0f} "
                   f"cycles/lookup",
                   holds=cells["llc/software"].breakdown["locking"]
                   >= READ_SIDE_CYCLES * 0.9),
        PaperCheck("HALO locking overhead", "none (hardware lock bits)",
                   f"{cells['llc/halo'].breakdown['locking']:.0f}",
                   holds=cells["llc/halo"].breakdown["locking"] == 0.0),
    ]
    sections = [table, render_checks("Figure 10", checks)]
    for scenario in ("llc", "dram"):
        cell = cells[f"{scenario}/halo"]
        if not cell.registry_metrics:
            continue
        lines = [f"traceable metrics ({scenario} scenario):"]
        for name, summary in sorted(cell.registry_metrics.items()):
            lines.append(
                f"  {name}: n={summary['count']} "
                f"mean={summary['mean']:.1f} p50={summary['p50']:.1f} "
                f"p95={summary['p95']:.1f} p99={summary['p99']:.1f}")
        sections.append("\n".join(lines))
    return "\n\n".join(sections)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "fig10",
    "artifact": "Figure 10",
    "slug": "fig10_latency_breakdown",
    "title": "lookup latency breakdown (LLC/DRAM)",
    "grid": [("default", {"table_entries": 1 << 16, "lookups": 200},
              {"table_entries": 1 << 13, "lookups": 60})],
}


def bench_run(label, params, seed):
    del label, seed
    return run(table_entries=params["table_entries"],
               lookups=params["lookups"])


def bench_report(payloads):
    return report(payloads["default"])
