"""Ablation — D-TLB page size: why DPDK tables live on hugepages.

The paper's testbed (Table 2, §5) follows DPDK practice and backs its
hash tables with contiguous hugepage memory, so address translation is
effectively free.  This ablation turns the D-TLB model on and compares
4 KB pages, 2 MB hugepages, and perfect translation for the same
LLC-resident table.  HALO is immune either way: the accelerator's
queries carry already-translated addresses (§4.2), so only the software
path pays for translation misses.
"""

from __future__ import annotations

from typing import List, Tuple

from ...core.halo_system import HaloSystem
from ...sim.params import SKYLAKE_SP_16C
from ...sim.tlb import TlbParams
from ...traffic.generator import random_keys

#: (display name, TlbParams-or-None) — ``None`` is perfect translation.
PAGE_CONFIGS = (
    ("perfect (paper default)", None),
    ("2MB hugepages (DPDK)", "hugepages"),
    ("4KB pages", "small_pages"),
)


def run(table_entries: int = 1 << 16, flows: int = 40_000,
        lookups: int = 250, seed: int = 31
        ) -> List[Tuple[str, float, float, float]]:
    """``(config name, software cyc, HALO cyc, TLB miss rate)`` rows."""
    rows: List[Tuple[str, float, float, float]] = []
    for name, factory in PAGE_CONFIGS:
        tlb = getattr(TlbParams, factory)() if factory else None
        system = HaloSystem(SKYLAKE_SP_16C.scaled(tlb=tlb))
        table = system.create_table(table_entries, name="tlb_abl")
        keys = random_keys(flows, seed=seed)
        for index, key in enumerate(keys):
            table.insert(key, index)
        system.warm_table(table)
        system.hierarchy.flush_private(0)
        software = system.run_software_lookups(table, keys[:lookups])
        halo = system.run_blocking_lookups(table,
                                           keys[lookups:2 * lookups])
        miss_rate = (system.hierarchy.tlbs[0].stats.miss_rate
                     if system.hierarchy.tlbs else 0.0)
        rows.append((name, software.cycles_per_op, halo.cycles_per_op,
                     miss_rate))
    return rows


def report(rows: List[Tuple[str, float, float, float]]) -> str:
    lines = ["Ablation — D-TLB page size (software vs HALO cyc/lookup):"]
    lines += [f"  {name:24s} sw {software:6.1f}  halo {halo:5.1f}  "
              f"(TLB miss {miss:.1%})"
              for name, software, halo, miss in rows]
    lines.append("  hugepages make translation free; HALO is immune "
                 "either way")
    return "\n".join(lines)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "abl_tlb",
    "artifact": "§4.2 ablation (TLB)",
    "slug": "ablation_tlb",
    "title": "page size / TLB reach ablation",
    "grid": [("default",
              {"table_entries": 1 << 16, "flows": 40_000, "lookups": 250,
               "seed": 31},
              {"table_entries": 1 << 14, "flows": 8_000, "lookups": 100,
               "seed": 31})],
}


def bench_run(label, params, seed):
    del label, seed
    return run(table_entries=params["table_entries"],
               flows=params["flows"], lookups=params["lookups"],
               seed=params["seed"])


def bench_report(payloads):
    return report(payloads["default"])
