"""Table 4 — power consumption and area of the hardware solutions.

Paper result: TCAM cost explodes with capacity (1 MB: 9.343 tiles,
26.7 W static, 84.82 nJ/query) while one HALO accelerator costs 0.012
tiles, 97.2 mW, 1.76 nJ/query — up to 48.2× more energy-efficient than
TCAM at saturating query rates.  SRAM-TCAM saves ~45% power / ~57% area
over TCAM but remains far above HALO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...core.power import PowerEnvelope, halo_envelope
from ...tcam.power import (
    TCAM_TABLE4,
    halo_vs_tcam_efficiency,
    sram_tcam_envelope,
    tcam_envelope,
)
from ..reporting import PaperCheck, format_table, render_checks

KB = 1024


@dataclass
class Tab4Result:
    envelopes: List[PowerEnvelope]
    halo: PowerEnvelope
    efficiency_vs_1mb_tcam: float


def run() -> Tab4Result:
    capacities = sorted(TCAM_TABLE4)
    envelopes = [tcam_envelope(c) for c in capacities]
    envelopes += [sram_tcam_envelope(c) for c in capacities]
    return Tab4Result(
        envelopes=envelopes,
        halo=halo_envelope(1),
        efficiency_vs_1mb_tcam=halo_vs_tcam_efficiency(1024 * KB),
    )


def report(result: Tab4Result) -> str:
    rows = [(e.name, e.area_tiles, e.static_milliwatts,
             e.dynamic_nanojoule_per_query) for e in result.envelopes]
    rows.append((result.halo.name, result.halo.area_tiles,
                 result.halo.static_milliwatts,
                 result.halo.dynamic_nanojoule_per_query))
    table = format_table(
        ["solution", "area/tiles", "static/mW", "dynamic nJ/query"], rows,
        title="Table 4 — power and area of hardware flow-classification")

    tcam_1mb = tcam_envelope(1024 * KB)
    checks = [
        PaperCheck("TCAM 1MB", "9.343 tiles / 26733.1 mW / 84.82 nJ",
                   f"{tcam_1mb.area_tiles} tiles / "
                   f"{tcam_1mb.static_milliwatts} mW / "
                   f"{tcam_1mb.dynamic_nanojoule_per_query} nJ",
                   holds=tcam_1mb.area_tiles == 9.343),
        PaperCheck("HALO accelerator", "0.012 tiles / 97.2 mW / 1.76 nJ",
                   f"{result.halo.area_tiles} tiles / "
                   f"{result.halo.static_milliwatts} mW / "
                   f"{result.halo.dynamic_nanojoule_per_query} nJ",
                   holds=result.halo.area_tiles == 0.012),
        PaperCheck("HALO vs TCAM energy efficiency", "up to 48.2x",
                   f"{result.efficiency_vs_1mb_tcam:.1f}x",
                   holds=abs(result.efficiency_vs_1mb_tcam - 48.2) < 1.0),
    ]
    return table + "\n\n" + render_checks("Table 4", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "tab04",
    "artifact": "Table 4",
    "slug": "tab04_power_area",
    "title": "power and area (TCAM vs HALO)",
    "grid": [("default", {}, {})],
}


def bench_run(label, params, seed):
    del label, params, seed  # the analytic model has no knobs
    return run()


def bench_report(payloads):
    return report(payloads["default"])
