"""Graceful degradation under injected hardware faults.

The paper's evaluation (§6) runs on healthy hardware; this experiment asks
the production question: how does each execution mode's sustained
throughput and tail latency degrade when the machine misbehaves?  A
machine-wide :meth:`~repro.faults.plan.FaultPlan.degradation` mix —
duty-cycled accelerator stalls, DRAM latency spikes, and probabilistic NoC
drops, all scaled by one ``intensity`` knob — is installed on a fresh
system per (intensity, backend) cell, and every backend classifies the
same DRAM-resident key stream:

* **software** — feels the DRAM spikes and NoC retransmits directly;
* **halo-b** / **halo-nb** — additionally absorb the accelerator stalls;
  the non-blocking path runs under a
  :class:`~repro.exec.backend.ResiliencePolicy` (bounded polls, retries,
  software fallback), so it sheds stalled queries instead of hanging;
* **adaptive** — the hybrid controller plus the same resilience policy:
  the expected production configuration.

The fault plan's duty-cycled coverage nests by construction (every cycle
faulted at intensity *x* is faulted at every higher intensity, with
magnitudes scaling linearly), so per-backend throughput must be monotone
non-increasing in intensity — the report asserts it, along with zero lost
lookups in every cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ...core.halo_system import HaloSystem
from ...exec.backend import ResiliencePolicy
from ...faults import FaultInjector, FaultPlan
from ...guard import maybe_attach_guard
from ...traffic.generator import random_keys
from ..reporting import PaperCheck, format_table, render_checks

DEFAULT_INTENSITIES = (0.0, 0.25, 0.5, 0.75)
BACKENDS = ("software", "halo-b", "halo-nb", "adaptive")

#: Bounded-wait policy for the accelerator-backed cells: generous enough
#: that healthy queries never time out, small enough that a stalled slice
#: is abandoned within one fault burst.
SWEEP_POLICY = ResiliencePolicy(poll_budget=64, max_retries=1,
                                backoff_base=32.0, probe_interval=16,
                                recovery_successes=2)


@dataclass
class BackendCell:
    """One (backend, intensity) measurement."""

    backend: str
    intensity: float
    lookups: int
    elapsed_cycles: float
    p99_cycles: float
    degraded_lookups: int
    wrong_results: int
    fault_injections: int

    @property
    def lookups_per_kcycle(self) -> float:
        if not self.elapsed_cycles:
            return 0.0
        return self.lookups / self.elapsed_cycles * 1000.0


@dataclass
class DegradationPoint:
    """All backends at one fault intensity."""

    intensity: float
    cells: Dict[str, BackendCell]


def _run_cell(backend_kind: str, intensity: float, lookups: int,
              entries: int, seed: int) -> BackendCell:
    system = HaloSystem()
    # REPRO_GUARD=1 runs the whole sweep under the safety net: watchdog
    # budgets plus the standard invariant catalog, checked in-stride.
    # This is the sweep CI exercises with the guard on, precisely
    # because fault injection stresses the seams the invariants audit.
    maybe_attach_guard(system)
    table = system.create_table(entries, name="degr")
    inserted = []
    for index, key in enumerate(random_keys(entries, seed=seed)):
        if table.insert(key, index):
            inserted.append((key, index))
    system.warm_table(table)
    # DRAM-resident tables (the Figure 10 scenario): the software path
    # degrades through the DRAM spikes, the HALO paths through the
    # accelerator stalls — every mode has skin in the game.
    system.flush_table(table)
    system.hierarchy.flush_private(0)

    plan = FaultPlan.degradation(intensity, seed=seed * 31 + 7)
    injector = FaultInjector(system, plan).install()

    kwargs = {}
    if backend_kind in ("halo-nb", "adaptive"):
        kwargs["policy"] = SWEEP_POLICY
    backend = system.backend(backend_kind, **kwargs)

    rng = np.random.default_rng(seed + 1)
    picks = rng.integers(0, len(inserted), size=lookups)
    keys = [inserted[int(i)][0] for i in picks]
    expected = [inserted[int(i)][1] for i in picks]

    start = system.engine.now
    outcomes = system.engine.run_process(backend.lookup_stream(table, keys))
    elapsed = system.engine.now - start

    wrong = sum(1 for outcome, value in zip(outcomes, expected)
                if outcome.value != value)
    cycles = [outcome.cycles for outcome in outcomes]
    return BackendCell(
        backend=backend_kind,
        intensity=intensity,
        lookups=len(outcomes),
        elapsed_cycles=elapsed,
        p99_cycles=float(np.percentile(cycles, 99)) if cycles else 0.0,
        degraded_lookups=sum(1 for outcome in outcomes if outcome.degraded),
        wrong_results=wrong,
        fault_injections=injector.stats.injections,
    )


def run_point(intensity: float, lookups: int = 600, entries: int = 4096,
              seed: int = 1237) -> DegradationPoint:
    cells = {kind: _run_cell(kind, intensity, lookups, entries, seed)
             for kind in BACKENDS}
    return DegradationPoint(intensity=intensity, cells=cells)


def run(intensities: Sequence[float] = DEFAULT_INTENSITIES,
        lookups: int = 600, entries: int = 4096,
        seed: int = 1237) -> List[DegradationPoint]:
    return [run_point(intensity, lookups, entries, seed)
            for intensity in intensities]


def report(points: List[DegradationPoint]) -> str:
    points = sorted(points, key=lambda point: point.intensity)
    rows = []
    for point in points:
        for kind in BACKENDS:
            cell = point.cells[kind]
            rows.append((
                f"{point.intensity:.2f}", kind,
                f"{cell.lookups_per_kcycle:.2f}",
                f"{cell.p99_cycles:.0f}",
                cell.degraded_lookups,
                cell.fault_injections,
            ))
    table = format_table(
        ["intensity", "backend", "lookups/kcyc", "p99 cyc", "degraded",
         "injections"],
        rows,
        title="Fault-intensity sweep (DRAM-resident tables, "
              "machine-wide degradation mix)")

    # Monotone non-increasing throughput per backend (1% slack for the
    # probabilistic NoC component).
    monotone = True
    worst = ""
    for kind in BACKENDS:
        series = [point.cells[kind].lookups_per_kcycle for point in points]
        for prev, cur in zip(series, series[1:]):
            if cur > prev * 1.01:
                monotone = False
                worst = f"{kind}: {prev:.2f} -> {cur:.2f}"
    lost = sum(cell.wrong_results
               for point in points for cell in point.cells.values())
    base, last = points[0], points[-1]
    checks = [
        PaperCheck("throughput degrades monotonically",
                   "nested fault coverage by construction",
                   worst or "non-increasing for all 4 backends",
                   holds=monotone),
        PaperCheck("zero lost lookups under faults",
                   "resilience policy falls back, never drops",
                   f"{lost} wrong results across "
                   f"{sum(c.lookups for p in points for c in p.cells.values())} lookups",
                   holds=lost == 0),
        PaperCheck("faults actually bite",
                   "highest intensity must be slower than healthy",
                   f"adaptive {base.cells['adaptive'].lookups_per_kcycle:.2f}"
                   f" -> {last.cells['adaptive'].lookups_per_kcycle:.2f} "
                   f"lookups/kcyc",
                   holds=(last.cells["adaptive"].lookups_per_kcycle
                          < base.cells["adaptive"].lookups_per_kcycle)),
    ]
    return table + "\n\n" + render_checks("degradation sweep", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "degradation",
    "artifact": "§6 extension (faulted hardware)",
    "slug": "degradation_sweep",
    "title": "fault intensity vs sustained throughput/p99 per backend",
    "grid": [
        (f"int_{int(intensity * 100):03d}",
         {"intensity": intensity, "lookups": 600, "entries": 4096,
          "seed": 1237},
         {"intensity": intensity, "lookups": 160, "entries": 2048,
          "seed": 1237})
        for intensity in DEFAULT_INTENSITIES
    ],
}


def bench_run(label, params, seed):
    """Runner hook: one grid point = one fault intensity."""
    del label, seed
    return run_point(params["intensity"], lookups=params["lookups"],
                     entries=params["entries"], seed=params["seed"])


def bench_report(payloads):
    return report(list(payloads.values()))
