"""Figure 3 — software packet-processing breakdown across traffic profiles.

Paper result: 340-993 cycles/packet across the five configurations, with
flow classification (EMC + MegaFlow lookup) occupying 30.9%-77.8% of the
total and growing as flows/rules scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...core.halo_system import HaloSystem
from ...sim.stats import Breakdown
from ...traffic.generator import FlowSet, PacketStream
from ...traffic.profiles import (FIGURE3_PROFILES, TrafficProfile,
                                 profile_by_name)
from ...vswitch.switch import SwitchMode, VirtualSwitch
from ..breakdown import FIG3_STAGES, per_packet, render_stacked
from ..reporting import PaperCheck, render_checks


@dataclass
class Fig3Row:
    profile: str
    cycles_per_packet: float
    breakdown: Breakdown            # per-packet averages
    classification_fraction: float
    megaflow_tuples: int
    layer_hits: dict


def run(max_flows: int = 60_000, packets: int = 1_500,
        warmup: int = 500) -> List[Fig3Row]:
    """Run all five profiles (flow counts capped at ``max_flows`` — the
    shape is preserved; see EXPERIMENTS.md on scaling)."""
    rows: List[Fig3Row] = []
    for profile in FIGURE3_PROFILES:
        rows.append(run_profile(profile, max_flows=max_flows,
                                packets=packets, warmup=warmup))
    return rows


def run_profile(profile: TrafficProfile, max_flows: int = 60_000,
                packets: int = 1_500, warmup: int = 500,
                mode: SwitchMode = SwitchMode.SOFTWARE) -> Fig3Row:
    num_flows = min(profile.num_flows, max_flows)
    flow_set = FlowSet.generate(num_flows, seed=profile.seed,
                                groups=profile.num_rules)
    rules = profile.build_rules(flow_set)

    system = HaloSystem()
    switch = VirtualSwitch(system, mode, megaflow_tuple_capacity=1 << 16)
    switch.install_rules(rules)
    switch.prewarm_megaflows(flow_set.flows)
    switch.warm()

    stream = PacketStream(flow_set, zipf_s=profile.zipf_s, seed=5)
    switch.process_stream(stream.take(warmup))
    switch.stats.packets = 0
    switch.stats.breakdown = Breakdown()
    switch.stats.layer_hits = {}
    stats = switch.process_stream(stream.take(packets))

    return Fig3Row(
        profile=profile.name,
        cycles_per_packet=stats.cycles_per_packet,
        breakdown=per_packet(stats.breakdown, stats.packets),
        classification_fraction=stats.classification_fraction(),
        megaflow_tuples=switch.megaflow.num_tuples,
        layer_hits=dict(stats.layer_hits),
    )


def report(rows: List[Fig3Row]) -> str:
    stacked = {row.profile: row.breakdown for row in rows}
    table = render_stacked(
        stacked, FIG3_STAGES,
        title="Figure 3 — per-packet cycle breakdown (software OVS)")
    low, high = rows[0], rows[-1]
    checks = [
        PaperCheck("cycles/packet range",
                   "340 - 993 (increasing)",
                   f"{low.cycles_per_packet:.0f} - "
                   f"{high.cycles_per_packet:.0f}",
                   holds=(high.cycles_per_packet
                          > low.cycles_per_packet * 1.5)),
        PaperCheck("classification share",
                   "30.9% - 77.8% (growing)",
                   f"{low.classification_fraction*100:.1f}% - "
                   f"{high.classification_fraction*100:.1f}%",
                   holds=(high.classification_fraction
                          > low.classification_fraction
                          and low.classification_fraction > 0.25)),
        PaperCheck("dominant growth stage", "MegaFlow lookup",
                   max(FIG3_STAGES,
                       key=lambda s: high.breakdown[s] - low.breakdown[s]),
                   holds=(max(FIG3_STAGES,
                              key=lambda s: (high.breakdown[s]
                                             - low.breakdown[s]))
                          == "megaflow_lookup")),
    ]
    return table + "\n\n" + render_checks("Figure 3", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "fig03",
    "artifact": "Figure 3",
    "slug": "fig03_breakdown",
    "title": "packet-processing breakdown (5 traffic configs)",
    "grid": [
        (profile.name,
         {"profile": profile.name, "max_flows": 60_000,
          "packets": 1_500, "warmup": 500},
         {"profile": profile.name, "max_flows": 10_000,
          "packets": 400, "warmup": 150})
        for profile in FIGURE3_PROFILES
    ],
}


def bench_run(label, params, seed):
    """Runner hook: one grid point = one Figure-3 traffic profile."""
    del label, seed  # the profile fully pins the workload (seeded)
    return run_profile(profile_by_name(params["profile"]),
                       max_flows=params["max_flows"],
                       packets=params["packets"],
                       warmup=params["warmup"])


def bench_report(payloads):
    """Runner hook: per-profile rows arrive in grid order."""
    return report(list(payloads.values()))
