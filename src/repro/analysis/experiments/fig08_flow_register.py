"""Figure 8b — flow-register estimation accuracy vs bit-array size.

Paper result: a linear-counting register accurately estimates roughly 2×
more flows than it has bits; a 32-bit array suffices to steer the hybrid
mode around the 64-flow threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ...core.flow_register import FlowRegister
from ..reporting import PaperCheck, format_table, render_checks

DEFAULT_BIT_SIZES = (8, 16, 32, 64, 128, 256)


@dataclass
class Fig8Point:
    bits: int
    true_flows: int
    estimate: float
    relative_error: float
    saturated: bool


def run(bit_sizes: Sequence[int] = DEFAULT_BIT_SIZES,
        trials: int = 25, seed: int = 7) -> List[Fig8Point]:
    rng = np.random.default_rng(seed)
    points: List[Fig8Point] = []
    for bits in bit_sizes:
        for true_flows in (bits // 2, bits, 2 * bits, 4 * bits):
            estimates = []
            saturated = 0
            for _ in range(trials):
                register = FlowRegister(bits)
                for hash_value in rng.integers(0, 1 << 62, size=true_flows):
                    register.observe(int(hash_value))
                if register.is_saturated():
                    saturated += 1
                estimates.append(register.estimate())
            mean_estimate = float(np.mean(estimates))
            points.append(Fig8Point(
                bits=bits, true_flows=true_flows, estimate=mean_estimate,
                relative_error=abs(mean_estimate - true_flows)
                / max(true_flows, 1),
                saturated=saturated > trials // 2))
    return points


def report(points: List[Fig8Point]) -> str:
    table = format_table(
        ["bits", "true flows", "estimate", "rel.err", "saturated"],
        [(p.bits, p.true_flows, p.estimate,
          f"{p.relative_error*100:.0f}%", p.saturated) for p in points],
        title="Figure 8b — linear-counting flow register accuracy")
    at_2x = [p for p in points if p.true_flows == 2 * p.bits]
    at_4x = [p for p in points if p.true_flows == 4 * p.bits]
    mean_err_2x = float(np.mean([p.relative_error for p in at_2x]))
    mean_err_4x = float(np.mean([p.relative_error for p in at_4x]))
    threshold_point = next(p for p in points
                           if p.bits == 32 and p.true_flows == 64)
    checks = [
        PaperCheck("accuracy at 2x bits", "accurate (~2x headroom)",
                   f"mean error {mean_err_2x*100:.0f}%",
                   holds=mean_err_2x < 0.25),
        PaperCheck("beyond 2x bits", "degrades",
                   f"mean error {mean_err_4x*100:.0f}% at 4x",
                   holds=mean_err_4x > mean_err_2x),
        PaperCheck("32-bit register at the 64-flow threshold",
                   "sufficient for hybrid switching",
                   f"estimate {threshold_point.estimate:.0f} for 64 flows",
                   holds=threshold_point.relative_error < 0.35),
    ]
    return table + "\n\n" + render_checks("Figure 8b", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "fig08",
    "artifact": "Figure 8",
    "slug": "fig08_flow_register",
    "title": "flow-register estimation accuracy",
    "grid": [("default", {"trials": 25, "seed": 7},
              {"trials": 8, "seed": 7})],
}


def bench_run(label, params, seed):
    del label, seed  # the grid pins the paper seed explicitly
    return run(trials=params["trials"], seed=params["seed"])


def bench_report(payloads):
    return report(payloads["default"])
