"""Figure 12 — performance interference on collocated network functions.

Paper result: co-running the software virtual switch drops ACL/Snort/mTCP
throughput by 17-26% (worse with more flows) via L1D pollution, while the
HALO switch costs the collocated NFs less than 3.2% regardless of traffic.

The collocated phase runs the switch PMD loop and the NF inner loop as two
concurrent DES programs on one engine (see :mod:`repro.nf.collocation`):
software and HALO classification are both :mod:`repro.exec` backends, so
the interference is timed on a genuinely shared timeline rather than
emulated by synchronous interleaving.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ...core.halo_system import HaloSystem
from ...nf.acl import AclFunction
from ...nf.collocation import CollocationResult, run_collocation
from ...nf.ids import IdsFunction
from ...nf.tcpstack import TcpStackFunction
from ...vswitch.switch import SwitchMode
from ..reporting import PaperCheck, format_table, render_checks

NF_FACTORIES: Dict[str, Callable[[HaloSystem], object]] = {
    "acl": lambda system: AclFunction(system.hierarchy),
    "snort": lambda system: IdsFunction(system.hierarchy),
    "mtcp": lambda system: TcpStackFunction(system.hierarchy),
}

DEFAULT_FLOW_COUNTS = (1_000, 50_000)
DEFAULT_MODES = (SwitchMode.SOFTWARE, SwitchMode.HALO_NONBLOCKING)


def run(flow_counts: Sequence[int] = DEFAULT_FLOW_COUNTS,
        modes: Sequence[SwitchMode] = DEFAULT_MODES,
        packets: int = 400, warmup: int = 400,
        nf_names: Sequence[str] = ("acl", "snort", "mtcp"),
        ) -> List[CollocationResult]:
    results: List[CollocationResult] = []
    for name in nf_names:
        factory = NF_FACTORIES[name]
        for flows in flow_counts:
            for mode in modes:
                results.append(run_collocation(
                    factory, num_flows=flows, switch_mode=mode,
                    packets=packets, warmup=warmup))
    return results


def report(results: List[CollocationResult]) -> str:
    table = format_table(
        ["NF", "flows", "switch", "drop", "L1D miss solo", "L1D miss coloc"],
        [(r.nf_name, r.num_flows, r.switch_mode.value,
          f"{r.throughput_drop*100:.1f}%",
          f"{r.solo_l1_miss_ratio*100:.1f}%",
          f"{r.colocated_l1_miss_ratio*100:.1f}%") for r in results],
        title="Figure 12 — collocated NF interference")

    software = [r for r in results
                if r.switch_mode is SwitchMode.SOFTWARE]
    halo = [r for r in results
            if r.switch_mode is not SwitchMode.SOFTWARE]
    max_sw_drop = max(r.throughput_drop for r in software)
    max_halo_drop = max(r.throughput_drop for r in halo)
    checks = [
        PaperCheck("software-switch NF drop", "17-26%",
                   f"up to {max_sw_drop*100:.1f}%",
                   holds=0.08 <= max_sw_drop <= 0.35),
        PaperCheck("HALO-switch NF drop", "< 3.2%",
                   f"up to {max_halo_drop*100:.1f}%",
                   holds=max_halo_drop < 0.05),
        PaperCheck("mechanism", "L1D miss-ratio increase",
                   "software raises NF L1D misses, HALO barely",
                   holds=all(r.l1_miss_increase > 0.05 for r in software)
                   and all(r.l1_miss_increase < 0.08 for r in halo)),
    ]
    return table + "\n\n" + render_checks("Figure 12", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "fig12",
    "artifact": "Figure 12",
    "slug": "fig12_collocation",
    "title": "collocated NF interference",
    "grid": [
        (nf,
         {"nf": nf, "flow_counts": [1_000, 50_000],
          "packets": 400, "warmup": 400},
         {"nf": nf, "flow_counts": [5_000], "packets": 150, "warmup": 150}
         if nf == "acl" else None)
        for nf in ("acl", "snort", "mtcp")
    ],
}


def bench_run(label, params, seed):
    """Runner hook: one grid point = one collocated NF."""
    del label, seed
    return run(flow_counts=tuple(params["flow_counts"]),
               packets=params["packets"], warmup=params["warmup"],
               nf_names=(params["nf"],))


def bench_report(payloads):
    return report([result for results in payloads.values()
                   for result in results])
