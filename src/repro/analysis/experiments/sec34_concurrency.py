"""§3.4 — concurrency overhead of shared flow tables.

Paper observations:

* the software optimistic-locking scheme costs 13.1% of execution time,
  and concurrent cuckoo displacements force reader retries;
* core-to-core communication makes a remote-private-cache access ~2×
  slower than an LLC access, so shared tables want to stay in the LLC.

HALO removes both: queries lock bucket lines in hardware for their own
duration (no read-side software lock, no retries) and always access the
shared table LLC-side.

This experiment runs a reader core against a writer core performing
concurrent inserts (cuckoo moves) on the same table and measures the
reader's per-lookup cost: software (lock + retry on invalidation + lines
bounced into the writer's private cache) vs HALO.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.halo_system import HaloSystem
from ...hashtable.locking import READ_SIDE_CYCLES
from ...traffic.generator import random_keys
from ..reporting import PaperCheck, format_table, render_checks


@dataclass
class ConcurrencyResult:
    software_cycles_idle: float       # reader alone
    software_cycles_contended: float  # reader vs writer
    software_retry_rate: float        # fraction of reads retried
    software_lock_share: float        # locking cycles / total
    halo_cycles_idle: float
    halo_cycles_contended: float


def run(table_entries: int = 1 << 14, lookups: int = 400,
        writes_per_lookup: int = 2, occupancy: float = 0.80,
        seed: int = 13) -> ConcurrencyResult:
    system = HaloSystem()
    table = system.create_table(table_entries, name="shared")
    keys = random_keys(int(table_entries * occupancy), seed=seed)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    fresh = random_keys(lookups * writes_per_lookup + 64, seed=seed + 1)

    rng = np.random.default_rng(seed + 2)
    sample = [keys[int(i)] for i in rng.integers(0, len(keys),
                                                 size=lookups)]

    # -- software reader, idle --------------------------------------------------
    # The reader shares its core with other per-packet work, so its private
    # caches do not retain table lines between lookups (same steady-state
    # assumption as Figures 11/13).
    engine = system.software_engine(core_id=0)
    idle_cycles = 0.0
    for key in sample:
        system.hierarchy.flush_private(0)
        _value, result = engine.lookup(table, key)
        idle_cycles += result.cycles
    software_idle = idle_cycles / lookups

    # -- software reader vs writer ------------------------------------------------
    writer = system.software_engine(core_id=1)
    contended_cycles = 0.0
    retries = 0
    lock_cycles_total = 0.0
    write_index = 0
    for key in sample:
        system.hierarchy.flush_private(0)
        token = table.lock.read_begin()
        _value, result = engine.lookup(table, key)
        cycles = result.cycles
        # Writer makes progress during the read (SMT siblings / other core).
        for _ in range(writes_per_lookup):
            writer.insert(table, fresh[write_index], write_index)
            write_index += 1
        if not table.lock.read_validate(token):
            # A cuckoo move raced the read: re-probe (Figure 7a).
            retries += 1
            _value, retry_result = engine.lookup(table, key)
            cycles += retry_result.cycles + READ_SIDE_CYCLES
            lock_cycles_total += READ_SIDE_CYCLES
        lock_cycles_total += READ_SIDE_CYCLES
        contended_cycles += cycles
    software_contended = contended_cycles / lookups

    # -- HALO reader ------------------------------------------------------------------
    fresh2 = random_keys(lookups * writes_per_lookup + 64, seed=seed + 3)
    idle = system.run_blocking_lookups(table, sample)
    halo_idle = idle.cycles_per_op
    halo_cycles = 0.0
    write_index = 0
    for key in sample:
        episode = system.run_blocking_lookups(table, [key])
        halo_cycles += episode.cycles
        for _ in range(writes_per_lookup):
            writer.insert(table, fresh2[write_index], write_index)
            write_index += 1
    halo_contended = halo_cycles / lookups

    return ConcurrencyResult(
        software_cycles_idle=software_idle,
        software_cycles_contended=software_contended,
        software_retry_rate=retries / lookups,
        software_lock_share=lock_cycles_total / contended_cycles,
        halo_cycles_idle=halo_idle,
        halo_cycles_contended=halo_contended,
    )


def report(result: ConcurrencyResult) -> str:
    table = format_table(
        ["reader path", "idle cyc/lookup", "contended cyc/lookup",
         "overhead"],
        [
            ("software", result.software_cycles_idle,
             result.software_cycles_contended,
             f"{result.software_cycles_contended / result.software_cycles_idle - 1:+.1%}"),
            ("halo", result.halo_cycles_idle,
             result.halo_cycles_contended,
             f"{result.halo_cycles_contended / result.halo_cycles_idle - 1:+.1%}"),
        ],
        title="§3.4 — shared-table lookup under a concurrent writer")
    software_overhead = (result.software_cycles_contended
                         / result.software_cycles_idle - 1)
    halo_overhead = (result.halo_cycles_contended
                     / result.halo_cycles_idle - 1)
    checks = [
        PaperCheck("software locking share", "13.1% of execution",
                   f"{result.software_lock_share:.1%} "
                   f"(retry rate {result.software_retry_rate:.1%})",
                   holds=0.08 <= result.software_lock_share <= 0.25),
        PaperCheck("contention hurts the software reader",
                   "retries + core-to-core bouncing",
                   f"+{software_overhead:.1%}",
                   holds=software_overhead > 0.02),
        PaperCheck("HALO reader largely immune",
                   "hardware lock bits, LLC-side access",
                   f"{halo_overhead:+.1%}",
                   holds=halo_overhead < software_overhead),
    ]
    return table + "\n\n" + render_checks("§3.4 concurrency", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "sec34",
    "artifact": "§3.4",
    "slug": "sec34_concurrency",
    "title": "shared-table concurrency overhead",
    "grid": [("default", {"table_entries": 1 << 14, "lookups": 400},
              {"table_entries": 1 << 12, "lookups": 120})],
}


def bench_run(label, params, seed):
    del label, seed
    return run(table_entries=params["table_entries"],
               lookups=params["lookups"])


def bench_report(payloads):
    return report(payloads["default"])
