"""Figure 11 — tuple space search throughput vs tuple count.

Paper result: HALO's non-blocking mode scales tuple space search up to
23.4× over software at 20 tuples (queries to all tuples dispatched at once
across the distributed accelerators); blocking mode is limited (it
serialises per-tuple lookups); TCAM-class devices hold one wildcard table
and stay flat/fastest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Sequence

import numpy as np

from ...core.halo_system import HaloSystem
from ...tcam.sram_tcam import SRAM_TCAM_SEARCH_CYCLES
from ...tcam.tcam import TCAM_SEARCH_CYCLES
from ...traffic.generator import random_keys
from ..reporting import PaperCheck, format_table, render_checks

#: The paper's tuple-count sweep; 1024 flow entries per tuple (§5.2).
DEFAULT_TUPLE_COUNTS = (5, 10, 15, 20)
ENTRIES_PER_TUPLE = 1024


@dataclass
class Fig11Point:
    num_tuples: int
    cycles_per_packet: Dict[str, float] = field(default_factory=dict)

    def normalized_throughput(self) -> Dict[str, float]:
        software = self.cycles_per_packet["software"]
        return {name: software / value
                for name, value in self.cycles_per_packet.items()}


def _build_tuples(system: HaloSystem, num_tuples: int, seed: int):
    tables = []
    keysets = []
    for index in range(num_tuples):
        table = system.create_table(ENTRIES_PER_TUPLE,
                                    name=f"tuple{index}")
        keys = random_keys(int(ENTRIES_PER_TUPLE * 0.8),
                           seed=seed * 100 + index)
        for position, key in enumerate(keys):
            table.insert(key, position)
        system.warm_table(table)
        tables.append(table)
        keysets.append(keys)
    return tables, keysets


def _packet_keys(rng, keysets, hit_tuple: int) -> List[bytes]:
    """Per-tuple masked keys for one packet: only ``hit_tuple`` matches."""
    keys = []
    for index, keyset in enumerate(keysets):
        if index == hit_tuple:
            keys.append(keyset[int(rng.integers(0, len(keyset)))])
        else:
            keys.append(bytes(rng.integers(0, 256, size=16,
                                           dtype=np.uint8)))
    return keys


def run_point(num_tuples: int, packets: int = 40, seed: int = 10) -> Fig11Point:
    system = HaloSystem()
    tables, keysets = _build_tuples(system, num_tuples, seed)
    rng = np.random.default_rng(seed + 1)
    # MegaFlow search order is unordered w.r.t. the matching tuple; draw the
    # hit tuple uniformly so software searches half the tuples on average.
    hit_tuples = [int(rng.integers(0, num_tuples)) for _ in range(packets)]
    packet_key_lists = [_packet_keys(rng, keysets, hit)
                        for hit in hit_tuples]

    point = Fig11Point(num_tuples=num_tuples)

    # -- software: sequential tuple search, stop at first hit -----------------
    engine = system.software_engine()
    software_cycles = 0.0
    for keys in packet_key_lists:
        # Between packets the rest of the pipeline (EMC, packet buffers,
        # actions) sweeps the private caches; in steady state the tuple
        # tables are LLC-resident, as in the paper's OVS measurements.
        system.hierarchy.flush_private(0)
        for index, table in enumerate(tables):
            value, result = engine.lookup(table, keys[index])
            software_cycles += result.cycles
            if value is not None:
                break
    point.cycles_per_packet["software"] = software_cycles / packets

    # -- HALO blocking: LOOKUP_B per tuple, stop at first hit ------------------
    def blocking_program() -> Generator:
        for keys in packet_key_lists:
            for index, table in enumerate(tables):
                result = yield from system.isa.lookup_b(0, table,
                                                        keys[index])
                if result.found:
                    break
        return []

    start = system.engine.now
    system.engine.run_process(blocking_program())
    point.cycles_per_packet["halo-b"] = (system.engine.now
                                         - start) / packets

    # -- HALO non-blocking: all tuples at once + SNAPSHOT_READ ------------------
    def nonblocking_program() -> Generator:
        for keys in packet_key_lists:
            pending = []
            for index, table in enumerate(tables):
                process = yield from system.isa.lookup_nb(0, table,
                                                          keys[index])
                pending.append(process)
            yield from system.isa.snapshot_read_poll(0, pending)
        return []

    start = system.engine.now
    system.engine.run_process(nonblocking_program())
    point.cycles_per_packet["halo-nb"] = (system.engine.now
                                          - start) / packets

    # -- TCAM-class: one wildcard search per packet ------------------------------
    point.cycles_per_packet["tcam"] = float(TCAM_SEARCH_CYCLES)
    point.cycles_per_packet["sram-tcam"] = float(SRAM_TCAM_SEARCH_CYCLES)
    return point


def run(tuple_counts: Sequence[int] = DEFAULT_TUPLE_COUNTS,
        packets: int = 40, seed: int = 10) -> List[Fig11Point]:
    return [run_point(count, packets=packets, seed=seed)
            for count in tuple_counts]


def report(points: List[Fig11Point]) -> str:
    solutions = ("software", "halo-b", "halo-nb", "tcam", "sram-tcam")
    rows = []
    for point in points:
        normalized = point.normalized_throughput()
        rows.append((point.num_tuples,
                     f"{point.cycles_per_packet['software']:.0f}")
                    + tuple(f"{normalized[s]:.1f}x" for s in solutions))
    table = format_table(
        ["tuples", "sw cyc/pkt"] + list(solutions), rows,
        title="Figure 11 — tuple space search throughput "
              "normalised to software")

    last = points[-1].normalized_throughput()
    first = points[0].normalized_throughput()
    checks = [
        PaperCheck("HALO-NB at 20 tuples", "up to 23.4x",
                   f"{last['halo-nb']:.1f}x",
                   holds=14.0 <= last["halo-nb"] <= 30.0),
        PaperCheck("HALO-NB scaling with tuples", "grows",
                   f"{first['halo-nb']:.1f}x -> {last['halo-nb']:.1f}x",
                   holds=last["halo-nb"] > first["halo-nb"] * 1.5),
        PaperCheck("HALO-B", "limited (serialised)",
                   f"{last['halo-b']:.1f}x flat",
                   holds=last["halo-b"] < 4.0),
        PaperCheck("TCAM", "best", f"{last['tcam']:.0f}x",
                   holds=last["tcam"] > last["halo-nb"]),
    ]
    return table + "\n\n" + render_checks("Figure 11", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "fig11",
    "artifact": "Figure 11",
    "slug": "fig11_tuple_space",
    "title": "tuple space search scaling",
    "grid": [
        (f"tuples_{count:02d}",
         {"num_tuples": count, "packets": 40, "seed": 10},
         {"num_tuples": count, "packets": 15, "seed": 10})
        for count in DEFAULT_TUPLE_COUNTS
    ],
}


def bench_run(label, params, seed):
    """Runner hook: one grid point = one tuple-space size."""
    del label, seed
    return run_point(params["num_tuples"], packets=params["packets"],
                     seed=params["seed"])


def bench_report(payloads):
    return report(list(payloads.values()))
