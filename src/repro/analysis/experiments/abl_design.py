"""Ablations of the HALO design choices the paper fixes in §4.7.

The paper chose: 10 scoreboard entries, a 10-table metadata cache, one
fully-pipelined hash unit, and one accelerator per LLC slice, noting
these "maintain a decent balance between performance and hardware cost".
Four sweeps show the balance point:

* ``scoreboard`` — scoreboard depth vs TSS non-blocking fan-out;
* ``accelerators`` — accelerator (LLC slice) count vs overlap;
* ``metadata_cache`` — metadata-cache capacity vs multi-table hit rate;
* ``hash_pipeline`` — hash-unit issue interval (1 = fully pipelined).
"""

from __future__ import annotations

from typing import Generator, List, Sequence, Tuple

import numpy as np

from ...core.halo_system import HaloSystem
from ...sim.params import HaloParams, SKYLAKE_SP_16C
from ...traffic.generator import random_keys

DEFAULT_TUPLES = 20
DEFAULT_ENTRIES_PER_TUPLE = 1024
DEFAULT_PACKETS = 30
KEYS_PER_TUPLE = 800


def _tss_cycles_per_packet(machine, tuples: int, packets: int) -> float:
    """HALO-NB tuple space search cost on a given machine config."""
    system = HaloSystem(machine)
    tables = []
    keysets = []
    for index in range(tuples):
        table = system.create_table(DEFAULT_ENTRIES_PER_TUPLE,
                                    name=f"abl{index}")
        keys = random_keys(KEYS_PER_TUPLE, seed=300 + index)
        for position, key in enumerate(keys):
            table.insert(key, position)
        system.warm_table(table)
        tables.append(table)
        keysets.append(keys)
    rng = np.random.default_rng(9)

    def program() -> Generator:
        for _packet in range(packets):
            hit = int(rng.integers(0, tuples))
            pending = []
            for index, table in enumerate(tables):
                key = (keysets[index][int(rng.integers(0, KEYS_PER_TUPLE))]
                       if index == hit else
                       bytes(rng.integers(0, 256, size=16,
                                          dtype=np.uint8)))
                process = yield from system.isa.lookup_nb(0, table, key)
                pending.append(process)
            yield from system.isa.snapshot_read_poll(0, pending)
        return []

    start = system.engine.now
    system.engine.run_process(program())
    return (system.engine.now - start) / packets


def run_scoreboard(depths: Sequence[int] = (1, 2, 5, 10, 20),
                   tuples: int = DEFAULT_TUPLES,
                   packets: int = DEFAULT_PACKETS
                   ) -> List[Tuple[int, float]]:
    return [(depth,
             _tss_cycles_per_packet(
                 SKYLAKE_SP_16C.scaled(
                     halo=HaloParams(scoreboard_entries=depth)),
                 tuples, packets))
            for depth in depths]


def run_accelerators(slice_counts: Sequence[int] = (2, 4, 8, 16),
                     tuples: int = DEFAULT_TUPLES,
                     packets: int = DEFAULT_PACKETS
                     ) -> List[Tuple[int, float]]:
    return [(slices,
             _tss_cycles_per_packet(
                 SKYLAKE_SP_16C.scaled(llc_slices=slices, cores=slices),
                 tuples, packets))
            for slices in slice_counts]


def run_hash_pipeline(intervals: Sequence[int] = (1, 3),
                      tuples: int = DEFAULT_TUPLES,
                      packets: int = DEFAULT_PACKETS
                      ) -> List[Tuple[int, float]]:
    return [(interval,
             _tss_cycles_per_packet(
                 SKYLAKE_SP_16C.scaled(
                     halo=HaloParams(hash_issue_interval=interval)),
                 tuples, packets))
            for interval in intervals]


def _metadata_workload(system, tables_count: int, rounds: int) -> float:
    """Round-robin over many tables: stresses the metadata cache."""
    tables = []
    keysets = []
    for index in range(tables_count):
        table = system.create_table(256, name=f"meta{index}")
        keys = random_keys(128, seed=400 + index)
        for position, key in enumerate(keys):
            table.insert(key, position)
        system.warm_table(table)
        tables.append(table)
        keysets.append(keys)

    def program():
        for round_index in range(rounds):
            for index, table in enumerate(tables):
                yield from system.isa.lookup_b(
                    0, table, keysets[index][round_index])
        return []

    start = system.engine.now
    system.engine.run_process(program())
    return (system.engine.now - start) / (rounds * tables_count)


def run_metadata_cache(table_counts: Sequence[int] = (1, 2, 5, 10),
                       tables: int = 24, rounds: int = 8
                       ) -> List[Tuple[int, float, float]]:
    rows: List[Tuple[int, float, float]] = []
    for capacity in table_counts:
        machine = SKYLAKE_SP_16C.scaled(
            halo=HaloParams(metadata_cache_tables=capacity))
        system = HaloSystem(machine)
        cycles = _metadata_workload(system, tables, rounds)
        hits = sum(acc.stats.metadata_hits for acc in system.accelerators)
        misses = sum(acc.stats.metadata_misses
                     for acc in system.accelerators)
        rate = hits / (hits + misses) if hits + misses else 0.0
        rows.append((capacity, cycles, rate))
    return rows


def report_scoreboard(rows: List[Tuple[int, float]]) -> str:
    lines = ["Ablation — scoreboard depth (TSS NB cycles/packet):"]
    lines += [f"  depth {depth:2d}: {cycles:7.1f}" for depth, cycles in rows]
    lines.append("  paper picks 10: deeper adds little, shallower hurts")
    return "\n".join(lines)


def report_accelerators(rows: List[Tuple[int, float]]) -> str:
    lines = ["Ablation — accelerators (LLC slices), TSS NB cycles/packet:"]
    lines += [f"  {slices:2d} accelerators: {cycles:7.1f}"
              for slices, cycles in rows]
    lines.append("  distributed design: more accelerators -> more overlap")
    return "\n".join(lines)


def report_metadata_cache(rows: List[Tuple[int, float, float]]) -> str:
    lines = ["Ablation — metadata cache capacity "
             "(multi-table round robin, LOOKUP_B):"]
    lines += [f"  {capacity:2d} tables: {cycles:6.1f} cyc/lookup, "
              f"{rate*100:5.1f}% metadata hits"
              for capacity, cycles, rate in rows]
    return "\n".join(lines)


def report_hash_pipeline(rows: List[Tuple[int, float]]) -> str:
    lines = ["Ablation — hash-unit issue interval (1 = fully pipelined):"]
    lines += [f"  interval {interval}: {cycles:7.1f} cyc/packet"
              for interval, cycles in rows]
    return "\n".join(lines)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "abl_design",
    "artifact": "§4.7 ablations",
    "slug": "ablation_halo_design",
    "title": "design-knob ablations (scoreboard/accelerators/metadata/hash)",
    "grid": [
        ("scoreboard",
         {"depths": [1, 2, 5, 10, 20], "tuples": 20, "packets": 30},
         {"depths": [1, 10], "tuples": 8, "packets": 10}),
        ("accelerators",
         {"slice_counts": [2, 4, 8, 16], "tuples": 20, "packets": 30},
         {"slice_counts": [2, 16], "tuples": 8, "packets": 10}),
        ("metadata_cache",
         {"table_counts": [1, 2, 5, 10], "tables": 24, "rounds": 8},
         {"table_counts": [1, 10], "tables": 8, "rounds": 4}),
        ("hash_pipeline",
         {"intervals": [1, 3], "tuples": 20, "packets": 30},
         {"intervals": [1, 3], "tuples": 8, "packets": 10}),
    ],
}


def bench_run(label, params, seed):
    """Runner hook: one grid point = one §4.7 design-knob sweep."""
    del seed  # workloads are pinned (seeds 9/300+/400+) for comparability
    if label == "scoreboard":
        return run_scoreboard(tuple(params["depths"]),
                              tuples=params["tuples"],
                              packets=params["packets"])
    if label == "accelerators":
        return run_accelerators(tuple(params["slice_counts"]),
                                tuples=params["tuples"],
                                packets=params["packets"])
    if label == "metadata_cache":
        return run_metadata_cache(tuple(params["table_counts"]),
                                  tables=params["tables"],
                                  rounds=params["rounds"])
    if label == "hash_pipeline":
        return run_hash_pipeline(tuple(params["intervals"]),
                                 tuples=params["tuples"],
                                 packets=params["packets"])
    raise ValueError(f"unknown abl_design grid label {label!r}")


def bench_report(payloads):
    renderers = {
        "scoreboard": report_scoreboard,
        "accelerators": report_accelerators,
        "metadata_cache": report_metadata_cache,
        "hash_pipeline": report_hash_pipeline,
    }
    return "\n\n".join(renderers[label](rows)
                       for label, rows in payloads.items())
