"""Ablation — how far can *software* prefetch batching go?

The paper's software baseline is "highly optimized with software
prefetching" (rte_hash, §5).  This ablation models an idealised
``lookup_bulk`` whose same-stage misses overlap perfectly up to the
MSHRs, and asks what of HALO's advantage survives:

* pure single-table *throughput*: idealised batching closes most of the
  gap (real DPDK bulk gets part of this);
* *latency* (a packet needs this lookup now): blocking software cannot
  batch — HALO-B (§4.1) keeps its ~3×;
* private-cache pollution (Figure 12), locking (§3.4), and TSS fan-out
  (Figure 11) are untouched by prefetching.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ...core.halo_system import HaloSystem
from ...traffic.generator import random_keys

DEFAULT_BATCHES = (2, 4, 8, 16)


def run(table_entries: int = 1 << 16, flows: int = 40_000,
        sample: int = 400, batches: Sequence[int] = DEFAULT_BATCHES,
        seed: int = 21) -> List[Tuple[str, float]]:
    """``(solution name, cycles/lookup)`` rows for an LLC-resident table."""
    system = HaloSystem()
    table = system.create_table(table_entries, name="prefetch_ablation")
    keys = random_keys(flows, seed=seed)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.hierarchy.flush_private(0)
    workload = keys[:sample]

    serial = system.run_software_lookups(table, workload)
    rows = [("software serial", serial.cycles_per_op)]
    for batch in batches:
        engine = system.software_engine()
        _values, cycles = engine.lookup_bulk(table, workload, batch=batch)
        rows.append((f"software bulk x{batch}", cycles / len(workload)))
    blocking = system.run_blocking_lookups(table, workload)
    rows.append(("HALO LOOKUP_B", blocking.cycles_per_op))
    nonblocking = system.run_nonblocking_lookups(table, workload)
    rows.append(("HALO LOOKUP_NB", nonblocking.cycles_per_op))
    return rows


def report(rows: List[Tuple[str, float]]) -> str:
    lines = ["Ablation — software prefetch batching vs HALO "
             "(cycles/lookup, LLC-resident table):"]
    lines += [f"  {name:20s} {cycles:7.1f}" for name, cycles in rows]
    lines.append("  idealised bulk batching approaches HALO's throughput;")
    lines.append("  HALO's remaining edge: latency, zero private-cache")
    lines.append("  pollution (Fig.12), no locking (§3.4), TSS fan-out "
                 "(Fig.11)")
    return "\n".join(lines)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "abl_prefetch",
    "artifact": "§5 ablation (software prefetch)",
    "slug": "ablation_software_prefetch",
    "title": "software prefetch batching ablation",
    "grid": [("default",
              {"table_entries": 1 << 16, "flows": 40_000, "sample": 400,
               "batches": [2, 4, 8, 16], "seed": 21},
              {"table_entries": 1 << 14, "flows": 8_000, "sample": 120,
               "batches": [4, 16], "seed": 21})],
}


def bench_run(label, params, seed):
    del label, seed
    return run(table_entries=params["table_entries"],
               flows=params["flows"], sample=params["sample"],
               batches=tuple(params["batches"]), seed=params["seed"])


def bench_report(payloads):
    return report(payloads["default"])
