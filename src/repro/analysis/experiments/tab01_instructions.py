"""Table 1 — instruction count and category mix of a single lookup, plus
the §3.4 locking-overhead measurement.

Paper result: ~210 instructions per cuckoo lookup — 48.1% memory
(36.2% load / 11.8% store), 21.0% arithmetic, 30.9% other — and the
optimistic-locking scheme costs 13.1% of total execution time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.halo_system import HaloSystem
from ...hashtable.locking import READ_SIDE_CYCLES
from ...traffic.generator import random_keys
from ..reporting import PaperCheck, format_table, render_checks


@dataclass
class Tab1Result:
    instructions_per_lookup: float
    load_fraction: float
    store_fraction: float
    memory_fraction: float
    arithmetic_fraction: float
    others_fraction: float
    locking_share: float        # of total lookup execution time


def run(lookups: int = 600, table_entries: int = 1 << 16,
        seed: int = 6) -> Tab1Result:
    system = HaloSystem()
    table = system.create_table(table_entries)
    keys = random_keys(int(table_entries * 0.7), seed=seed)
    for index, key in enumerate(keys):
        table.insert(key, index)
    system.warm_table(table)
    system.hierarchy.flush_private(0)

    engine = system.software_engine()
    rng = np.random.default_rng(seed)
    instructions = 0
    loads = stores = arithmetic = others = 0
    total_cycles = 0.0
    for index in rng.integers(0, len(keys), size=lookups):
        table.tracer.begin()
        table.lookup(keys[int(index)])
        trace = table.tracer.take()
        mix = trace.mix
        instructions += mix.total
        loads += mix.loads
        stores += mix.stores
        arithmetic += mix.arithmetic
        others += mix.others
        result = engine.core.execute(trace, lock_cycles=READ_SIDE_CYCLES)
        total_cycles += result.cycles

    total = instructions or 1
    return Tab1Result(
        instructions_per_lookup=instructions / lookups,
        load_fraction=loads / total,
        store_fraction=stores / total,
        memory_fraction=(loads + stores) / total,
        arithmetic_fraction=arithmetic / total,
        others_fraction=others / total,
        locking_share=READ_SIDE_CYCLES * lookups / total_cycles,
    )


def report(result: Tab1Result) -> str:
    table = format_table(
        ["metric", "paper", "measured"],
        [
            ("instructions/lookup", "210", f"{result.instructions_per_lookup:.0f}"),
            ("memory %", "48.1", f"{result.memory_fraction*100:.1f}"),
            ("load %", "36.2", f"{result.load_fraction*100:.1f}"),
            ("store %", "11.8", f"{result.store_fraction*100:.1f}"),
            ("arithmetic %", "21.0", f"{result.arithmetic_fraction*100:.1f}"),
            ("others %", "30.9", f"{result.others_fraction*100:.1f}"),
            ("locking share of exec time (§3.4)", "13.1%",
             f"{result.locking_share*100:.1f}%"),
        ],
        title="Table 1 — per-lookup instruction profile")
    checks = [
        PaperCheck("instruction count", "~210",
                   f"{result.instructions_per_lookup:.0f}",
                   holds=abs(result.instructions_per_lookup - 210) < 25),
        PaperCheck("memory-instruction share", "48.1%",
                   f"{result.memory_fraction*100:.1f}%",
                   holds=abs(result.memory_fraction - 0.481) < 0.03),
        PaperCheck("locking share", "13.1%",
                   f"{result.locking_share*100:.1f}%",
                   holds=abs(result.locking_share - 0.131) < 0.05),
    ]
    return table + "\n\n" + render_checks("Table 1 / §3.4", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "tab01",
    "artifact": "Table 1",
    "slug": "tab01_instructions",
    "title": "per-lookup instruction profile + locking share",
    "grid": [("default", {"lookups": 600}, {"lookups": 200})],
}


def bench_run(label, params, seed):
    del label, seed
    return run(lookups=params["lookups"])


def bench_report(payloads):
    return report(payloads["default"])
