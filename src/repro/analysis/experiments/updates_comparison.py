"""Rule-update cost: cuckoo hash vs TCAM (paper §1 / §2.2 / ref [67]).

One of the paper's arguments against TCAM (beyond power) is update cost:
"it involves expensive and inflexible update operations".  A TCAM keeps
rules physically sorted by priority, so installing a high-priority rule
shuffles existing entries; a cuckoo table absorbs inserts with an amortised
handful of displacements and supports in-place deletes.

This experiment installs the same priority-diverse rule stream into both
structures and compares per-update costs — completing the TCAM comparison
story alongside Table 4 (power) and Figure 9 (lookup latency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.halo_system import HaloSystem
from ...hashtable.locking import WRITE_SIDE_CYCLES
from ...tcam.tcam import Tcam, TernaryRule
from ...traffic.generator import random_keys
from ..reporting import PaperCheck, format_table, render_checks


@dataclass
class UpdateCostResult:
    updates: int
    cuckoo_mean_cycles: float
    cuckoo_p99_cycles: float
    cuckoo_kicks_per_insert: float
    tcam_mean_cycles: float
    tcam_p99_cycles: float
    tcam_moves_per_install: float


def run(updates: int = 2_000, prefill: float = 0.70,
        seed: int = 17) -> UpdateCostResult:
    system = HaloSystem()
    table = system.create_table(max(updates * 4, 4096), name="updates")
    prefill_keys = random_keys(int(table.capacity * prefill), seed=seed)
    for index, key in enumerate(prefill_keys):
        table.insert(key, index)
    system.warm_table(table)
    engine = system.software_engine(core_id=0)

    fresh = random_keys(updates + 16, seed=seed + 1)
    cuckoo_costs = []
    kicks_before = table.stats.kicks
    for index in range(updates):
        result = engine.insert(table, fresh[index], index)
        cuckoo_costs.append(result.cycles + WRITE_SIDE_CYCLES)
    kicks = table.stats.kicks - kicks_before

    rng = np.random.default_rng(seed + 2)
    tcam = Tcam(capacity_rules=updates + 16)
    tcam_costs = []
    moves_before = tcam.stats.update_moves
    for index in range(updates):
        priority = int(rng.integers(0, 1 << 16))
        tcam_costs.append(tcam.install(
            TernaryRule(value=index, mask=0xFFFF, priority=priority)))
    moves = tcam.stats.update_moves - moves_before

    cuckoo_costs.sort()
    tcam_costs.sort()
    p99 = max(1, int(len(cuckoo_costs) * 0.99) - 1)
    return UpdateCostResult(
        updates=updates,
        cuckoo_mean_cycles=float(np.mean(cuckoo_costs)),
        cuckoo_p99_cycles=float(cuckoo_costs[p99]),
        cuckoo_kicks_per_insert=kicks / updates,
        tcam_mean_cycles=float(np.mean(tcam_costs)),
        tcam_p99_cycles=float(tcam_costs[p99]),
        tcam_moves_per_install=moves / updates,
    )


def report(result: UpdateCostResult) -> str:
    table = format_table(
        ["structure", "mean cyc/update", "p99 cyc/update", "work/update"],
        [
            ("cuckoo (software)", result.cuckoo_mean_cycles,
             result.cuckoo_p99_cycles,
             f"{result.cuckoo_kicks_per_insert:.2f} kicks"),
            ("TCAM", result.tcam_mean_cycles, result.tcam_p99_cycles,
             f"{result.tcam_moves_per_install:.0f} entry moves"),
        ],
        title=f"Rule updates — cuckoo vs TCAM "
              f"({result.updates} priority-diverse installs)")
    checks = [
        PaperCheck("TCAM updates", "expensive and inflexible [67]",
                   f"mean {result.tcam_mean_cycles:.0f} cycles, "
                   f"{result.tcam_moves_per_install:.0f} moves/install, "
                   f"growing with table size",
                   holds=result.tcam_mean_cycles
                   > result.cuckoo_mean_cycles),
        PaperCheck("cuckoo updates", "decent lookup AND update perf (§2.2)",
                   f"mean {result.cuckoo_mean_cycles:.0f} cycles, "
                   f"{result.cuckoo_kicks_per_insert:.2f} kicks/insert",
                   holds=result.cuckoo_kicks_per_insert < 2.0),
        PaperCheck("tail behaviour", "TCAM worst case scales with rules",
                   f"p99: TCAM {result.tcam_p99_cycles:.0f} vs cuckoo "
                   f"{result.cuckoo_p99_cycles:.0f}",
                   holds=result.tcam_p99_cycles
                   > result.cuckoo_p99_cycles),
    ]
    return table + "\n\n" + render_checks("rule updates", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "updates",
    "artifact": "§2.2 extension (updates)",
    "slug": "update_costs",
    "title": "rule-update cost: cuckoo vs TCAM",
    "grid": [("default", {"updates": 2_000}, {"updates": 400})],
}


def bench_run(label, params, seed):
    del label, seed
    return run(updates=params["updates"])


def bench_report(payloads):
    return report(payloads["default"])
