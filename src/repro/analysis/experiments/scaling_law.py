"""Scale-out law: per-socket HALO vs sharded vswitch instances (§6).

The paper evaluates HALO on one 16-core socket (§6); the natural
operator question it leaves open is how to spend the *next* socket.  Two
answers compete:

* **scale up** — one monolithic vswitch on a multi-socket NUCA machine
  (PR 8's :class:`~repro.sim.params.Topology`): every socket gets its
  own ring of HALO slices, but the shared flow table's home slices
  spread over *all* sockets, so half the lookups pay the inter-socket
  link round trip;
* **scale out** — N independent single-socket vswitch shards behind a
  deterministic RSS flow-hash balancer
  (:mod:`repro.cluster`): no cross-socket traffic ever, but the stream
  splits by flow hash, so a skewed (Zipf) flow popularity piles load
  onto one shard until the balancer rewrites its indirection table.

This experiment sweeps sockets × shards × skew and reports cluster
throughput (total lookups over the slowest shard's cycles) and merged
p50/p99 lookup latency, making the crossover measurable: sharding wins
throughput as soon as the link penalty bites, and skew-triggered
rebalancing recovers most of the uniform-traffic shard balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ...cluster import ClusterConfig, run_cluster
from ..reporting import PaperCheck, format_table, render_checks


@dataclass
class ScalingPoint:
    """One cluster configuration's merged outcome (picklable payload)."""

    label: str
    shards: int
    sockets: int
    zipf_s: float
    rebalance: bool
    total_lookups: int
    throughput_per_kcycle: float
    p50_cycles: float
    p99_cycles: float
    max_shard_fraction: float
    link_crossings: int
    rebalance_moves: int
    imbalance_before: float
    imbalance_after: float
    mode: str


def run_point(label: str, params: Dict, seed: int = 1234) -> ScalingPoint:
    """Run one cluster configuration and flatten it into a point."""
    config = ClusterConfig(seed=seed, **params)
    result = run_cluster(config)
    return ScalingPoint(
        label=label,
        shards=config.shards,
        sockets=config.sockets,
        zipf_s=config.zipf_s,
        rebalance=config.rebalance,
        total_lookups=result.total_lookups,
        throughput_per_kcycle=result.throughput_per_kcycle,
        p50_cycles=result.p50_cycles,
        p99_cycles=result.p99_cycles,
        max_shard_fraction=result.max_shard_fraction,
        link_crossings=result.link_crossings,
        rebalance_moves=result.rebalance_moves,
        imbalance_before=result.imbalance_before,
        imbalance_after=result.imbalance_after,
        mode=result.mode,
    )


def run(flows: int = 512, lookups: int = 4000,
        seed: int = 1234) -> List[ScalingPoint]:
    return [run_point(label, dict(params, flows=flows, lookups=lookups),
                      seed=seed)
            for label, params, _quick in BENCH["grid"]]


def report(points: List[ScalingPoint]) -> str:
    by_label = {point.label: point for point in points}
    rows = [(point.label, point.shards, point.sockets,
             f"{point.zipf_s:.1f}",
             f"{point.throughput_per_kcycle:.2f}",
             f"{point.p50_cycles:.0f}", f"{point.p99_cycles:.0f}",
             f"{point.max_shard_fraction:.2f}",
             point.link_crossings, point.rebalance_moves)
            for point in points]
    table = format_table(
        ["config", "shards", "sockets", "zipf", "lookups/kcyc",
         "p50", "p99", "max share", "link xings", "moves"],
        rows,
        title="Scale-out law: per-socket HALO vs sharded vswitch cluster")

    checks: List[PaperCheck] = []
    mono_2s = by_label.get("mono_2s")
    shard_2 = by_label.get("shard_2")
    if mono_2s and shard_2:
        checks.append(PaperCheck(
            "sharding beats the second socket",
            "link round trips tax the monolithic NUCA machine",
            f"2 shards {shard_2.throughput_per_kcycle:.2f} vs 2 sockets "
            f"{mono_2s.throughput_per_kcycle:.2f} lookups/kcyc "
            f"({mono_2s.link_crossings} link crossings)",
            holds=(shard_2.throughput_per_kcycle
                   > mono_2s.throughput_per_kcycle
                   and mono_2s.link_crossings > 0)))
    skew = by_label.get("skew_4")
    rebal = by_label.get("skew_4_rebal")
    if skew and rebal:
        checks.append(PaperCheck(
            "rebalancing tames skew",
            "indirection-table rewrite shrinks the hottest shard",
            f"max share {skew.max_shard_fraction:.2f} -> "
            f"{rebal.max_shard_fraction:.2f} "
            f"({rebal.rebalance_moves} entry moves)",
            holds=(rebal.rebalance_moves > 0
                   and rebal.max_shard_fraction
                   < skew.max_shard_fraction)))
    shard_4 = by_label.get("shard_4")
    if shard_2 and shard_4:
        checks.append(PaperCheck(
            "scale-out keeps scaling",
            "more shards, more aggregate throughput",
            f"{shard_2.throughput_per_kcycle:.2f} -> "
            f"{shard_4.throughput_per_kcycle:.2f} lookups/kcyc",
            holds=(shard_4.throughput_per_kcycle
                   > shard_2.throughput_per_kcycle)))
    return table + "\n\n" + render_checks("scale-out law", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

_FULL = {"flows": 512, "lookups": 4000}
_QUICK = {"flows": 96, "lookups": 600}


def _point(shards, sockets=1, zipf_s=0.0, rebalance=False):
    base = {"shards": shards, "sockets": sockets,
            "zipf_s": zipf_s, "rebalance": rebalance}
    return dict(base, **_FULL), dict(base, **_QUICK)


_GRID_POINTS = [
    ("mono_1s", *_point(shards=1, sockets=1)),
    ("mono_2s", *_point(shards=1, sockets=2)),
    ("shard_2", *_point(shards=2)),
    ("shard_4", *_point(shards=4)),
    ("shard_2x2s", *_point(shards=2, sockets=2)),
    ("skew_4", *_point(shards=4, zipf_s=1.2)),
    ("skew_4_rebal", *_point(shards=4, zipf_s=1.2, rebalance=True)),
]

BENCH = {
    "name": "scaling_law",
    "artifact": "§6 extension (scale-out)",
    "slug": "scaling_law",
    "title": "scale-out law: per-socket HALO vs sharded cluster",
    "grid": _GRID_POINTS,
}


def bench_run(label, params, seed):
    """Runner hook: one grid point = one cluster configuration."""
    return run_point(label, params, seed=seed)


def bench_report(payloads):
    return report(list(payloads.values()))
