"""Figure 13 — end-to-end throughput gains for hash-table-based NFs.

Paper result: HALO speeds NAT, prads, and a hash-based packet filter by
2.3-2.7× across their table-size configurations (Table 3: NAT/prads at
1K/10K/100K entries, filter at 100/1K/10K rules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ...core.halo_system import HaloSystem
from ...nf.nat import NAT_TABLE_SIZES, NatFunction
from ...nf.packet_filter import FILTER_RULE_SIZES, PacketFilterFunction
from ...nf.prads import PRADS_TABLE_SIZES, PradsFunction
from ...traffic.generator import FlowSet, PacketStream
from ..reporting import PaperCheck, format_table, render_checks


@dataclass
class Fig13Row:
    nf_name: str
    table_entries: int
    software_cycles: float
    halo_cycles: float
    speedup: float


def _nat(system: HaloSystem, size: int):
    nf = NatFunction(system, size)
    return nf, nf.populate_from_flows


def _prads(system: HaloSystem, size: int):
    nf = PradsFunction(system, size)
    return nf, nf.populate_from_flows


def _filter(system: HaloSystem, size: int):
    nf = PacketFilterFunction(system, size)
    return nf, (lambda flows: nf.install_rules_from_flows(flows, size))


NF_BUILDERS: Dict[str, Tuple[Callable, Sequence[int]]] = {
    "nat": (_nat, NAT_TABLE_SIZES),
    "prads": (_prads, PRADS_TABLE_SIZES),
    "pktfilter": (_filter, FILTER_RULE_SIZES),
}


def run_one(nf_name: str, size: int, packets: int = 250,
            seed: int = 9) -> Fig13Row:
    builder, _sizes = NF_BUILDERS[nf_name]
    system = HaloSystem()
    nf, populate = builder(system, size)
    flow_set = FlowSet.generate(max(size * 2, 2_000), seed=seed)
    populate(flow_set.flows)
    stream = PacketStream(flow_set, zipf_s=0.8, seed=seed + 1)
    flows = stream.take(packets)
    software, halo, speedup = nf.measure_speedup(flows)
    return Fig13Row(nf_name=nf_name, table_entries=size,
                    software_cycles=software.cycles_per_packet,
                    halo_cycles=halo.cycles_per_packet,
                    speedup=speedup)


def run(sizes_per_nf: Dict[str, Sequence[int]] = None,
        packets: int = 250, seed: int = 9) -> List[Fig13Row]:
    rows: List[Fig13Row] = []
    for nf_name, (_builder, default_sizes) in NF_BUILDERS.items():
        sizes = (sizes_per_nf or {}).get(nf_name, default_sizes)
        for size in sizes:
            rows.append(run_one(nf_name, size, packets=packets, seed=seed))
    return rows


def report(rows: List[Fig13Row]) -> str:
    table = format_table(
        ["NF", "entries", "software cyc/pkt", "HALO cyc/pkt", "speedup"],
        [(r.nf_name, r.table_entries, r.software_cycles, r.halo_cycles,
          f"{r.speedup:.2f}x") for r in rows],
        title="Figure 13 — hash-table NF throughput improvement with HALO")
    largest = {name: max((r for r in rows if r.nf_name == name),
                         key=lambda r: r.table_entries)
               for name in {r.nf_name for r in rows}}
    checks = [
        PaperCheck("speedup range at realistic sizes", "2.3-2.7x",
                   ", ".join(f"{name} {row.speedup:.2f}x"
                             for name, row in sorted(largest.items())),
                   holds=all(1.9 <= row.speedup <= 3.0
                             for row in largest.values())),
        PaperCheck("HALO helps every NF/size", "uniform gains",
                   f"min {min(r.speedup for r in rows):.2f}x",
                   holds=min(r.speedup for r in rows) > 1.2),
    ]
    return table + "\n\n" + render_checks("Figure 13", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

BENCH = {
    "name": "fig13",
    "artifact": "Figure 13",
    "slug": "fig13_nf_speedup",
    "title": "hash-table NF speedups",
    "grid": [
        ("nat", {"nf": "nat", "packets": 250, "seed": 9},
         {"nf": "nat", "sizes": [1_000], "packets": 80, "seed": 9}),
        ("prads", {"nf": "prads", "packets": 250, "seed": 9},
         {"nf": "prads", "sizes": [1_000], "packets": 80, "seed": 9}),
        ("pktfilter", {"nf": "pktfilter", "packets": 250, "seed": 9},
         {"nf": "pktfilter", "sizes": [100], "packets": 80, "seed": 9}),
    ],
}


def bench_run(label, params, seed):
    """Runner hook: one grid point = one NF's table-size column."""
    del label, seed
    nf_name = params["nf"]
    sizes = params.get("sizes") or NF_BUILDERS[nf_name][1]
    return [run_one(nf_name, size, packets=params["packets"],
                    seed=params["seed"])
            for size in sizes]


def bench_report(payloads):
    return report([row for rows in payloads.values() for row in rows])
