"""Chaos-tested cluster failover: kill shards, lose zero flows.

The paper's hybrid mode degrades gracefully when the flow register
overflows (§4.4); this experiment asks the scale-out version of that
question.  A sharded vswitch cluster (:mod:`repro.cluster`) serves a
Zipf key stream while a :class:`~repro.faults.shard_plan.ShardFaultPlan`
kills shards on schedule; ``run_cluster(failover=True)`` detects each
death through the supervised pool's failure-classification seam,
re-steers the victim's RSS indirection-table entries across survivors,
and replays its flow substream in a recovery round.

Swept axes: kill rate (nested kill sets — same per-shard draw compared
against a rising threshold), with fixed shard count, plus an admission-
policy pair measuring post-failover cold-cache refill.  PaperChecks pin
the contract:

* **no-fault parity** — ``failover=True`` with an empty fault plan
  matches a same-seed plain orchestrator run to rel 1e-12 (it is in
  fact bit-identical);
* **zero lost flows** — served lookups equal configured lookups at
  every kill rate, by construction of the re-steer + replay;
* **correlator beats LRU on refill** — Flow Correlator-style admission
  (PAPERS.md) filters one-hit wonders out of the survivors' cold
  caches, beating LRU's admit-everything refill miss rate;
* **bounded, monotone p99 degradation** — each victim is re-steered in
  its own detection epoch (``ClusterConfig.detection_cycles``) and its
  flows wait out every epoch up to their own, so merged p99 rises with
  kill rate (more victims, deeper tail) but never exceeds
  dead-shards × detection + one makespan;
* **same-seed determinism** — an identical chaos config replays
  bit-identically (kills, steering, merged percentiles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...cluster import ClusterConfig, run_cluster
from ...faults.shard_plan import ShardFaultPlan
from ..reporting import PaperCheck, format_table, render_checks

#: Per-shard kill draws under this seed (shards 1-3): 0.13 / 0.32 /
#: 0.64 — so the swept rates 0.2 / 0.4 / 0.7 kill 1, 2, then 3 of 4
#: shards, nested, and rate 0.2 kills exactly shard 1 of the 2-shard
#: cold-refill pair.  Shard 0 is protected (failover needs a survivor).
FAULT_SEED = 11


@dataclass
class ChaosPoint:
    """One chaos configuration's merged outcome (picklable payload)."""

    label: str
    shards: int
    kill_rate: float
    failover: bool
    cache_policy: Optional[str]
    total_lookups: int
    lost_flows: int
    failed_shards: int
    resteered_entries: int
    recovery_lookups: int
    p50_cycles: float
    p99_cycles: float
    makespan_cycles: float
    throughput_per_kcycle: float
    mode: str
    detection_cycles: float = 0.0
    #: Aggregate EMC miss rate over recovery-round (cold-cache) results.
    cold_miss_rate: float = 0.0
    #: Aggregate EMC miss rate over primary-round results.
    warm_miss_rate: float = 0.0
    #: Same-seed replay agreement (only measured by the determinism point).
    bit_identical: bool = True
    #: Max rel diff vs a same-seed plain (failover off) baseline — only
    #: measured by the parity point.  Same-seed matters: the bench
    #: scheduler derives a distinct seed per grid label, so comparing
    #: two labels would compare two different key streams.
    parity_rel: float = 0.0


def _miss_rate(results, degraded: bool) -> float:
    lookups = sum(r.cache.get("lookups", 0) for r in results
                  if r.cache and r.degraded == degraded)
    misses = sum(r.cache.get("misses", 0) for r in results
                 if r.cache and r.degraded == degraded)
    return misses / lookups if lookups else 0.0


def _config(params: Dict, seed: int) -> ClusterConfig:
    kill_rate = params.get("kill_rate", 0.0)
    plan = ShardFaultPlan.kills(kill_rate,
                                seed=params.get("fault_seed", FAULT_SEED))
    return ClusterConfig(
        shards=params.get("shards", 4),
        flows=params["flows"],
        lookups=params["lookups"],
        zipf_s=params.get("zipf_s", 1.1),
        # The scheduler derives a distinct seed per grid label; points
        # that form a controlled pair (the cold-refill policy A/B) pin
        # their stream seed so both sides serve the identical workload.
        seed=params.get("stream_seed", seed),
        retries=params.get("retries", 1),
        parallel=params.get("parallel"),
        failover=params.get("failover", False),
        detection_cycles=params.get("detection_cycles"),
        shard_faults=plan.to_params() if plan else None,
        cache_policy=params.get("cache_policy"),
        cache_entries=params.get("cache_entries", 32),
    )


def run_point(label: str, params: Dict, seed: int = 1234) -> ChaosPoint:
    """Run one chaos configuration and flatten it into a point."""
    config = _config(params, seed)
    result = run_cluster(config)
    point = ChaosPoint(
        label=label,
        shards=config.shards,
        kill_rate=params.get("kill_rate", 0.0),
        failover=config.failover,
        cache_policy=config.cache_policy,
        total_lookups=result.total_lookups,
        lost_flows=result.lost_flows,
        failed_shards=len(result.failed_shards),
        resteered_entries=result.resteered_entries,
        recovery_lookups=result.recovery_lookups,
        p50_cycles=result.p50_cycles,
        p99_cycles=result.p99_cycles,
        makespan_cycles=result.makespan_cycles,
        throughput_per_kcycle=result.throughput_per_kcycle,
        mode=result.mode,
        detection_cycles=params.get("detection_cycles") or 0.0,
        cold_miss_rate=_miss_rate(result.shard_results, degraded=True),
        warm_miss_rate=_miss_rate(result.shard_results, degraded=False),
    )
    if params.get("parity"):
        baseline = run_cluster(_config(
            dict(params, failover=False, kill_rate=0.0), seed))

        def rel(a: float, b: float) -> float:
            return abs(a - b) / max(abs(a), abs(b), 1e-30)
        point.parity_rel = max(
            rel(result.p50_cycles, baseline.p50_cycles),
            rel(result.p99_cycles, baseline.p99_cycles),
            rel(result.makespan_cycles, baseline.makespan_cycles),
            rel(result.throughput_per_kcycle,
                baseline.throughput_per_kcycle),
            rel(result.total_lookups, baseline.total_lookups))
    if params.get("replay"):
        again = run_cluster(_config(params, seed))
        point.bit_identical = (
            again.p99_cycles == result.p99_cycles
            and again.p50_cycles == result.p50_cycles
            and again.makespan_cycles == result.makespan_cycles
            and again.failed_shards == result.failed_shards
            and again.resteered_entries == result.resteered_entries
            and again.total_lookups == result.total_lookups)
    return point


def run(quick: bool = False, seed: int = 1234) -> List[ChaosPoint]:
    return [run_point(label, quick_params if quick else full_params,
                      seed=seed)
            for label, full_params, quick_params in BENCH["grid"]]


def report(points: List[ChaosPoint]) -> str:
    by_label = {point.label: point for point in points}
    rows = [(point.label, f"{point.kill_rate:.1f}",
             point.failed_shards, point.resteered_entries,
             point.recovery_lookups, point.lost_flows,
             f"{point.p99_cycles:.0f}",
             f"{point.throughput_per_kcycle:.2f}",
             point.cache_policy or "-",
             f"{point.cold_miss_rate:.2f}" if point.cache_policy else "-")
            for point in points]
    table = format_table(
        ["config", "kill", "dead", "resteered", "recovered", "lost",
         "p99", "lookups/kcyc", "policy", "cold miss"],
        rows,
        title="Cluster chaos: shard kills, RSS failover, degraded serving")

    checks: List[PaperCheck] = []
    kill_00 = by_label.get("kill_00")
    if kill_00:
        checks.append(PaperCheck(
            "no-fault parity",
            "failover mode is free when nothing fails",
            f"max rel diff vs a same-seed plain orchestrator "
            f"{kill_00.parity_rel:.2e}",
            holds=kill_00.parity_rel <= 1e-12))
    kill_points = [by_label[name] for name
                   in ("kill_00", "kill_02", "kill_04", "kill_07")
                   if name in by_label]
    if kill_points:
        checks.append(PaperCheck(
            "zero lost flows",
            "re-steer + replay recovers every flow of every dead shard",
            f"lost flows {[p.lost_flows for p in kill_points]} across kill "
            f"rates {[p.kill_rate for p in kill_points]} "
            f"({[p.failed_shards for p in kill_points]} shard deaths)",
            holds=(all(p.lost_flows == 0 for p in kill_points)
                   and any(p.failed_shards > 0 for p in kill_points))))
        degradations = [p.p99_cycles for p in kill_points]
        bounded = all(
            p.p99_cycles <= (p.failed_shards * p.detection_cycles
                             + p.makespan_cycles)
            for p in kill_points)
        monotone = all(lo.p99_cycles <= hi.p99_cycles
                       for lo, hi in zip(kill_points, kill_points[1:]))
        checks.append(PaperCheck(
            "p99 degradation bounded and monotone",
            "recovered flows pay one detection epoch per dead shard, "
            "never more than that plus one makespan",
            f"p99 {[f'{d:.0f}' for d in degradations]} cycles across "
            f"rising kill rates",
            holds=bounded and monotone))
    lru = by_label.get("cold_lru")
    corr = by_label.get("cold_corr")
    if lru and corr:
        checks.append(PaperCheck(
            "correlator admission beats LRU on cold refill",
            "admission filtering protects survivors' caches during "
            "post-failover refill (Flow Correlator, PAPERS.md)",
            f"cold miss rate lru {lru.cold_miss_rate:.3f} vs correlator "
            f"{corr.cold_miss_rate:.3f}",
            holds=corr.cold_miss_rate < lru.cold_miss_rate))
    determinism = by_label.get("determinism")
    if determinism:
        checks.append(PaperCheck(
            "same-seed chaos replays bit-identically",
            "fault schedule, steering, and merged results are pure "
            "functions of the seed",
            f"replay agreement: {determinism.bit_identical}",
            holds=determinism.bit_identical))
    return table + "\n\n" + render_checks("cluster chaos", checks)


# -- repro.runner registration (see docs/EXPERIMENTS.md) ----------------------

_FULL = {"flows": 256, "lookups": 1600, "detection_cycles": 49152.0,
         "cache_entries": 16}
_QUICK = {"flows": 64, "lookups": 320, "detection_cycles": 12288.0,
          "cache_entries": 16}

#: The cold-refill pair routes half the stream through a single
#: 2-shard kill so the recovery slice is long enough for admission
#: filtering to pay for its two-touch tax (the minimum EMC table is
#: 16 slots — 2 cuckoo buckets x 8 ways — so pressure needs enough
#: distinct keys, not a smaller ``cache_entries``).
_COLD_FULL = {"shards": 2, "kill_rate": 0.2, "failover": True,
              "flows": 256, "lookups": 1600, "stream_seed": 1234}
_COLD_QUICK = {"shards": 2, "kill_rate": 0.2, "failover": True,
               "flows": 192, "lookups": 960, "stream_seed": 1234}


def _point(**base):
    return dict(base, **_FULL), dict(base, **_QUICK)


def _cold_point(policy):
    return (dict(_FULL, **_COLD_FULL, cache_policy=policy),
            dict(_QUICK, **_COLD_QUICK, cache_policy=policy))


_GRID_POINTS = [
    ("plain", *_point()),
    ("kill_00", *_point(failover=True, kill_rate=0.0, parity=True)),
    ("kill_02", *_point(failover=True, kill_rate=0.2)),
    ("kill_04", *_point(failover=True, kill_rate=0.4)),
    ("kill_07", *_point(failover=True, kill_rate=0.7)),
    ("cold_lru", *_cold_point("lru")),
    ("cold_corr", *_cold_point("correlator")),
    ("determinism", *_point(failover=True, kill_rate=0.4, replay=True)),
]

BENCH = {
    "name": "cluster_chaos",
    "artifact": "§4.4 extension (cluster failover)",
    "slug": "cluster_chaos",
    "title": "cluster chaos: shard kills, RSS failover, degraded serving",
    "grid": _GRID_POINTS,
}


def bench_run(label, params, seed):
    """Runner hook: one grid point = one chaos configuration."""
    return run_point(label, params, seed=seed)


def bench_report(payloads):
    return report(list(payloads.values()))
