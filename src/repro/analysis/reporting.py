"""Plain-text reporting: aligned tables and paper-vs-measured rows.

Every benchmark prints its figure/table through these helpers so the
regenerated rows line up with what the paper reports.  The table formatter
itself lives in :mod:`repro.obs.tables` (the bottom layer) and is
re-exported here for the benchmarks' convenience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..obs.tables import _cell, format_table

__all__ = [
    "PaperCheck",
    "format_table",
    "percent_str",
    "ratio_str",
    "render_checks",
]


@dataclass
class PaperCheck:
    """One paper-vs-measured comparison line."""

    label: str
    paper: str
    measured: str
    holds: Optional[bool] = None

    def render(self) -> str:
        status = "" if self.holds is None else ("  [shape holds]"
                                                if self.holds
                                                else "  [DIVERGES]")
        return (f"  {self.label}: paper {self.paper} | "
                f"measured {self.measured}{status}")


def render_checks(title: str, checks: Iterable[PaperCheck]) -> str:
    lines = [f"paper-vs-measured — {title}"]
    lines.extend(check.render() for check in checks)
    return "\n".join(lines)


def ratio_str(value: float) -> str:
    return f"{value:.2f}x"


def percent_str(value: float) -> str:
    return f"{value * 100:.1f}%"
