"""Plain-text reporting: aligned tables and paper-vs-measured rows.

Every benchmark prints its figure/table through these helpers so the
regenerated rows line up with what the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_cell(value) for value in row]
                                 for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width)
                           for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:,.0f}"
        if value >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


@dataclass
class PaperCheck:
    """One paper-vs-measured comparison line."""

    label: str
    paper: str
    measured: str
    holds: Optional[bool] = None

    def render(self) -> str:
        status = "" if self.holds is None else ("  [shape holds]"
                                                if self.holds
                                                else "  [DIVERGES]")
        return (f"  {self.label}: paper {self.paper} | "
                f"measured {self.measured}{status}")


def render_checks(title: str, checks: Iterable[PaperCheck]) -> str:
    lines = [f"paper-vs-measured — {title}"]
    lines.extend(check.render() for check in checks)
    return "\n".join(lines)


def ratio_str(value: float) -> str:
    return f"{value:.2f}x"


def percent_str(value: float) -> str:
    return f"{value * 100:.1f}%"
