"""Analysis and reporting: breakdown accounting, table rendering, and the
per-figure experiment runners."""

from .breakdown import (
    FIG3_STAGES,
    FIG10_COMPONENTS,
    classification_share,
    merge_all,
    ordered_parts,
    per_packet,
    render_stacked,
)
from .reporting import (
    PaperCheck,
    format_table,
    percent_str,
    ratio_str,
    render_checks,
)

__all__ = [
    "FIG10_COMPONENTS",
    "FIG3_STAGES",
    "PaperCheck",
    "classification_share",
    "format_table",
    "merge_all",
    "ordered_parts",
    "per_packet",
    "percent_str",
    "ratio_str",
    "render_checks",
    "render_stacked",
]
