"""Per-accelerator table-metadata cache (paper §4.3).

Each HALO accelerator keeps the metadata of the ten most recently used hash
tables (640 B).  The cache participates in coherence through one extra
core-valid (CV) bit in the snoop filter: a writer's read-for-ownership on a
metadata line snoops into — and invalidates — the metadata-cache copy.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..sim.coherence import SnoopFilter


@dataclass
class MetadataCacheStats:
    hits: int = 0
    misses: int = 0
    coherence_invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class MetadataCache:
    """An LRU cache of table-metadata lines for one accelerator."""

    def __init__(self, slice_id: int, capacity_tables: int,
                 snoop_filter: Optional[SnoopFilter] = None) -> None:
        if capacity_tables < 1:
            raise ValueError("metadata cache needs at least one entry")
        self.slice_id = slice_id
        self.capacity = capacity_tables
        self.snoop_filter = snoop_filter
        self.stats = MetadataCacheStats()
        self._entries: OrderedDict = OrderedDict()  # metadata line -> table ref

    def lookup(self, metadata_line: int) -> bool:
        """Probe for a table's metadata; refresh LRU on hit."""
        if metadata_line in self._entries:
            self._entries.move_to_end(metadata_line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, metadata_line: int, table=None) -> Optional[int]:
        """Install metadata after a miss; returns the evicted line, if any."""
        victim = None
        if metadata_line not in self._entries and \
                len(self._entries) >= self.capacity:
            victim, _ = self._entries.popitem(last=False)
            if self.snoop_filter is not None:
                self.snoop_filter.clear_metadata_holder(victim)
        self._entries[metadata_line] = table
        self._entries.move_to_end(metadata_line)
        if self.snoop_filter is not None:
            self.snoop_filter.set_metadata_holder(metadata_line, self.slice_id)
        return victim

    def snoop_invalidate(self, metadata_line: int) -> bool:
        """Coherence path: a core took ownership of the metadata line."""
        if metadata_line in self._entries:
            self._entries.pop(metadata_line)
            self.stats.coherence_invalidations += 1
            if self.snoop_filter is not None:
                self.snoop_filter.clear_metadata_holder(metadata_line)
            return True
        return False

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, metadata_line: int) -> bool:
        return metadata_line in self._entries
