"""Hybrid software/hardware computation mode (paper §4.6).

When the active-flow count is small enough that the hot table entries live
in the L1 cache, the software path wins (lower access latency); beyond that,
HALO wins.  The controller watches linear-counting flow registers — the
accelerator-side ones while in HALO mode, a software-maintained 32-bit
register while in software mode — and switches modes around a threshold
(64 flows per the paper's evaluation), with hysteresis so estimation noise
does not cause flapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List

from .flow_register import FlowRegister

DEFAULT_FLOW_THRESHOLD = 64


class ComputeMode(Enum):
    SOFTWARE = "software"
    HALO = "halo"


@dataclass
class HybridStats:
    windows: int = 0
    switches_to_halo: int = 0
    switches_to_software: int = 0

    def as_dict(self) -> dict:
        """Flat scalar view for the metrics registry (pull source)."""
        return {"windows": self.windows,
                "switches_to_halo": self.switches_to_halo,
                "switches_to_software": self.switches_to_software}


class HybridController:
    """Chooses the compute mode from flow-register estimates per window."""

    def __init__(self, registers: Iterable[FlowRegister],
                 threshold: int = DEFAULT_FLOW_THRESHOLD,
                 hysteresis: float = 0.25,
                 initial_mode: ComputeMode = ComputeMode.HALO) -> None:
        self.registers: List[FlowRegister] = list(registers)
        if not self.registers:
            raise ValueError("hybrid controller needs at least one register")
        self.threshold = threshold
        self.hysteresis = hysteresis
        self.mode = initial_mode
        # The software-side register used while in SOFTWARE mode (§4.6: the
        # program keeps a 32-bit linear count of its own).
        self.software_register = FlowRegister(bits=32)
        self.stats = HybridStats()
        self.last_estimate = 0.0

    def observe_software_lookup(self, primary_hash: int) -> None:
        """Software-mode bookkeeping: feed the program-side register."""
        self.software_register.observe(primary_hash)

    def _window_estimate(self) -> float:
        if self.mode is ComputeMode.HALO:
            # Accelerator registers each saw a share of the flows; their
            # estimates are over disjoint-ish query streams, so sum them.
            return sum(r.scan_and_reset() for r in self.registers)
        return self.software_register.scan_and_reset()

    def end_window(self) -> ComputeMode:
        """Close the measurement window and (possibly) switch modes."""
        estimate = self._window_estimate()
        self.last_estimate = estimate
        self.stats.windows += 1
        low = self.threshold * (1.0 - self.hysteresis)
        high = self.threshold * (1.0 + self.hysteresis)
        if self.mode is ComputeMode.HALO and estimate < low:
            self.mode = ComputeMode.SOFTWARE
            self.stats.switches_to_software += 1
        elif self.mode is ComputeMode.SOFTWARE and estimate > high:
            self.mode = ComputeMode.HALO
            self.stats.switches_to_halo += 1
        return self.mode
