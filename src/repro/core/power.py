"""HALO power and area figures (paper Table 4, McPAT/CACTI-derived).

Per accelerator: 97.2 mW static, 1.76 nJ/query dynamic, 1.2% of a tile
(0.012 tiles) — trivial against the chip budget, and up to 48.2× more
energy-efficient than TCAM at matched capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paper Table 4 — one HALO accelerator.
HALO_STATIC_MILLIWATTS = 97.2
HALO_DYNAMIC_NANOJOULE_PER_QUERY = 1.76
HALO_AREA_TILES = 0.012


@dataclass(frozen=True)
class PowerEnvelope:
    """Static power, per-query energy, and area for one solution."""

    name: str
    static_milliwatts: float
    dynamic_nanojoule_per_query: float
    area_tiles: float

    def energy_nanojoules(self, queries: int, seconds: float) -> float:
        """Total energy over a run: static power over time + per-query."""
        static_nj = self.static_milliwatts * 1e-3 * seconds * 1e9
        return static_nj + self.dynamic_nanojoule_per_query * queries

    def energy_per_query_nj(self, queries_per_second: float) -> float:
        """Amortised nJ/query at a sustained query rate."""
        if queries_per_second <= 0:
            return float("inf")
        static_nj = self.static_milliwatts * 1e-3 / queries_per_second * 1e9
        return static_nj + self.dynamic_nanojoule_per_query


def halo_envelope(accelerators: int = 1) -> PowerEnvelope:
    """The envelope for ``accelerators`` HALO units (they scale linearly)."""
    return PowerEnvelope(
        name=f"HALO x{accelerators}",
        static_milliwatts=HALO_STATIC_MILLIWATTS * accelerators,
        dynamic_nanojoule_per_query=HALO_DYNAMIC_NANOJOULE_PER_QUERY,
        area_tiles=HALO_AREA_TILES * accelerators,
    )


def energy_efficiency_ratio(reference: PowerEnvelope, other: PowerEnvelope,
                            queries_per_second: float) -> float:
    """How many times less energy ``reference`` uses per query vs ``other``."""
    ref = reference.energy_per_query_nj(queries_per_second)
    alt = other.energy_per_query_nj(queries_per_second)
    return alt / ref if ref > 0 else float("inf")
