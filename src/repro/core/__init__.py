"""HALO — the paper's contribution: distributed near-cache lookup
accelerators, the query distributor, hardware lock bits, the x86-64
instruction extension, the linear-counting flow register, and the hybrid
software/hardware mode.
"""

from .accelerator import AcceleratorStats, BoundaryViolation, HaloAccelerator
from .distributor import QueryDistributor
from .flow_register import FlowRegister, estimate_flows
from .halo_system import Episode, HaloSystem
from .hybrid import ComputeMode, DEFAULT_FLOW_THRESHOLD, HybridController
from .isa import HaloIsa, IssueCosts, RESULTS_PER_LINE
from .locking import HardwareLockManager, LockLease
from .metadata_cache import MetadataCache
from .power import (
    HALO_AREA_TILES,
    HALO_DYNAMIC_NANOJOULE_PER_QUERY,
    HALO_STATIC_MILLIWATTS,
    PowerEnvelope,
    energy_efficiency_ratio,
    halo_envelope,
)
from .query import LookupQuery, QueryResult, ResultDestination
from .scoreboard import Scoreboard
from .software import SoftwareLookupEngine

__all__ = [
    "AcceleratorStats",
    "BoundaryViolation",
    "ComputeMode",
    "DEFAULT_FLOW_THRESHOLD",
    "Episode",
    "FlowRegister",
    "HALO_AREA_TILES",
    "HALO_DYNAMIC_NANOJOULE_PER_QUERY",
    "HALO_STATIC_MILLIWATTS",
    "HaloAccelerator",
    "HaloIsa",
    "HaloSystem",
    "HardwareLockManager",
    "HybridController",
    "IssueCosts",
    "LockLease",
    "LookupQuery",
    "MetadataCache",
    "PowerEnvelope",
    "QueryDistributor",
    "QueryResult",
    "RESULTS_PER_LINE",
    "ResultDestination",
    "Scoreboard",
    "SoftwareLookupEngine",
    "energy_efficiency_ratio",
    "estimate_flows",
    "halo_envelope",
]
