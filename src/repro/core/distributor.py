"""The query distributor (paper §4.3).

Lives in the on-chip interconnect.  It hashes each query's *table address*
(reusing the same distribution logic the CPU already uses for LLC line
interleaving) to pick the serving accelerator, and it honours per-accelerator
busy bits: while an accelerator's scoreboard is saturated, the distributor
holds that accelerator's queries in a FIFO instead of dispatching them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List

from ..obs import NULL_SPAN
from ..sim.engine import Engine, Process
from ..sim.hierarchy import MemoryHierarchy
from .accelerator import HaloAccelerator
from .query import LookupQuery, QueryResult


@dataclass
class DistributorStats:
    dispatched: int = 0
    held_for_busy: int = 0
    per_slice: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Flat scalar view for the metrics registry (pull source)."""
        return {"dispatched": self.dispatched,
                "held_for_busy": self.held_for_busy,
                "slices_active": len(self.per_slice)}


class QueryDistributor:
    """Routes queries from cores to per-slice accelerators."""

    def __init__(self, engine: Engine, hierarchy: MemoryHierarchy,
                 accelerators: List[HaloAccelerator]) -> None:
        self.engine = engine
        self.hierarchy = hierarchy
        self.accelerators = accelerators
        self.stats = DistributorStats()
        self.obs = hierarchy.obs
        registry = self.obs.metrics
        self._m_dispatched = registry.counter("halo.distributor.dispatched")
        self._m_held = registry.counter("halo.distributor.held_for_busy")
        #: End-to-end query latency (issue to reply), the Figure 10 quantity.
        self._m_latency = registry.histogram("halo.query.latency_cycles")
        registry.register_source("halo.distributor", self.stats.as_dict)

    def target_slice(self, query: LookupQuery) -> int:
        return self.hierarchy.interconnect.slice_of_table(query.table_addr)

    def dispatch(self, query: LookupQuery) -> Process:
        """Send a query on its way; returns the serving DES process.

        The returned :class:`Process` triggers with the
        :class:`~repro.core.query.QueryResult` when the lookup completes,
        so callers can ``yield`` it (blocking mode) or collect it later
        (non-blocking mode).
        """
        query.issued_at = self.engine.now
        slice_id = self.target_slice(query)
        accelerator = self.accelerators[slice_id]
        self.stats.dispatched += 1
        self._m_dispatched.inc()
        self.stats.per_slice[slice_id] = self.stats.per_slice.get(slice_id, 0) + 1
        query.span = self.obs.trace.root(
            "query", self.engine.now, query_id=query.query_id,
            core=query.core_id, slice=slice_id,
            table=getattr(query.table, "name", "?"))
        return self.engine.process(
            self._deliver(query, accelerator),
            name=f"query{query.query_id}->acc{slice_id}")

    def _deliver(self, query: LookupQuery,
                 accelerator: HaloAccelerator) -> Generator:
        span = query.span if query.span is not None else NULL_SPAN
        # Core -> ring -> distributor -> accelerator ingress.
        transfer = self.hierarchy.interconnect.transfer_latency(
            self.hierarchy.core_stop(query.core_id), accelerator.slice_id)
        stage = span.child("distributor.dispatch", self.engine.now,
                           transfer_cycles=transfer)
        yield self.engine.timeout(self.hierarchy.latency.dispatch + transfer)
        if accelerator.busy:
            # The accelerator's busy bit is raised: the distributor holds
            # the query until a scoreboard slot frees (paper §4.3).
            self.stats.held_for_busy += 1
            self._m_held.inc()
            stage.note(held_for_busy=True)
        stage.finish(self.engine.now)
        result: QueryResult = yield self.engine.process(
            accelerator.serve(query))
        self._m_latency.observe(self.engine.now - query.issued_at)
        span.note(found=result.found)
        span.finish(self.engine.now)
        return result
