"""Top-level HALO system: accelerators attached to every CHA, plus a
program-facing facade.

``HaloSystem`` wires the full picture together — simulated machine, memory
hierarchy, one accelerator per LLC slice, the query distributor in the
interconnect, the ISA extension, and the hybrid-mode controller — and offers
episode runners that benchmarks and examples use:

* :meth:`run_blocking_lookups` — a core issuing ``LOOKUP_B`` back to back;
* :meth:`run_nonblocking_lookups` — the batched ``LOOKUP_NB`` +
  ``SNAPSHOT_READ`` idiom;
* :meth:`run_software_lookups` — the DPDK-style software baseline on the
  *same* machine and tables;
* :meth:`run_programs` — arbitrary concurrent DES programs (multi-core).

All episode runners are thin wrappers over :mod:`repro.exec` lookup
backends: every compute mode — software included — is a DES program on the
shared engine, so any mix of modes can also be pinned to cores with
:meth:`run_cores` and contend on the shared memory hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Iterable, List, Optional, Sequence

from ..hashtable.cuckoo import CuckooHashTable
from ..obs import Observability, render_metrics_report
from ..sim.engine import Engine
from ..sim.hierarchy import MemoryHierarchy
from ..sim.params import MachineParams, SKYLAKE_SP_16C
from ..sim.stats import throughput_mops
from ..sim.trace import CoreTracerRouter, Tracer
from .accelerator import HaloAccelerator
from .distributor import QueryDistributor
from .hybrid import HybridController
from .isa import HaloIsa
from .locking import HardwareLockManager
from .software import SoftwareLookupEngine


@dataclass
class Episode:
    """Outcome of one measured run."""

    operations: int
    cycles: float
    results: List[Any] = field(default_factory=list)

    @property
    def cycles_per_op(self) -> float:
        return self.cycles / self.operations if self.operations else 0.0

    def throughput_mops(self, frequency_ghz: float = 2.1) -> float:
        return throughput_mops(self.operations, self.cycles, frequency_ghz)


def _rate(part: int, whole: int) -> str:
    return f"{part / whole:.1%}" if whole else "n/a"


class HaloSystem:
    """A complete HALO-equipped simulated machine."""

    def __init__(self, machine: Optional[MachineParams] = None,
                 observability=None) -> None:
        """``observability`` accepts an :class:`~repro.obs.Observability`,
        a bool, or ``None`` (the ``REPRO_OBS`` env default, normally on).
        Disabling it swaps every metric/span handle for a no-op — the
        simulation's cycle arithmetic is untouched either way."""
        self.machine = machine or SKYLAKE_SP_16C
        if isinstance(observability, Observability):
            self.obs = observability
        elif observability is None:
            self.obs = Observability()
        else:
            self.obs = Observability(enabled=bool(observability))
        self.engine = Engine()
        self.hierarchy = MemoryHierarchy(self.machine, obs=self.obs)
        self.lock_manager = HardwareLockManager(
            self.hierarchy, enabled=self.machine.halo.enabled_lock_bits)
        self.accelerators = [
            HaloAccelerator(self.engine, self.hierarchy, slice_id,
                            self.machine.halo, self.lock_manager)
            for slice_id in range(self.machine.llc_slices)
        ]
        self.distributor = QueryDistributor(
            self.engine, self.hierarchy, self.accelerators)
        self.isa = HaloIsa(self.engine, self.hierarchy, self.distributor)
        # One router shared by every table: recording lands in the tracer of
        # whichever core is active, so concurrent cores never clobber each
        # other's in-flight traces (single-core callers see core 0's tracer).
        self.tracer = CoreTracerRouter()
        self.hybrid = HybridController(
            [acc.flow_register for acc in self.accelerators])
        registry = self.obs.metrics
        registry.register_source("halo.hybrid", self._hybrid_source)
        registry.gauge("halo.hybrid.flow_estimate",
                       fn=lambda: self.hybrid.last_estimate)

    def _hybrid_source(self) -> dict:
        out = self.hybrid.stats.as_dict()
        out["mode"] = self.hybrid.mode.value
        out["last_estimate"] = self.hybrid.last_estimate
        return out

    # -- construction helpers -------------------------------------------------
    def create_table(self, capacity: int, key_bytes: int = 16,
                     name: str = "table", **kwargs) -> CuckooHashTable:
        """A cuckoo table allocated in this machine's physical memory."""
        return CuckooHashTable(
            capacity, key_bytes=key_bytes, allocator=self.hierarchy.allocator,
            tracer=self.tracer, name=name, **kwargs)

    def warm_table(self, table: CuckooHashTable) -> None:
        """Install the table's buckets and key-value array into the LLC."""
        layout = table.layout
        self.hierarchy.warm_llc(layout.metadata.base, layout.metadata.size)
        self.hierarchy.warm_llc(layout.buckets.base, layout.buckets.size)
        self.hierarchy.warm_llc(layout.key_values.base, layout.key_values.size)

    def flush_table(self, table: CuckooHashTable) -> None:
        """Evict the table's buckets and key-value array from all caches
        (the DRAM-resident scenario of Figures 9 and 10)."""
        layout = table.layout
        self.hierarchy.flush_region(layout.buckets.base, layout.buckets.size)
        self.hierarchy.flush_region(layout.key_values.base,
                                    layout.key_values.size)

    def software_engine(self, core_id: int = 0,
                        with_locking: bool = True) -> SoftwareLookupEngine:
        return SoftwareLookupEngine(self.hierarchy, core_id,
                                    with_locking=with_locking)

    def tracer_for(self, core_id: int) -> Tracer:
        """The per-core tracer behind the shared routing front-end."""
        return self.tracer.tracer_for(core_id)

    def backend(self, kind, core_id: int = 0, **kwargs):
        """Build a :class:`~repro.exec.backend.LookupBackend` on this system.

        ``kind`` is a :class:`~repro.exec.backend.BackendKind` or its string
        value (``"software"``, ``"halo-b"``, ``"halo-nb"``, ``"adaptive"``).
        """
        # Imported lazily: repro.exec sits *above* repro.core in the layering
        # (backends drive this facade), so the static edge must point down.
        from ..exec.backend import make_backend
        return make_backend(kind, self, core_id=core_id, **kwargs)

    # -- episode runners -------------------------------------------------------
    def run_program(self, generator: Generator, name: str = "program") -> Episode:
        """Run one DES program to completion; cycles = elapsed engine time."""
        start = self.engine.now
        result = self.engine.run_process(generator, name=name)
        operations = len(result) if isinstance(result, list) else 1
        return Episode(operations=operations,
                       cycles=self.engine.now - start,
                       results=result if isinstance(result, list) else [result])

    def run_programs(self, generators: Sequence[Generator]) -> Episode:
        """Run several programs concurrently (one per core, typically)."""
        start = self.engine.now
        processes = [self.engine.process(g, name=f"program{i}")
                     for i, g in enumerate(generators)]
        self.engine.run()
        results: List[Any] = []
        operations = 0
        for process in processes:
            value = process.result
            if isinstance(value, list):
                results.extend(value)
                operations += len(value)
            else:
                results.append(value)
                operations += 1
        return Episode(operations=operations,
                       cycles=self.engine.now - start, results=results)

    def run_backend_lookups(self, kind, table: CuckooHashTable,
                            keys: Iterable[bytes], core_id: int = 0,
                            **backend_kwargs) -> Episode:
        """One key stream through any backend; cycles = elapsed engine time.

        The uniform entry point behind the mode-specific runners below.
        Episode results are :class:`~repro.exec.backend.LookupOutcome`.
        """
        backend = self.backend(kind, core_id=core_id, **backend_kwargs)
        keys = list(keys)
        return self.run_program(backend.lookup_stream(table, keys),
                                name=f"{backend.kind.value}_stream")

    def run_blocking_lookups(self, table: CuckooHashTable,
                             keys: Iterable[bytes],
                             core_id: int = 0) -> Episode:
        """A core issuing LOOKUP_B for every key, serially."""
        episode = self.run_backend_lookups("halo-b", table, keys,
                                           core_id=core_id)
        episode.results = [outcome.raw for outcome in episode.results]
        return episode

    def run_nonblocking_lookups(self, table: CuckooHashTable,
                                keys: Iterable[bytes],
                                core_id: int = 0) -> Episode:
        """The batched LOOKUP_NB + SNAPSHOT_READ idiom over all keys."""
        episode = self.run_backend_lookups("halo-nb", table, keys,
                                           core_id=core_id)
        episode.results = [outcome.raw for outcome in episode.results]
        return episode

    def run_software_lookups(self, table: CuckooHashTable,
                             keys: Iterable[bytes],
                             core_id: int = 0,
                             with_locking: bool = True) -> Episode:
        """The software baseline over the same machine state.

        Scheduled through the engine like every other backend: the cycle
        arithmetic is the pre-DES synchronous sum, but the cost is spent as
        simulated time so software cores can collocate with HALO traffic.
        """
        episode = self.run_backend_lookups("software", table, keys,
                                           core_id=core_id,
                                           with_locking=with_locking)
        episode.results = [outcome.value for outcome in episode.results]
        return episode

    # -- observability ----------------------------------------------------------
    def export_observability(self) -> dict:
        """Metrics snapshot + per-query span trees, JSON-serialisable."""
        return self.obs.export()

    def report(self) -> str:
        """Per-component breakdown table over every registered metric."""
        return render_metrics_report(
            self.obs.metrics.snapshot(),
            title=f"HaloSystem metrics @ {self.engine.now:.0f} cycles")

    def summary(self) -> str:
        """A human-readable dump of the machine's component statistics."""
        hierarchy = self.hierarchy
        lines = [
            f"HaloSystem: {self.machine.cores} cores, "
            f"{self.machine.llc_slices} LLC slices "
            f"({self.machine.llc_total_bytes >> 20} MB, "
            f"{self.machine.interconnect}), "
            f"engine @ {self.engine.now:.0f} cycles",
        ]
        l1_stats = [cache.stats for cache in hierarchy.l1]
        l1_accesses = sum(stats.accesses for stats in l1_stats)
        l1_misses = sum(stats.misses for stats in l1_stats)
        llc_stats = [cache.stats for cache in hierarchy.llc]
        llc_accesses = sum(stats.accesses for stats in llc_stats)
        llc_misses = sum(stats.misses for stats in llc_stats)
        lines.append(
            f"  caches: L1D {l1_accesses:,} accesses "
            f"({_rate(l1_misses, l1_accesses)} miss), "
            f"LLC {llc_accesses:,} accesses "
            f"({_rate(llc_misses, llc_accesses)} miss), "
            f"DRAM {hierarchy.dram.stats.accesses:,} accesses")
        active = [acc for acc in self.accelerators if acc.stats.queries]
        total_queries = sum(acc.stats.queries for acc in active)
        if active:
            meta_hits = sum(acc.stats.metadata_hits for acc in active)
            meta_total = meta_hits + sum(acc.stats.metadata_misses
                                         for acc in active)
            mean_service = (sum(acc.stats.service.total for acc in active)
                            / total_queries)
            lines.append(
                f"  accelerators: {len(active)}/{len(self.accelerators)} "
                f"active, {total_queries:,} queries, "
                f"mean service {mean_service:.1f} cycles, "
                f"metadata hit {_rate(meta_hits, meta_total)}")
        else:
            lines.append("  accelerators: idle")
        lines.append(
            f"  distributor: {self.distributor.stats.dispatched:,} "
            f"dispatched, {self.distributor.stats.held_for_busy:,} held "
            f"for busy accelerators")
        lines.append(
            f"  ISA: {self.isa.stats.lookup_b:,} LOOKUP_B, "
            f"{self.isa.stats.lookup_nb:,} LOOKUP_NB, "
            f"{self.isa.stats.snapshot_reads:,} SNAPSHOT_READ")
        lines.append(
            f"  lock bits: {self.lock_manager.stats.lock_operations:,} "
            f"locks, mode {self.hybrid.mode.value}")
        return "\n".join(lines)

    # -- hybrid-mode convenience --------------------------------------------------
    def run_adaptive_lookups(self, table: CuckooHashTable,
                             keys: Iterable[bytes], core_id: int = 0,
                             window: int = 256) -> Episode:
        """Lookups under the hybrid controller, re-evaluated every window."""
        episode = self.run_backend_lookups("adaptive", table, keys,
                                           core_id=core_id, window=window)
        episode.results = [outcome.value for outcome in episode.results]
        return episode

    # -- multi-core entry point ---------------------------------------------------
    def run_cores(self, workloads):
        """Run a mix of per-core backend workloads concurrently.

        ``workloads`` is a sequence of :class:`~repro.exec.cores.
        CoreWorkload`; returns a :class:`~repro.exec.cores.MultiCoreRun`.
        Software and HALO cores share the engine timeline and the memory
        hierarchy, so collocation effects (cache pollution, interconnect
        contention) emerge rather than being modelled separately.
        """
        from ..exec.cores import run_cores
        return run_cores(self, workloads)
