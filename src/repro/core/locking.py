"""Hardware-assisted concurrency lock (paper §4.4).

HALO repurposes one reserved bit in each cache line's metadata as a lock
bit.  While an accelerator query holds the lock on its bucket (and key-value)
lines, any core's snoop-invalidate against those lines receives a "snoop
miss" and must retry — giving the multi-line lookup read atomicity without a
software lock.

:class:`HardwareLockManager` wraps the LLC lock bits with bookkeeping so a
query can lock a set of lines and is guaranteed to release them all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..sim.hierarchy import MemoryHierarchy


@dataclass
class HardwareLockStats:
    lock_operations: int = 0
    unlock_operations: int = 0
    rejected_invalidations: int = 0
    fault_holds: int = 0

    def as_dict(self) -> dict:
        """Flat scalar view for the metrics registry (pull source)."""
        return {"lock_operations": self.lock_operations,
                "unlock_operations": self.unlock_operations,
                "rejected_invalidations": self.rejected_invalidations,
                "fault_holds": self.fault_holds,
                "held": self.lock_operations - self.unlock_operations}


class LockLease:
    """The set of lines one query currently holds locked."""

    __slots__ = ("manager", "lines")

    def __init__(self, manager: "HardwareLockManager") -> None:
        self.manager = manager
        self.lines: List[int] = []

    def lock(self, addr: int) -> None:
        if self.manager.hierarchy.lock_line(addr):
            self.lines.append(addr)
            self.manager.stats.lock_operations += 1

    def release_all(self) -> None:
        for addr in self.lines:
            self.manager.hierarchy.unlock_line(addr)
            self.manager.stats.unlock_operations += 1
        self.lines.clear()

    def __enter__(self) -> "LockLease":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release_all()


class HardwareLockManager:
    """Factory for lock leases over one memory hierarchy's LLC lock bits."""

    def __init__(self, hierarchy: MemoryHierarchy, enabled: bool = True) -> None:
        self.hierarchy = hierarchy
        self.enabled = enabled
        self.stats = HardwareLockStats()
        self._fault_held: List[int] = []
        hierarchy.obs.metrics.register_source("halo.locks",
                                              self.stats.as_dict)

    def lease(self) -> LockLease:
        return LockLease(self)

    def lock_lines(self, addrs: Iterable[int]) -> LockLease:
        lease = self.lease()
        if self.enabled:
            for addr in addrs:
                lease.lock(addr)
        return lease

    def note_rejected_invalidation(self) -> None:
        self.stats.rejected_invalidations += 1

    # -- fault seam (``repro.faults``) ------------------------------------
    def hold(self, addr: int) -> bool:
        """Set a line's lock bit outside any query lease (livelock fault).

        Cores storing to the line spin through the snoop-retry path until
        :meth:`release_hold` clears the bit.  The line is installed into
        the LLC first if absent (lock bits only exist on resident lines).
        """
        if not self.enabled:
            return False
        if self.hierarchy.line_locked(addr):
            return False  # a live query lease already holds the bit
        if not self.hierarchy.lock_line(addr):
            # Absent from the LLC: install the line, then set the bit.
            self.hierarchy.warm_llc(addr, 1)
            if not self.hierarchy.lock_line(addr):
                return False
        self.stats.lock_operations += 1
        self.stats.fault_holds += 1
        self._fault_held.append(addr)
        return True

    def release_hold(self, addr: int) -> bool:
        """Clear a fault hold placed by :meth:`hold`."""
        if addr not in self._fault_held:
            return False
        self._fault_held.remove(addr)
        self.hierarchy.unlock_line(addr)
        self.stats.unlock_operations += 1
        return True
