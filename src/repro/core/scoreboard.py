"""Accelerator scoreboard (paper §4.3, §4.7).

Tracks the execution progress of each on-the-fly query.  The paper limits
each accelerator to 10 concurrent queries; when full, the accelerator raises
its *busy bit* in the query distributor, which withholds further queries
until a slot frees.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.engine import Engine, Event, Resource


@dataclass
class ScoreboardStats:
    admitted: int = 0
    completed: int = 0
    busy_rejections: int = 0    # distributor saw the busy bit raised
    peak_occupancy: int = 0


class Scoreboard:
    """Bounded in-flight query tracker with a busy bit."""

    def __init__(self, engine: Engine, entries: int) -> None:
        self._slots = Resource(engine, entries)
        self.entries = entries
        self.stats = ScoreboardStats()

    @property
    def busy(self) -> bool:
        """The busy bit: no free slot and queries already queued."""
        return self._slots.available == 0

    @property
    def occupancy(self) -> int:
        return self._slots.in_use

    def admit(self) -> Event:
        """Request a slot; the returned event fires when granted."""
        if self.busy:
            self.stats.busy_rejections += 1
        event = self._slots.acquire()
        self.stats.admitted += 1
        return event

    def complete(self) -> None:
        self.stats.peak_occupancy = max(self.stats.peak_occupancy,
                                        self._slots.in_use)
        self.stats.completed += 1
        self._slots.release()
