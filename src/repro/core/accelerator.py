"""The per-CHA HALO accelerator (paper §4.3, Figure 6).

One accelerator sits beside each CHA/LLC slice.  It executes lookup queries
as a sequence of scoreboard-tracked steps:

1. fetch the table's metadata (Metadata Cache hit, or a CHA-side line read);
2. fetch the key from the query's key address;
3. hash the key (one fully-pipelined hash unit per accelerator);
4. lock and read the primary bucket, compare signatures;
5. on a signature match, fetch and compare the key-value pair;
6. otherwise repeat on the alternative bucket;
7. unlock, commit the query, push the result to its destination.

All data accesses use the CHA-side path (:meth:`MemoryHierarchy.cha_access`),
so they never pollute private caches — the property behind Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..hashtable.cuckoo import LookupPlan
from ..obs import NULL_SPAN
from ..sim.engine import Engine
from ..sim.hierarchy import AccessResult, MemoryHierarchy
from ..sim.params import HaloParams
from ..sim.stats import RunningStats
from .flow_register import FlowRegister
from .locking import HardwareLockManager
from .metadata_cache import MetadataCache
from .query import LookupQuery, QueryResult, ResultDestination
from .scoreboard import Scoreboard


@dataclass
class AcceleratorStats:
    queries: int = 0
    hits: int = 0
    memory_accesses: int = 0
    metadata_hits: int = 0
    metadata_misses: int = 0
    hash_operations: int = 0
    boundary_violations: int = 0
    service: RunningStats = field(default_factory=RunningStats)


class BoundaryViolation(RuntimeError):
    """A query tried to reach outside its table's regions (§4.7).

    The accelerator "enforces boundary check for each memory access": a
    corrupted bucket pointer or malicious metadata cannot make it read or
    write arbitrary memory.
    """


class HaloAccelerator:
    """One near-cache lookup accelerator attached to a CHA."""

    def __init__(
        self,
        engine: Engine,
        hierarchy: MemoryHierarchy,
        slice_id: int,
        params: Optional[HaloParams] = None,
        lock_manager: Optional[HardwareLockManager] = None,
    ) -> None:
        self.engine = engine
        self.hierarchy = hierarchy
        self.slice_id = slice_id
        self.params = params or hierarchy.machine.halo
        self.scoreboard = Scoreboard(engine, self.params.scoreboard_entries)
        self.hash_unit = engine.resource(1)
        # Structural hazard: queries against the *same* table serialise
        # (they contend on the table's metadata-cache entry and scoreboard
        # sequencing), while queries to different tables overlap through the
        # scoreboard's outstanding data requests.  This reproduces the
        # paper's observation that non-blocking mode gains little on a
        # single table (Figure 9) yet scales tuple-space search across
        # tuples (Figure 11).
        self._table_ports: dict = {}
        self.metadata_cache = MetadataCache(
            slice_id, self.params.metadata_cache_tables,
            hierarchy.snoop_filter)
        self.lock_manager = lock_manager or HardwareLockManager(
            hierarchy, enabled=self.params.enabled_lock_bits)
        self.flow_register = FlowRegister()
        self.stats = AcceleratorStats()
        # Registry-backed metrics: shared across slices (one machine-wide
        # service histogram / counter set) plus a per-slice pull source.
        registry = hierarchy.obs.metrics
        self._m_service = registry.histogram(
            "halo.accelerator.service_cycles")
        self._m_queries = registry.counter("halo.accelerator.queries")
        self._m_hits = registry.counter("halo.accelerator.hits")
        self._m_misses = registry.counter("halo.accelerator.misses")
        self._m_meta_hits = registry.counter(
            "halo.accelerator.metadata_hits")
        self._m_meta_misses = registry.counter(
            "halo.accelerator.metadata_misses")
        registry.register_source(f"halo.accelerator.slice{slice_id}",
                                 self._metrics_source)

    def _metrics_source(self) -> dict:
        """Per-slice pull source: stats block + flow-register state.

        Idle slices report nothing, keeping snapshots and the report table
        proportional to the machine's *active* accelerators."""
        stats = self.stats
        if not (stats.queries or stats.memory_accesses
                or self.flow_register.stats.observations):
            return {}
        return {
            "queries": stats.queries,
            "hits": stats.hits,
            "memory_accesses": stats.memory_accesses,
            "metadata_hits": stats.metadata_hits,
            "metadata_misses": stats.metadata_misses,
            "hash_operations": stats.hash_operations,
            "boundary_violations": stats.boundary_violations,
            "service_mean_cycles": stats.service.mean,
            "flow_register_observations":
                self.flow_register.stats.observations,
            "flow_register_last_estimate": self.flow_register.last_estimate,
        }

    @property
    def busy(self) -> bool:
        return self.scoreboard.busy

    # -- internals -----------------------------------------------------------
    def _mem(self, addr: int, write: bool = False) -> AccessResult:
        """One CHA-side data access; returns the full access result so
        callers can stamp the serving level onto their trace span."""
        result = self.hierarchy.cha_access(self.slice_id, addr, write=write)
        self.stats.memory_accesses += 1
        return result

    def _checked_table_access(self, query: LookupQuery, addr: int,
                              region_kind: str) -> AccessResult:
        """A table data access with the §4.7 boundary check applied."""
        layout = query.table.layout
        region = (layout.buckets if region_kind == "buckets"
                  else layout.key_values)
        if not region.contains(addr):
            self.stats.boundary_violations += 1
            raise BoundaryViolation(
                f"query {query.query_id}: {region_kind} access {addr:#x} "
                f"outside [{region.base:#x}, {region.end:#x})")
        return self._mem(addr)

    def _fetch_metadata(self, query: LookupQuery,
                        span=NULL_SPAN) -> Generator:
        line = self.hierarchy.line_of(query.table_addr)
        stage = span.child("metadata_fetch", self.engine.now)
        if self.metadata_cache.lookup(line):
            self.stats.metadata_hits += 1
            self._m_meta_hits.inc()
            yield self.engine.timeout(1)
            stage.note(hit=True)
            stage.finish(self.engine.now)
            return True
        self.stats.metadata_misses += 1
        self._m_meta_misses.inc()
        access = self._mem(query.table_addr)
        yield self.engine.timeout(access.latency)
        self.metadata_cache.fill(line, query.table)
        stage.note(hit=False, level=access.level)
        stage.finish(self.engine.now)
        return False

    def _hash(self, key_bytes: int = 16) -> Generator:
        """Run the key through the pipelined hash unit.

        The unit consumes one 8-byte lane per issue interval, so larger
        keys (§3.4: 4-64 B headers) occupy the pipeline longer.
        """
        lanes = max(1, -(-key_bytes // 8))
        grant = self.hash_unit.acquire()
        yield grant
        yield self.engine.timeout(self.params.hash_issue_interval * lanes)
        self.hash_unit.release()
        remaining = self.params.hash_latency - self.params.hash_issue_interval
        if remaining > 0:
            yield self.engine.timeout(remaining)
        self.stats.hash_operations += 1

    # -- the query FSM ----------------------------------------------------------
    def serve(self, query: LookupQuery) -> Generator:
        """Process one query; a DES process returning a QueryResult."""
        parent = query.span if query.span is not None else NULL_SPAN
        queue_span = parent.child("accelerator.queue", self.engine.now,
                                  slice=self.slice_id)
        yield self.scoreboard.admit()
        # Fault seam: an installed injector may stall the query here, after
        # it holds a scoreboard slot — a stalled slice backs up exactly like
        # real head-of-line blocking (busy bit rises, distributor holds).
        gate = self.engine.fault_hook("accelerator.serve")
        if gate is not None:
            yield from gate(self)
        port = self._table_ports.get(query.table_addr)
        if port is None:
            port = self.engine.resource(1)
            self._table_ports[query.table_addr] = port
        yield port.acquire()
        queue_span.finish(self.engine.now)
        span = parent.child("accelerator.serve", self.engine.now,
                            slice=self.slice_id)
        started = self.engine.now
        try:
            try:
                metadata_hit = yield from self._fetch_metadata(query, span)

                # Fetch the key.
                stage = span.child("key_fetch", self.engine.now)
                access = self._mem(query.key_addr)
                yield self.engine.timeout(access.latency)
                stage.note(level=access.level)
                stage.finish(self.engine.now)

                # Hash.
                stage = span.child("hash", self.engine.now)
                yield from self._hash(getattr(query.table, "key_bytes", 16))
                stage.finish(self.engine.now)
                plan: LookupPlan = query.table.probe(query.key)
                self.flow_register.observe(plan.primary_hash)

                # Lock both candidate bucket lines for the query's duration.
                lease = self.lock_manager.lock_lines(
                    {plan.primary_addr, plan.secondary_addr})
                try:
                    yield from self._scan_bucket(query, plan, lease,
                                                 secondary=False, span=span)
                    if not plan.found or plan.found_in_secondary:
                        if plan.secondary_addr != plan.primary_addr:
                            yield from self._scan_bucket(query, plan, lease,
                                                         secondary=True,
                                                         span=span)
                finally:
                    lease.release_all()
            finally:
                # The FSM is done; result delivery happens off the critical
                # path so the next scoreboard entry can start executing.
                port.release()

            # Deliver the result.
            stage = span.child("deliver", self.engine.now,
                               destination=query.destination.value)
            if query.destination is ResultDestination.MEMORY:
                access = self._mem(query.result_addr, write=True)
                yield self.engine.timeout(access.latency)
            else:
                yield self.engine.timeout(
                    self.hierarchy.latency.result_return)
            stage.finish(self.engine.now)
        finally:
            self.scoreboard.complete()
            span.finish(self.engine.now)

        self.stats.queries += 1
        self._m_queries.inc()
        if plan.found:
            self.stats.hits += 1
            self._m_hits.inc()
        else:
            self._m_misses.inc()
        service_cycles = self.engine.now - started
        self.stats.service.record(service_cycles)
        self._m_service.observe(service_cycles)
        span.note(found=plan.found)
        return QueryResult(
            query=query,
            found=plan.found,
            value=plan.value,
            started_at=started,
            completed_at=self.engine.now,
            accelerator_slice=self.slice_id,
            memory_accesses=self.stats.memory_accesses,
            metadata_hit=metadata_hit,
        )

    def _scan_bucket(self, query: LookupQuery, plan: LookupPlan, lease,
                     secondary: bool, span=NULL_SPAN) -> Generator:
        """Read one bucket line, compare signatures, chase kv matches."""
        stage = span.child("bucket_scan", self.engine.now,
                           secondary=secondary)
        addr = plan.secondary_addr if secondary else plan.primary_addr
        access = self._checked_table_access(query, addr, "buckets")
        yield self.engine.timeout(access.latency)
        stage.note(bucket_level=access.level)
        # The fetch brought the line to the LLC; (re-)set its lock bit for
        # the remainder of the query (tracked by the query's lease).
        if self.params.enabled_lock_bits:
            lease.lock(addr)
        # Signature comparison across the bucket's entries (parallel
        # comparators, constant latency).
        yield self.engine.timeout(self.params.compare_latency)
        kv_probes = (plan.kv_probes_secondary if secondary
                     else plan.kv_probes_primary)
        for kv_addr in kv_probes:
            # Fetch, lock, and compare the key-value pair.
            lease = self.lock_manager.lease()
            try:
                kv_stage = stage.child("kv_probe", self.engine.now)
                access = self._checked_table_access(query, kv_addr,
                                                    "key_values")
                yield self.engine.timeout(access.latency)
                if self.params.enabled_lock_bits:
                    lease.lock(kv_addr)
                yield self.engine.timeout(self.params.compare_latency)
                kv_stage.note(level=access.level)
                kv_stage.finish(self.engine.now)
            finally:
                lease.release_all()
        stage.finish(self.engine.now)
