"""The per-CHA HALO accelerator (paper §4.3, Figure 6).

One accelerator sits beside each CHA/LLC slice.  It executes lookup queries
as a sequence of scoreboard-tracked steps:

1. fetch the table's metadata (Metadata Cache hit, or a CHA-side line read);
2. fetch the key from the query's key address;
3. hash the key (one fully-pipelined hash unit per accelerator);
4. lock and read the primary bucket, compare signatures;
5. on a signature match, fetch and compare the key-value pair;
6. otherwise repeat on the alternative bucket;
7. unlock, commit the query, push the result to its destination.

All data accesses use the CHA-side path (:meth:`MemoryHierarchy.cha_access`),
so they never pollute private caches — the property behind Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..hashtable.cuckoo import LookupPlan
from ..sim.engine import Engine
from ..sim.hierarchy import MemoryHierarchy
from ..sim.params import HaloParams
from ..sim.stats import RunningStats
from .flow_register import FlowRegister
from .locking import HardwareLockManager
from .metadata_cache import MetadataCache
from .query import LookupQuery, QueryResult, ResultDestination
from .scoreboard import Scoreboard


@dataclass
class AcceleratorStats:
    queries: int = 0
    hits: int = 0
    memory_accesses: int = 0
    metadata_hits: int = 0
    metadata_misses: int = 0
    hash_operations: int = 0
    boundary_violations: int = 0
    service: RunningStats = field(default_factory=RunningStats)


class BoundaryViolation(RuntimeError):
    """A query tried to reach outside its table's regions (§4.7).

    The accelerator "enforces boundary check for each memory access": a
    corrupted bucket pointer or malicious metadata cannot make it read or
    write arbitrary memory.
    """


class HaloAccelerator:
    """One near-cache lookup accelerator attached to a CHA."""

    def __init__(
        self,
        engine: Engine,
        hierarchy: MemoryHierarchy,
        slice_id: int,
        params: Optional[HaloParams] = None,
        lock_manager: Optional[HardwareLockManager] = None,
    ) -> None:
        self.engine = engine
        self.hierarchy = hierarchy
        self.slice_id = slice_id
        self.params = params or hierarchy.machine.halo
        self.scoreboard = Scoreboard(engine, self.params.scoreboard_entries)
        self.hash_unit = engine.resource(1)
        # Structural hazard: queries against the *same* table serialise
        # (they contend on the table's metadata-cache entry and scoreboard
        # sequencing), while queries to different tables overlap through the
        # scoreboard's outstanding data requests.  This reproduces the
        # paper's observation that non-blocking mode gains little on a
        # single table (Figure 9) yet scales tuple-space search across
        # tuples (Figure 11).
        self._table_ports: dict = {}
        self.metadata_cache = MetadataCache(
            slice_id, self.params.metadata_cache_tables,
            hierarchy.snoop_filter)
        self.lock_manager = lock_manager or HardwareLockManager(
            hierarchy, enabled=self.params.enabled_lock_bits)
        self.flow_register = FlowRegister()
        self.stats = AcceleratorStats()

    @property
    def busy(self) -> bool:
        return self.scoreboard.busy

    # -- internals -----------------------------------------------------------
    def _mem(self, addr: int, write: bool = False) -> int:
        """One CHA-side data access; returns its latency."""
        result = self.hierarchy.cha_access(self.slice_id, addr, write=write)
        self.stats.memory_accesses += 1
        return result.latency

    def _checked_table_access(self, query: LookupQuery, addr: int,
                              region_kind: str) -> int:
        """A table data access with the §4.7 boundary check applied."""
        layout = query.table.layout
        region = (layout.buckets if region_kind == "buckets"
                  else layout.key_values)
        if not region.contains(addr):
            self.stats.boundary_violations += 1
            raise BoundaryViolation(
                f"query {query.query_id}: {region_kind} access {addr:#x} "
                f"outside [{region.base:#x}, {region.end:#x})")
        return self._mem(addr)

    def _fetch_metadata(self, query: LookupQuery) -> Generator:
        line = self.hierarchy.line_of(query.table_addr)
        if self.metadata_cache.lookup(line):
            self.stats.metadata_hits += 1
            yield self.engine.timeout(1)
            return True
        self.stats.metadata_misses += 1
        yield self.engine.timeout(self._mem(query.table_addr))
        self.metadata_cache.fill(line, query.table)
        return False

    def _hash(self, key_bytes: int = 16) -> Generator:
        """Run the key through the pipelined hash unit.

        The unit consumes one 8-byte lane per issue interval, so larger
        keys (§3.4: 4-64 B headers) occupy the pipeline longer.
        """
        lanes = max(1, -(-key_bytes // 8))
        grant = self.hash_unit.acquire()
        yield grant
        yield self.engine.timeout(self.params.hash_issue_interval * lanes)
        self.hash_unit.release()
        remaining = self.params.hash_latency - self.params.hash_issue_interval
        if remaining > 0:
            yield self.engine.timeout(remaining)
        self.stats.hash_operations += 1

    # -- the query FSM ----------------------------------------------------------
    def serve(self, query: LookupQuery) -> Generator:
        """Process one query; a DES process returning a QueryResult."""
        yield self.scoreboard.admit()
        port = self._table_ports.get(query.table_addr)
        if port is None:
            port = self.engine.resource(1)
            self._table_ports[query.table_addr] = port
        yield port.acquire()
        started = self.engine.now
        try:
            try:
                metadata_hit = yield from self._fetch_metadata(query)

                # Fetch the key.
                yield self.engine.timeout(self._mem(query.key_addr))

                # Hash.
                yield from self._hash(getattr(query.table, "key_bytes", 16))
                plan: LookupPlan = query.table.probe(query.key)
                self.flow_register.observe(plan.primary_hash)

                # Lock both candidate bucket lines for the query's duration.
                lease = self.lock_manager.lock_lines(
                    {plan.primary_addr, plan.secondary_addr})
                try:
                    yield from self._scan_bucket(query, plan, lease,
                                                 secondary=False)
                    if not plan.found or plan.found_in_secondary:
                        if plan.secondary_addr != plan.primary_addr:
                            yield from self._scan_bucket(query, plan, lease,
                                                         secondary=True)
                finally:
                    lease.release_all()
            finally:
                # The FSM is done; result delivery happens off the critical
                # path so the next scoreboard entry can start executing.
                port.release()

            # Deliver the result.
            if query.destination is ResultDestination.MEMORY:
                yield self.engine.timeout(self._mem(query.result_addr,
                                                    write=True))
            else:
                yield self.engine.timeout(
                    self.hierarchy.latency.result_return)
        finally:
            self.scoreboard.complete()

        self.stats.queries += 1
        if plan.found:
            self.stats.hits += 1
        self.stats.service.record(self.engine.now - started)
        return QueryResult(
            query=query,
            found=plan.found,
            value=plan.value,
            started_at=started,
            completed_at=self.engine.now,
            accelerator_slice=self.slice_id,
            memory_accesses=self.stats.memory_accesses,
            metadata_hit=metadata_hit,
        )

    def _scan_bucket(self, query: LookupQuery, plan: LookupPlan, lease,
                     secondary: bool) -> Generator:
        """Read one bucket line, compare signatures, chase kv matches."""
        addr = plan.secondary_addr if secondary else plan.primary_addr
        yield self.engine.timeout(
            self._checked_table_access(query, addr, "buckets"))
        # The fetch brought the line to the LLC; (re-)set its lock bit for
        # the remainder of the query (tracked by the query's lease).
        if self.params.enabled_lock_bits:
            lease.lock(addr)
        # Signature comparison across the bucket's entries (parallel
        # comparators, constant latency).
        yield self.engine.timeout(self.params.compare_latency)
        kv_probes = (plan.kv_probes_secondary if secondary
                     else plan.kv_probes_primary)
        for kv_addr in kv_probes:
            # Fetch, lock, and compare the key-value pair.
            lease = self.lock_manager.lease()
            try:
                yield self.engine.timeout(
                    self._checked_table_access(query, kv_addr,
                                               "key_values"))
                if self.params.enabled_lock_bits:
                    lease.lock(kv_addr)
                yield self.engine.timeout(self.params.compare_latency)
            finally:
                lease.release_all()
