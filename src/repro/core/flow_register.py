"""Linear-counting flow register (paper §4.6, Figure 8).

Each accelerator owns a small bit array.  Every query sets bit
``H mod S`` (``H`` = the lookup's primary hash, ``S`` = bit-array size).
Periodically the array is scanned and the active-flow cardinality estimated
with linear counting (Whang et al. 1990):

    n̂ ≈ m · ln(m / u)

where ``m`` is the array size and ``u`` the number of *unset* bits.  The
paper observes a register can accurately estimate about 2× more flows than
it has bits, and that a 32-bit array suffices to steer the hybrid mode
(threshold ≈ 64 flows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

DEFAULT_BITS = 32


class SaturatedEstimate(float):
    """Marker type: every bit was set, the true count is >= this estimate."""


@dataclass
class FlowRegisterStats:
    observations: int = 0
    scans: int = 0
    saturations: int = 0

    def as_dict(self) -> dict:
        """Flat scalar view for the metrics registry (pull source)."""
        return {"observations": self.observations, "scans": self.scans,
                "saturations": self.saturations}


class FlowRegister:
    """A linear-counting cardinality estimator over lookup hashes."""

    def __init__(self, bits: int = DEFAULT_BITS) -> None:
        if bits < 2:
            raise ValueError("flow register needs at least 2 bits")
        self.bits = bits
        self._array = 0
        self.stats = FlowRegisterStats()
        self.last_estimate = 0.0

    def observe(self, hash_value: int) -> None:
        """Record one lookup's primary hash."""
        self._array |= 1 << (hash_value % self.bits)
        self.stats.observations += 1

    @property
    def unset_bits(self) -> int:
        return self.bits - bin(self._array).count("1")

    def estimate(self) -> float:
        """Current active-flow estimate (no reset)."""
        unset = self.unset_bits
        if unset == 0:
            # Saturated: linear counting diverges; report the asymptote for
            # one remaining unset bit as a lower bound.
            self.stats.saturations += 1
            return SaturatedEstimate(self.bits * math.log(self.bits))
        return self.bits * math.log(self.bits / unset)

    def scan_and_reset(self) -> float:
        """End-of-window scan: estimate, record, clear (paper §4.6)."""
        value = self.estimate()
        self.last_estimate = float(value)
        self._array = 0
        self.stats.scans += 1
        return value

    def is_saturated(self) -> bool:
        return self.unset_bits == 0


def estimate_flows(true_flow_hashes, bits: int) -> float:
    """One-shot helper: feed hashes through a fresh register, estimate."""
    register = FlowRegister(bits)
    for value in true_flow_hashes:
        register.observe(value)
    return register.estimate()
