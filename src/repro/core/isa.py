"""The x86-64 instruction-set extension (paper §4.5).

Three instructions make HALO programmable:

* ``LOOKUP_B mem.key_addr reg.result`` — blocking lookup.  The table address
  is implicit in RAX/EAX.  Behaves like a long-latency load: the issuing
  core waits for the accelerator's result.
* ``LOOKUP_NB mem.key_addr mem.result`` — non-blocking lookup.  Behaves like
  a store: the query is posted and the accelerator later writes the result
  to the given memory slot; the core keeps executing.
* ``SNAPSHOT_READ mem.result_addr reg.result`` — reads the current value of
  a result line *without changing cache-line ownership*, so polling does not
  bounce the line between the LLC and private caches.  A vector variant
  snapshots a whole 64-byte line (eight result slots) at once, checked with
  AVX integer compares.

These are modelled as DES generators that charge the issuing core the right
number of cycles and interact with the query distributor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from ..sim.engine import Engine, Process
from ..sim.hierarchy import MemoryHierarchy
from .distributor import QueryDistributor
from .query import LookupQuery, QueryResult, ResultDestination

#: Results per cache line for the batched LOOKUP_NB + SNAPSHOT_READ idiom.
RESULTS_PER_LINE = 8


@dataclass(frozen=True)
class IssueCosts:
    """Core-side pipeline occupancy of each new instruction."""

    lookup_b_issue: int = 1     # like a load: 1 issue slot, then blocks
    lookup_nb_issue: int = 1    # like a store: 1 issue slot, fire and forget
    snapshot_check: int = 4     # AVX compare of a snapshotted line


@dataclass
class IsaStats:
    lookup_b: int = 0
    lookup_nb: int = 0
    snapshot_reads: int = 0
    snapshot_polls_spent: int = 0

    def as_dict(self) -> dict:
        """Flat scalar view for the metrics registry (pull source)."""
        return {"lookup_b": self.lookup_b, "lookup_nb": self.lookup_nb,
                "snapshot_reads": self.snapshot_reads,
                "snapshot_polls_spent": self.snapshot_polls_spent}


class HaloIsa:
    """Instruction-level interface used by simulated programs."""

    def __init__(self, engine: Engine, hierarchy: MemoryHierarchy,
                 distributor: QueryDistributor,
                 costs: Optional[IssueCosts] = None) -> None:
        self.engine = engine
        self.hierarchy = hierarchy
        self.distributor = distributor
        self.costs = costs or IssueCosts()
        self.stats = IsaStats()
        hierarchy.obs.metrics.register_source("halo.isa", self.stats.as_dict)
        #: Snapshot polls burnt per batch before all results landed.
        self._m_polls = hierarchy.obs.metrics.histogram(
            "halo.isa.polls_per_batch",
            bounds=tuple(float(1 << exp) for exp in range(9)))
        # Result slots for LOOKUP_NB live in a dedicated, line-aligned region
        # that is kept LLC-resident (the SNAPSHOT_READ idiom never lets these
        # lines leave the LLC).
        self._result_region = hierarchy.allocator.alloc(
            4096, "halo.result_slots")
        hierarchy.warm_llc(self._result_region.base, self._result_region.size)
        self._next_slot = 0

    # -- result-slot management -----------------------------------------------
    def result_slot(self) -> int:
        """A fresh 8-byte result address (wraps around the region)."""
        addr = self._result_region.base + (self._next_slot % 512) * 8
        self._next_slot += 1
        return addr

    def result_line(self) -> int:
        """A fresh line-aligned result address for an 8-query batch."""
        line = (self._next_slot + RESULTS_PER_LINE - 1) // RESULTS_PER_LINE
        self._next_slot = (line + 1) * RESULTS_PER_LINE
        return self._result_region.base + (line * 64) % self._result_region.size

    # -- LOOKUP_B ----------------------------------------------------------------
    def lookup_b(self, core_id: int, table, key: bytes,
                 key_addr: Optional[int] = None) -> Generator:
        """Blocking lookup: yields the QueryResult when it arrives."""
        self.stats.lookup_b += 1
        yield self.engine.timeout(self.costs.lookup_b_issue)
        query = LookupQuery(
            table=table,
            key=key,
            key_addr=key_addr if key_addr is not None else table._key_scratch,
            destination=ResultDestination.REGISTER,
            core_id=core_id,
        )
        result: QueryResult = yield self.distributor.dispatch(query)
        return result

    # -- LOOKUP_NB ----------------------------------------------------------------
    def lookup_nb(self, core_id: int, table, key: bytes,
                  key_addr: Optional[int] = None,
                  result_addr: Optional[int] = None) -> Generator:
        """Non-blocking lookup: yields only the issue cost, returns the
        in-flight :class:`Process` whose value will be the QueryResult."""
        self.stats.lookup_nb += 1
        yield self.engine.timeout(self.costs.lookup_nb_issue)
        query = LookupQuery(
            table=table,
            key=key,
            key_addr=key_addr if key_addr is not None else table._key_scratch,
            destination=ResultDestination.MEMORY,
            result_addr=(result_addr if result_addr is not None
                         else self.result_slot()),
            core_id=core_id,
        )
        return self.distributor.dispatch(query)

    # -- SNAPSHOT_READ ---------------------------------------------------------------
    def snapshot_read_poll(self, core_id: int, pending: List[Process],
                           budget: Optional[int] = None) -> Generator:
        """Poll a batch's result line until every query completed.

        Each poll is one (vector) SNAPSHOT_READ: an LLC-latency read that
        does not change the line's ownership, plus an AVX all-non-zero check.
        Returns the list of :class:`QueryResult`.

        ``budget`` bounds the number of polls (resilience policies use it
        as a timeout against stalled accelerators): once spent, returns
        ``None`` instead of results — the in-flight queries stay pending
        and keep draining in the background.  ``budget=None`` (default)
        polls forever, replaying the unbounded cycle sequence exactly.
        """
        poll_latency = (self.hierarchy.latency.cha_llc_hit
                        + self.hierarchy.latency.llc_hit) // 2
        polls = 0
        while True:
            self.stats.snapshot_reads += 1
            polls += 1
            yield self.engine.timeout(poll_latency + self.costs.snapshot_check)
            if all(process.done for process in pending):
                break
            if budget is not None and polls >= budget:
                self._m_polls.observe(polls)
                return None
            self.stats.snapshot_polls_spent += 1
            # Re-poll after a short back-off (the snapshot keeps the line in
            # the LLC, so re-reads stay cheap and cause no bouncing).
            yield self.engine.timeout(4)
        self._m_polls.observe(polls)
        return [process.result for process in pending]

    # -- the batched NB idiom (paper §4.5 example) -----------------------------------
    def lookup_batch(self, core_id: int, table, keys,
                     key_addrs=None) -> Generator:
        """Issue up to eight LOOKUP_NBs to one result line, then poll.

        Returns the list of QueryResults in key order.
        """
        keys = list(keys)
        results: List[QueryResult] = []
        for start in range(0, len(keys), RESULTS_PER_LINE):
            chunk = keys[start:start + RESULTS_PER_LINE]
            line_base = self.result_line()
            pending: List[Process] = []
            for offset, key in enumerate(chunk):
                key_addr = None
                if key_addrs is not None:
                    key_addr = key_addrs[start + offset]
                process = yield from self.lookup_nb(
                    core_id, table, key, key_addr=key_addr,
                    result_addr=line_base + offset * 8)
                pending.append(process)
            chunk_results = yield from self.snapshot_read_poll(core_id, pending)
            results.extend(chunk_results)
        return results
