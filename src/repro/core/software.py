"""Software baseline executor: DPDK-style lookups on a simulated core.

Wraps a traced hash table and a :class:`~repro.sim.core.CoreModel` so the
software path and the HALO path can be compared on identical machines,
tables, and key streams.  Includes the optimistic-locking read-side overhead
the paper measures at 13.1% of execution time (§3.4).

Trace capture routes through the issuing core's tracer (see
:class:`~repro.sim.trace.CoreTracerRouter`), so several software engines on
different cores can interleave on one shared engine without clobbering each
other's in-flight traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Tuple

from ..hashtable.locking import READ_SIDE_CYCLES
from ..sim.core import CoreModel, ExecutionResult
from ..sim.hierarchy import MemoryHierarchy
from ..sim.stats import Breakdown, RunningStats
from ..sim.trace import Tracer, capture


@dataclass
class SoftwareRunStats:
    lookups: int = 0
    hits: int = 0
    cycles: RunningStats = field(default_factory=RunningStats)
    breakdown: Breakdown = field(default_factory=Breakdown)


class SoftwareLookupEngine:
    """Executes traced table operations on one simulated core."""

    def __init__(self, hierarchy: MemoryHierarchy, core_id: int = 0,
                 with_locking: bool = True) -> None:
        self.hierarchy = hierarchy
        self.core = CoreModel(core_id, hierarchy)
        self.with_locking = with_locking
        self.stats = SoftwareRunStats()

    def lookup(self, table, key: bytes,
               key_addr: Optional[int] = None) -> Tuple[Any, ExecutionResult]:
        """One software lookup; returns (value, execution result)."""
        tracer = self.table_tracer(table)
        value, trace = capture(tracer, self.core.core_id,
                               table.lookup, key, key_addr=key_addr)
        lock_cycles = READ_SIDE_CYCLES if self.with_locking else 0.0
        result = self.core.execute(trace, lock_cycles=lock_cycles)
        self.stats.lookups += 1
        if value is not None:
            self.stats.hits += 1
        self.stats.cycles.record(result.cycles)
        self.stats.breakdown = self.stats.breakdown.merged(result.breakdown)
        return value, result

    def capture_lookups(self, table,
                        keys: Iterable[bytes]) -> Tuple[list, list]:
        """Functionally run a key stream, capturing one trace per lookup.

        Pure capture — nothing is priced and no stats are recorded; pair
        with :meth:`record_lookup` once the traces have been executed
        (serially or through :meth:`CoreModel.execute_batch`).  Table
        lookups are functional reads, so running them all before pricing
        leaves the simulated cache state untouched.
        """
        tracer = self.table_tracer(table)
        values: list = []
        traces: list = []
        push_value = values.append
        push_trace = traces.append
        lookup = table.lookup
        token = tracer.activate(self.core.core_id)
        # Bracket the recording on the core's own tracer directly; the
        # table's internal loads still route through ``table.tracer``.
        # One ``begin`` up front — ``take`` already resets the tracer, so
        # re-beginning per key would just allocate a throwaway trace.
        recorder = tracer.tracer_for(self.core.core_id)
        take = recorder.take
        # Capture fast path: point ``table.tracer`` straight at this
        # core's recorder for the duration of the bracket, skipping the
        # per-op router delegation hop.  The router stays activated, so
        # the recording is identical either way; tables whose ``tracer``
        # is not assignable simply keep routing through it.
        saved_tracer = table.tracer
        swapped = False
        try:
            table.tracer = recorder
            swapped = True
        except AttributeError:
            pass
        try:
            recorder.begin()
            for key in keys:
                push_value(lookup(key))
                push_trace(take())
        finally:
            if swapped:
                table.tracer = saved_tracer
            tracer.restore(token)
        return values, traces

    def record_lookup(self, value: Any, result: ExecutionResult) -> None:
        """Fold one priced lookup into the run stats (same order as
        :meth:`lookup`, so serial and batched runs agree exactly)."""
        self.stats.lookups += 1
        if value is not None:
            self.stats.hits += 1
        self.stats.cycles.record(result.cycles)
        self.stats.breakdown = self.stats.breakdown.merged(result.breakdown)

    def record_lookups(self, values: list, results: list) -> None:
        """Fold a priced batch into the run stats in one pass.

        Float math is the same left-fold :meth:`record_lookup` performs
        per lookup (the Welford stream sees each cycle count in order, the
        breakdown parts accumulate left to right), so a batched run's
        stats equal the serial run's exactly.
        """
        stats = self.stats
        parts = dict(stats.breakdown.parts)
        parts_get = parts.get
        hits = 0
        # Welford fold inlined on locals — identical op sequence to
        # RunningStats.record, written back once at the end.
        cycle_stats = stats.cycles
        count = cycle_stats.count
        mean = cycle_stats.mean
        m2 = cycle_stats._m2
        minimum = cycle_stats.minimum
        maximum = cycle_stats.maximum
        for value, result in zip(values, results):
            if value is not None:
                hits += 1
            cycles = result.cycles
            count += 1
            delta = cycles - mean
            mean += delta / count
            m2 += delta * (cycles - mean)
            minimum = min(minimum, cycles)
            maximum = max(maximum, cycles)
            for name, amount in result.breakdown.parts.items():
                parts[name] = parts_get(name, 0.0) + amount
        cycle_stats.count = count
        cycle_stats.mean = mean
        cycle_stats._m2 = m2
        cycle_stats.minimum = minimum
        cycle_stats.maximum = maximum
        stats.lookups += len(results)
        stats.hits += hits
        stats.breakdown = Breakdown(parts)

    def lookup_stream(self, table, keys: Iterable[bytes]) -> SoftwareRunStats:
        """Run a key stream; returns the accumulated statistics."""
        for key in keys:
            self.lookup(table, key)
        return self.stats

    def lookup_bulk(self, table, keys: Iterable[bytes],
                    batch: int = 8) -> Tuple[list, float]:
        """DPDK ``rte_hash_lookup_bulk``: prefetch-pipelined batches.

        Same-stage memory accesses across the batch overlap up to the
        core's MLP, the classic software mitigation HALO competes with.
        Returns (values, total cycles).
        """
        keys = list(keys)
        tracer = self.table_tracer(table)
        values = []
        total_cycles = 0.0
        lock_cycles = READ_SIDE_CYCLES if self.with_locking else 0.0
        for start in range(0, len(keys), batch):
            chunk = keys[start:start + batch]
            traces = []
            token = tracer.activate(self.core.core_id)
            try:
                for key in chunk:
                    tracer.begin()
                    values.append(table.lookup(key))
                    traces.append(tracer.take())
            finally:
                tracer.restore(token)
            result = self.core.execute_prefetch_batch(
                traces, lock_cycles_each=lock_cycles)
            total_cycles += result.cycles
            self.stats.lookups += len(chunk)
            # Amortise the batch cost across its lookups so per-lookup
            # statistics (mean_cycles_per_lookup) stay meaningful after
            # bulk runs, with count matching ``stats.lookups``.
            per_lookup = result.cycles / len(chunk)
            for _ in chunk:
                self.stats.cycles.record(per_lookup)
            self.stats.breakdown = self.stats.breakdown.merged(
                result.breakdown)
        self.stats.hits += sum(1 for value in values if value is not None)
        return values, total_cycles

    @staticmethod
    def table_tracer(table) -> Tracer:
        tracer = table.tracer
        if not isinstance(tracer, Tracer) or not tracer.enabled:
            raise ValueError(
                "software execution needs a table built with an enabled Tracer")
        return tracer

    def insert(self, table, key: bytes, value: Any) -> ExecutionResult:
        tracer = self.table_tracer(table)
        _ok, trace = capture(tracer, self.core.core_id,
                             table.insert, key, value)
        lock_cycles = (table.lock.write_overhead_cycles()
                       if self.with_locking else 0.0)
        return self.core.execute(trace, lock_cycles=lock_cycles)

    @property
    def mean_cycles_per_lookup(self) -> float:
        return self.stats.cycles.mean
