"""Lookup queries and results exchanged between cores and HALO accelerators.

A query carries the three items the paper specifies (§4.2): the key address,
the table address, and the result destination (a register for ``LOOKUP_B``,
a memory location for ``LOOKUP_NB``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

_query_ids = itertools.count(1)


class ResultDestination(Enum):
    REGISTER = "register"   # LOOKUP_B: value returned to the core pipeline
    MEMORY = "memory"       # LOOKUP_NB: accelerator writes a result slot


@dataclass
class LookupQuery:
    """One in-flight hash-table lookup."""

    table: Any                       # CuckooHashTable (or compatible)
    key: bytes
    key_addr: int
    destination: ResultDestination = ResultDestination.REGISTER
    result_addr: Optional[int] = None   # for LOOKUP_NB
    core_id: int = 0
    query_id: int = field(default_factory=lambda: next(_query_ids))
    issued_at: float = 0.0
    #: Root trace span for this query's journey (set by the distributor
    #: when observability is on; stages nest their child spans under it).
    span: Any = None

    def __post_init__(self) -> None:
        if (self.destination is ResultDestination.MEMORY
                and self.result_addr is None):
            raise ValueError("LOOKUP_NB query needs a result address")

    @property
    def table_addr(self) -> int:
        return self.table.table_addr


@dataclass
class QueryResult:
    """Completion record for one query."""

    query: LookupQuery
    found: bool
    value: Any
    started_at: float
    completed_at: float
    accelerator_slice: int
    memory_accesses: int = 0
    metadata_hit: bool = True

    @property
    def latency(self) -> float:
        """Cycles from issue to completion (including distributor queueing)."""
        return self.completed_at - self.query.issued_at

    @property
    def service_cycles(self) -> float:
        """Cycles spent inside the accelerator."""
        return self.completed_at - self.started_at
