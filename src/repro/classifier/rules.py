"""Match-action rules.

A rule pairs a :class:`~repro.classifier.flow.FlowMask` with the masked
field values to match and an action to apply.  Rules sharing a mask form one
tuple in tuple space search; priorities order rules across tuples in the
OpenFlow layer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from .flow import FiveTuple, FlowMask

_rule_ids = itertools.count(1)


class ActionKind(Enum):
    OUTPUT = "output"     # forward to a port / VNF
    DROP = "drop"
    NAT = "nat"           # rewrite addresses
    MIRROR = "mirror"
    CONTROLLER = "controller"  # punt to the control plane


@dataclass(frozen=True)
class Action:
    kind: ActionKind
    argument: Any = None

    @classmethod
    def output(cls, port: int) -> "Action":
        return cls(ActionKind.OUTPUT, port)

    @classmethod
    def drop(cls) -> "Action":
        return cls(ActionKind.DROP)


@dataclass(frozen=True)
class Rule:
    """One match-action rule."""

    mask: FlowMask
    match: FiveTuple          # already-masked field values
    action: Action
    priority: int = 0
    rule_id: int = field(default_factory=lambda: next(_rule_ids))

    def __post_init__(self) -> None:
        masked = self.mask.apply(self.match)
        if masked != self.match:
            raise ValueError(
                "rule match fields must be pre-masked by the rule's mask")

    def matches(self, flow: FiveTuple) -> bool:
        return self.mask.apply(flow) == self.match

    @property
    def key(self) -> bytes:
        """The hash-table key under this rule's tuple."""
        return self.match.pack()


def rule_for_flow(flow: FiveTuple, action: Action, mask: Optional[FlowMask] = None,
                  priority: int = 0) -> Rule:
    """Build a rule matching ``flow`` under ``mask`` (exact by default)."""
    mask = mask or FlowMask.exact()
    return Rule(mask=mask, match=mask.apply(flow), action=action,
                priority=priority)


def megaflow_mask_for(rule_mask: FlowMask) -> FlowMask:
    """The mask a megaflow entry is installed under.

    OVS generates megaflows finer than the matched rule: every field the
    classification consulted is un-wildcarded.  We model the common outcome
    — the full destination address plus a /16 source refinement become
    exact — so a rule covering a service subnet expands into roughly one
    megaflow per client/destination pair.  This gives the MegaFlow layer
    its realistic population (entries scale with the flow count, which is
    exactly why the paper's many-flow scenarios are LLC-bound).
    """
    # How far the source refines depends on how much the rule consulted:
    # fully-wild sources refine to /16, prefix rules to /24 — keeping rule
    # masks with different source prefixes in different megaflow tuples.
    if rule_mask.src_ip_mask == 0:
        src_refined = 0xFFFF0000
    else:
        src_refined = rule_mask.src_ip_mask | 0xFFFFFF00
    return FlowMask(
        src_ip_mask=src_refined,
        dst_ip_mask=0xFFFFFFFF,
        src_port_mask=rule_mask.src_port_mask,
        dst_port_mask=rule_mask.dst_port_mask,
        proto_mask=rule_mask.proto_mask,
    )


def megaflow_entry(rule: Rule, flow: FiveTuple) -> Rule:
    """The megaflow installed after ``rule`` matched ``flow``."""
    mask = megaflow_mask_for(rule.mask)
    return Rule(mask=mask, match=mask.apply(flow), action=rule.action,
                priority=rule.priority)
