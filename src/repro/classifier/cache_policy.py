"""Pluggable cache-management policies for the EMC and MegaFlow layers.

OVS's datapath caches lose their value under churn: when flow arrival
rates approach the cache capacity per eviction interval, every install
evicts a still-hot entry and the miss rate collapses (the regime Flow
Correlator targets).  Which entries *enter* the cache (admission) and
which leave (victim selection) then matter more than raw capacity.  This
module factors both decisions out of :class:`ExactMatchCache` and
:class:`TupleSpaceSearch` behind one small protocol so workload
experiments can sweep strategies without touching the cache structure.

Public contract: :class:`CachePolicy` is the stable seam — ``admit()``
gates installs, ``victim()`` picks the entry to evict from the candidate
buckets, and ``on_hit``/``on_install``/``on_evict`` keep the policy's
book-keeping in sync with the table.  ``make_policy(name, seed)``
constructs any of :data:`POLICY_NAMES`; :class:`RandomEvictionPolicy` is
the default everywhere and reproduces the seed EMC's probabilistic
replacement bit-identically (same ``random.Random`` stream, same call
order), pinned by the parity suite at rel=1e-12.  Policies are plain
Python book-keeping: they never touch the hash table's memory through
the tracer, so attaching one perturbs no modelled timing.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

#: Default RNG seed, shared with :class:`~repro.classifier.emc.ExactMatchCache`.
DEFAULT_POLICY_SEED = 0xE3C


def candidate_keys(table, buckets: Sequence[int]) -> List[bytes]:
    """Resident keys of the candidate buckets, deduplicated in scan order.

    The two cuckoo buckets of a key can coincide; scanning primary first
    and deduplicating keeps victim selection deterministic.
    """
    keys: List[bytes] = []
    seen = set()
    for bucket in buckets:
        for key in table.bucket_keys(bucket):
            if key not in seen:
                seen.add(key)
                keys.append(key)
    return keys


class CachePolicy:
    """Admission + victim selection for a best-effort cache layer.

    Subclasses override :meth:`victim` (mandatory) and any of the
    book-keeping hooks.  All state must be derived deterministically from
    the constructor arguments: two same-seeded instances fed the same
    call sequence make bit-identical decisions.
    """

    #: Registry name; also used for per-policy metric names.
    name = "base"

    def admit(self, key: bytes) -> bool:
        """Should this (missing) key be cached at all?"""
        return True

    def on_hit(self, key: bytes) -> None:
        """A lookup (or refresh-install) touched a resident key."""

    def on_install(self, key: bytes) -> None:
        """The key was inserted into the table."""

    def on_evict(self, key: bytes) -> None:
        """The key left the table (policy eviction or explicit removal)."""

    def victim(self, table, buckets: Sequence[int]) -> Optional[bytes]:
        """The resident key to evict so a new key can take its place.

        ``buckets`` are the new key's candidate bucket indices; both are
        full when this is called.  Returning ``None`` skips caching (the
        install is abandoned, never forced).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all book-keeping (table was cleared or rebuilt)."""


class RandomEvictionPolicy(CachePolicy):
    """OVS's probabilistic in-place replacement — the historical default.

    Picks a random candidate bucket, then a random resident key within
    it.  The RNG stream (``random.Random(seed)``, two draws per eviction)
    matches the pre-policy ``ExactMatchCache`` exactly, so the default
    configuration stays bit-identical with the seed implementation.
    """

    name = "random"

    def __init__(self, seed: int = DEFAULT_POLICY_SEED) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    def victim(self, table, buckets: Sequence[int]) -> Optional[bytes]:
        bucket = self._random.choice(buckets)
        victims = table.bucket_keys(bucket)
        if not victims:
            return None
        return self._random.choice(victims)

    def reset(self) -> None:
        self._random = random.Random(self._seed)


class LruPolicy(CachePolicy):
    """Evict the least-recently-used key among the candidate buckets.

    A logical clock ticks on every hit/install; the victim is the
    candidate with the oldest timestamp (never-touched keys count as
    oldest, ties resolve to scan order).  Admission is unconditional —
    this is the classic recency baseline the smarter policies must beat.
    """

    name = "lru"

    def __init__(self, seed: int = DEFAULT_POLICY_SEED) -> None:
        del seed  # deterministic without randomness; kept for uniformity
        self._tick = 0
        self._last_use: Dict[bytes, int] = {}

    def on_hit(self, key: bytes) -> None:
        self._tick += 1
        self._last_use[key] = self._tick

    on_install = on_hit

    def on_evict(self, key: bytes) -> None:
        self._last_use.pop(key, None)

    def victim(self, table, buckets: Sequence[int]) -> Optional[bytes]:
        best = None
        best_tick = None
        for key in candidate_keys(table, buckets):
            tick = self._last_use.get(key, -1)
            if best_tick is None or tick < best_tick:
                best, best_tick = key, tick
        return best

    def reset(self) -> None:
        self._tick = 0
        self._last_use.clear()


class SecondChancePolicy(CachePolicy):
    """Probabilistic admission plus CLOCK (second-chance) eviction.

    Admission mirrors OVS's ``emc-insert-inv-prob``: a miss is cached
    with probability ``1/lottery``.  One-packet flows (SYN floods, mice)
    rarely win the lottery and never pollute the cache, while elephants
    retry on every miss and get in quickly.  Eviction scans the candidate
    buckets CLOCK-style: each resident key holds a reference bit set on
    hit; the first key found with a clear bit is the victim, and bits are
    cleared in passing (so every entry gets a second chance).
    """

    name = "second-chance"

    def __init__(self, seed: int = DEFAULT_POLICY_SEED,
                 lottery: int = 4) -> None:
        if lottery < 1:
            raise ValueError("lottery must be >= 1")
        self._seed = seed
        self.lottery = lottery
        self._random = random.Random(seed)
        self._referenced: Dict[bytes, bool] = {}

    def admit(self, key: bytes) -> bool:
        return self._random.randrange(self.lottery) == 0

    def on_hit(self, key: bytes) -> None:
        self._referenced[key] = True

    def on_install(self, key: bytes) -> None:
        self._referenced[key] = False

    def on_evict(self, key: bytes) -> None:
        self._referenced.pop(key, None)

    def victim(self, table, buckets: Sequence[int]) -> Optional[bytes]:
        keys = candidate_keys(table, buckets)
        if not keys:
            return None
        for key in keys:
            if not self._referenced.get(key, False):
                return key
            self._referenced[key] = False  # second chance spent
        return keys[0]

    def reset(self) -> None:
        self._random = random.Random(self._seed)
        self._referenced.clear()


class CorrelatorPolicy(CachePolicy):
    """Flow Correlator-style elephant-aware admission and eviction.

    A bounded recent-miss sketch counts install attempts per key: a key
    is admitted only after ``admit_after`` attempts, i.e. once it has
    *proven* reuse — one-hit wonders never displace resident flows.
    Eviction removes the resident candidate with the fewest hits since
    install (the mouse), so elephants accumulate protection as they are
    hit.  The sketch holds at most ``history`` keys, evicting its own
    oldest entries FIFO, which bounds memory under million-flow churn.
    """

    name = "correlator"

    def __init__(self, seed: int = DEFAULT_POLICY_SEED,
                 admit_after: int = 2, history: int = 4096) -> None:
        del seed  # deterministic without randomness; kept for uniformity
        if admit_after < 1:
            raise ValueError("admit_after must be >= 1")
        if history < 1:
            raise ValueError("history must be >= 1")
        self.admit_after = admit_after
        self.history = history
        self._attempts: Dict[bytes, int] = {}
        self._hits: Dict[bytes, int] = {}

    def admit(self, key: bytes) -> bool:
        count = self._attempts.pop(key, 0) + 1
        self._attempts[key] = count  # re-insert at the recent end
        while len(self._attempts) > self.history:
            del self._attempts[next(iter(self._attempts))]
        return count >= self.admit_after

    def on_hit(self, key: bytes) -> None:
        self._hits[key] = self._hits.get(key, 0) + 1

    def on_install(self, key: bytes) -> None:
        self._hits[key] = 0
        self._attempts.pop(key, None)

    def on_evict(self, key: bytes) -> None:
        self._hits.pop(key, None)

    def victim(self, table, buckets: Sequence[int]) -> Optional[bytes]:
        best = None
        best_hits = None
        for key in candidate_keys(table, buckets):
            hits = self._hits.get(key, 0)
            if best_hits is None or hits < best_hits:
                best, best_hits = key, hits
        return best

    def reset(self) -> None:
        self._attempts.clear()
        self._hits.clear()


#: Registry order is also the sweep order in the cache_churn experiment.
_POLICIES = {
    policy.name: policy
    for policy in (RandomEvictionPolicy, LruPolicy, SecondChancePolicy,
                   CorrelatorPolicy)
}

POLICY_NAMES: Tuple[str, ...] = tuple(_POLICIES)


def make_policy(name: str, seed: int = DEFAULT_POLICY_SEED) -> CachePolicy:
    """Construct a registered policy by name (see :data:`POLICY_NAMES`)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown cache policy {name!r}; choose from {POLICY_NAMES}")
    return cls(seed=seed)
