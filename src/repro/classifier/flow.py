"""Flow keys: the 5-tuple and wildcard masks.

A flow is identified by the classic 5-tuple (source/destination IPv4
address, source/destination port, IP protocol) — 104 bits, packed into a
16-byte key for the hash tables (the paper's tables use 16-byte keys; §3.4
notes 4–64-byte headers are typical).

A :class:`FlowMask` wildcards a subset of the fields (or prefixes of the IP
fields); rules sharing a mask form one *tuple* in tuple space search.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

KEY_BYTES = 16
PROTO_TCP = 6
PROTO_UDP = 17


@dataclass(frozen=True, order=True)
class FiveTuple:
    """One packet's flow identity."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int = PROTO_UDP

    def __post_init__(self) -> None:
        if not (0 <= self.src_ip <= 0xFFFFFFFF
                and 0 <= self.dst_ip <= 0xFFFFFFFF):
            raise ValueError("IPv4 addresses must be 32-bit")
        if not (0 <= self.src_port <= 0xFFFF
                and 0 <= self.dst_port <= 0xFFFF):
            raise ValueError("ports must be 16-bit")
        if not 0 <= self.proto <= 0xFF:
            raise ValueError("proto must be 8-bit")

    def pack(self) -> bytes:
        """The 16-byte hash-table key (13 header bytes + zero pad)."""
        return struct.pack("<IIHHB3x", self.src_ip, self.dst_ip,
                           self.src_port, self.dst_port, self.proto)

    def as_int(self) -> int:
        """The 104-bit integer used by the TCAM models."""
        return ((self.src_ip << 72) | (self.dst_ip << 40)
                | (self.src_port << 24) | (self.dst_port << 8) | self.proto)

    @classmethod
    def unpack(cls, key: bytes) -> "FiveTuple":
        src_ip, dst_ip, src_port, dst_port, proto = struct.unpack(
            "<IIHHB3x", key)
        return cls(src_ip, dst_ip, src_port, dst_port, proto)

    def __str__(self) -> str:
        def ip(value: int) -> str:
            return ".".join(str((value >> shift) & 0xFF)
                            for shift in (24, 16, 8, 0))
        return (f"{ip(self.src_ip)}:{self.src_port} -> "
                f"{ip(self.dst_ip)}:{self.dst_port} proto={self.proto}")


@dataclass(frozen=True)
class FlowMask:
    """A wildcard pattern over the 5-tuple fields.

    Each field carries its own bitmask (0 = fully wildcarded,
    all-ones = exact).  IP fields support prefix masks.
    """

    src_ip_mask: int = 0xFFFFFFFF
    dst_ip_mask: int = 0xFFFFFFFF
    src_port_mask: int = 0xFFFF
    dst_port_mask: int = 0xFFFF
    proto_mask: int = 0xFF

    def apply(self, flow: FiveTuple) -> FiveTuple:
        """The masked flow — rules and packets compare under this."""
        return FiveTuple(
            src_ip=flow.src_ip & self.src_ip_mask,
            dst_ip=flow.dst_ip & self.dst_ip_mask,
            src_port=flow.src_port & self.src_port_mask,
            dst_port=flow.dst_port & self.dst_port_mask,
            proto=flow.proto & self.proto_mask,
        )

    def key_of(self, flow: FiveTuple) -> bytes:
        return self.apply(flow).pack()

    def as_int_mask(self) -> int:
        """The 104-bit TCAM mask equivalent."""
        return ((self.src_ip_mask << 72) | (self.dst_ip_mask << 40)
                | (self.src_port_mask << 24) | (self.dst_port_mask << 8)
                | self.proto_mask)

    @property
    def is_exact(self) -> bool:
        return (self.src_ip_mask == 0xFFFFFFFF
                and self.dst_ip_mask == 0xFFFFFFFF
                and self.src_port_mask == 0xFFFF
                and self.dst_port_mask == 0xFFFF
                and self.proto_mask == 0xFF)

    @classmethod
    def exact(cls) -> "FlowMask":
        return cls()

    @classmethod
    def prefixes(cls, src_prefix: int = 32, dst_prefix: int = 32,
                 src_port: bool = True, dst_port: bool = True,
                 proto: bool = True) -> "FlowMask":
        """Convenience constructor from IP prefix lengths and port flags."""
        def prefix_mask(bits: int) -> int:
            if not 0 <= bits <= 32:
                raise ValueError("prefix length must be 0..32")
            return (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF if bits else 0
        return cls(
            src_ip_mask=prefix_mask(src_prefix),
            dst_ip_mask=prefix_mask(dst_prefix),
            src_port_mask=0xFFFF if src_port else 0,
            dst_port_mask=0xFFFF if dst_port else 0,
            proto_mask=0xFF if proto else 0,
        )


def make_flow(index: int, proto: int = PROTO_UDP,
              group: int = None) -> FiveTuple:
    """A deterministic distinct flow for workload generation.

    Entropy is spread across the source address (a Weyl-sequence multiply).
    When ``group`` is given, the flow targets that destination *group* — a
    container/service subnet: destination octets 2-3 and the service port
    are functions of the group, so one dst-prefix (<= /24) wildcard rule per
    group covers the whole group's traffic.  This mirrors the paper's
    "many flows, few rules" scenarios where flows from many sources funnel
    into a handful of service destinations.
    """
    mixed = (index * 2654435761) & 0xFFFFFFFF
    src_ip = (10 << 24) | ((mixed >> 8) & 0xFFFFFF)
    src_port = 1024 + (index % 60000)
    if group is None:
        dst_ip = (172 << 24) | ((mixed * 40503) & 0xFFFFFF)
        dst_port = 80 + (mixed % 1000)
    else:
        dst_ip = ((172 << 24) | ((group & 0xFF) << 16)
                  | (((group * 37) & 0xFF) << 8) | (mixed & 0xFF))
        dst_port = 80 + (group % 1000)
    return FiveTuple(src_ip=src_ip, dst_ip=dst_ip, src_port=src_port,
                     dst_port=dst_port, proto=proto)


def flow_distance_tuple(flow: FiveTuple) -> Tuple[int, ...]:
    """Stable sort key for deterministic iteration in tests."""
    return (flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port,
            flow.proto)
