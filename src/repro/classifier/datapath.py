"""The three-layer OVS datapath (paper Figure 2a).

Packets are classified through a hierarchy of software caches:

1. **EMC** — exact match on the full header; fastest, small.
2. **MegaFlow** — tuple space search over cached megaflows; first match.
3. **OpenFlow** — tuple space search over the full rule set; all tuples
   searched, highest priority wins; misses punt to the controller.

A MegaFlow hit installs the flow into the EMC; an OpenFlow hit installs a
megaflow (the matched rule under its own mask) into the MegaFlow layer —
the standard OVS cache-fill flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Union

from ..obs.metrics import MetricsRegistry
from ..sim.memory import AddressAllocator
from ..sim.trace import Tracer, NULL_TRACER
from .cache_policy import CachePolicy
from .emc import DEFAULT_EMC_ENTRIES, ExactMatchCache
from .flow import FiveTuple
from .openflow import OpenFlowLayer
from .rules import Rule, megaflow_entry
from .tuple_space import TupleSpaceSearch


class HitLayer(Enum):
    EMC = "emc"
    MEGAFLOW = "megaflow"
    OPENFLOW = "openflow"
    MISS = "miss"


@dataclass
class Classification:
    """The outcome for one packet."""

    flow: FiveTuple
    rule: Optional[Rule]
    layer: HitLayer
    tuples_searched: int = 0

    @property
    def hit(self) -> bool:
        return self.rule is not None


@dataclass
class DatapathStats:
    packets: int = 0
    emc_hits: int = 0
    megaflow_hits: int = 0
    openflow_hits: int = 0
    misses: int = 0

    def layer_fractions(self) -> dict:
        total = self.packets or 1
        return {
            "emc": self.emc_hits / total,
            "megaflow": self.megaflow_hits / total,
            "openflow": self.openflow_hits / total,
            "miss": self.misses / total,
        }


class OvsDatapath:
    """EMC -> MegaFlow -> OpenFlow classification with cache fills."""

    def __init__(self,
                 allocator: Optional[AddressAllocator] = None,
                 tracer: Tracer = NULL_TRACER,
                 emc_entries: int = DEFAULT_EMC_ENTRIES,
                 megaflow_tuple_capacity: int = 1024,
                 emc_enabled: bool = True,
                 emc_policy: Union[str, CachePolicy, None] = None,
                 megaflow_policy: Optional[CachePolicy] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.emc = ExactMatchCache(emc_entries, allocator=allocator,
                                   tracer=tracer, policy=emc_policy,
                                   metrics=metrics)
        self.megaflow = TupleSpaceSearch(
            allocator=allocator, tracer=tracer,
            tuple_capacity=megaflow_tuple_capacity, name="megaflow",
            policy=megaflow_policy, metrics=metrics)
        self.openflow = OpenFlowLayer(allocator=allocator, tracer=tracer)
        self.emc_enabled = emc_enabled
        self.stats = DatapathStats()

    # -- rule management ------------------------------------------------------
    def install_rule(self, rule: Rule) -> None:
        """Install an OpenFlow rule (the operator-facing rule set)."""
        self.openflow.install(rule)

    def install_megaflow(self, rule: Rule) -> None:
        """Pre-populate the MegaFlow cache (tests / warmed scenarios)."""
        self.megaflow.install(rule)

    # -- classification ---------------------------------------------------------
    def classify(self, flow: FiveTuple) -> Classification:
        self.stats.packets += 1

        if self.emc_enabled:
            rule = self.emc.lookup(flow)
            if rule is not None:
                self.stats.emc_hits += 1
                return Classification(flow, rule, HitLayer.EMC)

        rule, searched = self.megaflow.classify(flow)
        if rule is not None:
            self.stats.megaflow_hits += 1
            if self.emc_enabled:
                self.emc.install(flow, rule)
            return Classification(flow, rule, HitLayer.MEGAFLOW,
                                  tuples_searched=searched)

        rule = self.openflow.classify(flow)
        if rule is not None:
            self.stats.openflow_hits += 1
            # Cache-fill: a refined megaflow for this flow; the flow also
            # lands in the EMC.
            self.megaflow.install(megaflow_entry(rule, flow))
            if self.emc_enabled:
                self.emc.install(flow, rule)
            return Classification(
                flow, rule, HitLayer.OPENFLOW,
                tuples_searched=searched + self.openflow.num_tuples)

        self.stats.misses += 1
        return Classification(flow, None, HitLayer.MISS,
                              tuples_searched=searched
                              + self.openflow.num_tuples)
