"""Exact Match Cache — the first OVS datapath layer (paper Figure 2a).

A single hash table keyed by the *full* packet header: one lookup, no
wildcard masking, fastest path.  Its capacity is deliberately small (OVS
defaults to 8K entries), so only hot flows stay resident; under large flow
counts it thrashes and most packets fall through to the MegaFlow layer —
the effect behind Figure 3's growing MegaFlow share.

Admission and eviction are delegated to a pluggable
:class:`~repro.classifier.cache_policy.CachePolicy`; the default
:class:`~repro.classifier.cache_policy.RandomEvictionPolicy` reproduces
the historical probabilistic replacement bit-identically.  When a
:class:`~repro.obs.metrics.MetricsRegistry` is attached, the cache
publishes ``<name>.evictions`` / ``<name>.admission_rejects`` counters
and a per-policy windowed miss-rate histogram.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..hashtable.cuckoo import CuckooHashTable
from ..obs.metrics import (MetricsRegistry, NULL_COUNTER, NULL_HISTOGRAM)
from ..sim.memory import AddressAllocator
from ..sim.trace import Tracer, NULL_TRACER
from .cache_policy import CachePolicy, RandomEvictionPolicy, make_policy
from .flow import FiveTuple
from .rules import Rule

#: OVS's default EMC capacity.
DEFAULT_EMC_ENTRIES = 8192

#: Lookups per miss-rate histogram observation window.
DEFAULT_MISS_WINDOW = 256

#: Miss-rate fraction buckets (0..1 in tenths).
MISS_RATE_BOUNDS = tuple(i / 10 for i in range(1, 11))


@dataclass
class EmcStats:
    lookups: int = 0
    hits: int = 0
    installs: int = 0
    evictions: int = 0
    admission_rejects: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.lookups else 0.0


class ExactMatchCache:
    """The EMC layer: exact-match flow -> rule cache with pluggable policy."""

    def __init__(self, capacity: int = DEFAULT_EMC_ENTRIES,
                 allocator: Optional[AddressAllocator] = None,
                 tracer: Tracer = NULL_TRACER,
                 seed: int = 0xE3C,
                 name: str = "emc",
                 policy: Union[str, CachePolicy, None] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 miss_window: int = DEFAULT_MISS_WINDOW) -> None:
        self.table = CuckooHashTable(
            capacity, key_bytes=16, allocator=allocator, tracer=tracer,
            name=name)
        self.capacity = capacity
        self.stats = EmcStats()
        if policy is None:
            policy = RandomEvictionPolicy(seed)
        elif isinstance(policy, str):
            policy = make_policy(policy, seed)
        self.policy = policy
        self._miss_window = max(1, miss_window)
        self._window_lookups = 0
        self._window_misses = 0
        if metrics is None:
            self._m_evictions = NULL_COUNTER
            self._m_rejects = NULL_COUNTER
            self._m_miss_rate = NULL_HISTOGRAM
        else:
            self._m_evictions = metrics.counter(f"{name}.evictions")
            self._m_rejects = metrics.counter(f"{name}.admission_rejects")
            self._m_miss_rate = metrics.histogram(
                f"{name}.{policy.name}.window_miss_rate",
                bounds=MISS_RATE_BOUNDS)

    def lookup(self, flow: FiveTuple) -> Optional[Rule]:
        """One exact lookup; returns the cached rule or None."""
        return self.lookup_key(flow.pack())

    def lookup_key(self, key: bytes) -> Optional[Rule]:
        """:meth:`lookup`, but keyed on the packed 16-byte 5-tuple.

        The cluster layer's key streams are already packed (see
        ``repro.traffic.generator.key_stream``); this entry point lets
        them drive the EMC without a round-trip through
        :class:`~repro.classifier.flow.FiveTuple`.  Bit-identical to
        ``lookup(FiveTuple.unpack(key))``."""
        self.stats.lookups += 1
        rule = self.table.lookup(key)
        self._window_lookups += 1
        if rule is not None:
            self.stats.hits += 1
            self.policy.on_hit(key)
        else:
            self._window_misses += 1
        if self._window_lookups >= self._miss_window:
            self._m_miss_rate.observe(
                self._window_misses / self._window_lookups)
            self._window_lookups = 0
            self._window_misses = 0
        return rule

    def install(self, flow: FiveTuple, rule: Rule) -> None:
        """Cache the classification result for this exact flow.

        OVS's EMC replacement is in-place: when the new key's candidate
        buckets are full, the policy picks one resident entry to evict.
        That keeps installs O(1) — no cuckoo displacement search runs for
        a cache layer that tolerates loss.  The policy may also reject
        the install outright (admission control); either way insertion is
        best-effort, exactly as in OVS.
        """
        self.install_key(flow.pack(), rule)

    def install_key(self, key: bytes, rule: Rule) -> None:
        """:meth:`install`, but keyed on the packed 16-byte 5-tuple (the
        cluster layer's native key representation)."""
        plan = self.table.probe(key)
        if plan.found:
            self.table.insert(key, rule)   # refresh the cached rule
            self.policy.on_hit(key)
            return
        if not self.policy.admit(key):
            self.stats.admission_rejects += 1
            self._m_rejects.inc()
            return
        candidates = (plan.primary_index, plan.secondary_index)
        if all(len(self.table.bucket_keys(index)) >= self.table.assoc
               for index in candidates):
            victim = self.policy.victim(self.table, candidates)
            if victim is not None:
                self.table.delete(victim)
                self.policy.on_evict(victim)
                self.stats.evictions += 1
                self._m_evictions.inc()
        if self.table.insert(key, rule):
            self.stats.installs += 1
            self.policy.on_install(key)
        # else: displacement path exhausted; skip caching (OVS behaves the
        # same: EMC insertion is best-effort).

    def __len__(self) -> int:
        return len(self.table)
