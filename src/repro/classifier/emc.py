"""Exact Match Cache — the first OVS datapath layer (paper Figure 2a).

A single hash table keyed by the *full* packet header: one lookup, no
wildcard masking, fastest path.  Its capacity is deliberately small (OVS
defaults to 8K entries), so only hot flows stay resident; under large flow
counts it thrashes and most packets fall through to the MegaFlow layer —
the effect behind Figure 3's growing MegaFlow share.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..hashtable.cuckoo import CuckooHashTable
from ..sim.memory import AddressAllocator
from ..sim.trace import Tracer, NULL_TRACER
from .flow import FiveTuple
from .rules import Rule

#: OVS's default EMC capacity.
DEFAULT_EMC_ENTRIES = 8192


@dataclass
class EmcStats:
    lookups: int = 0
    hits: int = 0
    installs: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ExactMatchCache:
    """The EMC layer: exact-match flow -> rule cache with random eviction."""

    def __init__(self, capacity: int = DEFAULT_EMC_ENTRIES,
                 allocator: Optional[AddressAllocator] = None,
                 tracer: Tracer = NULL_TRACER,
                 seed: int = 0xE3C,
                 name: str = "emc") -> None:
        self.table = CuckooHashTable(
            capacity, key_bytes=16, allocator=allocator, tracer=tracer,
            name=name)
        self.capacity = capacity
        self.stats = EmcStats()
        self._random = random.Random(seed)

    def lookup(self, flow: FiveTuple) -> Optional[Rule]:
        """One exact lookup; returns the cached rule or None."""
        self.stats.lookups += 1
        rule = self.table.lookup(flow.pack())
        if rule is not None:
            self.stats.hits += 1
        return rule

    def install(self, flow: FiveTuple, rule: Rule) -> None:
        """Cache the classification result for this exact flow.

        OVS's EMC replacement is probabilistic and in-place: when the new
        key's candidate buckets are full, a random entry from one of them is
        evicted.  That keeps installs O(1) — no cuckoo displacement search
        runs for a cache layer that tolerates loss.
        """
        key = flow.pack()
        plan = self.table.probe(key)
        if plan.found:
            self.table.insert(key, rule)   # refresh the cached rule
            return
        candidates = (plan.primary_index, plan.secondary_index)
        if all(len(self.table.bucket_keys(index)) >= self.table.assoc
               for index in candidates):
            bucket = self._random.choice(candidates)
            victims = self.table.bucket_keys(bucket)
            if victims:
                self.table.delete(self._random.choice(victims))
                self.stats.evictions += 1
        if self.table.insert(key, rule):
            self.stats.installs += 1
        # else: displacement path exhausted; skip caching (OVS behaves the
        # same: EMC insertion is best-effort).

    def __len__(self) -> int:
        return len(self.table)
