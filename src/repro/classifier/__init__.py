"""Flow classification: 5-tuples, masks, rules, EMC, tuple space search,
the OpenFlow layer, and the three-layer OVS datapath."""

from .cache_policy import (
    CachePolicy,
    CorrelatorPolicy,
    LruPolicy,
    POLICY_NAMES,
    RandomEvictionPolicy,
    SecondChancePolicy,
    make_policy,
)
from .datapath import Classification, DatapathStats, HitLayer, OvsDatapath
from .dtree import DecisionTreeClassifier, TreeNode
from .emc import DEFAULT_EMC_ENTRIES, ExactMatchCache
from .flow import (
    FiveTuple,
    FlowMask,
    KEY_BYTES,
    PROTO_TCP,
    PROTO_UDP,
    make_flow,
)
from .openflow import OpenFlowLayer
from .revalidator import DEFAULT_IDLE_TIMEOUT, Revalidator
from .rules import Action, ActionKind, Rule, rule_for_flow
from .tuple_space import (
    DEFAULT_TUPLE_CAPACITY,
    TupleEntry,
    TupleSpaceSearch,
    TupleSpaceStats,
)

__all__ = [
    "Action",
    "ActionKind",
    "CachePolicy",
    "Classification",
    "CorrelatorPolicy",
    "LruPolicy",
    "POLICY_NAMES",
    "RandomEvictionPolicy",
    "SecondChancePolicy",
    "DEFAULT_EMC_ENTRIES",
    "DEFAULT_TUPLE_CAPACITY",
    "DatapathStats",
    "DEFAULT_IDLE_TIMEOUT",
    "DecisionTreeClassifier",
    "ExactMatchCache",
    "FiveTuple",
    "FlowMask",
    "HitLayer",
    "KEY_BYTES",
    "OpenFlowLayer",
    "OvsDatapath",
    "PROTO_TCP",
    "PROTO_UDP",
    "Revalidator",
    "Rule",
    "TreeNode",
    "TupleEntry",
    "TupleSpaceSearch",
    "TupleSpaceStats",
    "make_flow",
    "make_policy",
    "rule_for_flow",
]
