"""Megaflow revalidation and idle expiry — OVS's revalidator threads.

The datapath layers (EMC, MegaFlow) are *caches*: their entries must leave
when the flows go idle or when the OpenFlow rules they were derived from
change.  OVS runs revalidator threads that (a) expire megaflows not hit
within an idle timeout and (b) re-run each cached megaflow against the
current OpenFlow table, deleting entries whose answer changed.

Without this, the paper's steady-state assumption ("most of the useful
data ... can be cached in the LLC") would degrade as dead megaflows bloat
the tuples — the revalidator is what keeps the cached working set equal to
the *active* flows, which is also exactly what HALO's flow register
estimates (§4.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .datapath import Classification, HitLayer, OvsDatapath
from .flow import FiveTuple
from .rules import Rule

#: Idle time (in the caller's clock units, e.g. cycles or packets) after
#: which an unused megaflow is reclaimed.  OVS's default is 10 s.
DEFAULT_IDLE_TIMEOUT = 10_000

_FlowKey = Tuple[object, bytes]   # (mask, packed masked key)


def _entry_key(rule: Rule) -> _FlowKey:
    return (rule.mask, rule.key)


@dataclass
class RevalidatorStats:
    observed: int = 0
    idle_expired: int = 0
    revalidated: int = 0
    stale_removed: int = 0
    sweeps: int = 0


class Revalidator:
    """Ages and revalidates a datapath's cached megaflows."""

    def __init__(self, datapath: OvsDatapath,
                 idle_timeout: float = DEFAULT_IDLE_TIMEOUT) -> None:
        self.datapath = datapath
        self.idle_timeout = idle_timeout
        self.stats = RevalidatorStats()
        # megaflow entry -> (last_use, a flow that hit it — the revalidation
        # witness)
        self._last_use: Dict[_FlowKey, float] = {}
        self._witness: Dict[_FlowKey, FiveTuple] = {}
        self._entries: Dict[_FlowKey, Rule] = {}

    # -- observation -------------------------------------------------------------
    def observe(self, classification: Classification, now: float) -> None:
        """Record one classification outcome (call per packet)."""
        self.stats.observed += 1
        if classification.layer not in (HitLayer.MEGAFLOW,
                                        HitLayer.OPENFLOW):
            return
        rule = classification.rule
        # MEGAFLOW hits touch the cached entry; OPENFLOW hits just installed
        # one (the datapath's cache fill).
        for key, entry in self._iter_matching_entries(classification.flow):
            self._last_use[key] = now
            self._witness[key] = classification.flow
            break
        else:
            # Track the entry the datapath installed for this flow.
            installed = self._find_installed(classification.flow)
            if installed is not None:
                key = _entry_key(installed)
                self._entries[key] = installed
                self._last_use[key] = now
                self._witness[key] = classification.flow

    def _iter_matching_entries(self, flow: FiveTuple):
        for key, entry in self._entries.items():
            if entry.matches(flow):
                yield key, entry

    def _find_installed(self, flow: FiveTuple) -> Optional[Rule]:
        for tuple_entry in self.datapath.megaflow.tuples():
            found = tuple_entry.lookup(flow)
            if found is not None:
                return found
        return None

    # -- reclamation ---------------------------------------------------------------
    def sweep(self, now: float) -> int:
        """Expire megaflows idle longer than the timeout; returns count."""
        self.stats.sweeps += 1
        expired = [key for key, last in self._last_use.items()
                   if now - last > self.idle_timeout]
        for key in expired:
            entry = self._entries.pop(key, None)
            self._last_use.pop(key, None)
            self._witness.pop(key, None)
            if entry is not None and self.datapath.megaflow.remove(entry):
                self.stats.idle_expired += 1
        return len(expired)

    def revalidate(self) -> int:
        """Re-check every tracked megaflow against the OpenFlow table.

        An entry whose witness flow now classifies to a different action
        (its origin rule was removed or superseded) is deleted — the next
        packet takes the slow path and installs a fresh megaflow.
        Returns the number of stale entries removed.
        """
        removed = 0
        for key in list(self._entries):
            entry = self._entries[key]
            witness = self._witness.get(key)
            self.stats.revalidated += 1
            current = (self.datapath.openflow.classify(witness)
                       if witness is not None else None)
            stale = (current is None
                     or current.action != entry.action
                     or current.priority != entry.priority)
            if stale:
                self._entries.pop(key, None)
                self._last_use.pop(key, None)
                self._witness.pop(key, None)
                if self.datapath.megaflow.remove(entry):
                    self.stats.stale_removed += 1
                    removed += 1
        return removed

    @property
    def tracked_entries(self) -> int:
        return len(self._entries)
